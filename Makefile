PYTHON ?= python
export PYTHONPATH := src:$(PYTHONPATH)

.PHONY: test docs docs-check doctest clean-docs

test:
	$(PYTHON) -m pytest -x -q

# Build the documentation site (API reference + HTML) warning-clean.
# Any broken link/anchor, missing public docstring, or stale paper-map
# reference fails the build.
docs:
	$(PYTHON) docs/build.py

# All docs checks without writing docs/_build/.
docs-check:
	$(PYTHON) docs/build.py --check

# Run the runnable examples embedded in docstrings.
doctest:
	$(PYTHON) -m pytest -x -q tests/test_doctests.py

clean-docs:
	rm -rf docs/_build
