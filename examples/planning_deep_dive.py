"""Deep dive into the paper's two planners on a real model.

Shows, for ResNet-50 on the paper's 64-GPU profile:

1. the optimal tensor-fusion plan (Eq. 15 / MG-WFBP DP) for the A and G
   factor passes, vs no-fusion / threshold fusion — with the predicted
   aggregation finish time of each plan;
2. the LBP inverse placement (Algorithm 1): which tensors are CT vs NCT,
   and the estimated completion (Eq. 21) vs Seq-Dist / Non-Dist.

Run:  python examples/planning_deep_dive.py [model]
"""

import sys

from repro.core.fusion import (
    fusion_completion_time,
    plan_no_fusion,
    plan_threshold_fusion,
)
from repro.core.pipeline import FactorCommStrategy, factor_availability, factor_comm_plans
from repro.core.placement import non_dist_placement, seq_dist_placement
from repro.core.schedule import build_inverse_graph, resolve_placement, run_iteration
from repro.models import get_model_spec
from repro.perf import paper_cluster_profile
from repro.utils import human_count, human_time


def main() -> None:
    model = sys.argv[1] if len(sys.argv) > 1 else "ResNet-50"
    spec = get_model_spec(model)
    profile = paper_cluster_profile()
    comm = profile.allreduce_streamed

    print(f"=== Optimal tensor fusion for {spec.name} ===")
    a_sizes = [layer.a_elements for layer in spec.layers]
    a_avail, _ = factor_availability(spec, profile)
    otf = factor_comm_plans(FactorCommStrategy.SP_OTF, spec, profile)
    alternatives = {
        "no fusion": plan_no_fusion(len(a_sizes)),
        "threshold (64MiB)": plan_threshold_fusion(a_sizes, profile.fusion_threshold_elements),
        "optimal (DP)": otf.a_plan,
    }
    for name, plan in alternatives.items():
        finish = fusion_completion_time(plan, a_sizes, a_avail, comm)
        print(f"  A-pass {name:18} {plan.num_buckets:3d} buckets, "
              f"last aggregation done at {human_time(finish)}")
    print("  optimal A buckets (layer ranges and fused elements):")
    for bucket in otf.a_plan.buckets:
        elements = sum(a_sizes[i] for i in bucket)
        print(f"    layers {bucket[0]:3d}-{bucket[-1]:3d}: {human_count(elements)} elements")

    print(f"\n=== LBP inverse placement for {spec.name} on 64 GPUs ===")
    placement = resolve_placement("lbp", spec, profile, profile.num_workers)
    dims = placement.dims
    cts = [i for i in range(len(dims)) if not placement.is_nct(i)]
    print(f"  {len(cts)} CTs (computed once + broadcast), "
          f"{len(dims) - len(cts)} NCTs (recomputed on every GPU)")
    largest = sorted(cts, key=lambda i: -dims[i])[:8]
    for i in largest:
        side = "A" if i % 2 == 0 else "G"
        print(f"    CT tensor: layer {i // 2:3d} factor {side}, d={dims[i]:5d} "
              f"-> owner rank {placement.owner(i)}")

    # Simulate the isolated inverse stage for each placement (Fig. 12's
    # comparison).  Note this accounts receive-side broadcast time, which
    # Eq. 21's owner-only objective does not.
    for name, alt in (
        ("Non-Dist", non_dist_placement(dims, 64)),
        ("Seq-Dist", seq_dist_placement(dims, 64)),
        ("LBP", placement),
    ):
        result = run_iteration(build_inverse_graph(spec, profile, alt), name, spec.name)
        print(f"  simulated inverse stage [{name:8}]: {human_time(result.iteration_time)}")


if __name__ == "__main__":
    main()
