"""Quickstart: train a small classifier with K-FAC and compare to SGD.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import KFACOptimizer, make_mlp
from repro.nn import SGD, CrossEntropyLoss
from repro.workloads import gaussian_blobs


def train(optimizer_name: str, iterations: int = 20) -> list:
    """Train the same model/initialization with the named optimizer."""
    x, y = gaussian_blobs(256, 10, 3, scale_spread=8.0, rng=0)
    x = x / np.abs(x).max() * 3.0  # bounded but anisotropic inputs

    net = make_mlp(in_features=10, hidden=24, num_classes=3, rng=1)
    if optimizer_name == "kfac":
        opt = KFACOptimizer(net, lr=0.3, damping=1e-2, stat_decay=0.9, kl_clip=1e-2)
    else:
        opt = SGD(net.parameters(), lr=1.0)
    loss_fn = CrossEntropyLoss()

    losses = []
    for _ in range(iterations):
        opt.zero_grad()
        losses.append(loss_fn(net(x), y))
        net.run_backward(loss_fn.backward())
        opt.step()
    return losses


def plan_at_scale() -> None:
    """The three-line Session flow: plan a scheme on a modeled cluster."""
    from repro import Session

    session = Session("ResNet-50", 64)
    plan = session.plan("SPD-KFAC")
    print(
        f"\nAt cluster scale, SPD-KFAC on ResNet-50 x 64 GPUs is planned to "
        f"take {session.simulate(plan).iteration_time:.4f} s/iteration "
        f"({dict(plan.task_counts)['tasks']} simulated tasks)."
    )


def main() -> None:
    kfac_losses = train("kfac")
    sgd_losses = train("sgd")
    print(f"{'iter':>4}  {'K-FAC loss':>12}  {'SGD loss':>12}")
    for i in range(0, len(kfac_losses), 5):
        print(f"{i:>4}  {kfac_losses[i]:>12.5f}  {sgd_losses[i]:>12.5f}")
    print(f"{'end':>4}  {kfac_losses[-1]:>12.5f}  {sgd_losses[-1]:>12.5f}")
    print(
        "\nK-FAC preconditions each layer's gradient by the inverse "
        "Kronecker factors (Eq. 11), which whitens the ill-conditioned "
        "inputs and converges in far fewer iterations."
    )
    plan_at_scale()


if __name__ == "__main__":
    main()
