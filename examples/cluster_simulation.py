"""Simulate one training iteration of every algorithm on a GPU cluster.

Rebuilds the paper's Fig. 9-style comparison for any of the four CNNs and
any cluster size, using the discrete-event simulator calibrated with the
paper's measured cost constants, then re-prices the same iteration on two
*modeled* topologies (flat fabric vs hierarchical NVLink+IB cluster, via
``repro.topo`` and ``repro.perf.topology_profile``) to show what cluster
shape is worth.  Optionally dumps a Chrome trace (chrome://tracing or
https://ui.perfetto.dev) of the SPD-KFAC schedule.

Run:  python examples/cluster_simulation.py [model] [num_gpus] [trace.json]
e.g.  python examples/cluster_simulation.py ResNet-50 64 spd_trace.json
"""

import sys

from repro.models import get_model_spec
from repro.plan import Session, strategy_registry
from repro.sim.timeline import PAPER_CATEGORIES
from repro.topo import flat, multi_node

SCHEMES = (
    ("SGD (1 GPU)", "SGD"),
    ("S-SGD", "S-SGD"),
    ("KFAC (1 GPU)", "KFAC"),
    ("D-KFAC", "D-KFAC"),
    ("MPD-KFAC", "MPD-KFAC"),
    ("SPD-KFAC", "SPD-KFAC"),
)


def main() -> None:
    model = sys.argv[1] if len(sys.argv) > 1 else "ResNet-50"
    num_gpus = int(sys.argv[2]) if len(sys.argv) > 2 else 64
    trace_path = sys.argv[3] if len(sys.argv) > 3 else None

    spec = get_model_spec(model)
    session = Session(spec, num_gpus)
    print(f"{spec.name}, batch {spec.batch_size}/GPU, {num_gpus} GPUs "
          f"(cost models calibrated to the paper's testbed)\n")

    header = f"{'algorithm':14} {'iter(s)':>8} " + " ".join(f"{c:>11}" for c in PAPER_CATEGORIES)
    print(header)
    print("-" * len(header))
    spd_result = None
    for label, strategy in SCHEMES:
        result = session.simulate(strategy)
        cats = result.categories()
        row = f"{label:14} {result.iteration_time:>8.4f} " + " ".join(
            f"{cats[c]:>11.4f}" for c in PAPER_CATEGORIES
        )
        print(row)
        if strategy == "SPD-KFAC":
            spd_result = result

    compare_topologies(spec, num_gpus)

    if trace_path and spd_result is not None:
        spd_result.timeline.save_chrome_trace(trace_path)
        print(f"\nSPD-KFAC Chrome trace written to {trace_path}")


def hierarchical_topology(num_gpus):
    """An NVLink-islands-behind-IB cluster holding ``num_gpus`` GPUs."""
    for gpus_per_node in (8, 4, 2):
        if num_gpus % gpus_per_node == 0 and num_gpus // gpus_per_node > 1:
            return multi_node(
                num_gpus // gpus_per_node, gpus_per_node, intra="nvlink", inter="ib"
            )
    return flat(num_gpus)


def compare_topologies(spec, num_gpus):
    """Price the same SPD-KFAC iteration on two cluster topologies."""
    flat_topo = flat(num_gpus)
    hier_topo = hierarchical_topology(num_gpus)
    if hier_topo.num_nodes <= 1:
        print(f"\n({num_gpus} GPUs do not split into multi-GPU nodes; "
              "skipping the topology comparison)")
        return
    print("\nTopology comparison (SPD-KFAC, topology-derived cost models):")
    times = []
    for topo, algorithm in ((flat_topo, "ring"), (hier_topo, "hierarchical")):
        session = Session(spec, topo)
        result = session.simulate(
            strategy_registry["SPD-KFAC"].but(collective=algorithm)
        )
        times.append(result.iteration_time)
        print(f"  {topo.describe():60}  {algorithm:13} iter = {result.iteration_time:.4f} s")
    flat_t, hier_t = times
    print(
        f"  predicted iteration-time delta: {flat_t - hier_t:+.4f} s "
        f"({flat_t / hier_t:.2f}x) for the hierarchical cluster"
    )


if __name__ == "__main__":
    main()
