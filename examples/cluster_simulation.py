"""Simulate one training iteration of every algorithm on a GPU cluster.

Rebuilds the paper's Fig. 9-style comparison for any of the four CNNs and
any cluster size, using the discrete-event simulator calibrated with the
paper's measured cost constants.  Optionally dumps a Chrome trace
(chrome://tracing or https://ui.perfetto.dev) of the SPD-KFAC schedule.

Run:  python examples/cluster_simulation.py [model] [num_gpus] [trace.json]
e.g.  python examples/cluster_simulation.py ResNet-50 64 spd_trace.json
"""

import sys

from repro.core.schedule import (
    build_dkfac_graph,
    build_mpd_kfac_graph,
    build_sgd_graph,
    build_spd_kfac_graph,
    build_ssgd_graph,
    build_kfac_graph,
    run_iteration,
)
from repro.models import get_model_spec
from repro.perf import scaled_cluster_profile
from repro.sim.timeline import PAPER_CATEGORIES

ALGORITHMS = (
    ("SGD (1 GPU)", build_sgd_graph),
    ("S-SGD", build_ssgd_graph),
    ("KFAC (1 GPU)", build_kfac_graph),
    ("D-KFAC", build_dkfac_graph),
    ("MPD-KFAC", build_mpd_kfac_graph),
    ("SPD-KFAC", build_spd_kfac_graph),
)


def main() -> None:
    model = sys.argv[1] if len(sys.argv) > 1 else "ResNet-50"
    num_gpus = int(sys.argv[2]) if len(sys.argv) > 2 else 64
    trace_path = sys.argv[3] if len(sys.argv) > 3 else None

    spec = get_model_spec(model)
    profile = scaled_cluster_profile(num_gpus)
    print(f"{spec.name}, batch {spec.batch_size}/GPU, {num_gpus} GPUs "
          f"(cost models calibrated to the paper's testbed)\n")

    header = f"{'algorithm':14} {'iter(s)':>8} " + " ".join(f"{c:>11}" for c in PAPER_CATEGORIES)
    print(header)
    print("-" * len(header))
    spd_result = None
    for name, builder in ALGORITHMS:
        result = run_iteration(builder(spec, profile), name, spec.name)
        cats = result.categories()
        row = f"{name:14} {result.iteration_time:>8.4f} " + " ".join(
            f"{cats[c]:>11.4f}" for c in PAPER_CATEGORIES
        )
        print(row)
        if builder is build_spd_kfac_graph:
            spd_result = result

    if trace_path and spd_result is not None:
        spd_result.timeline.save_chrome_trace(trace_path)
        print(f"\nSPD-KFAC Chrome trace written to {trace_path}")


if __name__ == "__main__":
    main()
