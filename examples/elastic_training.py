"""Fault-aware planning: stragglers, a preemption, and an elastic resize.

The paper picks SPD-KFAC's scheme on a healthy, fixed-size 64-GPU
cluster.  This example prices the same decision on a cluster that
misbehaves — the multi-rack preset under heavy straggling plus one
preemption — and shows where the robust answer differs:

1. rank a shortlist of distributed K-FAC schemes both by nominal
   (noise-free) iteration time and by p95 over seeded straggler samples
   (:func:`repro.autotune.autotune` with ``objective="p95"``);
2. price the preemption event with the Young/Daly-optimal checkpoint
   policy (:mod:`repro.faults.checkpoint`);
3. price an elastic resize (32 -> 64 ranks) as a re-plan plus state
   movement (:func:`repro.faults.replan`).

Run:  python examples/elastic_training.py
"""

from repro.autotune import autotune
from repro.faults import (
    FaultEvent,
    FaultScenario,
    StragglerSpec,
    default_policy,
    named_scenario,
    price_elastic_run,
    price_events,
    replan,
)
from repro.models import get_model_spec
from repro.plan import strategy_registry
from repro.topo import named_topology

MODEL = "ResNet-50"
SAMPLES = 8

#: Heavy per-rank compute jitter plus one concrete preemption: rank 13
#: dies half an hour (of useful work) into the run and is back 2 min later.
SCENARIO = FaultScenario(
    name="rough-day",
    straggler=StragglerSpec(distribution="lognormal", sigma=0.6, prob=0.5),
    events=(FaultEvent(rank=13, time=1800.0, downtime=120.0),),
    seed=2021,
)


def shortlist():
    spd = strategy_registry["SPD-KFAC"]
    return (
        strategy_registry["D-KFAC"],
        strategy_registry["MPD-KFAC"],
        spd,
        spd.but(name="SPD-KFAC[balanced]", placement="balanced"),
    )


def main() -> None:
    topology = named_topology("multi-rack")
    print(f"=== Robust vs nominal strategy choice: {MODEL} on {topology.name} ===")
    print(f"scenario  {SCENARIO.describe()}")
    report = autotune(
        MODEL,
        topology,
        candidates=shortlist(),
        presets=(),
        prune=False,
        scenario=SCENARIO,
        objective="p95",
        samples=SAMPLES,
    )
    simulated = [o for o in report.outcomes if o.simulated]
    print(f"{'strategy':<22} {'nominal(s)':>11} {'p95(s)':>9}")
    for outcome in simulated:
        print(
            f"{outcome.label:<22} {outcome.iteration_time:>11.4f} "
            f"{outcome.robust.p95:>9.4f}"
        )
    nominal = min(simulated, key=lambda o: (o.iteration_time, o.label))
    robust = min(simulated, key=lambda o: (o.robust.p95, o.label))
    print(f"nominal best: {nominal.label} ({nominal.iteration_time:.4f} s)")
    print(f"robust best:  {robust.label} ({robust.robust.p95:.4f} s p95)")
    if robust.label != nominal.label:
        print("-> the tail objective changes the planning decision.")

    print()
    print("=== Pricing the preemption with a Young/Daly checkpoint policy ===")
    spec = get_model_spec(MODEL)
    # Reuse the preset preemption pressure for the policy's MTBF.
    preemption = named_scenario("preemption").preemption
    policy = default_policy(topology, spec.num_params, preemption)
    print(
        f"checkpoint write: {policy.write_cost:.2f} s -> Young/Daly optimal "
        f"interval {policy.interval:.0f} s of work"
    )
    run = price_events(3600.0, SCENARIO.events, policy)
    print(
        f"one hour of work + 1 preemption: {run.total_time:.1f} s wall "
        f"({run.overhead * 100:.1f}% overhead: {run.lost_work:.1f} s lost, "
        f"{run.downtime:.0f} s down, {run.checkpoint_time:.1f} s checkpoints)"
    )

    print()
    print("=== Elastic resize: 32 -> 64 ranks mid-run ===")
    transition = replan(MODEL, "SPD-KFAC", 32, 64)
    print(transition.describe())
    elastic = price_elastic_run(MODEL, "SPD-KFAC", [(32, 300), (64, 700)])
    print(elastic.describe())


if __name__ == "__main__":
    main()
