"""Distributed K-FAC: 4 data-parallel workers training one model.

Demonstrates the numerically exact distributed stack: each rank (thread)
sees a different data shard, Kronecker factors and gradients are
all-reduced, inverse workloads are placed by LBP (Algorithm 1), and CT
inverses are broadcast packed as upper triangles.  At the end the ranks'
models are verified to be bit-identical — the paper's consistency
requirement — and the collective traffic is reported.

Run:  python examples/distributed_training.py
"""

import numpy as np

from repro.comm import CollectiveGroup
from repro.core.distributed import DistKFACOptimizer, InverseStrategy
from repro.models import make_small_cnn
from repro.nn import CrossEntropyLoss
from repro.utils import human_count
from repro.workloads import sharded_batches, synthetic_images

WORLD_SIZE = 4
ITERATIONS = 8
BATCH_PER_RANK = 8


def worker(comm, batches_for_rank):
    """One rank's training loop (runs in its own thread)."""
    net = make_small_cnn(in_channels=1, num_classes=4, rng=123)  # same init
    opt = DistKFACOptimizer(
        net,
        comm,
        lr=0.03,
        damping=1e-1,
        stat_decay=0.5,
        inverse_strategy=InverseStrategy.LBP,
        factor_fusion="threshold",
        fusion_threshold_elements=4096,
    )
    loss_fn = CrossEntropyLoss()
    losses = []
    for x, y in batches_for_rank:
        opt.zero_grad()
        losses.append(loss_fn(net(x), y))
        net.run_backward(loss_fn.backward())
        opt.step()
    params = np.concatenate([p.data.ravel() for p in net.parameters()])
    return losses, params, opt.placement


def main() -> None:
    data = synthetic_images(512, channels=1, size=8, num_classes=4, rng=0)
    stream = sharded_batches(data, WORLD_SIZE, BATCH_PER_RANK, rng=1)
    rounds = [next(stream) for _ in range(ITERATIONS)]
    per_rank_batches = [[rounds[t][r] for t in range(ITERATIONS)] for r in range(WORLD_SIZE)]

    group = CollectiveGroup(WORLD_SIZE)
    import threading

    results = [None] * WORLD_SIZE
    threads = []
    for rank in range(WORLD_SIZE):
        comm = group.communicator(rank)

        def runner(rank=rank, comm=comm):
            results[rank] = worker(comm, per_rank_batches[rank])

        threads.append(threading.Thread(target=runner))
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    losses0, params0, placement = results[0]
    print("rank-0 loss trajectory:", " ".join(f"{v:.3f}" for v in losses0))
    identical = all(np.array_equal(params0, results[r][1]) for r in range(1, WORLD_SIZE))
    print(f"models bit-identical across {WORLD_SIZE} ranks: {identical}")

    print(f"\nLBP placement: {placement.num_cts()} CTs / "
          f"{len(placement.dims) - placement.num_cts()} NCTs over {len(placement.dims)} tensors")
    for rank in range(WORLD_SIZE):
        owned = [i for i in placement.tensors_on(rank) if not placement.is_nct(i)]
        print(f"  rank {rank}: owns CT tensors {owned}")

    print("\ncollective traffic (elements):")
    for op, elements in sorted(group.traffic.elements.items()):
        print(f"  {op:10} {human_count(elements):>8}  ({group.traffic.calls[op]} calls)")


if __name__ == "__main__":
    main()
