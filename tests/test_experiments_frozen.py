"""Migration guard: every paper experiment reproduces its pre-migration rows.

``tests/data/frozen_paper_rows.json`` snapshots the rows of tab2-fig13
as produced by the per-algorithm ``build_*_graph`` builders immediately
before the Strategy/Plan/Session migration, with floats stored as
``float.hex`` so the comparison is bit-exact.  fig8's ``measured(s)`` /
``fit(s)`` columns time real kernels on the host and are inherently
non-deterministic, so they are excluded.
"""

import json
from pathlib import Path

import pytest

from repro.experiments.base import get_experiment

FROZEN_PATH = Path(__file__).parent / "data" / "frozen_paper_rows.json"

#: Columns whose values depend on host wall-clock measurements.
VOLATILE_COLUMNS = {"fig8": {"measured(s)", "fit(s)"}}


def load_frozen():
    with open(FROZEN_PATH) as f:
        return json.load(f)


def normalize(rows, volatile):
    out = []
    for row in rows:
        out.append(
            {
                k: (float.hex(v) if isinstance(v, float) else v)
                for k, v in row.items()
                if k not in volatile
            }
        )
    return out


@pytest.mark.parametrize("experiment_id", sorted(load_frozen()))
def test_rows_identical_to_pre_migration_snapshot(experiment_id):
    frozen = load_frozen()[experiment_id]
    volatile = VOLATILE_COLUMNS.get(experiment_id, set())
    result = get_experiment(experiment_id).run()
    assert list(result.columns) == frozen["columns"]
    expected = [
        {k: v for k, v in row.items() if k not in volatile} for row in frozen["rows"]
    ]
    assert normalize(result.rows, volatile) == expected
