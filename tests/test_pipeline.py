"""Tests for factor-communication pipelining strategies and planning."""

import pytest

from repro.core.fusion import fusion_completion_time
from repro.core.pipeline import (
    FactorCommStrategy,
    backward_step_end_times,
    factor_availability,
    factor_comm_plans,
    gradient_fusion_plan,
    layer_compute_times,
)
from repro.models import get_model_spec
from tests.conftest import build_tiny_spec


class TestLayerTimes:
    def test_times_positive_and_per_layer(self, tiny_spec, paper_profile):
        t_fwd, t_bwd, t_fa, t_fg = layer_compute_times(tiny_spec, paper_profile)
        assert len(t_fwd) == len(tiny_spec.layers)
        assert all(t > 0 for t in t_fwd + t_bwd + t_fa + t_fg)

    def test_backward_costs_twice_forward_flops(self, tiny_spec, paper_profile):
        t_fwd, t_bwd, _, _ = layer_compute_times(tiny_spec, paper_profile)
        overhead = paper_profile.train_compute.overhead
        for fwd, bwd in zip(t_fwd, t_bwd):
            assert (bwd - overhead) == pytest.approx(2 * (fwd - overhead), rel=1e-9)


class TestAvailability:
    def test_a_availability_monotone(self, tiny_spec, paper_profile):
        a_avail, g_avail = factor_availability(tiny_spec, paper_profile)
        assert list(a_avail) == sorted(a_avail)
        assert list(g_avail) == sorted(g_avail)
        assert len(a_avail) == len(g_avail) == len(tiny_spec.layers)

    def test_g_pass_follows_forward_pass(self, tiny_spec, paper_profile):
        a_avail, g_avail = factor_availability(tiny_spec, paper_profile)
        assert g_avail[0] > a_avail[-1]

    def test_first_a_excludes_forward_compute(self, tiny_spec, paper_profile):
        """A_0 is computed in the pre-forward hook of layer 0."""
        a_avail, _ = factor_availability(tiny_spec, paper_profile)
        _, _, t_fa, _ = layer_compute_times(tiny_spec, paper_profile)
        assert a_avail[0] == pytest.approx(t_fa[0])

    def test_backward_step_ends_interleave_g_avail(self, tiny_spec, paper_profile):
        b_ends = backward_step_end_times(tiny_spec, paper_profile)
        _, g_avail = factor_availability(tiny_spec, paper_profile)
        _, _, _, t_fg = layer_compute_times(tiny_spec, paper_profile)
        reversed_fg = list(reversed(t_fg))
        for b_end, g_at, fg in zip(b_ends, g_avail, reversed_fg):
            assert g_at == pytest.approx(b_end + fg)


class TestStrategyPlans:
    @pytest.mark.parametrize("strategy", list(FactorCommStrategy))
    def test_plans_cover_all_layers(self, tiny_spec, paper_profile, strategy):
        plan = factor_comm_plans(strategy, tiny_spec, paper_profile)
        assert plan.a_plan.num_tensors == len(tiny_spec.layers)
        assert plan.g_plan.num_tensors == len(tiny_spec.layers)

    def test_bulk_combines_passes(self, tiny_spec, paper_profile):
        plan = factor_comm_plans(FactorCommStrategy.BULK, tiny_spec, paper_profile)
        assert plan.combine_passes and plan.launch_after_pass
        assert plan.a_plan.num_buckets == 1

    def test_naive_two_bulk_ops(self, tiny_spec, paper_profile):
        plan = factor_comm_plans(FactorCommStrategy.NAIVE, tiny_spec, paper_profile)
        assert not plan.combine_passes and plan.launch_after_pass

    def test_lw_no_tf_one_bucket_per_factor(self, tiny_spec, paper_profile):
        plan = factor_comm_plans(FactorCommStrategy.LW_NO_TF, tiny_spec, paper_profile)
        assert plan.a_plan.num_buckets == len(tiny_spec.layers)

    def test_ttf_respects_threshold(self, paper_profile):
        spec = get_model_spec("ResNet-50")
        plan = factor_comm_plans(FactorCommStrategy.LW_TTF, spec, paper_profile)
        sizes = [layer.a_elements for layer in spec.layers]
        threshold = paper_profile.fusion_threshold_elements
        for bucket in plan.a_plan.buckets[:-1]:
            assert sum(sizes[i] for i in bucket) >= threshold

    def test_otf_predicted_finish_beats_ttf_a_pass(self, paper_profile):
        """On the A pass (exclusive channel) the DP plan must finish no
        later than threshold fusion under the planning model."""
        for name in ("ResNet-50", "ResNet-152", "DenseNet-201"):
            spec = get_model_spec(name)
            a_avail, _ = factor_availability(spec, paper_profile)
            a_sizes = [layer.a_elements for layer in spec.layers]
            otf = factor_comm_plans(FactorCommStrategy.SP_OTF, spec, paper_profile)
            ttf = factor_comm_plans(FactorCommStrategy.LW_TTF, spec, paper_profile)
            comm = paper_profile.allreduce_streamed
            t_otf = fusion_completion_time(otf.a_plan, a_sizes, a_avail, comm)
            t_ttf = fusion_completion_time(ttf.a_plan, a_sizes, a_avail, comm)
            assert t_otf <= t_ttf + 1e-9

    def test_gradient_plan_backward_order(self, paper_profile):
        spec = get_model_spec("ResNet-50")
        plan = gradient_fusion_plan(spec, paper_profile)
        assert plan.num_tensors == len(spec.layers)
        # ResNet-50's 25.6M params at 16.7M threshold -> exactly 2 buckets.
        assert plan.num_buckets == 2
