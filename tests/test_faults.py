"""Tests for :mod:`repro.faults`: scenarios, perturbation, checkpoints,
elastic transitions, and scenario-aware Sessions.

The load-bearing invariants: straggler factors are clamped >= 1 (so
perturbed durations only grow and nominal lower bounds stay sound),
all sampling is bit-reproducible from the scenario seed, and the
analytic Young/Daly checkpoint optimum actually minimizes both the
expected-overhead formula and the seeded Monte-Carlo wall-clock.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import (
    CheckpointPolicy,
    FaultEvent,
    FaultScenario,
    PreemptionSpec,
    StragglerSpec,
    checkpoint_write_cost,
    default_policy,
    expected_overhead_rate,
    named_scenario,
    optimal_checkpoint_interval,
    perturb_durations,
    perturb_durations_many,
    price_elastic_run,
    price_events,
    replan,
    sample_makespans,
    scenario_overhead_rate,
    scenario_preset_names,
    simulate_checkpoint_run,
    simulate_faulted,
    simulate_faulted_many,
    straggler_factors,
    transition_time,
    transition_traffic,
)
from repro.faults.elastic import (
    FACTOR_STATE_SYNC,
    INVERSE_REPLACEMENT,
    PARAM_REDISTRIBUTION,
)
from repro.models import get_model_spec
from repro.perf import paper_cluster_profile
from repro.plan import Session, strategy_registry
from repro.sim import Phase, TaskGraph, simulate, simulate_many
from repro.topo import named_topology

JITTER = FaultScenario(
    name="jitter", straggler=StragglerSpec(sigma=0.5, prob=1.0), seed=7
)


def demo_graph(num_ranks: int = 4) -> TaskGraph:
    """Per-rank compute of distinct lengths feeding one allreduce."""
    g = TaskGraph(num_ranks)
    comp = [
        g.add_compute(f"fwd{r}", Phase.FORWARD, r, 1.0 + 0.1 * r)
        for r in range(num_ranks)
    ]
    g.add_collective("ar", Phase.GRAD_COMM, list(range(num_ranks)), 0.5, deps=comp)
    return g


class TestScenarioValidation:
    def test_unknown_distribution(self):
        with pytest.raises(ValueError, match="distribution"):
            StragglerSpec(distribution="cauchy")

    def test_sigma_and_prob_bounds(self):
        with pytest.raises(ValueError, match="sigma"):
            StragglerSpec(sigma=0.0)
        with pytest.raises(ValueError, match="prob"):
            StragglerSpec(prob=0.0)
        with pytest.raises(ValueError, match="prob"):
            StragglerSpec(prob=1.5)

    def test_event_bounds(self):
        with pytest.raises(ValueError, match="rank"):
            FaultEvent(rank=-1, time=1.0, downtime=1.0)
        with pytest.raises(ValueError, match="time"):
            FaultEvent(rank=0, time=-1.0, downtime=1.0)
        with pytest.raises(ValueError, match="downtime"):
            FaultEvent(rank=0, time=1.0, downtime=-1.0)

    def test_preemption_bounds(self):
        with pytest.raises(ValueError, match="mtbf"):
            PreemptionSpec(mtbf=0.0)
        with pytest.raises(ValueError, match="downtime"):
            PreemptionSpec(mtbf=1.0, downtime=-1.0)

    def test_scenario_name_and_event_types(self):
        with pytest.raises(ValueError, match="name"):
            FaultScenario(name="")
        with pytest.raises(TypeError, match="FaultEvent"):
            FaultScenario(events=({"rank": 0},))

    def test_sample_seeds_negative_count(self):
        with pytest.raises(ValueError, match="count"):
            FaultScenario().sample_seeds(-1)


class TestScenarioIdentity:
    def test_digest_is_stable_and_content_addressed(self):
        a = named_scenario("preemption")
        assert a.digest() == named_scenario("preemption").digest()
        assert len(a.digest()) == 16
        import dataclasses

        assert a.digest() != dataclasses.replace(a, seed=a.seed + 1).digest()

    def test_dict_roundtrip_preserves_digest(self):
        scenario = FaultScenario(
            name="full",
            straggler=StragglerSpec("uniform", sigma=0.3, prob=0.5),
            events=(FaultEvent(2, 100.0, 30.0),),
            preemption=PreemptionSpec(mtbf=1800.0),
            seed=11,
        )
        clone = FaultScenario.from_dict(scenario.to_dict())
        assert clone == scenario
        assert clone.digest() == scenario.digest()

    def test_sample_seeds_deterministic(self):
        scenario = FaultScenario(seed=42)
        assert scenario.sample_seeds(8) == scenario.sample_seeds(8)
        assert scenario.sample_seeds(8) != FaultScenario(seed=43).sample_seeds(8)

    def test_presets_resolve(self):
        for name in scenario_preset_names():
            assert named_scenario(name).name == name
        with pytest.raises(KeyError, match="unknown fault scenario"):
            named_scenario("meteor-strike")

    def test_describe_mentions_components(self):
        text = named_scenario("preemption").describe()
        assert "stragglers" in text and "preemption" in text and "seed=2021" in text
        assert "no faults" in FaultScenario().describe()


class TestPerturbation:
    def test_factors_clamped_at_one(self):
        for seed in range(20):
            factors = straggler_factors(JITTER, 16, seed)
            assert factors.shape == (16,)
            assert np.all(factors >= 1.0)

    def test_no_straggler_spec_is_identity(self):
        g = demo_graph()
        scenario = FaultScenario(name="calm")
        assert np.all(straggler_factors(scenario, 4) == 1.0)
        np.testing.assert_array_equal(
            perturb_durations(g, scenario), g.columns().durations
        )

    def test_comm_untouched_compute_scaled_by_own_rank(self):
        g = demo_graph(4)
        factors = straggler_factors(JITTER, 4)
        perturbed = perturb_durations(g, JITTER)
        cols = g.columns()
        for tid, task in enumerate(g.tasks):
            if cols.is_comm[tid]:
                assert perturbed[tid] == cols.durations[tid]
            else:
                (rank,) = task.ranks
                assert perturbed[tid] == cols.durations[tid] * factors[rank]

    def test_bit_reproducible_and_seed_sensitive(self):
        g = demo_graph()
        a = perturb_durations(g, JITTER, seed=1)
        b = perturb_durations(g, JITTER, seed=1)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, perturb_durations(g, JITTER, seed=2))

    def test_many_matches_single_sample_rows(self):
        g = demo_graph()
        seeds = JITTER.sample_seeds(5)
        matrix = perturb_durations_many(g, JITTER, seeds)
        assert matrix.shape == (5, len(g.tasks))
        for row, seed in zip(matrix, seeds):
            np.testing.assert_array_equal(row, perturb_durations(g, JITTER, seed))

    def test_batched_timelines_match_unbatched(self):
        g = demo_graph()
        seeds = JITTER.sample_seeds(4)
        batched = simulate_faulted_many(g, JITTER, seeds)
        for timeline, seed in zip(batched, seeds):
            single = simulate_faulted(g, JITTER, seed)
            assert timeline.makespan == single.makespan
            for a, b in zip(timeline.entries, single.entries):
                assert a == b

    def test_perturbed_makespans_dominate_nominal(self):
        g = demo_graph()
        nominal = simulate(g).makespan
        times = sample_makespans(g, JITTER, JITTER.sample_seeds(16))
        assert np.all(times >= nominal)

    def test_empty_seed_list(self):
        g = demo_graph()
        assert simulate_faulted_many(g, JITTER, []) == []
        assert perturb_durations_many(g, JITTER, []).shape == (0, len(g.tasks))

    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_fixed_seed_bit_identical_everywhere(self, seed, nsamples):
        """ISSUE 6 satellite: a fixed-seed scenario yields bit-identical
        perturbed durations and timelines across repeated runs and across
        the simulate / simulate_many code paths."""
        import dataclasses

        scenario = dataclasses.replace(JITTER, seed=seed)
        g = demo_graph()
        seeds = scenario.sample_seeds(nsamples)
        durations = perturb_durations_many(g, scenario, seeds)
        np.testing.assert_array_equal(
            durations, perturb_durations_many(g, scenario, seeds)
        )
        singles = [simulate(g, row) for row in durations]
        many = simulate_many([g] * nsamples, list(durations))
        batched = simulate_faulted_many(g, scenario, seeds)
        for single, grouped, batch in zip(singles, many, batched):
            assert single.makespan == grouped.makespan == batch.makespan
            assert single.entries == grouped.entries == batch.entries


class TestCheckpoint:
    def test_policy_validation(self):
        with pytest.raises(ValueError, match="interval"):
            CheckpointPolicy(interval=0.0, write_cost=1.0)
        with pytest.raises(ValueError, match="write_cost"):
            CheckpointPolicy(interval=1.0, write_cost=-1.0)
        assert CheckpointPolicy(1.0, 0.5).effective_restore_cost == 0.5
        assert CheckpointPolicy(1.0, 0.5, restore_cost=2.0).effective_restore_cost == 2.0

    def test_analytic_optimum_minimizes_overhead_rate(self):
        preemption = PreemptionSpec(mtbf=3600.0, downtime=60.0)
        write = 12.0
        tau_star = optimal_checkpoint_interval(write, preemption.mtbf)
        assert tau_star == math.sqrt(2.0 * write * preemption.mtbf)
        best = expected_overhead_rate(CheckpointPolicy(tau_star, write), preemption)
        for tau in np.linspace(tau_star / 10, tau_star * 10, 500):
            rate = expected_overhead_rate(CheckpointPolicy(float(tau), write), preemption)
            assert rate >= best - 1e-12

    def test_price_events_arithmetic(self):
        policy = CheckpointPolicy(interval=3.0, write_cost=0.1, restore_cost=0.2)
        events = [FaultEvent(0, 7.0, 30.0), FaultEvent(1, 2.0, 10.0)]
        report = price_events(10.0, events, policy)
        assert report.checkpoint_time == pytest.approx(3 * 0.1)
        assert report.lost_work == pytest.approx((7.0 % 3.0) + (2.0 % 3.0))
        assert report.downtime == pytest.approx(40.0)
        assert report.restore_time == pytest.approx(2 * 0.2)
        assert report.total_time == pytest.approx(
            10.0 + 0.3 + 3.0 + 40.0 + 0.4
        )
        assert report.overhead == pytest.approx(report.total_time / 10.0 - 1.0)

    def test_price_events_ignores_events_past_the_run(self):
        policy = CheckpointPolicy(interval=5.0, write_cost=0.1)
        report = price_events(10.0, [FaultEvent(0, 10.0, 99.0)], policy)
        assert report.downtime == 0.0 and report.lost_work == 0.0

    def test_write_cost_from_topology_and_profile(self):
        topo = named_topology("multi-rack")
        params = get_model_spec("ResNet-50").num_params
        link = topo.bottleneck_link()
        expected = link.latency + params * 4 / link.bandwidth
        assert checkpoint_write_cost(topo, params) == pytest.approx(expected)
        profile = paper_cluster_profile()
        assert checkpoint_write_cost(profile, params) == pytest.approx(
            profile.broadcast_streamed.time(params)
        )
        with pytest.raises(TypeError, match="cluster"):
            checkpoint_write_cost(object(), params)
        with pytest.raises(ValueError, match="num_params"):
            checkpoint_write_cost(topo, 0)

    def test_scenario_overhead_rate(self):
        topo = named_topology("flat")
        params = get_model_spec("ResNet-50").num_params
        assert scenario_overhead_rate(named_scenario("stragglers"), topo, params) == 0.0
        rate = scenario_overhead_rate(named_scenario("preemption"), topo, params)
        assert rate > 0.0

    def test_monte_carlo_prefers_the_analytic_interval(self):
        """Averaged over seeds, tau* beats both much-shorter and much-
        longer checkpoint intervals on simulated wall-clock."""
        preemption = PreemptionSpec(mtbf=3600.0, downtime=120.0)
        write = 10.0
        tau_star = optimal_checkpoint_interval(write, preemption.mtbf)
        work = 50 * preemption.mtbf

        def mean_wall(interval: float) -> float:
            policy = CheckpointPolicy(interval, write)
            return float(
                np.mean(
                    [
                        simulate_checkpoint_run(work, policy, preemption, seed)
                        for seed in range(10)
                    ]
                )
            )

        at_star = mean_wall(tau_star)
        assert at_star < mean_wall(tau_star / 4)
        assert at_star < mean_wall(tau_star * 4)
        assert at_star > work  # overhead is never free

    def test_monte_carlo_deterministic_per_seed(self):
        policy = CheckpointPolicy(300.0, 10.0)
        preemption = PreemptionSpec(mtbf=3600.0)
        a = simulate_checkpoint_run(1e5, policy, preemption, seed=3)
        assert a == simulate_checkpoint_run(1e5, policy, preemption, seed=3)

    def test_default_policy_uses_young_daly(self):
        topo = named_topology("flat")
        params = get_model_spec("ResNet-50").num_params
        preemption = PreemptionSpec(mtbf=3600.0)
        policy = default_policy(topo, params, preemption)
        assert policy.interval == pytest.approx(
            optimal_checkpoint_interval(policy.write_cost, preemption.mtbf)
        )


class TestElastic:
    def test_transition_traffic_components(self):
        spec = get_model_spec("ResNet-50")
        second = transition_traffic(spec, strategy_registry["SPD-KFAC"])
        assert set(second.elements) == {
            PARAM_REDISTRIBUTION,
            FACTOR_STATE_SYNC,
            INVERSE_REPLACEMENT,
        }
        assert second.elements[PARAM_REDISTRIBUTION] == spec.num_params
        first = transition_traffic(spec, strategy_registry["S-SGD"])
        assert set(first.elements) == {PARAM_REDISTRIBUTION}
        assert first.total_bytes() < second.total_bytes()

    def test_transition_time_positive(self):
        spec = get_model_spec("ResNet-50")
        traffic = transition_traffic(spec, strategy_registry["SPD-KFAC"])
        assert transition_time(paper_cluster_profile(), traffic) > 0.0

    def test_replan_grow_vs_shrink(self):
        grow = replan("ResNet-50", "SPD-KFAC", 32, 64)
        assert grow.old_world_size == 32 and grow.new_world_size == 64
        assert grow.new_time < grow.old_time
        assert math.isfinite(grow.break_even_iterations())
        assert "break-even" in grow.describe()
        shrink = replan("ResNet-50", "SPD-KFAC", 64, 32)
        assert shrink.break_even_iterations() == math.inf
        assert "no break-even" in shrink.describe()

    def test_price_elastic_run(self):
        report = price_elastic_run(
            "ResNet-50", "SPD-KFAC", [(32, 100), (64, 100)]
        )
        assert len(report.transitions) == 1
        assert report.segments[0][0] == 32 and report.segments[1][0] == 64
        assert report.total_time == pytest.approx(
            report.training_time + report.transition_time
        )
        assert report.training_time == pytest.approx(
            100 * report.segments[0][2] + 100 * report.segments[1][2]
        )
        assert "2 " not in report.describe().splitlines()[0]
        with pytest.raises(ValueError, match="non-empty"):
            price_elastic_run("ResNet-50", "SPD-KFAC", [])
        with pytest.raises(ValueError, match="iterations"):
            price_elastic_run("ResNet-50", "SPD-KFAC", [(32, -1)])


class TestSessionScenario:
    def test_scenario_prices_slower_than_nominal(self):
        topo = named_topology("flat")
        nominal = Session("ResNet-50", topo).simulate("SPD-KFAC")
        faulted = Session(
            "ResNet-50", topo, scenario=named_scenario("severe-stragglers")
        ).simulate("SPD-KFAC")
        assert faulted.iteration_time >= nominal.iteration_time

    def test_nominal_results_unchanged_by_scenario_runs(self):
        """Scenario pricing must never leak into the nominal cache."""
        topo = named_topology("flat")
        before = Session("ResNet-50", topo).simulate("SPD-KFAC").iteration_time
        Session(
            "ResNet-50", topo, scenario=named_scenario("stragglers")
        ).simulate("SPD-KFAC")
        after = Session("ResNet-50", topo).simulate("SPD-KFAC").iteration_time
        assert after == before

    def test_scenario_pricing_is_deterministic(self):
        scenario = named_scenario("stragglers")
        a = Session("ResNet-50", 8, scenario=scenario).simulate("SPD-KFAC")
        b = Session("ResNet-50", 8, scenario=scenario).simulate("SPD-KFAC")
        assert a.iteration_time == b.iteration_time

    def test_scenario_type_checked_and_shown_in_repr(self):
        with pytest.raises(TypeError, match="scenario"):
            Session("ResNet-50", 8, scenario="stragglers")
        session = Session("ResNet-50", 8, scenario=named_scenario("stragglers"))
        assert session.scenario is named_scenario("stragglers")
        assert "scenario='stragglers'" in repr(session)
        assert "scenario" not in repr(Session("ResNet-50", 8))
