"""Tests for the observability layer: recorder, metrics, instrumentation.

The contract under test is twofold: (1) the recorder faithfully collects
spans and metrics when enabled, and (2) enabling it never changes any
computed value — frozen paper rows are bit-identical with instrumentation
off and on.
"""

import json
import threading
from pathlib import Path

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    RATIO_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Recorder,
    recorder,
    recording,
)


class TestMetrics:
    def test_counter_accumulates(self):
        c = Counter("hits")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert c.to_dict() == {"type": "counter", "value": 5}

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            Counter("hits").inc(-1)

    def test_gauge_last_write_wins(self):
        g = Gauge("depth")
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5

    def test_histogram_buckets_observations(self):
        h = Histogram("lat", bounds=(1.0, 2.0))
        for v in (0.5, 1.0, 1.5, 5.0):
            h.observe(v)
        assert h.counts == [2, 1, 1]  # <=1.0, <=2.0, +Inf
        assert h.count == 4
        assert h.sum == pytest.approx(8.0)
        assert h.mean == pytest.approx(2.0)

    def test_histogram_labels_and_dict(self):
        h = Histogram("lat", bounds=(0.1, 1.0))
        assert h.bucket_labels() == ["<=0.1", "<=1", "+Inf"]
        h.observe(0.05)
        assert h.to_dict()["buckets"] == {"<=0.1": 1, "<=1": 0, "+Inf": 0}

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError, match="at least one"):
            Histogram("h", bounds=())
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", bounds=(2.0, 1.0))
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", bounds=(1.0, 1.0))

    def test_default_bucket_sets_are_valid(self):
        # The shared bucket layouts must themselves satisfy the invariant.
        Histogram("lat", bounds=DEFAULT_LATENCY_BUCKETS)
        Histogram("ratio", bounds=RATIO_BUCKETS)


class TestRecorder:
    def test_disabled_span_records_nothing(self):
        rec = Recorder()
        with rec.span("work", tag=1) as sp:
            sp.set(more=2)
        rec.count("c")
        rec.gauge("g", 1.0)
        rec.observe("h", 0.5)
        assert rec.spans == []
        assert rec.counters == {}
        assert rec.gauges == {}
        assert rec.histograms == {}

    def test_disabled_span_is_shared_noop(self):
        rec = Recorder()
        assert rec.span("a") is rec.span("b")

    def test_enabled_span_captures_attrs_and_timing(self):
        rec = Recorder()
        rec.enable()
        with rec.span("work", items=3) as sp:
            sp.set(status="done")
        (span,) = rec.spans
        assert span.name == "work"
        assert span.get("items") == 3
        assert span.get("status") == "done"
        assert span.get("missing", "x") == "x"
        assert span.duration >= 0.0
        assert span.thread == threading.get_ident()

    def test_metrics_round_trip(self):
        rec = Recorder()
        rec.enable()
        rec.count("hits", 2)
        rec.count("hits")
        rec.gauge("depth", 7)
        rec.observe("lat", 0.2, buckets=(0.1, 1.0))
        assert rec.counters["hits"].value == 3
        assert rec.gauges["depth"].value == 7
        assert rec.histograms["lat"].count == 1

    def test_observe_rejects_mismatched_buckets(self):
        rec = Recorder()
        rec.enable()
        rec.observe("lat", 0.2, buckets=(0.1, 1.0))
        with pytest.raises(ValueError, match="already exists"):
            rec.observe("lat", 0.2, buckets=(0.5, 1.0))

    def test_reset_drops_everything_but_keeps_state(self):
        rec = Recorder()
        rec.enable()
        with rec.span("work"):
            rec.count("c")
        rec.reset()
        assert rec.spans == []
        assert rec.counters == {}
        assert rec.enabled

    def test_span_stats_aggregates_by_name(self):
        rec = Recorder()
        rec.enable()
        for _ in range(3):
            with rec.span("step"):
                pass
        stats = rec.span_stats()["step"]
        assert stats.count == 3
        assert stats.total >= stats.max >= 0.0
        payload = stats.to_dict()
        assert payload["count"] == 3
        assert payload["mean_s"] == pytest.approx(payload["total_s"] / 3)

    def test_summary_is_json_ready(self):
        rec = Recorder()
        rec.enable()
        with rec.span("step", k=1):
            rec.count("c")
            rec.gauge("g", 2.0)
            rec.observe("h", 0.1)
        summary = rec.summary()
        assert set(summary) == {"spans", "counters", "gauges", "histograms"}
        assert summary["spans"]["step"]["count"] == 1
        json.dumps(summary)  # must serialize as-is

    def test_chrome_trace_export(self):
        rec = Recorder()
        rec.enable()
        with rec.span("outer"):
            with rec.span("inner"):
                pass
        events = rec.to_chrome_trace()
        assert events[0]["ph"] == "M"
        slices = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in slices} == {"outer", "inner"}
        assert min(e["ts"] for e in slices) == 0.0

    def test_chrome_trace_empty(self):
        assert Recorder().to_chrome_trace() == []

    def test_save_summary_accepts_pathlike(self, tmp_path):
        rec = Recorder()
        rec.enable()
        with rec.span("step"):
            pass
        path = tmp_path / "summary.json"
        rec.save_summary(path)  # a Path, not a str
        assert json.loads(path.read_text())["spans"]["step"]["count"] == 1


class TestRecordingContext:
    def test_default_recorder_is_process_wide(self):
        assert recorder() is recorder()

    def test_recording_enables_and_restores(self):
        rec = recorder()
        assert not rec.enabled
        with recording() as got:
            assert got is rec
            assert rec.enabled
        assert not rec.enabled

    def test_recording_fresh_resets_previous_telemetry(self):
        with recording() as rec:
            with rec.span("old"):
                pass
        with recording() as rec:
            assert rec.spans == []

    def test_recording_keep_previous_telemetry(self):
        with recording() as rec:
            with rec.span("old"):
                pass
        with recording(fresh=False) as rec:
            assert [s.name for s in rec.spans] == ["old"]

    def test_recording_restores_enabled_state(self):
        rec = recorder()
        rec.enable()
        try:
            with recording():
                pass
            assert rec.enabled
        finally:
            rec.disable()
            rec.reset()


class TestBuiltInInstrumentation:
    """The wired spans in engine, session, tuner, and experiments."""

    def test_simulate_records_span(self):
        from repro.sim import Phase, TaskGraph, simulate

        g = TaskGraph(2)
        a = g.add_compute("a", Phase.FORWARD, 0, 1.0)
        g.add_collective("ar", Phase.GRAD_COMM, [0, 1], 2.0, deps=[a])
        with recording() as rec:
            simulate(g)
        (span,) = [s for s in rec.spans if s.name == "sim.simulate"]
        assert span.get("tasks") == 2
        assert span.get("ranks") == 2

    def test_simulate_batch_records_span(self):
        from repro.sim import Phase, TaskGraph, simulate_batch

        g = TaskGraph(1)
        g.add_compute("a", Phase.FORWARD, 0, 1.0)
        with recording() as rec:
            simulate_batch(g, [[1.0], [2.0], [3.0]])
        (span,) = [s for s in rec.spans if s.name == "sim.simulate_batch"]
        assert span.get("samples") == 3

    def test_session_spans_and_cache_counters(self):
        from repro.plan import Session
        from repro.plan.session import clear_caches
        from tests.conftest import build_tiny_spec

        clear_caches()
        session = Session(build_tiny_spec(), 4)
        with recording() as rec:
            session.plan("SPD-KFAC")
            session.simulate("SPD-KFAC")  # cache hit
        plan_spans = [s for s in rec.spans if s.name == "plan.session.plan"]
        assert len(plan_spans) == 2
        assert plan_spans[0].get("strategy") == "SPD-KFAC"
        counters = rec.counters
        assert counters["plan.cache.misses"].value == 1
        assert counters["plan.cache.hits"].value == 1

    def test_tuner_candidate_spans_carry_status(self):
        from repro.autotune import autotune
        from repro.perf import scaled_cluster_profile
        from tests.conftest import build_tiny_spec

        with recording() as rec:
            report = autotune(build_tiny_spec(), scaled_cluster_profile(4))
        stage_names = {s.name for s in rec.spans}
        assert {"autotune.presets", "autotune.prepare", "autotune.evaluate"} <= stage_names
        candidates = [s for s in rec.spans if s.name == "autotune.candidate"]
        assert len(candidates) == report.stats["candidates"]
        statuses = {}
        for span in candidates:
            status = span.get("status")
            statuses[status] = statuses.get(status, 0) + 1
        assert statuses.get("simulated", 0) == report.stats["simulated"]
        assert statuses.get("reused", 0) == report.stats["reused"]
        assert statuses.get("pruned", 0) == report.stats["pruned"]

    def test_rows_bit_identical_with_instrumentation_on(self):
        """Acceptance: enabling the recorder never changes computed rows."""
        from repro.experiments import get_experiment
        from repro.plan.session import clear_caches

        clear_caches()
        baseline = get_experiment("fig11").run().rows
        clear_caches()
        with recording():
            instrumented = get_experiment("fig11").run().rows
        assert instrumented == baseline

    def test_disabled_instrumentation_unchanged_results(self):
        from repro.plan import Session
        from repro.plan.session import clear_caches
        from tests.conftest import build_tiny_spec

        clear_caches()
        bare = Session(build_tiny_spec(), 4).simulate("SPD-KFAC").iteration_time
        clear_caches()
        with recording():
            observed = Session(build_tiny_spec(), 4).simulate("SPD-KFAC").iteration_time
        assert observed == bare


class TestAutotuneTelemetry:
    @pytest.fixture(scope="class")
    def report(self):
        from repro.autotune import autotune
        from repro.perf import scaled_cluster_profile
        from tests.conftest import build_tiny_spec

        return autotune(build_tiny_spec(), scaled_cluster_profile(4))

    def test_telemetry_shape(self, report):
        wall = report.telemetry["wall_clock_s"]
        assert set(wall) == {"presets", "prepare", "evaluate", "total"}
        assert wall["total"] >= wall["evaluate"] >= 0.0
        assert 0.0 <= report.telemetry["prune_rate"] <= 1.0
        assert report.telemetry["cache"]["misses"] >= 1

    def test_bound_tightness_counts_simulated(self, report):
        hist = report.telemetry["bound_tightness"]
        assert hist["count"] == report.stats["simulated"]
        # Bounds are lower bounds: every ratio is <= 1 (within float fuzz),
        # so nothing lands beyond the 1.0 boundary.
        assert hist["buckets"]["+Inf"] == 0

    def test_telemetry_text_renders(self, report):
        text = report.telemetry_text()
        assert "prune rate" in text
        assert "bound tightness" in text
        assert "plan cache" in text

    def test_telemetry_is_opt_in_for_serialization(self, report):
        # Default view stays deterministic: telemetry (wall-clock, cache
        # deltas) only appears when explicitly requested.
        assert "telemetry" not in json.loads(report.to_json())
        payload = report.to_dict(telemetry=True)
        assert payload["telemetry"]["bound_tightness"]["count"] == report.stats[
            "simulated"
        ]

    def test_empty_telemetry_text(self):
        from repro.autotune.tuner import AutotuneReport

        empty = AutotuneReport(
            model="m", cluster="c", world_size=1, outcomes=[], preset_times={}
        )
        assert "no telemetry" in empty.telemetry_text()


class TestRunReports:
    def test_run_with_report_shape(self, tmp_path):
        from repro.experiments.base import run_with_report, save_run_report

        result, report = run_with_report("tab2")
        assert result.rows
        assert report["experiment_id"] == "tab2"
        assert report["rows"] == len(result.rows)
        assert report["wall_clock_s"] > 0.0
        assert 0.0 <= report["cache"]["hit_rate"] <= 1.0
        assert set(report["obs"]) == {"spans", "counters", "gauges", "histograms"}
        path = tmp_path / "tab2.report.json"
        save_run_report(path, report)  # a Path, not a str
        assert json.loads(path.read_text())["experiment_id"] == "tab2"

    def test_run_with_report_rows_match_bare_run(self):
        from repro.experiments import get_experiment
        from repro.experiments.base import run_with_report

        bare = get_experiment("fig3").run().rows
        result, _ = run_with_report("fig3")
        assert result.rows == bare

    def test_run_report_cache_hits_on_shared_rows(self):
        from repro.experiments.base import run_with_report
        from repro.plan.session import clear_caches

        clear_caches()
        run_with_report("tab3")
        _, second = run_with_report("tab3")
        assert second["cache"]["hit_rate"] == 1.0
