"""Tests for the Strategy / Plan / Session API surface."""

import pytest

from repro.core.distributed import InverseStrategy
from repro.core.pipeline import FactorCommStrategy
from repro.plan import (
    Plan,
    Session,
    StrategyRegistry,
    TrainingStrategy,
    cache_info,
    clear_caches,
    strategy_registry,
)
from repro.sim import COMM
from tests.conftest import build_tiny_spec


@pytest.fixture(scope="module")
def spec():
    return build_tiny_spec(num_layers=5)


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestTrainingStrategy:
    def test_paper_presets_registered(self):
        for name in ("SGD", "S-SGD", "KFAC", "D-KFAC", "MPD-KFAC", "SPD-KFAC"):
            assert name in strategy_registry
            assert strategy_registry[name].name == name

    def test_lookup_is_spelling_insensitive(self):
        spd = strategy_registry["SPD-KFAC"]
        assert strategy_registry["spd_kfac"] is spd
        assert strategy_registry["spd kfac"] is spd
        assert strategy_registry["spdkfac"] is spd
        assert strategy_registry["ssgd"] is strategy_registry["S-SGD"]

    def test_unknown_strategy_name_lists_options(self):
        with pytest.raises(KeyError, match="unknown strategy 'magic'.*SPD-KFAC"):
            strategy_registry["magic"]

    def test_duplicate_registration_rejected(self):
        registry = StrategyRegistry()
        registry.register(TrainingStrategy(name="x"))
        with pytest.raises(ValueError, match="already registered"):
            registry.register(TrainingStrategy(name="X"))

    def test_failed_registration_leaves_registry_untouched(self):
        registry = StrategyRegistry()
        registry.register(TrainingStrategy(name="base"))
        with pytest.raises(ValueError, match="already registered"):
            registry.register(TrainingStrategy(name="fresh"), "base")  # alias collides
        assert "fresh" not in registry
        assert registry.names() == ("base",)
        # The name is free again, so the corrected registration succeeds.
        registry.register(TrainingStrategy(name="fresh"), "fresh-alias")
        assert registry["fresh-alias"].name == "fresh"

    @pytest.mark.parametrize(
        "overrides, match",
        [
            ({"gradient_reduction": "psgd"}, "gradient_reduction"),
            ({"factor_fusion": "magic"}, "factor_fusion"),
            ({"placement": "everywhere"}, "placement"),
            ({"collective": "warp"}, "collective"),
            ({"distributed": True, "gradient_reduction": "none"}, "must reduce"),
            (
                {"distributed": False, "gradient_reduction": "wfbp"},
                "no gradients to reduce",
            ),
            (
                {"distributed": False, "gradient_reduction": "none", "placement": "lbp"},
                "single-device K-FAC",
            ),
            ({"combine_factor_passes": True, "factor_pipelining": True}, "combine_factor_passes"),
            (
                {"second_order": False, "include_solve": False},
                "first-order",
            ),
        ],
    )
    def test_invalid_axis_combinations_rejected(self, overrides, match):
        with pytest.raises(ValueError, match=match):
            TrainingStrategy(**overrides)

    def test_but_preserves_name_and_revalidates(self):
        spd = strategy_registry["SPD-KFAC"]
        eager = spd.but(factor_pipelining=False)
        assert eager.name == "SPD-KFAC"
        assert eager.factor_fusion == "optimal"
        assert not eager.factor_pipelining
        with pytest.raises(ValueError):
            spd.but(placement="nowhere")

    def test_inverse_strategy_mapping(self):
        assert strategy_registry["D-KFAC"].inverse_strategy is InverseStrategy.LOCAL
        assert strategy_registry["MPD-KFAC"].inverse_strategy is InverseStrategy.SEQ_DIST
        assert strategy_registry["SPD-KFAC"].inverse_strategy is InverseStrategy.LBP

    def test_factor_comm_strategy_canonical_and_custom(self):
        assert (
            strategy_registry["SPD-KFAC"].factor_comm_strategy
            is FactorCommStrategy.SP_OTF
        )
        assert strategy_registry["D-KFAC"].factor_comm_strategy is FactorCommStrategy.BULK
        assert strategy_registry["SGD"].factor_comm_strategy is None
        eager = strategy_registry["SPD-KFAC"].but(factor_pipelining=False)
        assert eager.factor_comm_strategy is None  # not a named Fig. 10 mode

    def test_round_trip_dict(self):
        spd = strategy_registry["SPD-KFAC"]
        assert TrainingStrategy.from_dict(spd.to_dict()) == spd
        with pytest.raises(ValueError, match="unknown TrainingStrategy fields"):
            TrainingStrategy.from_dict({"name": "x", "warp_speed": 9})

    def test_describe_mentions_every_load_bearing_axis(self):
        text = strategy_registry["SPD-KFAC"].describe()
        for token in ("SPD-KFAC", "optimal", "pipelined", "lbp", "wfbp"):
            assert token in text


class TestSession:
    def test_cluster_argument_forms(self, spec, small_profile):
        assert Session(spec, small_profile).profile_for("SGD") is small_profile
        assert Session("ResNet-50").profile_for("SGD").num_workers == 64
        assert Session(spec, 4).profile_for("SGD").num_workers == 4

    def test_rejects_unknown_cluster_type(self, spec):
        with pytest.raises(TypeError, match="cluster must be"):
            Session(spec, object())

    def test_rejects_unknown_model(self):
        with pytest.raises(KeyError, match="unknown model"):
            Session("LeNet-9000")

    def test_plan_is_cached_and_shared_across_sessions(self, spec, small_profile):
        first = Session(spec, small_profile).plan("SPD-KFAC")
        misses = cache_info()["misses"]
        second = Session(spec, small_profile).plan("SPD-KFAC")
        assert second is first
        assert cache_info()["misses"] == misses
        assert cache_info()["hits"] >= 1

    def test_cache_key_includes_profile(self, spec, small_profile, paper_profile):
        a = Session(spec, small_profile).plan("SPD-KFAC")
        b = Session(spec, paper_profile).plan("SPD-KFAC")
        assert a is not b
        assert a.num_ranks == 4 and b.num_ranks == 64

    def test_simulate_accepts_name_strategy_and_plan(self, spec, small_profile):
        session = Session(spec, small_profile)
        by_name = session.simulate("SPD-KFAC")
        by_strategy = session.simulate(strategy_registry["SPD-KFAC"])
        by_plan = session.simulate(session.plan("SPD-KFAC"))
        assert by_name is by_strategy is by_plan

    def test_simulate_survives_cache_eviction(self, spec, small_profile, monkeypatch):
        """Plan and result are cached atomically: churning past the LRU
        capacity between plan() and simulate() must re-simulate, never
        hand back None."""
        import repro.plan.session as session_module

        monkeypatch.setattr(session_module, "_CACHE_MAXSIZE", 2)
        session = Session(spec, small_profile)
        expected = session.simulate("SPD-KFAC").iteration_time
        session.plan("D-KFAC")
        session.plan("MPD-KFAC")  # evicts the SPD-KFAC entry
        result = session.simulate("SPD-KFAC")
        assert result is not None
        assert result.iteration_time == expected

    def test_simulate_of_modified_plan_does_not_hit_stale_cache(self, spec, small_profile):
        """A plan whose resolved parts were edited (same strategy +
        profile) must re-simulate its own parts, not return the cached
        result of the original plan."""
        import dataclasses

        from repro.core.fusion import plan_no_fusion

        session = Session(spec, small_profile)
        original = session.plan("D-KFAC")
        baseline = session.simulate(original)
        edited = dataclasses.replace(original, grad_plan=plan_no_fusion(len(spec.layers)))
        assert edited != original
        result = session.simulate(edited)
        assert result is not baseline
        from repro.sim import simulate as sim

        assert result.iteration_time == sim(edited.build_graph(spec)).makespan
        # And the canonical plan still maps to its own cached result.
        assert session.simulate(original) is baseline

    def test_simulate_rejects_foreign_plan(self, spec, small_profile):
        plan = Session(spec, small_profile).plan("SPD-KFAC")
        other = Session("ResNet-50", small_profile)
        with pytest.raises(ValueError, match="this session holds"):
            other.simulate(plan)

    def test_single_device_strategies_have_no_comm(self, spec, small_profile):
        session = Session(spec, small_profile)
        for name in ("SGD", "KFAC"):
            plan = session.plan(name)
            assert plan.num_ranks == 1
            graph = plan.build_graph(spec)
            assert all(t.kind != COMM for t in graph.tasks)

    def test_compare_labels_by_strategy_name(self, spec, small_profile):
        results = Session(spec, small_profile).compare("D-KFAC", "SPD-KFAC")
        assert set(results) == {"D-KFAC", "SPD-KFAC"}
        assert results["SPD-KFAC"].iteration_time <= results["D-KFAC"].iteration_time + 1e-9

    def test_compare_rejects_colliding_names(self, spec, small_profile):
        spd = strategy_registry["SPD-KFAC"]
        with pytest.raises(ValueError, match="duplicate strategy name"):
            Session(spec, small_profile).compare(spd, spd.but(factor_pipelining=False))

    def test_simulate_rejects_plan_for_different_cluster(self, spec, small_profile, paper_profile):
        plan = Session(spec, small_profile).plan("SPD-KFAC")
        with pytest.raises(ValueError, match="cost profile differs"):
            Session(spec, paper_profile).simulate(plan)
        # But an equal-valued profile (e.g. a deserialized plan) is fine.
        from repro.plan import Plan

        reloaded = Plan.from_json(plan.to_json())
        result = Session(spec, small_profile).simulate(reloaded)
        assert result.iteration_time == plan.predicted_makespan


class TestNovelStrategies:
    def test_spd_fusion_with_eager_launch_plans_in_one_call(self, spec, small_profile):
        """The acceptance-criterion combination the old API could not
        express: the optimal Eq. 15 fusion partition with eager
        (non-pipelined) factor communication."""
        session = Session(spec, small_profile)
        eager = strategy_registry["SPD-KFAC"].but(factor_pipelining=False)
        plan = session.plan(eager)
        assert plan.factor_plan.launch_after_pass
        assert plan.factor_plan.a_plan.num_buckets >= 2  # still the SPD partition
        result = session.simulate(plan)
        assert result.iteration_time > 0
        # Eager launch cannot beat the pipelined schedule it ablates.
        pipelined = session.simulate("SPD-KFAC")
        assert result.iteration_time >= pipelined.iteration_time - 1e-12

    def test_bulk_gradient_reduction_axis(self, spec, small_profile):
        session = Session(spec, small_profile)
        bulk = strategy_registry["S-SGD"].but(gradient_reduction="bulk")
        plan = session.plan(bulk)
        assert plan.grad_plan.num_buckets == 1
        assert session.simulate(plan).iteration_time > 0

    def test_collective_axis_on_topology_session(self, spec):
        from repro.topo import multi_rack

        session = Session(spec, multi_rack(2, 2, 2, spine="ethernet"))
        hier = strategy_registry["SPD-KFAC"].but(collective="hierarchical")
        ring = strategy_registry["SPD-KFAC"].but(collective="ring")
        assert session.profile_for(hier) is not session.profile_for(ring)
        assert session.simulate(hier).iteration_time > 0
        assert session.plan(hier).profile == session.profile_for(hier)

    def test_acceptance_combo_spd_fusion_hierarchical_eager(self, spec):
        """SPD fusion + hierarchical all-reduce + eager (non-pipelined)
        factor comm — the full acceptance-criterion combination — plans
        and simulates through the registry in one call."""
        from repro.topo import multi_rack

        strategy = strategy_registry["SPD-KFAC"].but(
            factor_pipelining=False, collective="hierarchical"
        )
        session = Session(spec, multi_rack(2, 2, 2, spine="ethernet"))
        plan = session.plan(strategy)
        assert plan.factor_plan.launch_after_pass  # eager
        # Still the Eq. 15 optimal partition (on this profile the DP may
        # fuse a whole pass, so assert the plan kind, not a bucket count).
        assert plan.factor_plan.strategy.value == "sp_otf"
        assert not plan.factor_plan.combine_passes
        assert session.simulate(plan).iteration_time == plan.predicted_makespan


class TestPlanArtifact:
    def test_plan_records_placement_and_counts(self, spec, small_profile):
        plan = Session(spec, small_profile).plan("MPD-KFAC")
        counts = dict(plan.task_counts)
        assert counts["tasks"] == sum(
            v for k, v in counts.items() if k not in ("tasks", "collectives")
        )
        assert counts["collectives"] > 0
        assert plan.placement.num_cts() == len(plan.placement.dims)
        assert plan.predicted_makespan == pytest.approx(
            Session(spec, small_profile).simulate("MPD-KFAC").iteration_time
        )

    def test_summary_is_human_readable(self, spec, small_profile):
        text = Session(spec, small_profile).plan("SPD-KFAC").summary()
        for token in ("SPD-KFAC", "bucket", "predicted", "task graph"):
            assert token in text

    def test_breakdown_dict_matches_simulation(self, spec, small_profile):
        session = Session(spec, small_profile)
        plan = session.plan("D-KFAC")
        assert plan.breakdown_dict() == session.simulate(plan).categories()

    def test_from_dict_rejects_future_versions(self, spec, small_profile):
        payload = Session(spec, small_profile).plan("SGD").to_dict()
        payload["version"] = 99
        with pytest.raises(ValueError, match="unsupported plan format version"):
            Plan.from_dict(payload)
