"""Tests for Dropout."""

import numpy as np
import pytest

from repro.nn import Linear, Sequential
from repro.nn.dropout import Dropout


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        layer = Dropout(0.5, rng=0)
        layer.eval()
        x = rng.normal(size=(4, 8))
        np.testing.assert_array_equal(layer(x), x)
        np.testing.assert_array_equal(layer.backward(x), x)

    def test_train_mode_zeroes_and_rescales(self):
        layer = Dropout(0.5, rng=0)
        x = np.ones((200, 50))
        out = layer(x)
        kept = out != 0.0
        assert 0.3 < kept.mean() < 0.7  # ~half kept
        np.testing.assert_allclose(out[kept], 2.0)  # inverted scaling

    def test_expectation_preserved(self):
        layer = Dropout(0.3, rng=1)
        x = np.ones((400, 100))
        assert layer(x).mean() == pytest.approx(1.0, rel=0.05)

    def test_backward_uses_same_mask(self, rng):
        layer = Dropout(0.5, rng=2)
        x = rng.normal(size=(8, 8))
        out = layer(x)
        grad = layer.backward(np.ones_like(out))
        np.testing.assert_array_equal(grad == 0.0, out == 0.0)

    def test_p_zero_is_identity_in_train(self, rng):
        layer = Dropout(0.0, rng=0)
        x = rng.normal(size=(3, 3))
        np.testing.assert_array_equal(layer(x), x)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)

    def test_reproducible_with_seed(self, rng):
        x = rng.normal(size=(5, 5))
        out1 = Dropout(0.5, rng=7)(x)
        out2 = Dropout(0.5, rng=7)(x)
        np.testing.assert_array_equal(out1, out2)

    def test_inside_sequential_backward(self, rng):
        net = Sequential(Linear(4, 4, rng=0), Dropout(0.5, rng=1), Linear(4, 2, rng=2))
        out = net(rng.normal(size=(3, 4)))
        grad_in = net.run_backward(np.ones_like(out))
        assert grad_in.shape == (3, 4)
