"""Batched factor inversion must match the per-matrix path.

The optimizers group same-dimension Kronecker factors into stacked
LAPACK calls; these tests pin the batched kernels to the scalar
reference (tight tolerance), check the eigendecomposition cache
re-damps without re-decomposing, and verify that full distributed
training under every placement strategy is unchanged by batching —
compared against a per-matrix reference implementation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm import run_spmd
from repro.core import kfac as kfac_module
from repro.core.distributed import DistKFACOptimizer, InverseStrategy
from repro.core.kfac import (
    KFACPreconditioner,
    batched_inverse_groups,
    damped_inverse,
    damped_inverse_batched,
    eig_damped_inverse,
    eig_damped_inverse_batched,
)
from repro.models import make_mlp
from repro.nn import CrossEntropyLoss

DIMS = (3, 7, 16, 33)


def spd_stack(k: int, d: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    roots = rng.normal(size=(k, d, d))
    return roots @ roots.transpose(0, 2, 1) / d + 0.5 * np.eye(d)


class TestBatchedKernels:
    @pytest.mark.parametrize("d", DIMS)
    def test_cholesky_batched_matches_scalar(self, d):
        stack = spd_stack(5, d, seed=d)
        batched = damped_inverse_batched(stack, damping=1e-2)
        for j in range(len(stack)):
            np.testing.assert_allclose(
                batched[j], damped_inverse(stack[j], 1e-2), rtol=1e-10, atol=1e-12
            )

    @pytest.mark.parametrize("d", DIMS)
    def test_eig_batched_matches_scalar(self, d):
        stack = spd_stack(4, d, seed=100 + d)
        batched = eig_damped_inverse_batched(stack, damping=3e-2)
        for j in range(len(stack)):
            np.testing.assert_allclose(
                batched[j], eig_damped_inverse(stack[j], 3e-2), rtol=1e-10, atol=1e-12
            )

    def test_groups_mixed_dimensions_preserve_order(self):
        factors = [spd_stack(1, d, seed=d)[0] for d in (4, 9, 4, 5, 9, 4)]
        inverses = batched_inverse_groups(factors, damping=1e-2)
        assert [inv.shape[0] for inv in inverses] == [4, 9, 4, 5, 9, 4]
        for factor, inverse in zip(factors, inverses):
            np.testing.assert_allclose(
                inverse, damped_inverse(factor, 1e-2), rtol=1e-10, atol=1e-12
            )

    def test_batched_raises_on_non_pd_like_scalar(self):
        stack = np.stack([-np.eye(4), np.eye(4)])
        with pytest.raises(np.linalg.LinAlgError):
            damped_inverse_batched(stack, damping=1e-3)
        with pytest.raises(np.linalg.LinAlgError):
            damped_inverse(-np.eye(4), 1e-3)

    def test_bad_method_rejected(self):
        with pytest.raises(ValueError, match="method"):
            batched_inverse_groups([np.eye(3)], 1e-2, method="qr")


class TestEigCache:
    def _prec(self):
        net = make_mlp(in_features=5, hidden=6, num_classes=3, rng=0)
        prec = KFACPreconditioner(net, damping=1e-2, inverse_method="eig")
        rng = np.random.default_rng(7)
        x = rng.normal(size=(8, 5))
        y = rng.integers(0, 3, 8)
        loss = CrossEntropyLoss()
        loss(net(x), y)
        net.run_backward(loss.backward())
        prec.update_factors()
        return prec

    def test_redamp_skips_eigh(self, monkeypatch):
        prec = self._prec()
        prec.refresh_inverses()
        first = [state.inv_a.copy() for state in prec.ordered_states()]

        def boom(*args, **kwargs):  # factors unchanged => no new decompositions
            raise AssertionError("eigh re-run despite fresh cache")

        monkeypatch.setattr(np.linalg, "eigh", boom)
        prec.damping = 5e-2  # re-damp under a different damping
        prec.refresh_inverses()
        second = [state.inv_a for state in prec.ordered_states()]
        for a, b in zip(first, second):
            assert not np.allclose(a, b)  # damping change must show up

    def test_cache_invalidated_by_factor_update(self):
        prec = self._prec()
        prec.refresh_inverses()
        state = prec.ordered_states()[0]
        assert state.has_fresh_eig("factor_a")
        state.set_factor("factor_a", state.factor_a + np.eye(state.factor_a.shape[0]))
        assert not state.has_fresh_eig("factor_a")

    def test_cache_invalidated_by_direct_assignment(self):
        """Plain ``state.factor_a = ...`` (the pre-batching mutation API)
        must also invalidate the decomposition cache."""
        prec = self._prec()
        prec.refresh_inverses()
        state = prec.ordered_states()[0]
        assert state.has_fresh_eig("factor_g")
        state.factor_g = state.factor_g + np.eye(state.factor_g.shape[0])
        assert not state.has_fresh_eig("factor_g")
        state.compute_inverses(1e-2, method="eig")
        np.testing.assert_allclose(
            state.inv_g, eig_damped_inverse(state.factor_g, 1e-2), rtol=1e-10, atol=1e-12
        )

    def test_cached_redamp_matches_fresh_decomposition(self):
        prec = self._prec()
        prec.refresh_inverses()
        prec.damping = 4e-2
        prec.refresh_inverses()  # from cache
        for state in prec.ordered_states():
            np.testing.assert_allclose(
                state.inv_a, eig_damped_inverse(state.factor_a, 4e-2), rtol=1e-10, atol=1e-12
            )
            np.testing.assert_allclose(
                state.inv_g, eig_damped_inverse(state.factor_g, 4e-2), rtol=1e-10, atol=1e-12
            )


def run_variant(strategy, steps=2, world=3, inverse_method="cholesky"):
    def batch_for(seed, n=8, features=6, classes=3):
        r = np.random.default_rng(seed)
        return r.normal(size=(n, features)), r.integers(0, classes, n)

    def rank_fn(comm):
        net = make_mlp(in_features=6, hidden=10, num_classes=3, rng=42)
        opt = DistKFACOptimizer(
            net,
            comm,
            lr=0.1,
            damping=1e-2,
            stat_decay=0.9,
            inverse_strategy=strategy,
            inverse_method=inverse_method,
        )
        loss_fn = CrossEntropyLoss()
        for it in range(steps):
            x, y = batch_for(500 + world * it + comm.rank)
            opt.zero_grad()
            loss_fn(net(x), y)
            net.run_backward(loss_fn.backward())
            opt.step()
        return np.concatenate([p.data.ravel() for p in net.parameters()])

    return run_spmd(world, rank_fn)


class TestDistributedStrategiesMatchPerMatrixReference:
    @pytest.mark.parametrize(
        "strategy",
        [
            InverseStrategy.LOCAL,
            InverseStrategy.SEQ_DIST,
            InverseStrategy.BALANCED,
            InverseStrategy.LBP,
        ],
    )
    @pytest.mark.parametrize("inverse_method", ["cholesky", "eig"])
    def test_batched_equals_per_matrix(self, strategy, inverse_method, monkeypatch):
        """Distributed training with batched inversion must match the same
        run with a per-matrix loop substituted for the batched kernels."""
        batched_params = run_variant(strategy, inverse_method=inverse_method)

        def per_matrix_groups(factors, damping, method="cholesky"):
            scalar = damped_inverse if method == "cholesky" else eig_damped_inverse
            return [scalar(factor, damping) for factor in factors]

        orig_eigh = np.linalg.eigh

        def per_matrix_eigh(a):  # unstack the eig path's batched decomposition
            a = np.asarray(a)
            if a.ndim == 3:
                results = [orig_eigh(matrix) for matrix in a]
                return (
                    np.stack([w for w, _ in results]),
                    np.stack([q for _, q in results]),
                )
            return orig_eigh(a)

        import repro.core.distributed as dist_module

        monkeypatch.setattr(kfac_module, "batched_inverse_groups", per_matrix_groups)
        monkeypatch.setattr(dist_module, "batched_inverse_groups", per_matrix_groups)
        monkeypatch.setattr(np.linalg, "eigh", per_matrix_eigh)
        reference_params = run_variant(strategy, inverse_method=inverse_method)

        for batched, reference in zip(batched_params, reference_params):
            np.testing.assert_allclose(batched, reference, rtol=1e-9, atol=1e-11)
