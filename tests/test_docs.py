"""The documentation site: strict build + paper-map coverage.

``docs/build.py`` is dependency-free, so the full docs pipeline (API
reference generation, link/anchor checking, paper-map validation) runs
inside the tier-1 suite — the docs cannot rot without failing CI.
"""

import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS_DIR = REPO_ROOT / "docs"


def test_docs_build_is_warning_clean(tmp_path):
    """`python docs/build.py --check` exits 0 with zero warnings."""
    result = subprocess.run(
        [sys.executable, str(DOCS_DIR / "build.py"), "--check"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert result.returncode == 0, (
        f"docs build failed:\n{result.stdout}\n{result.stderr}"
    )
    assert "0 warnings" in result.stdout


def test_narrative_pages_exist():
    for page in (
        "index.md",
        "architecture.md",
        "tutorial.md",
        "autotuning.md",
        "topologies.md",
        "precision.md",
        "paper_map.md",
    ):
        assert (DOCS_DIR / page).exists(), f"missing docs page {page}"


def test_paper_map_covers_required_artifacts():
    """The map names every reproduced equation/figure/table the issue lists."""
    text = (DOCS_DIR / "paper_map.md").read_text()
    required = (
        ["Eq. 14", "Eq. 27", "Tab. 2", "Tab. 3"]
        + [f"Fig. {n}" for n in range(2, 14)]
    )
    for artifact in required:
        assert re.search(rf"\|\s*{re.escape(artifact)}\s*\|", text), (
            f"paper_map.md missing a row for {artifact}"
        )


def test_paper_map_rows_reference_frozen_tests():
    """Every reproduced-artifact row points at an existing test file."""
    text = (DOCS_DIR / "paper_map.md").read_text()
    refs = set(re.findall(r"`(tests/[\w/.]+)", text))
    assert refs, "paper_map.md references no test files"
    for ref in refs:
        assert (REPO_ROOT / ref).exists(), f"paper_map.md references missing {ref}"
