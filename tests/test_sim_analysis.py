"""Tests for critical-path analysis."""

import pytest

from repro.plan import build_strategy_graph
from repro.perf import scaled_cluster_profile
from repro.sim import Phase, TaskGraph, critical_path, critical_path_phases, simulate
from tests.conftest import build_tiny_spec


class TestCriticalPathBasics:
    def test_chain_is_fully_critical(self):
        g = TaskGraph(1)
        g.add_compute("a", Phase.FORWARD, 0, 1.0)
        g.add_compute("b", Phase.FORWARD, 0, 2.0)
        g.add_compute("c", Phase.BACKWARD, 0, 3.0)
        tl = simulate(g)
        path = critical_path(g, tl)
        assert [e.task.name for e in path] == ["a", "b", "c"]

    def test_hidden_comm_not_on_path(self):
        g = TaskGraph(1)
        b1 = g.add_compute("B1", Phase.BACKWARD, 0, 1.0)
        g.add_collective("C1", Phase.GRAD_COMM, [0], 0.5, deps=[b1])
        g.add_compute("B2", Phase.BACKWARD, 0, 2.0)
        tl = simulate(g)
        names = [e.task.name for e in critical_path(g, tl)]
        assert names == ["B1", "B2"]

    def test_exposed_comm_on_path(self):
        g = TaskGraph(1)
        b1 = g.add_compute("B1", Phase.BACKWARD, 0, 1.0)
        c1 = g.add_collective("C1", Phase.GRAD_COMM, [0], 5.0, deps=[b1])
        g.add_compute("U", Phase.UPDATE, 0, 0.5, deps=[c1])
        tl = simulate(g)
        names = [e.task.name for e in critical_path(g, tl)]
        assert names == ["B1", "C1", "U"]

    def test_straggler_rank_defines_path(self):
        g = TaskGraph(2)
        g.add_compute("fast", Phase.FORWARD, 0, 1.0)
        slow = g.add_compute("slow", Phase.FORWARD, 1, 4.0)
        g.add_collective("ar", Phase.GRAD_COMM, [0, 1], 1.0, deps=[0, slow])
        tl = simulate(g)
        names = [e.task.name for e in critical_path(g, tl)]
        assert names == ["slow", "ar"]

    def test_empty_graph(self):
        g = TaskGraph(1)
        assert critical_path(g, simulate(g)) == []

    def test_path_durations_sum_to_makespan_when_gapless(self):
        g = TaskGraph(1)
        g.add_compute("a", Phase.FORWARD, 0, 1.5)
        g.add_compute("b", Phase.BACKWARD, 0, 2.5)
        tl = simulate(g)
        phases = critical_path_phases(g, tl)
        assert sum(phases.values()) == pytest.approx(tl.makespan)


class TestCriticalPathOnSchedules:
    def test_spd_kfac_path_has_less_factor_comm_than_dkfac(self):
        """The paper's pipelining claim, restated as critical-path surgery:
        SPD-KFAC's critical path carries less FactorComm than D-KFAC's."""
        spec = build_tiny_spec(num_layers=6)
        profile = scaled_cluster_profile(4)
        d_graph = build_strategy_graph(spec, profile, "D-KFAC")
        s_graph = build_strategy_graph(spec, profile, "SPD-KFAC")
        d_phases = critical_path_phases(d_graph, simulate(d_graph))
        s_phases = critical_path_phases(s_graph, simulate(s_graph))
        assert s_phases.get(Phase.FACTOR_COMM.value, 0.0) <= d_phases.get(
            Phase.FACTOR_COMM.value, 0.0
        )

    def test_path_time_bounded_by_makespan(self):
        spec = build_tiny_spec(num_layers=5)
        profile = scaled_cluster_profile(4)
        graph = build_strategy_graph(spec, profile, "SPD-KFAC")
        tl = simulate(graph)
        phases = critical_path_phases(graph, tl)
        assert sum(phases.values()) <= tl.makespan + 1e-9
