"""Tests for critical-path analysis."""

import numpy as np
import pytest

from repro.plan import build_strategy_graph
from repro.perf import scaled_cluster_profile
from repro.sim import (
    Phase,
    TaskGraph,
    blame_table,
    critical_path,
    critical_path_phases,
    critical_path_report,
    simulate,
    task_slack,
)
from tests.conftest import build_tiny_spec


class TestCriticalPathBasics:
    def test_chain_is_fully_critical(self):
        g = TaskGraph(1)
        g.add_compute("a", Phase.FORWARD, 0, 1.0)
        g.add_compute("b", Phase.FORWARD, 0, 2.0)
        g.add_compute("c", Phase.BACKWARD, 0, 3.0)
        tl = simulate(g)
        path = critical_path(g, tl)
        assert [e.task.name for e in path] == ["a", "b", "c"]

    def test_hidden_comm_not_on_path(self):
        g = TaskGraph(1)
        b1 = g.add_compute("B1", Phase.BACKWARD, 0, 1.0)
        g.add_collective("C1", Phase.GRAD_COMM, [0], 0.5, deps=[b1])
        g.add_compute("B2", Phase.BACKWARD, 0, 2.0)
        tl = simulate(g)
        names = [e.task.name for e in critical_path(g, tl)]
        assert names == ["B1", "B2"]

    def test_exposed_comm_on_path(self):
        g = TaskGraph(1)
        b1 = g.add_compute("B1", Phase.BACKWARD, 0, 1.0)
        c1 = g.add_collective("C1", Phase.GRAD_COMM, [0], 5.0, deps=[b1])
        g.add_compute("U", Phase.UPDATE, 0, 0.5, deps=[c1])
        tl = simulate(g)
        names = [e.task.name for e in critical_path(g, tl)]
        assert names == ["B1", "C1", "U"]

    def test_straggler_rank_defines_path(self):
        g = TaskGraph(2)
        g.add_compute("fast", Phase.FORWARD, 0, 1.0)
        slow = g.add_compute("slow", Phase.FORWARD, 1, 4.0)
        g.add_collective("ar", Phase.GRAD_COMM, [0, 1], 1.0, deps=[0, slow])
        tl = simulate(g)
        names = [e.task.name for e in critical_path(g, tl)]
        assert names == ["slow", "ar"]

    def test_empty_graph(self):
        g = TaskGraph(1)
        assert critical_path(g, simulate(g)) == []

    def test_path_durations_sum_to_makespan_when_gapless(self):
        g = TaskGraph(1)
        g.add_compute("a", Phase.FORWARD, 0, 1.5)
        g.add_compute("b", Phase.BACKWARD, 0, 2.5)
        tl = simulate(g)
        phases = critical_path_phases(g, tl)
        assert sum(phases.values()) == pytest.approx(tl.makespan)


class TestCriticalPathOnSchedules:
    def test_spd_kfac_path_has_less_factor_comm_than_dkfac(self):
        """The paper's pipelining claim, restated as critical-path surgery:
        SPD-KFAC's critical path carries less FactorComm than D-KFAC's."""
        spec = build_tiny_spec(num_layers=6)
        profile = scaled_cluster_profile(4)
        d_graph = build_strategy_graph(spec, profile, "D-KFAC")
        s_graph = build_strategy_graph(spec, profile, "SPD-KFAC")
        d_phases = critical_path_phases(d_graph, simulate(d_graph))
        s_phases = critical_path_phases(s_graph, simulate(s_graph))
        assert s_phases.get(Phase.FACTOR_COMM.value, 0.0) <= d_phases.get(
            Phase.FACTOR_COMM.value, 0.0
        )

    def test_path_time_bounded_by_makespan(self):
        spec = build_tiny_spec(num_layers=5)
        profile = scaled_cluster_profile(4)
        graph = build_strategy_graph(spec, profile, "SPD-KFAC")
        tl = simulate(graph)
        phases = critical_path_phases(graph, tl)
        assert sum(phases.values()) <= tl.makespan + 1e-9


class TestTaskSlack:
    def test_slack_zero_on_serial_chain(self):
        g = TaskGraph(1)
        g.add_compute("a", Phase.FORWARD, 0, 1.0)
        g.add_compute("b", Phase.BACKWARD, 0, 2.0)
        tl = simulate(g)
        assert task_slack(g, tl).tolist() == [0.0, 0.0]

    def test_hidden_comm_has_positive_slack(self):
        g = TaskGraph(1)
        b1 = g.add_compute("B1", Phase.BACKWARD, 0, 1.0)
        c1 = g.add_collective("C1", Phase.GRAD_COMM, [0], 0.5, deps=[b1])
        g.add_compute("B2", Phase.BACKWARD, 0, 2.0)
        tl = simulate(g)
        slack = task_slack(g, tl)
        # C1 (tid 1) finishes at 1.5 but nothing needs it before the
        # makespan at 3.0: it could start 1.5s later.
        assert slack[c1] == pytest.approx(1.5)
        assert slack[b1] == 0.0

    def test_straggler_peer_carries_the_slack(self):
        g = TaskGraph(2)
        fast = g.add_compute("fast", Phase.FORWARD, 0, 1.0)
        slow = g.add_compute("slow", Phase.FORWARD, 1, 4.0)
        g.add_collective("ar", Phase.GRAD_COMM, [0, 1], 1.0, deps=[fast, slow])
        slack = task_slack(g, simulate(g))
        assert slack[fast] == pytest.approx(3.0)
        assert slack[slow] == 0.0

    def test_slack_nonnegative_and_empty_graph(self):
        g = TaskGraph(1)
        assert task_slack(g, simulate(g)).size == 0
        graph = build_strategy_graph(
            build_tiny_spec(num_layers=4), scaled_cluster_profile(4), "SPD-KFAC"
        )
        slack = task_slack(graph, simulate(graph))
        assert (slack >= -1e-9).all()


class TestCriticalPathReport:
    @pytest.fixture(scope="class")
    def schedule(self):
        graph = build_strategy_graph(
            build_tiny_spec(num_layers=5), scaled_cluster_profile(4), "SPD-KFAC"
        )
        timeline = simulate(graph)
        return graph, timeline, critical_path_report(graph, timeline)

    def test_zero_slack_chain_spans_start_to_makespan(self, schedule):
        """Acceptance: slack-0 tasks chain from t=0 to the makespan and
        their durations sum to the makespan exactly."""
        _, timeline, report = schedule
        entries = report.entries
        assert entries[0].start == 0.0
        assert entries[-1].end == timeline.makespan
        for prev, nxt in zip(entries, entries[1:]):
            assert nxt.start == prev.end  # gapless: starts when blocker ends
        assert sum(e.duration for e in entries) == pytest.approx(
            timeline.makespan, abs=1e-12
        )

    def test_chain_tasks_all_have_zero_slack(self, schedule):
        _, _, report = schedule
        zero = set(report.zero_slack_tids().tolist())
        assert set(report.critical_tids) <= zero

    def test_blame_sums_to_makespan(self, schedule):
        _, timeline, report = schedule
        assert sum(row.seconds for row in report.blame) == pytest.approx(
            timeline.makespan
        )
        assert sum(row.share for row in report.blame) == pytest.approx(1.0)
        assert sum(row.tasks for row in report.blame) == len(report.entries)
        # Sorted by descending seconds.
        seconds = [row.seconds for row in report.blame]
        assert seconds == sorted(seconds, reverse=True)

    def test_report_views(self, schedule):
        _, timeline, report = schedule
        payload = report.to_dict()
        assert payload["makespan"] == timeline.makespan
        assert payload["critical_tids"] == list(report.critical_tids)
        assert len(payload["blame"]) == len(report.blame)
        text = report.to_text()
        assert "critical path:" in text
        for row in report.blame:
            assert row.label in text

    def test_blame_table_empty_chain(self):
        assert blame_table((), 0.0) == ()

    def test_slack_vector_is_tid_indexed(self, schedule):
        graph, _, report = schedule
        assert report.slack.shape == (len(graph),)
        assert isinstance(report.slack, np.ndarray)
