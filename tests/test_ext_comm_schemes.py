"""The ext_comm_schemes experiment: frozen rows + behavioral guarantees.

``tests/data/frozen_ext_comm_schemes_rows.json`` pins the sweep's rows
bit-exactly (floats stored as ``float.hex``), the same discipline
``frozen_paper_rows.json`` applies to the paper experiments.  To
regenerate after an *intentional* cost-model change::

    PYTHONPATH=src python - <<'PY'
    import json
    from repro.experiments.base import get_experiment
    result = get_experiment("ext_comm_schemes").run()
    rows = [{k: (float.hex(v) if isinstance(v, float) else v)
             for k, v in row.items()} for row in result.rows]
    payload = {"ext_comm_schemes": {"columns": list(result.columns), "rows": rows}}
    with open("tests/data/frozen_ext_comm_schemes_rows.json", "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True); f.write("\n")
    PY
"""

import json
from pathlib import Path

import pytest

from repro.experiments.base import get_experiment
from repro.experiments.ext_comm_schemes import (
    HEADLINE_VARIANT,
    SCENARIO_NAMES,
    VARIANTS,
)

FROZEN_PATH = Path(__file__).parent / "data" / "frozen_ext_comm_schemes_rows.json"


@pytest.fixture(scope="module")
def result():
    return get_experiment("ext_comm_schemes").run()


def test_rows_identical_to_frozen_snapshot(result):
    with open(FROZEN_PATH) as f:
        frozen = json.load(f)["ext_comm_schemes"]
    assert list(result.columns) == frozen["columns"]
    normalized = [
        {k: (float.hex(v) if isinstance(v, float) else v) for k, v in row.items()}
        for row in result.rows
    ]
    assert normalized == frozen["rows"]


def test_paper_scheme_is_bit_identical_to_spd_kfac_preset(result):
    """The 'paper' baseline row must be the SPD-KFAC preset itself."""
    from repro.plan import Session, strategy_registry
    from repro.topo import named_topology

    rows = [r for r in result.rows if r["scheme"] == "paper"]
    assert len(rows) == len(SCENARIO_NAMES) * 4
    for name in SCENARIO_NAMES:
        topo = named_topology(name)
        session = Session("ResNet-50", topo)
        preset_time = session.simulate(strategy_registry["SPD-KFAC"]).iteration_time
        row = next(
            r
            for r in rows
            if r["model"] == "ResNet-50" and r["topology"] == topo.name
        )
        assert row["time(s)"] == preset_time


def test_every_cell_prices_every_scheme(result):
    by_cell = {}
    for row in result.rows:
        by_cell.setdefault((row["model"], row["topology"]), set()).add(row["scheme"])
    assert len(by_cell) == len(SCENARIO_NAMES) * 4
    for schemes in by_cell.values():
        assert schemes == set(VARIANTS)


def test_mem_opt_beats_paper_on_bandwidth_starved_topologies(result):
    """MEM_OPT strictly beats paper SPD-KFAC where the wire is starved.

    The acceptance bar: at least one cell on the ethernet-spine or
    heterogeneous topology where the MEM_OPT scheme's iteration time is
    strictly below the paper scheme's.
    """
    starved = [
        r
        for r in result.rows
        if r["scheme"] == HEADLINE_VARIANT
        and ("eth spine" in r["topology"] or "pcie" in r["topology"])
    ]
    assert starved, "no bandwidth-starved MEM_OPT rows in the sweep"
    assert any(row["speedup"] > 1.0 for row in starved)
    for row in starved:
        assert row["time(s)"] > 0


def test_mem_opt_ships_fewer_bytes_when_packed_inverses_dominate(result):
    """Per-layer CPG broadcasts undercut packed inverse bytes on most cells.

    MEM_OPT replaces each layer's ``d(d+1)/2``-element packed inverse
    pair with one ``num_params``-element broadcast, batch-independent;
    the flat paper fabric never splits broadcasts across a spine, so
    there the byte comparison is exactly that element trade and MEM_OPT
    must ship strictly less for every paper model.
    """
    by_cell = {}
    for row in result.rows:
        by_cell.setdefault((row["model"], row["topology"]), {})[row["scheme"]] = row
    flat_cells = [c for c in by_cell.values() if "flat" in c["paper"]["topology"]]
    assert flat_cells
    for cell in flat_cells:
        assert cell["mem_opt"]["wire(MB/iter)"] < cell["paper"]["wire(MB/iter)"]


def test_comm_opt_matches_paper_wire_bytes(result):
    """COMM_OPT reorders the schedule but ships the same collectives."""
    by_cell = {}
    for row in result.rows:
        by_cell.setdefault((row["model"], row["topology"]), {})[row["scheme"]] = row
    assert by_cell
    for cell in by_cell.values():
        assert cell["comm_opt"]["wire(MB/iter)"] == cell["paper"]["wire(MB/iter)"]
