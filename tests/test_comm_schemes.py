"""Property + regression suite for the communication-scheme axis.

``comm_scheme`` (``"paper" | "comm_opt" | "mem_opt"``) is the axis the
KAISA-style systems [arXiv:2007.00784] add on top of SPD-KFAC's packed
inverse broadcasts: COMM_OPT preconditions with resident inverses and
appends the refresh after the update; MEM_OPT preconditions on each
layer's owner and broadcasts the preconditioned gradient every
iteration.  This suite property-tests the extended validator against an
independently stated predicate, plans/simulates every valid combo,
holds the autotuner's pruning bound admissible across the extended
grid, round-trips plans through JSON bit-identically, and pins the
graph-shape digests that keep ``simulate_plans`` from batching
different schemes' graphs together.
"""

import math

import pytest

from repro.autotune import candidate_bound, strategy_grid
from repro.core.pipeline import FACTOR_FUSION_POLICIES
from repro.core.schedule import PLACEMENT_STRATEGIES
from repro.models.builder import SpecBuilder
from repro.perf import scaled_cluster_profile
from repro.plan import (
    COLLECTIVE_ALGORITHMS,
    GRADIENT_REDUCTIONS,
    Plan,
    Session,
    TrainingStrategy,
    resolve_plan_parts,
)
from repro.plan.session import build_phase_graphs
from repro.plan.strategy import COMM_SCHEMES
from repro.sim import graph_shape_digest, simulate, simulate_plans
from repro.utils.rng import new_rng

SEED = 20260808

#: Every axis with its full domain — the fuzzer draws uniformly here.
#: Extends test_strategy_property's domains with the comm-scheme axis.
AXIS_DOMAINS = {
    "second_order": (True, False),
    "distributed": (True, False),
    "gradient_reduction": GRADIENT_REDUCTIONS,
    "factor_fusion": FACTOR_FUSION_POLICIES,
    "factor_pipelining": (True, False),
    "combine_factor_passes": (True, False),
    "placement": PLACEMENT_STRATEGIES,
    "include_solve": (True, False),
    "collective": COLLECTIVE_ALGORITHMS,
    "comm_scheme": COMM_SCHEMES,
}


def is_valid(combo):
    """The validity rules, stated independently of the validator."""
    if combo["distributed"] and combo["gradient_reduction"] == "none":
        return False
    if not combo["distributed"] and combo["gradient_reduction"] != "none":
        return False
    if (
        not combo["distributed"]
        and combo["second_order"]
        and combo["placement"] != "non_dist"
    ):
        return False
    if combo["combine_factor_passes"] and (
        combo["factor_fusion"] != "bulk" or combo["factor_pipelining"]
    ):
        return False
    if not combo["second_order"] and not combo["include_solve"]:
        return False
    # The comm-scheme rules: non-paper schemes reorganize the
    # distributed preconditioning stage, so they need that stage.
    if combo["comm_scheme"] != "paper":
        if not (combo["second_order"] and combo["distributed"]):
            return False
        if not combo["include_solve"]:
            return False
    if combo["comm_scheme"] == "mem_opt" and combo["placement"] == "non_dist":
        return False
    return True


def random_combo(rng):
    return {
        axis: domain[int(rng.integers(len(domain)))]
        for axis, domain in AXIS_DOMAINS.items()
    }


def tiny_spec():
    builder = SpecBuilder(model_name="tiny-schemes", batch_size=4, input_size=16)
    builder.conv("conv0", 3, 8, kernel=3, stride=1, padding="same")
    builder.conv("conv1", 8, 16, kernel=3, stride=1, padding="same")
    builder.linear("fc", 16, 10)
    return builder.build()


def spd_variant(scheme, **axes):
    from repro.plan import strategy_registry

    return strategy_registry["SPD-KFAC"].but(
        name=f"SPD-KFAC[{scheme}]", comm_scheme=scheme, **axes
    )


def test_validator_agrees_with_independent_predicate():
    """400 seeded random combos: constructibility == the stated rules."""
    rng = new_rng(SEED)
    valid_seen = invalid_seen = scheme_seen = valid_scheme_seen = 0
    for _ in range(400):
        combo = random_combo(rng)
        if combo["comm_scheme"] != "paper":
            scheme_seen += 1
        if is_valid(combo):
            TrainingStrategy(**combo)  # must not raise
            valid_seen += 1
            if combo["comm_scheme"] != "paper":
                valid_scheme_seen += 1
        else:
            with pytest.raises(ValueError):
                TrainingStrategy(**combo)
            invalid_seen += 1
    # The draw must actually exercise both sides and the new axis —
    # including valid non-paper schemes (which need second-order
    # distributed solve-on combos, so they are rare under uniform draws).
    assert valid_seen > 20
    assert invalid_seen > 200
    assert scheme_seen > 100
    assert valid_scheme_seen > 5


def test_every_valid_combo_plans_and_simulates():
    """Seeded valid combos (plus the extended grid) all plan, simulate,
    and account their time consistently, with the pruning bound below."""
    spec = tiny_spec()
    profile = scaled_cluster_profile(4)
    session = Session(spec, profile)

    rng = new_rng(SEED + 1)
    sampled = []
    while len(sampled) < 60:
        combo = random_combo(rng)
        if is_valid(combo):
            sampled.append(TrainingStrategy(**combo))
    assert any(s.comm_scheme != "paper" for s in sampled)
    extended = strategy_grid(comm_schemes=COMM_SCHEMES)
    assert len(extended) == 198  # 72 x 3 schemes - 2x9 mem_opt/non_dist
    for strategy in sampled + extended:
        plan = session.plan(strategy)
        result = session.simulate(strategy)

        # Planning and simulation agree on the headline number.
        assert result.iteration_time > 0
        assert plan.predicted_makespan == result.iteration_time

        # Breakdown components sum to the iteration time.
        breakdown = result.breakdown
        assert breakdown.total == result.iteration_time
        assert math.isclose(
            sum(breakdown.seconds.values()), breakdown.total, rel_tol=1e-9
        )
        assert math.isclose(
            sum(result.categories().values()), result.iteration_time, rel_tol=1e-9
        )

        # The autotuner's pruning bound never exceeds the simulated time.
        num_ranks, grad_plan, fplan, placement = resolve_plan_parts(
            spec, profile, strategy
        )
        bound = candidate_bound(
            spec,
            profile,
            num_ranks=num_ranks,
            grad_plan=grad_plan,
            fplan=fplan,
            placement=placement,
            include_solve=strategy.include_solve,
            strategy=strategy,
        )
        assert bound.total <= result.iteration_time + 1e-12


def test_bound_admissible_on_extended_grid_with_stale_intervals():
    """Schemes x stale intervals: the cycle-weighted bound stays under
    the cycle-averaged simulated time for every combination."""
    spec = tiny_spec()
    profile = scaled_cluster_profile(4)
    session = Session(spec, profile)
    grid = strategy_grid(
        comm_schemes=COMM_SCHEMES,
        placements=("lbp", "balanced"),
        gradient_reductions=("wfbp",),
        intervals=[(1, 1), (2, 4)],
    )
    assert len(grid) > 50
    for strategy in grid:
        result = session.simulate(strategy)
        num_ranks, grad_plan, fplan, placement = resolve_plan_parts(
            spec, profile, strategy
        )
        bound = candidate_bound(
            spec,
            profile,
            num_ranks=num_ranks,
            grad_plan=grad_plan,
            fplan=fplan,
            placement=placement,
            include_solve=strategy.include_solve,
            strategy=strategy,
        )
        assert bound.total <= result.iteration_time + 1e-12


def test_json_round_trip_resimulates_bit_identically():
    """to_json -> from_json preserves the digest and the schedule."""
    spec = tiny_spec()
    profile = scaled_cluster_profile(4)
    session = Session(spec, profile)
    for scheme in COMM_SCHEMES:
        strategy = TrainingStrategy(
            name=f"rt-{scheme}",
            second_order=True,
            distributed=True,
            gradient_reduction="wfbp",
            placement="balanced",
            collective="auto",
            comm_scheme=scheme,
        )
        plan = session.plan(strategy)
        restored = Plan.from_json(plan.to_json())
        assert restored == plan
        assert restored.digest() == plan.digest()
        assert restored.strategy.comm_scheme == scheme
        makespan = simulate(restored.build_graph(spec)).makespan
        assert makespan == plan.predicted_makespan


def test_plan_reads_v2_payload_without_comm_scheme():
    """A pre-axis (format v2) payload deserializes to the paper scheme."""
    spec = tiny_spec()
    session = Session(spec, scaled_cluster_profile(4))
    plan = session.plan(spd_variant("paper"))
    payload = plan.to_dict()
    assert payload["version"] == 3
    payload["version"] = 2
    del payload["strategy"]["comm_scheme"]
    restored = Plan.from_dict(payload)
    assert restored.strategy.comm_scheme == "paper"
    assert restored.digest() == plan.digest()


class TestShapeDigests:
    """The regression net under ``simulate_plans``'s shape grouping:
    different schemes' graphs must never share a digest unless their
    structures really are identical."""

    @pytest.fixture(scope="class")
    def graphs(self):
        spec = tiny_spec()
        profile = scaled_cluster_profile(4)
        out = {}
        for scheme in COMM_SCHEMES:
            strategy = spd_variant(
                scheme, factor_update_interval=4, inverse_update_interval=4
            )
            num_ranks, grad_plan, fplan, placement = resolve_plan_parts(
                spec, profile, strategy
            )
            out[scheme] = build_phase_graphs(
                spec,
                profile,
                strategy,
                num_ranks=num_ranks,
                grad_plan=grad_plan,
                fplan=fplan,
                placement=placement,
            )
        return out

    def test_refresh_graphs_pairwise_distinct(self, graphs):
        digests = {s: graph_shape_digest(g["refresh"]) for s, g in graphs.items()}
        assert len(set(digests.values())) == 3, digests

    def test_mem_opt_steady_differs_from_paper(self, graphs):
        """MEM_OPT keeps P + CPG broadcasts in the steady shape; batching
        it with the paper's steady graph would price the wrong waves."""
        assert graph_shape_digest(graphs["mem_opt"]["steady"]) != graph_shape_digest(
            graphs["paper"]["steady"]
        )

    def test_comm_opt_steady_identical_to_paper(self, graphs):
        """COMM_OPT only reorganizes refresh iterations: its steady graph
        is deliberately bit-identical to the paper's, so the batcher
        *should* group them."""
        assert graph_shape_digest(graphs["comm_opt"]["steady"]) == graph_shape_digest(
            graphs["paper"]["steady"]
        )

    def test_simulate_plans_matches_per_graph_simulate(self, graphs):
        """Mixed-scheme batched pricing is bit-identical to one-by-one."""
        batch = [g for shapes in graphs.values() for g in shapes.values()]
        sizes = []
        timelines = simulate_plans(batch, batch_sizes=sizes)
        for graph, timeline in zip(batch, timelines):
            assert timeline.makespan == simulate(graph).makespan
        # The two identical steady graphs share a digest; everything else
        # must have been priced alone.
        assert sorted(sizes, reverse=True)[0] <= 2
