"""Smoke tests: every example script runs end-to-end; the CLI works."""

import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = REPO_ROOT / "examples"


def run_script(*args, timeout=600):
    return subprocess.run(
        [sys.executable, *args],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExamples:
    def test_quickstart(self):
        result = run_script(EXAMPLES / "quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "K-FAC loss" in result.stdout
        assert "SPD-KFAC on ResNet-50 x 64 GPUs" in result.stdout

    def test_distributed_training(self):
        result = run_script(EXAMPLES / "distributed_training.py")
        assert result.returncode == 0, result.stderr
        assert "bit-identical across 4 ranks: True" in result.stdout
        assert "allreduce" in result.stdout

    def test_cluster_simulation_small(self, tmp_path):
        trace = tmp_path / "trace.json"
        result = run_script(EXAMPLES / "cluster_simulation.py", "ResNet-50", "4", str(trace))
        assert result.returncode == 0, result.stderr
        assert "SPD-KFAC" in result.stdout
        assert "Topology comparison" in result.stdout
        assert "hierarchical" in result.stdout
        assert "predicted iteration-time delta" in result.stdout
        assert trace.exists()

    def test_planning_deep_dive(self):
        result = run_script(EXAMPLES / "planning_deep_dive.py", "ResNet-50")
        assert result.returncode == 0, result.stderr
        assert "Optimal tensor fusion" in result.stdout
        assert "LBP" in result.stdout

    def test_elastic_training(self):
        result = run_script(EXAMPLES / "elastic_training.py")
        assert result.returncode == 0, result.stderr
        assert "nominal best:" in result.stdout
        assert "robust best:" in result.stdout
        assert "Young/Daly optimal" in result.stdout
        assert "break-even after" in result.stdout
        assert "1 transition(s)" in result.stdout


class TestExperimentsCli:
    def test_single_fast_experiments(self):
        result = run_script("-m", "repro.experiments", "tab2", "fig3", "fig11")
        assert result.returncode == 0, result.stderr
        for marker in ("tab2:", "fig3:", "fig11:"):
            assert marker in result.stdout

    def test_unknown_experiment_fails_cleanly(self):
        result = run_script("-m", "repro.experiments", "fig99")
        assert result.returncode != 0

    def test_main_callable_in_process(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["tab2"]) == 0
        captured = capsys.readouterr()
        assert "Table II" in captured.out

    def test_help(self):
        result = run_script("-m", "repro.experiments", "--help")
        assert result.returncode == 0
        assert "report" in result.stdout


class TestPlanCli:
    def test_plan_prints_summary(self):
        result = run_script("-m", "repro.experiments", "plan", "ResNet-50", "SPD-KFAC")
        assert result.returncode == 0, result.stderr
        assert "plan: ResNet-50 x SPD-KFAC (64 ranks)" in result.stdout
        assert "predicted:" in result.stdout

    def test_plan_serializes_losslessly(self, tmp_path):
        path = tmp_path / "plan.json"
        result = run_script(
            "-m", "repro.experiments", "plan", "ResNet-50", "MPD-KFAC",
            "--gpus", "8", "--json", str(path),
        )
        assert result.returncode == 0, result.stderr
        from repro.plan import Plan, Session

        plan = Plan.load(path)
        assert plan.model == "ResNet-50"
        assert plan.num_ranks == 8
        assert plan.strategy.name == "MPD-KFAC"
        assert (
            Session("ResNet-50", 8).simulate(plan).iteration_time
            == plan.predicted_makespan
        )

    def test_plan_unknown_strategy_fails_cleanly(self):
        result = run_script("-m", "repro.experiments", "plan", "ResNet-50", "warp")
        assert result.returncode != 0
        assert "unknown strategy" in result.stderr

    def test_plan_unknown_model_fails_cleanly(self):
        result = run_script("-m", "repro.experiments", "plan", "LeNet-9000", "SPD-KFAC")
        assert result.returncode == 2
        assert "unknown model" in result.stderr
        assert "Traceback" not in result.stderr

    def test_plan_collective_flag_changes_the_prediction(self):
        # D-KFAC's bulk factor all-reduce is fully exposed, so the
        # collective algorithm must move the predicted iteration time.
        base = run_script("-m", "repro.experiments", "plan", "ResNet-50", "D-KFAC",
                          "--gpus", "8", "--collective", "ring")
        tree = run_script("-m", "repro.experiments", "plan", "ResNet-50", "D-KFAC",
                          "--gpus", "8", "--collective", "tree")
        assert base.returncode == 0, base.stderr
        assert tree.returncode == 0, tree.stderr
        base_line = [l for l in base.stdout.splitlines() if "predicted:" in l]
        tree_line = [l for l in tree.stdout.splitlines() if "predicted:" in l]
        assert base_line and tree_line and base_line != tree_line

    def test_plan_list_strategies(self):
        result = run_script("-m", "repro.experiments", "plan", "--list-strategies")
        assert result.returncode == 0
        for name in ("SGD", "S-SGD", "KFAC", "D-KFAC", "MPD-KFAC", "SPD-KFAC"):
            assert name in result.stdout


class TestAutotuneCli:
    def test_autotune_prints_ranked_report(self):
        result = run_script(
            "-m", "repro.experiments", "autotune", "ResNet-50", "--gpus", "8",
            "--top", "5",
        )
        assert result.returncode == 0, result.stderr
        assert "autotune: ResNet-50 on 8-GPU profile" in result.stdout
        assert "best preset:" in result.stdout
        assert "pareto" in result.stdout
        assert "SPD-KFAC" in result.stdout

    def test_autotune_json_report(self, tmp_path):
        path = tmp_path / "report.json"
        result = run_script(
            "-m", "repro.experiments", "autotune", "ResNet-50", "--gpus", "8",
            "--json", str(path),
        )
        assert result.returncode == 0, result.stderr
        import json

        payload = json.loads(path.read_text())
        assert payload["model"] == "ResNet-50"
        assert payload["world_size"] == 8
        assert payload["stats"]["candidates"] == 72
        assert payload["best"]["iteration_time"] <= payload["best_preset"][1]

    def test_autotune_bnb_search_flag(self):
        result = run_script(
            "-m", "repro.experiments", "autotune", "ResNet-50", "--gpus", "8",
            "--search", "bnb", "--stats",
        )
        assert result.returncode == 0, result.stderr
        assert "searched 72 candidates" in result.stdout
        assert "bnb nodes:" in result.stdout
        assert "batched pricing:" in result.stdout

    def test_autotune_rejects_unknown_search(self):
        result = run_script(
            "-m", "repro.experiments", "autotune", "ResNet-50", "--search", "dfs",
        )
        assert result.returncode != 0
        assert "--search" in result.stderr

    def test_autotune_list_topologies(self):
        result = run_script("-m", "repro.experiments", "autotune", "--list-topologies")
        assert result.returncode == 0, result.stderr
        for name in ("flat", "multi-rack", "heterogeneous"):
            assert name in result.stdout

    def test_autotune_unknown_model_fails_cleanly(self):
        result = run_script("-m", "repro.experiments", "autotune", "LeNet-9000")
        assert result.returncode == 2
        assert "unknown model" in result.stderr
        assert "Traceback" not in result.stderr

    def test_autotune_unknown_topology_fails_cleanly(self):
        result = run_script(
            "-m", "repro.experiments", "autotune", "ResNet-50",
            "--topology", "moebius-strip",
        )
        assert result.returncode == 2
        assert "unknown topology" in result.stderr

    def test_autotune_gpus_and_topology_conflict(self):
        result = run_script(
            "-m", "repro.experiments", "autotune", "ResNet-50",
            "--gpus", "8", "--topology", "flat",
        )
        assert result.returncode != 0

    def test_autotune_scenario_prints_robust_columns(self):
        result = run_script(
            "-m", "repro.experiments", "autotune", "ResNet-50", "--gpus", "8",
            "--scenario", "stragglers", "--samples", "4", "--top", "3",
        )
        assert result.returncode == 0, result.stderr
        assert "objective: p95 over 4 samples" in result.stdout
        assert "p95(s)" in result.stdout
        assert "s p95" in result.stdout

    def test_autotune_unknown_scenario_fails_cleanly(self):
        result = run_script(
            "-m", "repro.experiments", "autotune", "ResNet-50", "--gpus", "8",
            "--scenario", "asteroids",
        )
        assert result.returncode == 2
        assert "unknown fault scenario" in result.stderr
        assert "Traceback" not in result.stderr

    def test_autotune_objective_without_scenario_fails_cleanly(self):
        result = run_script(
            "-m", "repro.experiments", "autotune", "ResNet-50", "--gpus", "8",
            "--objective", "p95",
        )
        assert result.returncode == 2
        assert "needs a fault scenario" in result.stderr


class TestTraceCli:
    def test_trace_writes_perfetto_trace(self, tmp_path):
        path = tmp_path / "t.json"
        # Acceptance spelling: lowercase, punctuation-free names resolve.
        result = run_script(
            "-m", "repro.experiments", "trace", "resnet50", "spd-kfac",
            "--gpus", "8", "--out", str(path),
        )
        assert result.returncode == 0, result.stderr
        assert "critical path:" in result.stdout
        assert "trace written to" in result.stdout
        import json

        trace = json.loads(path.read_text())
        phases = {e["ph"] for e in trace["traceEvents"]}
        assert {"M", "X", "s", "f", "C"} <= phases  # flows + counters present
        assert trace["otherData"]["num_ranks"] == 8
        assert trace["otherData"]["critical_path"]["makespan"] > 0

    def test_trace_critical_only_skips_file(self):
        result = run_script(
            "-m", "repro.experiments", "trace", "ResNet-50", "SPD-KFAC",
            "--gpus", "4", "--critical-only",
        )
        assert result.returncode == 0, result.stderr
        assert "critical path:" in result.stdout
        assert "trace written" not in result.stdout

    def test_trace_requires_out_or_critical_only(self):
        result = run_script(
            "-m", "repro.experiments", "trace", "ResNet-50", "SPD-KFAC",
            "--gpus", "4",
        )
        assert result.returncode != 0
        assert "--out" in result.stderr

    def test_trace_unknown_model_fails_cleanly(self):
        result = run_script(
            "-m", "repro.experiments", "trace", "LeNet-9000", "SPD-KFAC",
            "--critical-only",
        )
        assert result.returncode == 2
        assert "unknown model" in result.stderr
        assert "Traceback" not in result.stderr

    def test_trace_topology_cluster(self, tmp_path):
        path = tmp_path / "topo.json"
        result = run_script(
            "-m", "repro.experiments", "trace", "ResNet-50", "SPD-KFAC",
            "--topology", "flat", "--out", str(path), "--no-flows",
            "--no-counters",
        )
        assert result.returncode == 0, result.stderr
        import json

        trace = json.loads(path.read_text())
        phases = {e["ph"] for e in trace["traceEvents"]}
        assert "s" not in phases and "C" not in phases


class TestObservabilityFlags:
    def test_plan_cache_stats_flag(self):
        result = run_script(
            "-m", "repro.experiments", "plan", "ResNet-50", "SPD-KFAC",
            "--gpus", "4", "--cache-stats",
        )
        assert result.returncode == 0, result.stderr
        assert "plan cache:" in result.stdout
        assert "misses" in result.stdout

    def test_autotune_stats_and_cache_stats(self):
        result = run_script(
            "-m", "repro.experiments", "autotune", "ResNet-50", "--gpus", "4",
            "--top", "3", "--stats", "--cache-stats",
        )
        assert result.returncode == 0, result.stderr
        assert "search telemetry:" in result.stdout
        assert "prune rate:" in result.stdout
        assert "bound tightness" in result.stdout
        assert "plan cache:" in result.stdout

    def test_run_report_artifacts(self, tmp_path):
        out = tmp_path / "reports"
        result = run_script(
            "-m", "repro.experiments", "tab2", "fig3",
            "--run-report", str(out),
        )
        assert result.returncode == 0, result.stderr
        import json

        for experiment_id in ("tab2", "fig3"):
            payload = json.loads((out / f"{experiment_id}.report.json").read_text())
            assert payload["experiment_id"] == experiment_id
            assert payload["wall_clock_s"] > 0
            assert "obs" in payload


@pytest.mark.parametrize("experiment_id", ["tab2", "fig3", "fig7", "fig11"])
def test_fast_experiments_render_roundtrip(experiment_id):
    """Fast experiments render both text and markdown without error."""
    from repro.experiments import get_experiment

    result = get_experiment(experiment_id).run()
    assert result.rows
    assert result.to_text()
    assert result.to_markdown()


class TestServeCLI:
    @pytest.fixture(autouse=True)
    def _isolated_caches(self):
        from repro.plan import clear_caches, set_plan_store

        clear_caches()
        set_plan_store(None)
        yield
        clear_caches()
        set_plan_store(None)

    def test_serve_load_test_writes_report(self, tmp_path, capsys):
        """`serve --load-test` boots an ephemeral server, fires the mixed
        workload from multiple processes, and writes the JSON report."""
        from repro.experiments.__main__ import main

        report_path = tmp_path / "report.json"
        code = main(
            [
                "serve",
                "--load-test", "40",
                "--concurrency", "2",
                "--processes", "2",
                "--store", str(tmp_path / "store"),
                "--json", str(report_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "load test: 40/40 queries ok" in out

        import json

        payload = json.loads(report_path.read_text())
        assert payload["completed"] == 40
        assert payload["errors"] == 0
        assert payload["processes"] == 2
        assert payload["p99_s"] > 0

    def test_serve_help(self):
        result = run_script("-m", "repro.experiments", "serve", "--help")
        assert result.returncode == 0
        assert "--load-test" in result.stdout and "--store" in result.stdout
        assert "--store-max-mb" in result.stdout

    def test_store_max_mb_requires_store(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["serve", "--load-test", "5", "--store-max-mb", "1"])

    def test_store_max_mb_rejects_negative(self, tmp_path):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(
                [
                    "serve",
                    "--load-test", "5",
                    "--store", str(tmp_path / "store"),
                    "--store-max-mb", "-2",
                ]
            )

    def test_store_max_mb_evicts_stale_entries_at_boot(self, tmp_path):
        """Pre-existing oversized entries are GC'd when the server boots."""
        from repro.experiments.__main__ import main
        from repro.serve import PlanStore

        store = PlanStore(tmp_path / "store")
        stale = [f"{i:016x}" for i in range(6)]
        for key in stale:
            store.put(key, {"pad": "x" * 20_000})  # each entry alone over cap

        code = main(
            [
                "serve",
                "--load-test", "10",
                "--concurrency", "2",
                "--store", str(tmp_path / "store"),
                "--store-max-mb", "0.01",  # ~10 KiB
            ]
        )
        assert code == 0
        reopened = PlanStore(tmp_path / "store")
        assert not any(key in reopened for key in stale)
