"""Tests for repro.utils: formatting, RNG management, validation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils import (
    check_non_negative,
    check_positive,
    check_probability,
    check_square,
    check_symmetric,
    human_bytes,
    human_count,
    human_time,
    new_rng,
    spawn_rngs,
)
from repro.utils.stats import percentile


class TestFormat:
    def test_human_bytes_units(self):
        assert human_bytes(512) == "512.0 B"
        assert human_bytes(2048) == "2.0 KiB"
        assert human_bytes(2**21) == "2.0 MiB"
        assert human_bytes(2**31) == "2.0 GiB"
        assert human_bytes(2**41) == "2.0 TiB"

    def test_human_bytes_huge_stays_tib(self):
        assert human_bytes(2**51).endswith("TiB")

    def test_human_count(self):
        assert human_count(950) == "950"
        assert human_count(62_300_000) == "62.3M"
        assert human_count(1_500) == "1.5K"
        assert human_count(2_000_000_000) == "2.0B"

    def test_human_time_ranges(self):
        assert human_time(5e-7).endswith("us")
        assert human_time(5e-3).endswith("ms")
        assert human_time(1.5).endswith("s")
        assert human_time(300).endswith("min")

    @given(st.floats(min_value=0, max_value=1e15, allow_nan=False))
    def test_human_count_never_raises(self, value):
        assert isinstance(human_count(value), str)


class TestRng:
    def test_new_rng_from_seed_is_deterministic(self):
        assert new_rng(7).integers(0, 100) == new_rng(7).integers(0, 100)

    def test_new_rng_passthrough(self):
        gen = np.random.default_rng(0)
        assert new_rng(gen) is gen

    def test_spawn_rngs_independent_streams(self):
        a, b = spawn_rngs(0, 2)
        assert a.integers(0, 2**31) != b.integers(0, 2**31)

    def test_spawn_rngs_reproducible(self):
        first = [g.integers(0, 1000) for g in spawn_rngs(5, 3)]
        second = [g.integers(0, 1000) for g in spawn_rngs(5, 3)]
        assert first == second

    def test_spawn_rngs_count_zero(self):
        assert spawn_rngs(0, 0) == []

    def test_spawn_rngs_negative_count(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestValidation:
    def test_check_positive(self):
        assert check_positive("x", 1.5) == 1.5
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0)

    def test_check_non_negative(self):
        assert check_non_negative("x", 0.0) == 0.0
        with pytest.raises(ValueError):
            check_non_negative("x", -1e-9)

    def test_check_probability(self):
        assert check_probability("p", 0.5) == 0.5
        for bad in (-0.1, 1.1):
            with pytest.raises(ValueError):
                check_probability("p", bad)

    def test_check_square(self):
        check_square("m", np.eye(3))
        with pytest.raises(ValueError):
            check_square("m", np.zeros((2, 3)))
        with pytest.raises(ValueError):
            check_square("m", np.zeros(4))

    def test_check_symmetric(self):
        check_symmetric("m", np.eye(2))
        with pytest.raises(ValueError):
            check_symmetric("m", np.array([[0.0, 1.0], [0.0, 0.0]]))


class TestPercentile:
    """The one shared nearest-rank quantile (repro.utils.stats)."""

    def test_empty_samples_raise(self):
        with pytest.raises(ValueError, match="no samples"):
            percentile([], 0.5)

    def test_quantile_out_of_range_raises(self):
        for bad in (-0.01, 1.01, 2.0):
            with pytest.raises(ValueError, match=r"\[0, 1\]"):
                percentile([1.0, 2.0], bad)

    def test_single_sample_is_every_quantile(self):
        for q in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert percentile([3.5], q) == 3.5

    def test_extreme_quantiles_are_min_and_max(self):
        samples = [0.4, 0.1, 0.9, 0.2]
        assert percentile(samples, 0.0) == min(samples)
        assert percentile(samples, 1.0) == max(samples)

    def test_nearest_rank_on_sorted_input(self):
        samples = list(range(101))
        assert percentile(samples, 0.50) == 50
        assert percentile(samples, 0.95) == 95

    def test_input_order_irrelevant(self):
        shuffled = [5.0, 1.0, 4.0, 2.0, 3.0]
        assert percentile(shuffled, 0.5) == percentile(sorted(shuffled), 0.5)

    @given(
        st.lists(st.floats(0, 1e6), min_size=1, max_size=40),
        st.floats(0.0, 1.0),
    )
    def test_result_is_always_a_sample(self, samples, q):
        assert percentile(samples, q) in samples

    def test_loadtest_report_degrades_to_none_on_empty(self):
        from repro.serve.loadtest import LoadTestReport

        report = LoadTestReport(
            queries=10, concurrency=2, processes=1, duration_s=1.0, errors=10
        )
        assert report.completed == 0
        assert report.percentile(0.5) is None
        assert report.percentile(0.99, op="plan") is None
        doc = report.to_dict()
        assert doc["ops"] == {} or all(
            entry["count"] > 0 for entry in doc["ops"].values()
        )
