"""The plan server end to end: endpoints, validation, concurrency, restarts.

Everything runs against real ``ThreadingHTTPServer`` instances on
ephemeral ports — the same stack ``python -m repro.experiments serve``
boots — plus service-level checks that don't need a socket.
"""

import json
import threading

import pytest

from repro.experiments.base import get_experiment
from repro.plan import clear_caches, set_plan_store
from repro.serve import (
    PlanClient,
    PlanServer,
    PlanService,
    RequestError,
    ServeError,
    run_load_test,
    wait_ready,
)


@pytest.fixture(autouse=True)
def _isolated_caches():
    """Serving installs a process-wide store; never leak it across tests."""
    clear_caches()
    set_plan_store(None)
    yield
    clear_caches()
    set_plan_store(None)


@pytest.fixture
def server(tmp_path):
    with PlanServer(store=tmp_path / "store") as srv:
        yield srv


@pytest.fixture
def client(server):
    return PlanClient(server.host, server.port)


class TestServiceValidation:
    """Transport-independent request validation (no socket needed)."""

    @pytest.mark.parametrize(
        "op,params,code",
        [
            ("plan", {"strategy": "SPD-KFAC"}, "invalid_request"),
            ("plan", {"model": "nope", "strategy": "SPD-KFAC"}, "unknown_model"),
            ("plan", {"model": "ResNet-50", "strategy": "nope"}, "unknown_strategy"),
            ("plan", {"model": "ResNet-50"}, "invalid_request"),
            (
                "plan",
                {"model": "ResNet-50", "strategy": "SPD-KFAC", "gpus": 0},
                "invalid_request",
            ),
            (
                "plan",
                {"model": "ResNet-50", "strategy": "SPD-KFAC", "gpus": "four"},
                "invalid_request",
            ),
            (
                "plan",
                {
                    "model": "ResNet-50",
                    "strategy": "SPD-KFAC",
                    "gpus": 4,
                    "topology": "paper_testbed",
                },
                "invalid_request",
            ),
            (
                "plan",
                {"model": "ResNet-50", "strategy": "SPD-KFAC", "topology": "nope"},
                "unknown_topology",
            ),
            (
                "plan",
                {"model": "ResNet-50", "strategy": "SPD-KFAC", "scenario": "nope"},
                "unknown_scenario",
            ),
            (
                "simulate",
                {"model": "ResNet-50", "strategy": {"placement": "bogus"}},
                "invalid_strategy",
            ),
            ("autotune", {"model": "ResNet-50", "top": 0}, "invalid_request"),
            ("autotune", {"model": "ResNet-50", "top": True}, "invalid_request"),
            ("autotune", {"model": "ResNet-50", "prune": "yes"}, "invalid_request"),
            ("frobnicate", {}, "unknown_op"),
        ],
    )
    def test_rejections(self, op, params, code):
        service = PlanService()
        with pytest.raises(RequestError) as exc:
            service.handle(op, params)
        assert exc.value.code == code
        assert exc.value.to_dict()["error"]["code"] == code

    def test_strategy_axes_dict_accepted(self):
        service = PlanService()
        out = service.handle(
            "plan",
            {
                "model": "ResNet-50",
                "strategy": {"name": "custom", "placement": "balanced"},
                "gpus": 4,
            },
        )
        assert out["strategy"]["placement"] == "balanced"
        assert out["num_ranks"] == 4


class TestEndpoints:
    def test_health_and_stats(self, client):
        assert client.health()["status"] == "ok"
        stats = client.stats()
        assert stats["store"]["entries"] == 0
        assert "endpoints" in stats and "plan_cache" in stats

    def test_models_and_strategies(self, client):
        assert "ResNet-50" in client.models()
        strategies = client.strategies()
        assert "SPD-KFAC" in strategies
        assert strategies["SPD-KFAC"]["placement"] == "lbp"

    def test_plan_simulate_autotune(self, client):
        plan = client.plan("ResNet-50", "SPD-KFAC", gpus=4)
        assert plan["num_ranks"] == 4
        assert plan["source"] == "computed"
        assert len(plan["digest"]) == 16

        sim = client.simulate("ResNet-50", "SPD-KFAC", gpus=4)
        assert sim["digest"] == plan["digest"]
        assert sim["iteration_time"] > 0
        assert sim["source"] == "memory"  # the plan call simulated too

        tune = client.autotune("ResNet-50", gpus=4, top=2)
        assert tune["source"] == "computed"
        assert len(tune["candidates"]) == 2
        again = client.autotune("ResNet-50", gpus=4, top=2)
        assert again["source"] == "memory"
        assert again["best"] == tune["best"]

    def test_include_plan_roundtrips(self, client):
        from repro.plan import Plan

        out = client.plan("ResNet-50", "SPD-KFAC", gpus=4, include_plan=True)
        plan = Plan.from_dict(out["plan"])
        assert plan.digest() == out["plan_digest"]

    def test_http_errors_are_structured(self, client):
        with pytest.raises(ServeError) as exc:
            client.plan("nope", "SPD-KFAC")
        assert (exc.value.code, exc.value.status) == ("unknown_model", 404)
        with pytest.raises(ServeError) as exc:
            client.request("GET", "/bogus")
        assert exc.value.status == 404
        with pytest.raises(ServeError) as exc:
            client.request("POST", "/v1/frobnicate", {})
        assert (exc.value.code, exc.value.status) == ("unknown_op", 404)

    def test_malformed_body_rejected(self, client):
        import http.client

        conn = http.client.HTTPConnection(client.host, client.port, timeout=10)
        try:
            conn.request(
                "POST",
                "/v1/plan",
                body=b"not json",
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            body = json.loads(response.read())
            assert response.status == 400
            assert body["error"]["code"] == "invalid_request"
        finally:
            conn.close()

    def test_oversized_body_rejected(self, client):
        from repro.serve import MAX_BODY_BYTES

        with pytest.raises(ServeError) as exc:
            client.request("POST", "/v1/plan", {"pad": "x" * (MAX_BODY_BYTES + 1)})
        assert exc.value.status == 413


class TestConcurrencyAndRestart:
    def test_concurrent_clients_agree(self, server):
        """8 threads x mixed strategies: identical answers, no errors."""
        results = {}
        errors = []
        lock = threading.Lock()

        def worker():
            try:
                client = PlanClient(server.host, server.port)
                for name in ("SPD-KFAC", "MPD-KFAC", "S-SGD"):
                    out = client.simulate("ResNet-50", name, gpus=4)
                    with lock:
                        results.setdefault(name, set()).add(out["iteration_time"])
            except Exception as exc:  # pragma: no cover - failure signal
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert all(len(v) == 1 for v in results.values())

    def test_restart_answers_from_store(self, tmp_path):
        """A restarted server serves a previously-planned query from disk."""
        store_dir = tmp_path / "store"
        with PlanServer(store=store_dir) as first:
            cold = PlanClient(first.host, first.port).simulate(
                "ResNet-50", "SPD-KFAC", gpus=4
            )
            assert cold["source"] == "computed"

        clear_caches()  # kill the process' in-memory state
        set_plan_store(None)
        with PlanServer(store=store_dir) as second:
            warm = PlanClient(second.host, second.port).simulate(
                "ResNet-50", "SPD-KFAC", gpus=4
            )
        assert warm["source"] == "store"  # no re-simulation
        assert warm["iteration_time"] == cold["iteration_time"]  # bit-identical
        assert warm["categories"] == cold["categories"]
        assert warm["digest"] == cold["digest"]

    def test_graceful_shutdown_endpoint(self, tmp_path):
        server = PlanServer(store=tmp_path / "store").start()
        client = PlanClient(server.host, server.port)
        assert client.shutdown()["status"] == "shutting down"
        server.close()  # joins the serving thread; idempotent with /shutdown
        with pytest.raises(ServeError):
            PlanClient(server.host, server.port, timeout=0.5).health()

    def test_load_harness_small(self, server):
        report = run_load_test(
            server.host, server.port, queries=60, concurrency=4, seed=7
        )
        assert report.errors == 0
        assert report.completed == 60
        assert report.percentile(0.99) > 0
        doc = report.to_dict()
        assert doc["p50_s"] <= doc["p99_s"]
        assert set(doc["ops"]) <= {"plan", "simulate", "autotune"}
        assert report.to_text().startswith("load test: 60/60")

    def test_wait_ready_times_out_on_dead_port(self):
        with pytest.raises(ServeError):
            wait_ready("127.0.0.1", 1, timeout=0.3, interval=0.1)


class TestFrozenRowsWithStore:
    """The disk store must never change what the paper tables report."""

    def _frozen(self):
        from pathlib import Path

        path = Path(__file__).parent / "data" / "frozen_paper_rows.json"
        return json.loads(path.read_text())["fig2"]

    def _rows_hex(self, result):
        return [
            {k: (float.hex(v) if isinstance(v, float) else v) for k, v in row.items()}
            for row in result.rows
        ]

    @pytest.fixture(autouse=True)
    def _uninstall_store(self):
        # The installed store is process-global: leaving it behind would
        # point every later test at this test's (deleted) tmp dir.
        yield
        set_plan_store(None)
        clear_caches()

    def test_fig2_bit_identical_store_on_and_off(self, tmp_path):
        frozen = self._frozen()
        expected = frozen["rows"]

        clear_caches()
        baseline = self._rows_hex(get_experiment("fig2").run())
        assert baseline == expected  # store disabled

        store = set_plan_store(tmp_path / "store")
        clear_caches()
        cold = self._rows_hex(get_experiment("fig2").run())
        assert cold == expected  # store enabled, populating

        clear_caches()  # simulated restart: rows now replay from disk
        warm = self._rows_hex(get_experiment("fig2").run())
        assert warm == expected
        assert store.stats()["hits"] > 0  # the replay really hit the store


def test_serve_forever_foreground_shutdown(tmp_path):
    """The blocking serve loop (the CLI's foreground path) stops cleanly."""
    server = PlanServer(store=tmp_path / "store")
    thread = threading.Thread(
        target=server.serve_forever,
        kwargs={"install_signal_handlers": False},
        daemon=True,
    )
    thread.start()
    client = wait_ready(server.host, server.port)
    assert client.health()["status"] == "ok"
    server.shutdown()
    thread.join(timeout=10)
    assert not thread.is_alive()
