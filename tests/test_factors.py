"""Tests for Kronecker factor construction (Eqs. 6-9, KFC expansion)."""

import numpy as np
import pytest

from repro.core.factors import (
    conv_factor_A,
    conv_factor_G,
    kfac_layers,
    layer_factor_A,
    layer_factor_G,
    linear_factor_A,
    linear_factor_G,
)
from repro.nn import Conv2d, CrossEntropyLoss, Linear, ReLU, Sequential
from repro.nn.functional import im2col


class TestLinearFactors:
    def test_factor_a_is_input_second_moment(self, rng):
        x = rng.normal(size=(16, 5))
        a = linear_factor_A(x, has_bias=False)
        np.testing.assert_allclose(a, x.T @ x / 16)

    def test_bias_augmentation(self, rng):
        x = rng.normal(size=(8, 3))
        a = linear_factor_A(x, has_bias=True)
        assert a.shape == (4, 4)
        assert a[3, 3] == pytest.approx(1.0)  # E[1*1]
        np.testing.assert_allclose(a[3, :3], x.mean(axis=0))

    def test_factor_g_scaling(self, rng):
        g = rng.normal(size=(8, 4))
        factor = linear_factor_G(g, batch_size=8)
        np.testing.assert_allclose(factor, g.T @ g * 8)

    def test_symmetric_psd(self, rng):
        a = linear_factor_A(rng.normal(size=(32, 6)), has_bias=True)
        np.testing.assert_allclose(a, a.T)
        eigvals = np.linalg.eigvalsh(a)
        assert eigvals.min() >= -1e-10

    def test_input_validation(self):
        with pytest.raises(ValueError):
            linear_factor_A(np.zeros((2, 3, 4)), has_bias=False)
        with pytest.raises(ValueError):
            linear_factor_G(np.zeros((2, 3)), batch_size=0)


class TestConvFactors:
    def test_factor_a_matches_explicit_patch_expansion(self, rng):
        layer = Conv2d(2, 3, kernel_size=3, padding=1, rng=rng)
        x = rng.normal(size=(4, 2, 5, 5))
        a = conv_factor_A(x, layer)
        cols = im2col(x, (3, 3), 1, 1)
        np.testing.assert_allclose(a, cols.T @ cols / cols.shape[0])

    def test_factor_g_shape_and_scaling(self, rng):
        g = rng.normal(size=(4, 6, 3, 3))
        factor = conv_factor_G(g, batch_size=4)
        assert factor.shape == (6, 6)
        gmat = g.transpose(0, 2, 3, 1).reshape(-1, 6)
        np.testing.assert_allclose(factor, gmat.T @ gmat * (4 / 9))

    def test_dims_match_spec_convention(self, rng):
        """conv factor dims equal C_in*k*k and C_out, matching LayerSpec."""
        layer = Conv2d(4, 7, kernel_size=3, padding=1, rng=rng)
        x = rng.normal(size=(2, 4, 6, 6))
        layer(x)
        a = conv_factor_A(x, layer)
        g = conv_factor_G(rng.normal(size=(2, 7, 6, 6)), batch_size=2)
        assert a.shape == (36, 36)
        assert g.shape == (7, 7)


class TestExactFisherProperty:
    def test_batch_one_kron_product_equals_fisher_block(self, rng):
        """With N=1, A (x) G equals the exact empirical Fisher block
        vec(gbar xbar^T) vec(gbar xbar^T)^T of a linear layer."""
        x = rng.normal(size=(1, 4))
        gbar = rng.normal(size=(1, 3))  # per-sample sum-loss gradient
        g_mean = gbar / 1  # mean-loss convention with N=1
        a = linear_factor_A(x, has_bias=False)
        g = linear_factor_G(g_mean, batch_size=1)
        kron = np.kron(a, g)
        grad_matrix = gbar.T @ x  # dL/dW (out, in)
        flat = grad_matrix.reshape(-1, order="F")  # vec over (in-major)
        exact = np.outer(flat, flat)
        # kron(a, g)[in-major vec] corresponds to A (x) G ordering.
        np.testing.assert_allclose(kron, exact, atol=1e-12)


class TestDispatch:
    def test_kfac_layers_finds_all_in_order(self, rng):
        net = Sequential(
            Conv2d(1, 2, 3, rng=rng), ReLU(), Linear(4, 3, rng=rng), Linear(3, 2, rng=rng)
        )
        layers = kfac_layers(net)
        assert [type(m).__name__ for m in layers] == ["Conv2d", "Linear", "Linear"]

    def test_layer_factor_dispatch(self, rng):
        lin = Linear(4, 2, rng=rng)
        assert layer_factor_A(lin, rng.normal(size=(3, 4))).shape == (5, 5)
        assert layer_factor_G(lin, rng.normal(size=(3, 2)), 3).shape == (2, 2)
        conv = Conv2d(2, 3, kernel_size=2, rng=rng)
        assert layer_factor_A(conv, rng.normal(size=(2, 2, 4, 4))).shape == (8, 8)

    def test_unsupported_layer_type(self):
        with pytest.raises(TypeError):
            layer_factor_A(ReLU(), np.zeros((1, 1)))

    def test_loss_grad_convention_consistency(self, rng):
        """End-to-end: factors built from the hooks' tensors with the
        mean-reduced CrossEntropyLoss have the advertised scaling."""
        net = Sequential(Linear(5, 4, rng=rng))
        loss = CrossEntropyLoss()
        x = rng.normal(size=(8, 5))
        y = rng.integers(0, 4, 8)
        loss(net(x), y)
        net.run_backward(loss.backward())
        layer = net.layers[0]
        g = linear_factor_G(layer.last_grad_output, batch_size=8)
        # G = N * g^T g where g carries a 1/N factor -> magnitude ~ E[ghat ghat^T]/N... (finite)
        assert np.isfinite(g).all()
        assert np.linalg.eigvalsh(g).min() >= -1e-12
