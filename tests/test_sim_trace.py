"""Tests for the Perfetto trace exporter (repro.sim.trace).

Covers the satellite contract: JSON schema validity, rank/stream
pid/tid mapping, flow events matching the graph's dependency edges, and
per-category slice durations agreeing bit-identically with
``Timeline.breakdown()`` on a gapless single-rank schedule.
"""

import json

import numpy as np
import pytest

from repro.plan import build_strategy_graph
from repro.perf import scaled_cluster_profile
from repro.sim import Phase, TaskGraph, critical_path_report, simulate
from repro.sim.trace import (
    COMM_TID,
    COMPUTE_TID,
    CRITICAL_CATEGORY,
    FLOW_CATEGORY,
    OUTSTANDING_COMM_COUNTER,
    QUEUE_DEPTH_COUNTER,
    perfetto_trace,
    save_trace,
)


def build_two_rank_graph():
    """2 ranks: local compute feeding a collective, plus a follower."""
    g = TaskGraph(2)
    a0 = g.add_compute("a0", Phase.FORWARD, 0, 1.0)
    a1 = g.add_compute("a1", Phase.FORWARD, 1, 2.0)
    ar = g.add_collective("ar", Phase.GRAD_COMM, [0, 1], 1.5, deps=[a0, a1])
    g.add_compute("u0", Phase.UPDATE, 0, 0.5, deps=[ar])
    return g


@pytest.fixture(scope="module")
def traced():
    graph = build_two_rank_graph()
    timeline = simulate(graph)
    return graph, timeline, perfetto_trace(timeline, graph)


class TestSchema:
    def test_top_level_shape(self, traced):
        _, timeline, trace = traced
        assert set(trace) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert trace["displayTimeUnit"] == "ms"
        other = trace["otherData"]
        assert other["makespan_s"] == timeline.makespan
        assert other["num_ranks"] == 2
        assert other["tasks"] == 4
        assert other["events"] == len(trace["traceEvents"])

    def test_every_event_has_required_fields(self, traced):
        _, _, trace = traced
        for event in trace["traceEvents"]:
            assert {"ph", "pid"} <= set(event)
            if event["ph"] == "X":
                assert {"name", "cat", "ts", "dur", "tid"} <= set(event)
                assert event["dur"] >= 0.0
            elif event["ph"] in ("s", "f"):
                assert {"id", "ts", "tid"} <= set(event)
            elif event["ph"] == "C":
                assert "args" in event

    def test_json_serializable_and_deterministic(self, traced, tmp_path):
        _, _, trace = traced
        path = tmp_path / "trace.json"
        save_trace(path, trace)  # a Path, not a str: os.PathLike accepted
        loaded = json.loads(path.read_text())
        assert loaded["otherData"]["tasks"] == 4
        # Deterministic bytes: a second save is identical.
        path2 = tmp_path / "trace2.json"
        save_trace(str(path2), trace)
        assert path.read_bytes() == path2.read_bytes()


class TestPidTidMapping:
    def test_slices_land_on_participating_ranks(self, traced):
        graph, _, trace = traced
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"
                  and e["cat"] != CRITICAL_CATEGORY]
        # One slice per (task, participating rank): 3 singles + 1 gang of 2.
        assert len(slices) == 5
        by_name = {}
        for e in slices:
            by_name.setdefault(e["name"], []).append(e["pid"])
        assert by_name["a0"] == [0]
        assert by_name["a1"] == [1]
        assert sorted(by_name["ar"]) == [0, 1]

    def test_stream_tid_mapping(self, traced):
        _, _, trace = traced
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"
                  and e["cat"] != CRITICAL_CATEGORY]
        for e in slices:
            expected = COMM_TID if e["name"] == "ar" else COMPUTE_TID
            assert e["tid"] == expected

    def test_process_and_thread_metadata(self, traced):
        _, _, trace = traced
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        process_names = {
            e["pid"]: e["args"]["name"]
            for e in meta
            if e["name"] == "process_name"
        }
        assert process_names[0] == "rank 0"
        assert process_names[1] == "rank 1"
        assert process_names[2] == "critical path"
        thread_names = {
            (e["pid"], e["tid"]): e["args"]["name"]
            for e in meta
            if e["name"] == "thread_name"
        }
        assert thread_names[(0, COMPUTE_TID)] == "compute stream"
        assert thread_names[(1, COMM_TID)] == "comm stream"


class TestFlowEvents:
    def test_flows_match_graph_edges(self, traced):
        graph, timeline, trace = traced
        starts = [e for e in trace["traceEvents"] if e["ph"] == "s"]
        finishes = [e for e in trace["traceEvents"] if e["ph"] == "f"]
        edges = [(d, t.tid) for t in graph.tasks for d in t.deps]
        assert len(starts) == len(finishes) == len(edges)
        by_id = {e["id"]: e for e in starts}
        state = {t.tid: t for t in graph.tasks}
        for fin in finishes:
            assert fin["bp"] == "e"
            src = by_id[fin["id"]]
            assert src["cat"] == FLOW_CATEGORY
            # Each pair ties a predecessor's end to a successor's start.
            pred_end = src["ts"] / 1e6
            succ_start = fin["ts"] / 1e6
            assert succ_start >= pred_end - 1e-12
        # Every declared edge appears exactly once, anchored at end/start.
        entry = {e.task.tid: e for e in timeline.entries}
        flow_pairs = sorted(
            (src["ts"], fin["ts"])
            for src, fin in ((by_id[f["id"]], f) for f in finishes)
        )
        edge_pairs = sorted(
            (entry[d].end * 1e6, entry[t].start * 1e6) for d, t in edges
        )
        assert flow_pairs == pytest.approx(edge_pairs)

    def test_flows_can_be_disabled(self, traced):
        graph, timeline, _ = traced
        trace = perfetto_trace(timeline, graph, flows=False)
        assert not [e for e in trace["traceEvents"] if e["ph"] in ("s", "f")]


class TestCounterTracks:
    def test_counters_step_down_to_zero(self, traced):
        _, _, trace = traced
        counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
        assert counters
        for rank in (0, 1):
            depth = [
                e for e in counters
                if e["pid"] == rank and e["name"] == QUEUE_DEPTH_COUNTER
            ]
            outstanding = [
                e for e in counters
                if e["pid"] == rank and e["name"] == OUTSTANDING_COMM_COUNTER
            ]
            # One comm task per rank: initial sample + one step.
            assert [e["args"]["tasks"] for e in depth] == [1, 0]
            assert outstanding[0]["args"]["seconds"] == pytest.approx(1.5)
            assert outstanding[-1]["args"]["seconds"] == 0.0

    def test_counters_can_be_disabled(self, traced):
        graph, timeline, _ = traced
        trace = perfetto_trace(timeline, graph, counters=False)
        assert not [e for e in trace["traceEvents"] if e["ph"] == "C"]


class TestCriticalTrack:
    def test_critical_track_replays_the_chain(self, traced):
        graph, timeline, trace = traced
        report = critical_path_report(graph, timeline)
        track = [
            e for e in trace["traceEvents"]
            if e["ph"] == "X" and e.get("cat") == CRITICAL_CATEGORY
        ]
        assert [e["args"]["tid"] for e in track] == list(report.critical_tids)
        assert all(e["pid"] == 2 for e in track)  # pid = num_ranks
        assert sum(e["dur"] for e in track) / 1e6 == pytest.approx(
            timeline.makespan
        )

    def test_precomputed_report_is_used(self, traced):
        graph, timeline, _ = traced
        report = critical_path_report(graph, timeline)
        trace = perfetto_trace(timeline, graph, report=report)
        assert trace["otherData"]["critical_path"] == report.to_dict()

    def test_critical_can_be_disabled(self, traced):
        graph, timeline, _ = traced
        trace = perfetto_trace(timeline, graph, critical=False)
        assert "critical_path" not in trace["otherData"]
        assert not [
            e for e in trace["traceEvents"]
            if e.get("cat") == CRITICAL_CATEGORY
        ]


class TestBreakdownAgreement:
    def test_per_category_durations_match_breakdown_bit_identically(self):
        """On a gapless single-rank serial schedule the breakdown has no
        idle or overlap attribution, so summing slice durations per
        category must reproduce it bit-for-bit."""
        g = TaskGraph(1)
        a = g.add_compute("f", Phase.FORWARD, 0, 0.125)
        b = g.add_compute("b", Phase.BACKWARD, 0, 0.25, deps=[a])
        c = g.add_collective("ar", Phase.GRAD_COMM, [0], 0.5, deps=[b])
        g.add_compute("u", Phase.UPDATE, 0, 0.0625, deps=[c])
        timeline = simulate(g)
        trace = perfetto_trace(timeline, g, critical=False)
        sums = {}
        for e in trace["traceEvents"]:
            if e["ph"] == "X":
                sums[e["cat"]] = sums.get(e["cat"], 0.0) + e["dur"] / 1e6
        assert sums == timeline.breakdown().seconds


class TestBackingPaths:
    def test_columnar_and_object_chrome_traces_agree(self):
        graph = build_two_rank_graph()
        timeline = simulate(graph)
        fast = timeline.to_chrome_trace()
        _ = timeline.entries  # materialize the object view
        # Rebuild a timeline that only has entries (no columnar state).
        from repro.sim.timeline import Timeline

        slow_tl = Timeline(num_ranks=2, entries=list(timeline.entries))
        slow = slow_tl.to_chrome_trace()
        key = lambda e: (e["pid"], e["tid"], e["ts"], e["name"])
        assert sorted(fast, key=key) == sorted(slow, key=key)

    def test_entries_only_timeline_exports(self):
        from repro.sim.timeline import Timeline

        graph = build_two_rank_graph()
        timeline = simulate(graph)
        bare = Timeline(num_ranks=2, entries=list(timeline.entries))
        trace = perfetto_trace(bare)  # no graph: falls back to entries
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(slices) == 5
        assert "critical_path" not in trace["otherData"]

    def test_save_chrome_trace_accepts_pathlike(self, tmp_path):
        timeline = simulate(build_two_rank_graph())
        path = tmp_path / "chrome.json"
        timeline.save_chrome_trace(path)  # a Path, not a str
        data = json.loads(path.read_text())
        assert len(data["traceEvents"]) == 5

    def test_empty_graph_trace(self):
        g = TaskGraph(1)
        trace = perfetto_trace(simulate(g), g)
        assert trace["otherData"]["tasks"] == 0
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert slices == []


class TestOnRealSchedule:
    def test_spd_kfac_trace_is_complete(self):
        from tests.conftest import build_tiny_spec

        graph = build_strategy_graph(
            build_tiny_spec(num_layers=4), scaled_cluster_profile(4), "SPD-KFAC"
        )
        timeline = simulate(graph)
        trace = perfetto_trace(timeline, graph)
        events = trace["traceEvents"]
        phases = {e["ph"] for e in events}
        assert {"M", "X", "s", "f", "C"} <= phases
        n_occurrences = sum(len(t.ranks) for t in graph.tasks)
        slices = [
            e for e in events
            if e["ph"] == "X" and e["cat"] != CRITICAL_CATEGORY
        ]
        assert len(slices) == n_occurrences
        n_edges = sum(len(t.deps) for t in graph.tasks)
        assert len([e for e in events if e["ph"] == "s"]) == n_edges
