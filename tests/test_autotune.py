"""Unit tests for the strategy autotuner: grid, bounds, traffic, tuner."""

import json

import pytest

from repro.autotune import (
    FACTOR_AXES,
    SECOND_ORDER_PRESETS,
    autotune,
    candidate_bound,
    matching_preset,
    pareto_frontier,
    plan_traffic,
    parts_traffic,
    strategy_grid,
    strategy_label,
)
from repro.comm import packed_size
from repro.models import get_model_spec
from repro.models.builder import SpecBuilder
from repro.perf import scaled_cluster_profile
from repro.plan import Session, resolve_plan_parts, strategy_registry
from repro.sim import stream_lower_bounds


def small_spec():
    builder = SpecBuilder(model_name="tiny", batch_size=4, input_size=16)
    builder.conv("conv0", 3, 8, kernel=3, stride=1, padding="same")
    builder.conv("conv1", 8, 8, kernel=3, stride=1, padding="same")
    builder.linear("fc", 8, 10)
    return builder.build()


@pytest.fixture(scope="module")
def profile4():
    return scaled_cluster_profile(4)


class TestGrid:
    def test_size_and_validity(self):
        grid = strategy_grid()
        # 2 gradient reductions x 9 factor combos x 4 placements.
        assert len(grid) == 72
        assert len({s.name for s in grid}) == len(grid)
        for s in grid:
            assert s.second_order and s.distributed and s.include_solve

    def test_collective_axis_multiplies(self):
        grid = strategy_grid(collectives=("auto", "ring", "tree", "hierarchical"))
        assert len(grid) == 288

    def test_unknown_collective_rejected(self):
        with pytest.raises(ValueError, match="unknown collective"):
            strategy_grid(collectives=("warp",))

    def test_factor_axes_cover_validator(self):
        # Every (fusion, pipelined, combined) triple the validator accepts
        # must be in FACTOR_AXES, and vice versa.
        from repro.core.pipeline import FACTOR_FUSION_POLICIES
        from repro.plan import TrainingStrategy

        valid = set()
        for fusion in FACTOR_FUSION_POLICIES:
            for pipelined in (True, False):
                for combined in (True, False):
                    try:
                        TrainingStrategy(
                            factor_fusion=fusion,
                            factor_pipelining=pipelined,
                            combine_factor_passes=combined,
                            placement="lbp",
                        )
                    except ValueError:
                        continue
                    valid.add((fusion, pipelined, combined))
        assert valid == set(FACTOR_AXES)

    def test_presets_are_grid_points(self):
        grid_axes = {
            s.but(name="x") for s in strategy_grid(
                collectives=("auto", "ring", "tree", "hierarchical")
            )
        }
        for name in SECOND_ORDER_PRESETS:
            assert strategy_registry[name].but(name="x") in grid_axes

    def test_labels_roundtrip_axes(self):
        for s in strategy_grid():
            assert s.name == strategy_label(s)
            assert s.gradient_reduction in s.name
            assert s.placement in s.name


class TestMatchingPreset:
    def test_presets_match_themselves(self):
        for name in ("SGD", "S-SGD", "KFAC", "D-KFAC", "MPD-KFAC", "SPD-KFAC"):
            assert matching_preset(strategy_registry[name]) == name

    def test_renamed_axes_still_match(self):
        spd = strategy_registry["SPD-KFAC"].but(name="anything")
        assert matching_preset(spd) == "SPD-KFAC"

    def test_custom_combo_matches_nothing(self):
        custom = strategy_registry["SPD-KFAC"].but(placement="balanced")
        assert matching_preset(custom) is None


class TestBounds:
    def test_bound_below_simulated_time_full_grid(self, profile4):
        spec = small_spec()
        session = Session(spec, profile4)
        for s in strategy_grid():
            num_ranks, grad_plan, fplan, placement = resolve_plan_parts(
                spec, profile4, s
            )
            bound = candidate_bound(
                spec, profile4, num_ranks=num_ranks, grad_plan=grad_plan,
                fplan=fplan, placement=placement, include_solve=s.include_solve,
            )
            plan = session.plan(s)
            assert bound.total <= plan.predicted_makespan + 1e-12, s.name
            # ... and the graph-level bound sits between them.
            compute, comm = stream_lower_bounds(plan.build_graph(spec))
            assert bound.compute <= compute + 1e-12
            assert bound.comm == pytest.approx(comm, rel=1e-12)
            assert max(compute, comm) <= plan.predicted_makespan + 1e-12

    def test_components_nonnegative(self, profile4):
        spec = small_spec()
        s = strategy_grid()[0]
        num_ranks, grad_plan, fplan, placement = resolve_plan_parts(spec, profile4, s)
        bound = candidate_bound(
            spec, profile4, num_ranks=num_ranks, grad_plan=grad_plan,
            fplan=fplan, placement=placement,
        )
        assert bound.compute > 0
        assert bound.comm > 0
        assert bound.total == max(bound.compute, bound.comm, bound.chain)


class TestTraffic:
    def test_plan_traffic_matches_parts(self, profile4):
        spec = small_spec()
        session = Session(spec, profile4)
        plan = session.plan("SPD-KFAC")
        counter = plan_traffic(plan, spec)
        parts = parts_traffic(
            spec, num_ranks=plan.num_ranks, grad_plan=plan.grad_plan,
            fplan=plan.factor_plan, placement=plan.placement,
        )
        assert counter.as_dict() == parts.as_dict()

    def test_gradient_traffic_is_sum_of_layer_params(self, profile4):
        spec = small_spec()
        plan = Session(spec, profile4).plan("SPD-KFAC")
        counter = plan_traffic(plan, spec)
        assert counter.elements["allreduce.grad"] == sum(
            layer.num_params for layer in spec.layers
        )

    def test_non_dist_placement_broadcasts_nothing(self, profile4):
        spec = small_spec()
        session = Session(spec, profile4)
        spd = strategy_registry["SPD-KFAC"]
        lbp_traffic = plan_traffic(session.plan(spd), spec)
        local = plan_traffic(
            session.plan(spd.but(name="local", placement="non_dist")), spec
        )
        assert "broadcast.inverse" not in local.elements
        assert local.total_bytes() <= lbp_traffic.total_bytes()

    def test_ct_broadcasts_are_packed_symmetric(self, profile4):
        spec = small_spec()
        plan = Session(spec, profile4).plan("MPD-KFAC")
        counter = plan_traffic(plan, spec)
        expected = sum(
            packed_size(d)
            for i, d in enumerate(plan.placement.dims)
            if not plan.placement.is_nct(i)
        )
        assert counter.elements["broadcast.inverse"] == expected

    def test_mismatched_spec_rejected(self, profile4):
        plan = Session(small_spec(), profile4).plan("SPD-KFAC")
        with pytest.raises(ValueError, match="does not match"):
            plan_traffic(plan, get_model_spec("ResNet-50"))


class TestTuner:
    @pytest.fixture(scope="class")
    def report(self):
        return autotune(small_spec(), scaled_cluster_profile(4))

    def test_best_at_least_matches_best_preset(self, report):
        _, preset_time = report.best_preset
        assert report.best.iteration_time <= preset_time
        assert report.speedup_over_presets >= 1.0

    def test_ranked_order(self, report):
        simulated = [o for o in report.outcomes if o.iteration_time is not None]
        times = [o.iteration_time for o in simulated]
        assert times == sorted(times)
        pruned = report.outcomes[len(simulated):]
        assert all(o.iteration_time is None for o in pruned)
        bounds = [o.bound.total for o in pruned]
        assert bounds == sorted(bounds)

    def test_stats_consistent(self, report):
        stats = report.stats
        assert stats["candidates"] == 72
        assert (
            stats["simulated"] + stats["reused"] + stats["pruned"]
            == stats["candidates"]
        )
        assert len(report.outcomes) == stats["candidates"]

    def test_pruned_candidates_cannot_beat_best(self, report):
        best = report.best.iteration_time
        for o in report.outcomes:
            if o.iteration_time is None:
                assert o.bound.total >= best

    def test_preset_twins_carry_preset_results(self, report):
        for name in SECOND_ORDER_PRESETS:
            twin = [o for o in report.outcomes if o.preset == name]
            assert twin, name
            assert twin[0].iteration_time == report.preset_times[name]

    def test_pareto_frontier_nondominated(self, report):
        frontier = pareto_frontier(report.outcomes)
        assert frontier
        assert frontier[0].iteration_time == report.best.iteration_time
        for a in frontier:
            for b in frontier:
                if a is not b:
                    dominated = (
                        b.iteration_time <= a.iteration_time
                        and b.traffic_bytes <= a.traffic_bytes
                    )
                    assert not dominated

    def test_report_serializes(self, report, tmp_path):
        payload = json.loads(report.to_json())
        assert payload["model"] == "tiny"
        assert payload["stats"]["candidates"] == 72
        path = tmp_path / "report.json"
        report.save(str(path))
        assert json.loads(path.read_text())["best"] == payload["best"]

    def test_to_text_mentions_best_preset(self, report):
        text = report.to_text(top_k=5)
        assert "best preset" in text
        assert "pareto" in text

    def test_no_prune_finds_same_best(self, report):
        full = autotune(small_spec(), scaled_cluster_profile(4), prune=False)
        assert full.stats["pruned"] == 0
        assert full.best.iteration_time == report.best.iteration_time

    def test_session_autotune_delegates(self):
        session = Session(small_spec(), scaled_cluster_profile(4))
        report = session.autotune(presets=("SPD-KFAC",))
        assert set(report.preset_times) == {"SPD-KFAC"}

    def test_custom_candidates_shortlist(self):
        spd = strategy_registry["SPD-KFAC"]
        report = autotune(
            small_spec(),
            scaled_cluster_profile(4),
            candidates=[spd.but(name="custom"), spd.but(placement="balanced")],
        )
        assert report.stats["candidates"] == 2

    def test_session_and_cluster_conflict_rejected(self):
        session = Session(small_spec(), scaled_cluster_profile(4))
        with pytest.raises(ValueError, match="not both"):
            autotune(session, 8)

    def test_fully_pruned_shortlist_reports_gracefully(self):
        # A shortlist whose only candidate cannot beat the presets is
        # pruned entirely; the report must render instead of crashing.
        slow = strategy_registry["SPD-KFAC"].but(
            name="slow",
            gradient_reduction="bulk",
            factor_fusion="none",
            placement="non_dist",
        )
        report = autotune(
            small_spec(), scaled_cluster_profile(4), candidates=[slow]
        )
        assert report.stats["candidates"] == 1
        if report.stats["pruned"] == 1:
            with pytest.raises(ValueError, match="pruned"):
                report.best
            assert report.to_dict()["best"] is None
        text = report.to_text()
        assert "best preset" in text

    def test_no_presets_reports_gracefully(self):
        report = autotune(
            small_spec(), scaled_cluster_profile(4), presets=()
        )
        with pytest.raises(ValueError, match="no presets"):
            report.best_preset
        assert report.best.iteration_time > 0
        payload = report.to_dict()
        assert payload["best_preset"] is None
        assert payload["speedup_over_presets"] is None
        assert "best found" in report.to_text()


class TestTunerOnTopology:
    def test_collective_axis_searched(self):
        from repro.topo import multi_rack

        topo = multi_rack(2, 2, 2, intra="nvlink", inter="ib", spine="ethernet")
        report = autotune(small_spec(), topo)
        assert report.stats["candidates"] == 288
        assert report.world_size == 8
        collectives = {o.strategy.collective for o in report.outcomes}
        assert collectives == {"auto", "ring", "tree", "hierarchical"}
        _, preset_time = report.best_preset
        assert report.best.iteration_time <= preset_time
