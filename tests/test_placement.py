"""Tests for inverse placement strategies (Section IV-B, Algorithm 1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.placement import (
    Placement,
    balanced_placement,
    lbp_placement,
    non_dist_placement,
    seq_dist_placement,
)
from repro.perf import CubicComputeModel, ExpComputeModel, LinearCommModel

COMP = ExpComputeModel(alpha=3.64e-3, beta=4.77e-4)
COMM = LinearCommModel(alpha=1.59e-2, beta=7.85e-10)


class TestPlacementValidation:
    def test_assignment_count_must_match(self):
        with pytest.raises(ValueError):
            Placement(2, (4, 5), ((0,),))

    def test_partial_replication_rejected(self):
        """Eq. 17-19: a tensor is on one rank or on all ranks, not some."""
        with pytest.raises(ValueError):
            Placement(3, (4,), ((0, 1),))

    def test_rank_out_of_range(self):
        with pytest.raises(ValueError):
            Placement(2, (4,), ((5,),))

    def test_owner_of_nct_raises(self):
        placement = non_dist_placement([4, 5], 3)
        with pytest.raises(ValueError):
            placement.owner(0)


class TestBaselines:
    def test_non_dist_all_nct(self):
        placement = non_dist_placement([10, 20, 30], 4)
        assert all(placement.is_nct(i) for i in range(3))
        assert placement.num_cts() == 0
        assert placement.tensors_on(2) == [0, 1, 2]

    def test_seq_dist_round_robin(self):
        placement = seq_dist_placement([1, 2, 3, 4, 5], 2)
        assert [placement.owner(i) for i in range(5)] == [0, 1, 0, 1, 0]
        assert placement.num_cts() == 5

    def test_seq_dist_idle_ranks_when_fewer_tensors(self):
        """2L < P leaves GPUs idle — the paper's Eq. 22 observation."""
        placement = seq_dist_placement([8, 8], 4)
        assert placement.tensors_on(2) == []
        assert placement.tensors_on(3) == []

    def test_balanced_spreads_by_d_squared(self):
        # One huge tensor + many small: huge goes alone to one rank.
        placement = balanced_placement([100, 1, 1, 1, 1, 1], 2)
        heavy_rank = placement.owner(0)
        light = [placement.owner(i) for i in range(1, 6)]
        assert all(r != heavy_rank for r in light)


class TestLBP:
    def test_small_tensors_become_nct(self):
        """Below the Fig. 11 crossover (~3700 with the paper fits) LBP
        must choose NCT."""
        placement = lbp_placement([64, 512, 1024], 4, COMP, COMM)
        assert all(placement.is_nct(i) for i in range(3))

    def test_large_tensors_become_ct(self):
        placement = lbp_placement([8192, 6000, 64], 4, COMP, COMM)
        assert not placement.is_nct(0)
        assert not placement.is_nct(1)
        assert placement.is_nct(2)

    def test_ct_load_balancing(self):
        """Equal-size CTs land on distinct least-loaded ranks."""
        placement = lbp_placement([8192, 8192, 8192, 8192], 4, COMP, COMM)
        owners = {placement.owner(i) for i in range(4)}
        assert len(owners) == 4

    def test_single_rank_everything_local(self):
        placement = lbp_placement([8192, 64], 1, COMP, COMM)
        assert placement.num_cts() == 0

    def test_weight_variants(self):
        square = lbp_placement([8192, 8192, 64], 2, COMP, COMM, weight="square")
        linear = lbp_placement([8192, 8192, 64], 2, COMP, COMM, weight="linear")
        assert square.num_cts() == linear.num_cts() == 2
        with pytest.raises(ValueError):
            lbp_placement([64], 2, COMP, COMM, weight="cubic")

    def test_estimated_completion_lbp_beats_non_dist(self):
        """Eq. 21 objective: LBP's estimate beats Non-Dist on a mixed
        workload (it only differs by distributing the CT-worthy tensors).

        Note Eq. 21 bills a broadcast only to its *owner* rank, so under
        that objective all-CT Seq-Dist can look spuriously cheap; the
        receive-side serialization that makes LBP beat Seq-Dist in
        practice is asserted at the simulator level (Fig. 12 tests in
        test_experiments.py).
        """
        comp = CubicComputeModel(overhead=7e-4, coeff=0.175 / 8192**3)
        comm = LinearCommModel(alpha=7.7e-4, beta=7.85e-10)
        dims = [4608] * 3 + [2304] * 6 + [1024] * 10 + [256] * 40 + [64] * 40
        lbp = lbp_placement(dims, 8, comp, comm)
        non = non_dist_placement(dims, 8)
        assert lbp.estimated_completion(comp, comm) <= non.estimated_completion(comp, comm)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            lbp_placement([], 2, COMP, COMM)
        with pytest.raises(ValueError):
            lbp_placement([0], 2, COMP, COMM)
        with pytest.raises(ValueError):
            lbp_placement([4], 0, COMP, COMM)

    def test_works_with_execution_models(self):
        """Duck-typed models: the simulator's cubic/streamed pair."""
        cubic = CubicComputeModel(overhead=7e-4, coeff=0.175 / 8192**3)
        streamed = LinearCommModel(alpha=7.7e-4, beta=7.85e-10)
        placement = lbp_placement([2048, 512, 64], 4, cubic, streamed)
        assert placement.num_cts() >= 1  # 2048 is CT under execution models


@settings(max_examples=80, deadline=None)
@given(
    st.lists(st.integers(min_value=1, max_value=8192), min_size=1, max_size=40),
    st.integers(min_value=1, max_value=8),
)
def test_lbp_partition_validity_property(dims, num_ranks):
    """Every tensor placed (Eq. 16); CT/NCT exclusivity (Eq. 17-19);
    the CT/NCT rule followed exactly."""
    placement = lbp_placement(dims, num_ranks, COMP, COMM)
    assert len(placement.assignments) == len(dims)
    for i, d in enumerate(dims):
        ranks = placement.assignments[i]
        assert len(ranks) in (1, num_ranks)
        if num_ranks > 1:
            should_be_nct = COMP.time(d) < COMM.time_symmetric(d)
            assert placement.is_nct(i) == should_be_nct


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(min_value=3800, max_value=8192), min_size=4, max_size=24),
    st.integers(min_value=2, max_value=6),
)
def test_lbp_balance_bound_property(dims, num_ranks):
    """For all-CT workloads, greedy LPT's max d^2-load is within the
    classic (4/3 + small) factor of the mean load for these sizes; we
    assert the weaker but sufficient 2x bound."""
    placement = lbp_placement(dims, num_ranks, COMP, COMM)
    if placement.num_cts() != len(dims):
        return  # mixed workloads have no such bound
    loads = [0.0] * num_ranks
    for i, d in enumerate(dims):
        loads[placement.owner(i)] += float(d) ** 2
    mean = sum(loads) / num_ranks
    biggest_item = max(float(d) ** 2 for d in dims)
    assert max(loads) <= max(2.0 * mean, biggest_item) + 1e-6
