"""Tests for the benchmark snapshot / regression-comparison utilities."""

from __future__ import annotations

import pytest

from repro.perf.regression import (
    BenchmarkResult,
    compare_snapshots,
    format_comparison,
    has_regressions,
    load_snapshot,
    make_snapshot,
    save_snapshot,
    time_callable,
)


def snapshot_of(**seconds):
    return make_snapshot(
        {name: BenchmarkResult(name=name, seconds=s, rounds=3) for name, s in seconds.items()}
    )


class TestSnapshotRoundtrip:
    def test_save_load(self, tmp_path):
        path = str(tmp_path / "BENCH_kernels.json")
        snapshot = snapshot_of(sim=0.04, inverse=0.003)
        save_snapshot(path, snapshot)
        loaded = load_snapshot(path)
        assert loaded["schema"] == 1
        assert loaded["benchmarks"]["sim"]["seconds"] == pytest.approx(0.04)
        assert loaded["benchmarks"]["inverse"]["rounds"] == 3

    def test_load_rejects_non_snapshot(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError, match="not a benchmark snapshot"):
            load_snapshot(str(path))

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text('{"schema": 99, "benchmarks": {}}')
        with pytest.raises(ValueError, match="schema"):
            load_snapshot(str(path))


class TestComparison:
    def test_statuses(self):
        before = snapshot_of(a=1.0, b=1.0, c=1.0, gone=1.0)
        after = snapshot_of(a=0.5, b=2.0, c=1.01, fresh=1.0)
        rows = {row.name: row for row in compare_snapshots(before, after)}
        assert rows["a"].status == "faster"
        assert rows["a"].speedup == pytest.approx(2.0)
        assert rows["b"].status == "slower"
        assert rows["c"].status == "same"  # within 5% noise
        assert rows["gone"].status == "removed"
        assert rows["fresh"].status == "new"

    def test_has_regressions(self):
        before, after = snapshot_of(a=1.0), snapshot_of(a=1.5)
        assert has_regressions(compare_snapshots(before, after))
        assert not has_regressions(compare_snapshots(before, before))

    def test_format_lists_every_benchmark(self):
        before = snapshot_of(alpha=1.0, beta=2e-3)
        after = snapshot_of(alpha=0.25, beta=2e-3)
        text = format_comparison(compare_snapshots(before, after))
        assert "alpha" in text and "beta" in text
        assert "4.00x" in text
        assert "1 faster, 0 slower" in text

    def test_empty_comparison(self):
        assert "no benchmarks" in format_comparison([])


class TestTimeCallable:
    def test_counts_and_median(self):
        calls = []
        result = time_callable(lambda: calls.append(1), rounds=5, warmup=2)
        assert len(calls) == 7  # warmup + timed
        assert result.rounds == 5
        assert result.seconds >= 0.0

    def test_rejects_zero_rounds(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, rounds=0)
