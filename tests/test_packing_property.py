"""Property tests: cached symmetric packing is bit-identical to the
uncached reference.

``pack_symmetric``/``unpack_symmetric`` memoize their triangle index
patterns per dimension; nothing about the wire format may change.  The
reference implementations below rebuild the indices from scratch on
every call (the seed's behaviour) and every comparison is exact
(``assert_array_equal``), across dtypes and dimensions, including the
preallocated-buffer packing path used by the fused all-reduce.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import pack_symmetric, packed_size, unpack_symmetric

DTYPES = (np.float64, np.float32, np.int64, np.int32)


def reference_pack(matrix: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(matrix[np.triu_indices(matrix.shape[0])])


def reference_unpack(packed: np.ndarray, d: int) -> np.ndarray:
    out = np.zeros((d, d), dtype=packed.dtype)
    iu = np.triu_indices(d)
    out[iu] = packed
    strict = np.triu_indices(d, k=1)
    out.T[strict] = out[strict]
    return out


def symmetric_matrix(d: int, dtype, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    if np.issubdtype(dtype, np.integer):
        root = rng.integers(-50, 50, size=(d, d))
        return (root + root.T).astype(dtype)
    root = rng.normal(size=(d, d))
    return ((root + root.T) / 2).astype(dtype)


@settings(max_examples=120, deadline=None)
@given(
    d=st.integers(min_value=1, max_value=40),
    dtype_index=st.integers(min_value=0, max_value=len(DTYPES) - 1),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_roundtrip_bit_identical_with_uncached_path(d, dtype_index, seed):
    dtype = DTYPES[dtype_index]
    sym = symmetric_matrix(d, dtype, seed)

    packed = pack_symmetric(sym)
    ref_packed = reference_pack(sym)
    np.testing.assert_array_equal(packed, ref_packed)
    assert packed.dtype == ref_packed.dtype
    assert packed.size == packed_size(d) == d * (d + 1) // 2

    unpacked = unpack_symmetric(packed, d)
    np.testing.assert_array_equal(unpacked, reference_unpack(ref_packed, d))
    np.testing.assert_array_equal(unpacked, sym)
    assert unpacked.dtype == sym.dtype


@settings(max_examples=60, deadline=None)
@given(
    d=st.integers(min_value=1, max_value=24),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_pack_into_preallocated_buffer_matches(d, seed):
    """The fused-buffer path (pack into an ``out`` slice) is bit-identical
    to allocating packing, and writes nothing outside its slice."""
    sym = symmetric_matrix(d, np.float64, seed)
    size = packed_size(d)
    buffer = np.full(size + 6, np.pi)
    view = buffer[3 : 3 + size]
    returned = pack_symmetric(sym, out=view)
    assert returned is view
    np.testing.assert_array_equal(view, reference_pack(sym))
    np.testing.assert_array_equal(buffer[:3], np.full(3, np.pi))
    np.testing.assert_array_equal(buffer[3 + size :], np.full(3, np.pi))
    np.testing.assert_array_equal(unpack_symmetric(view.copy(), d), sym)


def test_pack_out_size_validated():
    with pytest.raises(ValueError, match="out"):
        pack_symmetric(np.eye(4), out=np.empty(3))


def test_non_contiguous_input_packs_identically():
    sym = symmetric_matrix(6, np.float64, seed=99)
    for noncontig in (np.asfortranarray(sym), sym[::1].T):
        np.testing.assert_array_equal(pack_symmetric(noncontig), reference_pack(noncontig))
        out = np.empty(packed_size(6))
        np.testing.assert_array_equal(
            pack_symmetric(noncontig, out=out), reference_pack(noncontig)
        )
