"""Tests for the strategy-driven task-graph builder (Fig. 1 schedules)."""

import pytest

from repro.core.schedule import (
    build_inverse_graph,
    interleaved_factor_dims,
    resolve_placement,
)
from repro.perf import scaled_cluster_profile
from repro.plan import Session, build_strategy_graph, strategy_registry
from repro.sim import COMM, Phase, simulate
from tests.conftest import build_tiny_spec


@pytest.fixture(scope="module")
def spec():
    return build_tiny_spec(num_layers=5)


@pytest.fixture(scope="module")
def profile():
    return scaled_cluster_profile(4)


def phases_in(graph):
    return {t.phase for t in graph.tasks}


class TestGraphShapes:
    def test_sgd_single_rank_no_comm(self, spec, profile):
        g = build_strategy_graph(spec, profile, "SGD")
        assert g.num_ranks == 1
        assert all(t.kind != COMM for t in g.tasks)
        assert phases_in(g) == {Phase.FORWARD, Phase.BACKWARD, Phase.UPDATE}

    def test_ssgd_has_grad_comm_only(self, spec, profile):
        g = build_strategy_graph(spec, profile, "S-SGD")
        assert g.num_ranks == 4
        assert Phase.GRAD_COMM in phases_in(g)
        assert Phase.FACTOR_COMM not in phases_in(g)

    def test_kfac_single_gpu_all_phases_no_comm(self, spec, profile):
        g = build_strategy_graph(spec, profile, "KFAC")
        assert g.num_ranks == 1
        assert Phase.INVERSE_COMP in phases_in(g)
        assert all(t.kind != COMM for t in g.tasks)
        # Every factor inverted exactly once on the single rank.
        inv_tasks = [t for t in g.tasks if t.phase == Phase.INVERSE_COMP]
        assert len(inv_tasks) == 2 * len(spec.layers)

    def test_dkfac_inverts_everything_on_every_rank(self, spec, profile):
        g = build_strategy_graph(spec, profile, "D-KFAC")
        inv_tasks = [t for t in g.tasks if t.phase == Phase.INVERSE_COMP]
        assert len(inv_tasks) == 2 * len(spec.layers) * 4
        assert not [t for t in g.tasks if t.phase == Phase.INVERSE_COMM]

    def test_mpd_broadcasts_every_tensor(self, spec, profile):
        g = build_strategy_graph(spec, profile, "MPD-KFAC")
        bcasts = [t for t in g.tasks if t.phase == Phase.INVERSE_COMM]
        assert len(bcasts) == 2 * len(spec.layers)
        inv_tasks = [t for t in g.tasks if t.phase == Phase.INVERSE_COMP]
        assert len(inv_tasks) == 2 * len(spec.layers)  # each inverted once

    def test_spd_graph_runs_and_beats_dkfac(self, spec, profile):
        session = Session(spec, profile)
        d = session.simulate("D-KFAC")
        s = session.simulate("SPD-KFAC")
        assert s.iteration_time <= d.iteration_time + 1e-9

    def test_ablation_switches_change_graph(self, spec, profile):
        spd = strategy_registry["SPD-KFAC"]
        full = build_strategy_graph(spec, profile, spd)
        no_pipe = build_strategy_graph(
            spec,
            profile,
            spd.but(
                factor_fusion="bulk",
                factor_pipelining=False,
                combine_factor_passes=True,
            ),
        )
        factor_comms = lambda g: [t for t in g.tasks if t.phase == Phase.FACTOR_COMM]
        assert len(factor_comms(no_pipe)) == 1  # bulk
        assert len(factor_comms(full)) >= 2

    def test_factor_pipeline_graph_has_no_inverse_stage(self, spec, profile):
        g = build_strategy_graph(
            spec, profile, strategy_registry["SPD-KFAC"].but(include_solve=False)
        )
        assert Phase.INVERSE_COMP not in phases_in(g)
        assert Phase.PRECONDITION not in phases_in(g)

    def test_every_graph_simulates_without_deadlock(self, spec, profile):
        for name in strategy_registry:
            timeline = simulate(build_strategy_graph(spec, profile, name))
            assert timeline.makespan > 0


class TestScheduleSemantics:
    def test_update_follows_own_ranks_preconditioning(self, spec, profile):
        """Each rank's update starts only after that rank's last
        precondition kernel (ranks may finish at different times under
        asymmetric inverse placement)."""
        tl = simulate(build_strategy_graph(spec, profile, "SPD-KFAC"))
        for rank in range(profile.num_workers):
            update_start = min(
                e.start
                for e in tl.entries
                if e.task.phase == Phase.UPDATE and rank in e.task.ranks
            )
            precond_end = max(
                e.end
                for e in tl.entries
                if e.task.phase == Phase.PRECONDITION and rank in e.task.ranks
            )
            assert update_start >= precond_end - 1e-12

    def test_backward_starts_after_forward_ends(self, spec, profile):
        tl = simulate(build_strategy_graph(spec, profile, "D-KFAC"))
        fwd_end = max(e.end for e in tl.entries if e.task.phase == Phase.FORWARD)
        bwd_start = min(e.start for e in tl.entries if e.task.phase == Phase.BACKWARD)
        assert bwd_start >= fwd_end - 1e-12

    def test_inverse_waits_for_factor_aggregation(self, spec, profile):
        tl = simulate(build_strategy_graph(spec, profile, "D-KFAC"))
        factor_comm_end = max(e.end for e in tl.entries if e.task.phase == Phase.FACTOR_COMM)
        inverse_start = min(e.start for e in tl.entries if e.task.phase == Phase.INVERSE_COMP)
        assert inverse_start >= factor_comm_end - 1e-12

    def test_pipelined_factor_comm_overlaps_compute(self, spec, profile):
        """SPD-KFAC's A-factor all-reduces start before the forward pass
        finishes — the paper's pipelining claim."""
        tl = simulate(build_strategy_graph(spec, profile, "SPD-KFAC"))
        fwd_end = max(e.end for e in tl.entries if e.task.phase == Phase.FORWARD)
        first_factor_comm = min(
            e.start for e in tl.entries if e.task.phase == Phase.FACTOR_COMM
        )
        assert first_factor_comm < fwd_end

    def test_bulk_factor_comm_does_not_overlap_forward(self, spec, profile):
        tl = simulate(build_strategy_graph(spec, profile, "D-KFAC"))
        bwd_end = max(e.end for e in tl.entries if e.task.phase == Phase.BACKWARD)
        comm_start = min(e.start for e in tl.entries if e.task.phase == Phase.FACTOR_COMM)
        assert comm_start >= bwd_end - 1e-12

    def test_ranks_symmetric_in_dkfac(self, spec, profile):
        tl = simulate(build_strategy_graph(spec, profile, "D-KFAC"))
        ends = [tl.rank_end(r) for r in range(profile.num_workers)]
        assert max(ends) - min(ends) < 1e-9


class TestInverseGraph:
    def test_non_dist_graph(self, spec, profile):
        placement = resolve_placement("non_dist", spec, profile, 4)
        g = build_inverse_graph(spec, profile, placement)
        assert all(t.kind != COMM for t in g.tasks)
        assert len(g.tasks) == 2 * len(spec.layers) * 4

    def test_ct_broadcast_dep_on_owner_inverse(self, spec, profile):
        placement = resolve_placement("seq_dist", spec, profile, 4)
        g = build_inverse_graph(spec, profile, placement)
        bcasts = [t for t in g.tasks if t.phase == Phase.INVERSE_COMM]
        assert len(bcasts) == 2 * len(spec.layers)
        for b in bcasts:
            (dep,) = b.deps
            assert g.tasks[dep].phase == Phase.INVERSE_COMP

    def test_placement_name_errors(self, spec, profile):
        with pytest.raises(ValueError, match="unknown placement"):
            resolve_placement("magic", spec, profile, 4)

    def test_interleaved_dims_order(self, spec):
        dims = interleaved_factor_dims(spec)
        assert dims[0] == spec.layers[0].a_dim
        assert dims[-1] == spec.layers[-1].g_dim
