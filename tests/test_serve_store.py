"""Durability and concurrency guarantees of the disk-backed plan store.

Covers the ISSUE-8 satellite checklist: kill/restart round-trips (a
fresh store instance — and a fresh Session with cleared LRU — answers
from disk), corrupted-entry quarantine, concurrent multi-process
writers through the file lock, and thread-safety of the shared Session
LRU cache.
"""

import json
import multiprocessing
import os
import threading

import pytest

from repro.plan import (
    Session,
    cache_info,
    clear_caches,
    get_plan_store,
    plan_store_key,
    set_plan_store,
    strategy_registry,
)
from repro.serve import FileLock, PlanStore, StoredResult, result_from_doc, result_to_doc

KEY = "ab" * 8


@pytest.fixture
def store(tmp_path):
    return PlanStore(tmp_path / "store")


@pytest.fixture
def installed_store(tmp_path):
    """A PlanStore installed under the Session LRU, cleaned up after."""
    clear_caches()
    store = set_plan_store(tmp_path / "store")
    try:
        yield store
    finally:
        set_plan_store(None)
        clear_caches()


class TestPlanStoreBasics:
    def test_roundtrip(self, store):
        store.put(KEY, {"x": [1, 2.5, "three"]}, kind="demo")
        assert store.get(KEY) == {"x": [1, 2.5, "three"]}
        assert KEY in store
        assert list(store.keys()) == [KEY]
        assert store.index()[KEY] == {"kind": "demo"}

    def test_missing_key_is_a_miss(self, store):
        assert store.get("cd" * 8) is None
        assert store.stats()["misses"] == 1

    def test_bad_keys_rejected(self, store):
        for bad in ("short", "XY" * 8, "ab" * 40, 123, "g" * 16):
            with pytest.raises(ValueError):
                store.check_key(bad)

    def test_restart_roundtrip(self, tmp_path):
        """A brand-new instance (fresh process, same dir) sees the entry."""
        PlanStore(tmp_path / "s").put(KEY, {"v": 7})
        reopened = PlanStore(tmp_path / "s")
        assert reopened.get(KEY) == {"v": 7}
        assert reopened.stats()["entries"] == 1

    def test_overwrite_idempotent(self, store):
        store.put(KEY, {"v": 1})
        store.put(KEY, {"v": 2})
        assert store.get(KEY) == {"v": 2}
        assert len(store) == 1

    def test_clear(self, store):
        store.put(KEY, {"v": 1})
        assert store.clear() == 1
        assert store.get(KEY) is None
        assert store.index() == {}


class TestCorruptionQuarantine:
    def _entry_path(self, store):
        return store._object_path(KEY)

    @pytest.mark.parametrize(
        "breakage",
        ["truncate", "garbage", "wrong_key", "wrong_schema", "no_payload"],
    )
    def test_corrupted_entry_quarantined_and_missed(self, store, breakage):
        store.put(KEY, {"v": 1})
        path = self._entry_path(store)
        if breakage == "truncate":
            with open(path, "w") as f:
                f.write('{"schema": 1, "key": ')
        elif breakage == "garbage":
            with open(path, "wb") as f:
                f.write(b"\x00\xff not json")
        elif breakage == "wrong_key":
            with open(path, "w") as f:
                json.dump({"schema": 1, "key": "cd" * 8, "payload": {}}, f)
        elif breakage == "wrong_schema":
            with open(path, "w") as f:
                json.dump({"schema": 999, "key": KEY, "payload": {}}, f)
        elif breakage == "no_payload":
            with open(path, "w") as f:
                json.dump({"schema": 1, "key": KEY}, f)
        assert store.get(KEY) is None
        assert not os.path.exists(path)
        stats = store.stats()
        assert stats["quarantine_files"] == 1
        assert stats["quarantined"] == 1
        # the quarantined file keeps its bytes for post-mortems
        quarantined = os.listdir(os.path.join(store.root, "quarantine"))
        assert quarantined and quarantined[0].startswith(KEY)

    def test_repeated_quarantine_does_not_clobber(self, store):
        for _ in range(3):
            store.put(KEY, {"v": 1})
            with open(self._entry_path(store), "w") as f:
                f.write("broken")
            assert store.get(KEY) is None
        assert store.stats()["quarantine_files"] == 3

    def test_rebuild_index_quarantines_and_counts(self, store):
        store.put(KEY, {"v": 1})
        other = "cd" * 8
        store.put(other, {"v": 2}, kind="other")
        with open(store._object_path(other), "w") as f:
            f.write("broken")
        os.unlink(store._index_path)
        assert store.rebuild_index() == 1
        assert store.index() == {KEY: {"kind": "generic"}}
        assert store.stats()["quarantine_files"] == 1


def _locked_increment(args):
    """Read-modify-write a shared counter file under the store lock."""
    lock_path, counter_path, rounds = args
    lock = FileLock(lock_path)
    for _ in range(rounds):
        with lock:
            with open(counter_path) as f:
                value = int(f.read())
            with open(counter_path, "w") as f:
                f.write(str(value + 1))
    return True


def _writer_process(args):
    """Write ``count`` distinct entries into a shared store."""
    root, worker, count = args
    store = PlanStore(root)
    for i in range(count):
        key = f"{worker:02x}{i:04x}" + "0" * 10
        store.put(key, {"worker": worker, "i": i})
    return worker


class TestCrossProcessLocking:
    def test_file_lock_excludes_threads(self, tmp_path):
        lock_path = str(tmp_path / "lock")
        counter = {"v": 0}
        lock = FileLock(lock_path)

        def bump():
            for _ in range(200):
                with lock:
                    # non-atomic increment; only mutual exclusion keeps it right
                    v = counter["v"]
                    counter["v"] = v + 1

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter["v"] == 800

    def test_file_lock_excludes_processes(self, tmp_path):
        lock_path = str(tmp_path / "lock")
        counter_path = str(tmp_path / "counter")
        with open(counter_path, "w") as f:
            f.write("0")
        workers, rounds = 4, 25
        with multiprocessing.get_context("fork").Pool(workers) as pool:
            pool.map(
                _locked_increment,
                [(lock_path, counter_path, rounds)] * workers,
            )
        with open(counter_path) as f:
            assert int(f.read()) == workers * rounds

    def test_concurrent_multiprocess_writers(self, tmp_path):
        """Several processes write disjoint entries; none are lost/corrupt."""
        root = str(tmp_path / "shared-store")
        PlanStore(root)  # create layout up-front
        workers, per_worker = 4, 20
        with multiprocessing.get_context("fork").Pool(workers) as pool:
            pool.map(
                _writer_process,
                [(root, w, per_worker) for w in range(workers)],
            )
        store = PlanStore(root)
        assert len(store) == workers * per_worker
        for key in store.keys():
            assert store.get(key) is not None  # nothing quarantined
        assert store.stats()["quarantine_files"] == 0
        # the index survived the write storm or is exactly rebuildable
        assert store.rebuild_index() == workers * per_worker


class TestSessionStoreLayer:
    def test_restart_round_trip_serves_from_disk(self, installed_store):
        """Cold compute -> simulated restart -> warm answer from disk only."""
        session = Session("ResNet-50", 4)
        plan = session.plan("SPD-KFAC")
        result = session.simulate("SPD-KFAC")

        clear_caches()  # the "restart": in-memory LRU gone, disk store stays
        before = cache_info()
        session2 = Session("ResNet-50", 4)
        plan2 = session2.plan("SPD-KFAC")
        result2 = session2.simulate("SPD-KFAC")
        after = cache_info()

        assert after["store_hits"] > before["store_hits"]
        assert plan2.digest() == plan.digest()
        assert result2.iteration_time == result.iteration_time  # bit-identical
        assert result2.categories() == result.categories()
        assert isinstance(result2, StoredResult)

    def test_store_key_lookup_matches_direct_get(self, installed_store):
        session = Session("ResNet-50", 4)
        strategy = strategy_registry["SPD-KFAC"]
        session.simulate(strategy)
        key = plan_store_key(
            session.spec, strategy, session.profile_for(strategy), None
        )
        doc = installed_store.get(key)
        assert doc is not None and set(doc) == {"plan", "result"}

    def test_corrupt_store_entry_falls_back_to_compute(self, installed_store):
        session = Session("ResNet-50", 4)
        result = session.simulate("SPD-KFAC")
        strategy = strategy_registry["SPD-KFAC"]
        key = plan_store_key(
            session.spec, strategy, session.profile_for(strategy), None
        )
        # corrupt the stored payload (valid envelope, malformed body)
        installed_store.put(key, {"plan": "not-a-plan"}, kind="plan+result")
        clear_caches()
        recomputed = Session("ResNet-50", 4).simulate("SPD-KFAC")
        assert recomputed.iteration_time == result.iteration_time
        assert installed_store.stats()["quarantine_files"] >= 1

    def test_stored_result_surface(self, installed_store):
        session = Session("ResNet-50", 4)
        result = session.simulate("SPD-KFAC")
        played = result_from_doc(result_to_doc(result))
        assert played.iteration_time == result.iteration_time
        assert played.categories() == result.categories()
        with pytest.raises(AttributeError, match="timeline"):
            played.timeline
        with pytest.raises(AttributeError, match="breakdown"):
            played.breakdown


class TestSessionCacheThreadSafety:
    def test_concurrent_sessions_race_free(self):
        """Many threads hammer the shared LRU; stats and results stay sane."""
        clear_caches()
        errors = []
        results = []

        def worker(seed):
            try:
                session = Session("ResNet-50", 4)
                for name in ("SPD-KFAC", "MPD-KFAC", "S-SGD"):
                    results.append((name, session.simulate(name).iteration_time))
            except Exception as exc:  # pragma: no cover - the failure signal
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # every thread observed the same answer per strategy
        by_name = {}
        for name, value in results:
            by_name.setdefault(name, set()).add(value)
        assert all(len(v) == 1 for v in by_name.values())
        info = cache_info()
        assert info["hits"] + info["misses"] == len(results)
        clear_caches()


def _keyed(i):
    return f"{i:016x}"


class TestStoreGC:
    """Capacity eviction: oldest-first, lock-held, index-consistent."""

    def _populate(self, store, n, *, payload=None):
        """n entries with strictly increasing mtimes (oldest = lowest i)."""
        base = 1_700_000_000
        for i in range(n):
            key = _keyed(i)
            store.put(key, payload or {"i": i, "blob": "x" * 64}, kind="demo")
            os.utime(store._object_path(key), (base + i, base + i))
        return [_keyed(i) for i in range(n)]

    def test_evicts_oldest_first_by_object_count(self, store):
        keys = self._populate(store, 5)
        outcome = store.gc(max_objects=2)
        assert outcome["evicted"] == 3
        assert outcome["kept"] == 2
        assert sorted(store.keys()) == keys[3:]
        assert sorted(store.index()) == keys[3:]
        for key in keys[:3]:
            assert store.get(key) is None

    def test_byte_cap_frees_down_to_limit(self, store):
        self._populate(store, 6)
        per_entry = store.total_bytes() // 6
        outcome = store.gc(max_bytes=3 * per_entry)
        assert outcome["evicted"] >= 3
        assert store.total_bytes() <= 3 * per_entry
        assert outcome["bytes_kept"] == store.total_bytes()

    def test_noop_inventory_pass_and_under_cap(self, store):
        keys = self._populate(store, 3)
        # no caps: pure inventory
        outcome = store.gc()
        assert outcome == {
            "evicted": 0,
            "kept": 3,
            "bytes_freed": 0,
            "bytes_kept": store.total_bytes(),
        }
        # caps already satisfied: nothing moves
        assert store.gc(max_objects=10, max_bytes=10**9)["evicted"] == 0
        assert sorted(store.keys()) == keys

    def test_negative_caps_rejected(self, store):
        with pytest.raises(ValueError, match="max_objects"):
            store.gc(max_objects=-1)
        with pytest.raises(ValueError, match="max_bytes"):
            store.gc(max_bytes=-1)

    def test_survivors_bit_identical_after_restart(self, store, tmp_path):
        """GC -> process restart: un-evicted entries read back byte-for-byte."""
        keys = self._populate(store, 5)
        before = {
            key: open(store._object_path(key), "rb").read() for key in keys[2:]
        }
        store.gc(max_objects=3)
        reopened = PlanStore(store.root)  # fresh instance = restart
        assert sorted(reopened.keys()) == keys[2:]
        for key in keys[2:]:
            assert open(reopened._object_path(key), "rb").read() == before[key]
            assert reopened.get(key) == {"i": int(key, 16), "blob": "x" * 64}
        assert sorted(reopened.index()) == keys[2:]

    def test_mid_gc_kill_leaves_recoverable_store(self, store):
        """Unlink-without-index-rewrite (a GC killed mid-pass) self-heals."""
        keys = self._populate(store, 4)
        # Simulate the crash window: objects gone, index still lists them.
        for key in keys[:2]:
            os.unlink(store._object_path(key))
        assert sorted(store.index()) == keys  # dangling rows present
        for key in keys[:2]:
            assert store.get(key) is None  # read as plain misses
        assert store.rebuild_index() == 2  # the two surviving entries
        assert sorted(store.index()) == keys[2:]
        # and a later GC pass also rewrites the index from disk state
        store.put(_keyed(9), {"v": 9})
        store.gc(max_objects=10)
        assert _keyed(9) in store.index()

    def test_gc_excludes_quarantine_bytes(self, store):
        keys = self._populate(store, 2)
        with open(store._object_path(keys[0]), "w") as f:
            f.write("broken")
        assert store.get(keys[0]) is None  # quarantined
        assert store.total_bytes() == os.path.getsize(store._object_path(keys[1]))
        outcome = store.gc(max_objects=5)
        assert outcome["kept"] == 1


class TestServiceStoreGC:
    def test_boot_time_gc_enforces_cap(self, tmp_path):
        from repro.serve.service import PlanService

        store = PlanStore(tmp_path / "store")
        base = 1_700_000_000
        for i in range(8):
            key = _keyed(i)
            store.put(key, {"i": i, "pad": "y" * 256})
            os.utime(store._object_path(key), (base + i, base + i))
        cap = store.total_bytes() // 2
        service = PlanService(store, store_max_bytes=cap)
        assert store.total_bytes() <= cap
        assert service.store_gc()["evicted"] == 0  # already under cap

    def test_no_cap_means_no_gc(self, tmp_path):
        from repro.serve.service import PlanService

        store = PlanStore(tmp_path / "store")
        store.put(_keyed(1), {"v": 1})
        service = PlanService(store)
        assert service.store_gc() is None
        assert list(store.keys()) == [_keyed(1)]

    def test_negative_cap_rejected(self, tmp_path):
        from repro.serve.service import PlanService

        with pytest.raises(ValueError, match="store_max_bytes"):
            PlanService(PlanStore(tmp_path / "store"), store_max_bytes=-1)

    def test_periodic_gc_fires_every_interval(self, tmp_path):
        from repro.serve import service as service_mod

        store = PlanStore(tmp_path / "store")
        service = service_mod.PlanService(store, store_max_bytes=10**9)
        calls = []
        service.store_gc = lambda: calls.append(1)  # observe the hook
        request = {"model": "ResNet-50", "gpus": 2, "strategy": "SPD-KFAC"}
        interval = service_mod._GC_CHECK_INTERVAL
        for _ in range(interval - 1):
            service.handle("plan", request)
        assert not calls
        service.handle("plan", request)
        assert len(calls) == 1
        for _ in range(interval):
            service.handle("plan", request)
        assert len(calls) == 2
