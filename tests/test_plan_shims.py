"""The deprecated ``build_*_graph`` shims: warn once, behave identically.

Outside this module, repro deprecation warnings are errors (see
``pytest.ini``), so any internal module or migrated test that still
leans on a shim fails loudly.
"""

import pytest

from repro.core.pipeline import FactorCommStrategy
from repro.core.schedule import (
    build_dkfac_graph,
    build_factor_pipeline_graph,
    build_kfac_graph,
    build_mpd_kfac_graph,
    build_sgd_graph,
    build_spd_kfac_graph,
    build_ssgd_graph,
)
from repro.models import get_model_spec
from repro.perf import paper_cluster_profile, scaled_cluster_profile
from repro.plan import Session, build_strategy_graph, strategy_registry
from repro.sim import simulate
from repro.utils import ReproDeprecationWarning
from tests.conftest import build_tiny_spec

PAPER_MODEL_NAMES = ("ResNet-50", "ResNet-152", "DenseNet-201", "Inception-v4")


@pytest.fixture(scope="module")
def spec():
    return build_tiny_spec(num_layers=5)


@pytest.fixture(scope="module")
def profile():
    return scaled_cluster_profile(4)


def timeline_signature(graph):
    timeline = simulate(graph)
    return [(e.start, e.end) for e in timeline.entries]


SHIM_TO_STRATEGY = (
    (build_sgd_graph, "SGD"),
    (build_ssgd_graph, "S-SGD"),
    (build_kfac_graph, "KFAC"),
    (build_dkfac_graph, "D-KFAC"),
    (build_mpd_kfac_graph, "MPD-KFAC"),
    (build_spd_kfac_graph, "SPD-KFAC"),
)


@pytest.mark.parametrize("shim, strategy_name", SHIM_TO_STRATEGY, ids=lambda p: getattr(p, "__name__", p))
def test_shim_warns_and_matches_strategy_graph(shim, strategy_name, spec, profile):
    with pytest.warns(ReproDeprecationWarning, match="deprecated.*Session"):
        old = shim(spec, profile)
    new = build_strategy_graph(spec, profile, strategy_name)
    assert timeline_signature(old) == timeline_signature(new)


@pytest.mark.parametrize("model_name", PAPER_MODEL_NAMES)
def test_spd_shim_equivalent_to_session_plan_on_paper_models(model_name):
    """build_spd_kfac_graph(spec, profile) == Session.plan(registry["SPD-KFAC"])."""
    profile = paper_cluster_profile()
    spec = get_model_spec(model_name)
    with pytest.warns(ReproDeprecationWarning):
        old = simulate(build_spd_kfac_graph(spec, profile))
    session = Session(model_name, profile)
    plan = session.plan(strategy_registry["SPD-KFAC"])
    assert plan.predicted_makespan == old.makespan
    assert session.simulate(plan).iteration_time == old.makespan


def test_spd_ablation_switches_match_strategy_axes(spec, profile):
    spd = strategy_registry["SPD-KFAC"]
    cases = {
        (False, False): spd.but(
            factor_fusion="bulk", factor_pipelining=False,
            combine_factor_passes=True, placement="seq_dist",
        ),
        (True, False): spd.but(placement="seq_dist"),
        (False, True): spd.but(
            factor_fusion="bulk", factor_pipelining=False, combine_factor_passes=True,
        ),
        (True, True): spd,
    }
    for (pipelining, lbp), strategy in cases.items():
        with pytest.warns(ReproDeprecationWarning):
            old = build_spd_kfac_graph(spec, profile, pipelining=pipelining, lbp=lbp)
        new = build_strategy_graph(spec, profile, strategy)
        assert timeline_signature(old) == timeline_signature(new)


def test_factor_pipeline_shim_matches_include_solve_false(spec, profile):
    axes = {
        FactorCommStrategy.NAIVE: ("bulk", False),
        FactorCommStrategy.LW_NO_TF: ("none", True),
        FactorCommStrategy.LW_TTF: ("threshold", True),
        FactorCommStrategy.SP_OTF: ("optimal", True),
    }
    for enum_strategy, (fusion, pipelined) in axes.items():
        with pytest.warns(ReproDeprecationWarning):
            old = build_factor_pipeline_graph(spec, profile, enum_strategy)
        new = build_strategy_graph(
            spec,
            profile,
            strategy_registry["SPD-KFAC"].but(
                factor_fusion=fusion,
                factor_pipelining=pipelined,
                include_solve=False,
            ),
        )
        assert timeline_signature(old) == timeline_signature(new)
