"""Canonical digests: stability, sensitivity, and collision checks.

The serving subsystem addresses plans and results by content, so every
digest must be (a) stable across processes and Python versions — frozen
hex literals below guard that — and (b) sensitive to exactly the axes
that change the answer (and insensitive to presentation details like a
strategy's display name).
"""

import itertools
import json
import math
import subprocess
import sys

import pytest

from repro.models import get_model_spec
from repro.models.catalog import PAPER_MODELS
from repro.perf import paper_cluster_profile, scaled_cluster_profile
from repro.plan import Session, plan_store_key, strategy_registry
from repro.utils.digest import DIGEST_LENGTH, canonical_json, content_digest


class TestCanonicalJson:
    def test_key_order_irrelevant(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_compact_and_sorted(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'

    def test_floats_roundtrip_exactly(self):
        value = 0.1 + 0.2  # not representable; repr must round-trip
        assert json.loads(canonical_json({"x": value}))["x"] == value

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            canonical_json({"x": math.nan})

    def test_content_digest_frozen(self):
        """Cross-version stability anchor: recorded once, never drifts."""
        assert content_digest({"a": 1, "b": [1.5, "x"], "c": None}) == (
            "fc829ae825088cb1"
        )

    def test_digest_length(self):
        digest = content_digest({"k": "v"})
        assert len(digest) == DIGEST_LENGTH
        assert set(digest) <= set("0123456789abcdef")

    def test_digest_stable_across_processes(self):
        """A fresh interpreter (fresh hash seed) computes the same digest."""
        code = (
            "from repro.utils.digest import content_digest;"
            "print(content_digest({'a': 1, 'b': [1.5, 'x'], 'c': None}))"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
            env={"PYTHONPATH": "src", "PYTHONHASHSEED": "99"},
        )
        assert out.stdout.strip() == "fc829ae825088cb1"


class TestStrategyDigest:
    def test_frozen(self):
        assert strategy_registry["SPD-KFAC"].digest() == "d5e045a43035648b"

    def test_name_is_presentation_only(self):
        spd = strategy_registry["SPD-KFAC"]
        renamed = spd.but(name="my-alias")
        assert renamed.digest() == spd.digest()

    def test_every_axis_changes_the_digest(self):
        base = strategy_registry["SPD-KFAC"]
        variants = [
            base.but(gradient_reduction="bulk"),
            base.but(factor_fusion="threshold"),
            base.but(placement="balanced"),
            base.but(collective="ring"),
            base.but(grad_dtype="fp16"),
            base.but(grad_compression=0.01),
            base.but(inverse_update_interval=10),
        ]
        digests = {base.digest()} | {v.digest() for v in variants}
        assert len(digests) == 1 + len(variants)

    def test_presets_all_distinct(self):
        digests = [strategy_registry[n].digest() for n in strategy_registry.names()]
        assert len(set(digests)) == len(digests)

    def test_roundtrip_preserves_digest(self):
        from repro.plan import TrainingStrategy

        for name in strategy_registry.names():
            strategy = strategy_registry[name]
            assert TrainingStrategy.from_dict(strategy.to_dict()).digest() == (
                strategy.digest()
            )

    def test_paper_comm_scheme_hashes_like_pre_axis_strategy(self):
        """comm_scheme="paper" is the pre-axis strategy: same digest.

        The frozen SPD-KFAC literal above predates the axis, so this is
        what keeps every stored plan/result addressable after the axis
        landed.  Explicitly setting the default must not drift either.
        """
        spd = strategy_registry["SPD-KFAC"]
        assert spd.comm_scheme == "paper"
        assert spd.but(comm_scheme="paper").digest() == "d5e045a43035648b"

    def test_new_comm_schemes_hash_distinctly(self):
        spd = strategy_registry["SPD-KFAC"]
        digests = {
            scheme: spd.but(comm_scheme=scheme).digest()
            for scheme in ("paper", "comm_opt", "mem_opt")
        }
        assert len(set(digests.values())) == 3
        assert digests["paper"] == spd.digest()


class TestModelAndProfileDigests:
    def test_model_frozen(self):
        assert get_model_spec("ResNet-50").digest() == "1f5e5f4b56d72e95"

    def test_models_all_distinct(self):
        digests = [get_model_spec(m).digest() for m in PAPER_MODELS]
        assert len(set(digests)) == len(digests)

    def test_batch_size_changes_model_digest(self, tiny_spec):
        import dataclasses

        bigger = dataclasses.replace(tiny_spec, batch_size=tiny_spec.batch_size * 2)
        assert bigger.digest() != tiny_spec.digest()

    def test_profile_frozen(self):
        assert paper_cluster_profile().digest() == "653ee25c5ce455e9"

    def test_profiles_scale_sensitive(self):
        assert scaled_cluster_profile(4).digest() != scaled_cluster_profile(8).digest()


class TestPlanDigestAndStoreKey:
    def test_plan_digest_survives_roundtrip(self):
        from repro.plan import Plan

        session = Session("ResNet-50", 4)
        plan = session.plan("SPD-KFAC")
        assert Plan.from_json(plan.to_json()).digest() == plan.digest()

    def test_store_key_distinct_across_grid(self):
        """No collisions over models x strategies x cluster sizes."""
        keys = set()
        combos = 0
        for model, gpus in itertools.product(["ResNet-50", "ResNet-152"], [4, 8]):
            session = Session(model, gpus)
            for name in strategy_registry.names():
                strategy = strategy_registry[name]
                keys.add(
                    plan_store_key(
                        session.spec, strategy, session.profile_for(strategy), None
                    )
                )
                combos += 1
        assert len(keys) == combos

    def test_scenario_digest_separates_keys(self):
        session = Session("ResNet-50", 4)
        strategy = strategy_registry["SPD-KFAC"]
        profile = session.profile_for(strategy)
        nominal = plan_store_key(session.spec, strategy, profile, None)
        faulted = plan_store_key(session.spec, strategy, profile, "abcd1234abcd1234")
        assert nominal != faulted

    def test_comm_scheme_separates_plan_digests_and_store_keys(self):
        """New schemes address distinct content; "paper" stays put."""
        session = Session("ResNet-50", 4)
        spd = strategy_registry["SPD-KFAC"]
        profile = session.profile_for(spd)
        digests = set()
        keys = set()
        for scheme in ("paper", "comm_opt", "mem_opt"):
            strategy = spd.but(name=f"SPD-KFAC[{scheme}]", comm_scheme=scheme)
            digests.add(session.plan(strategy).digest())
            keys.add(plan_store_key(session.spec, strategy, profile, None))
        assert len(digests) == 3
        assert len(keys) == 3
        # Explicitly setting the default scheme is the preset's plan,
        # digest included (the v3 payload drops "paper" before hashing).
        assert session.plan(
            spd.but(comm_scheme="paper")
        ).digest() == session.plan(spd).digest()
