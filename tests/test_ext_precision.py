"""The ext_precision experiment: frozen rows + behavioral guarantees.

``tests/data/frozen_ext_precision_rows.json`` pins the sweep's rows
bit-exactly (floats stored as ``float.hex``), the same discipline
``frozen_paper_rows.json`` applies to the paper experiments.  To
regenerate after an *intentional* cost-model change::

    PYTHONPATH=src python - <<'PY'
    import json
    from repro.experiments.base import get_experiment
    result = get_experiment("ext_precision").run()
    rows = [{k: (float.hex(v) if isinstance(v, float) else v)
             for k, v in row.items()} for row in result.rows]
    payload = {"ext_precision": {"columns": list(result.columns), "rows": rows}}
    with open("tests/data/frozen_ext_precision_rows.json", "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True); f.write("\n")
    PY
"""

import json
from pathlib import Path

import pytest

from repro.experiments.base import get_experiment
from repro.experiments.ext_precision import HEADLINE_VARIANT, SCENARIO_NAMES, VARIANTS

FROZEN_PATH = Path(__file__).parent / "data" / "frozen_ext_precision_rows.json"


@pytest.fixture(scope="module")
def result():
    return get_experiment("ext_precision").run()


def test_rows_identical_to_frozen_snapshot(result):
    with open(FROZEN_PATH) as f:
        frozen = json.load(f)["ext_precision"]
    assert list(result.columns) == frozen["columns"]
    normalized = [
        {k: (float.hex(v) if isinstance(v, float) else v) for k, v in row.items()}
        for row in result.rows
    ]
    assert normalized == frozen["rows"]


def test_paper_variant_is_bit_identical_to_spd_kfac_preset(result):
    """The 'paper' baseline row must be the SPD-KFAC preset itself."""
    from repro.plan import Session, strategy_registry
    from repro.topo import named_topology

    rows = [r for r in result.rows if r["variant"] == "paper"]
    assert len(rows) == len(SCENARIO_NAMES) * 4
    for name in SCENARIO_NAMES:
        topo = named_topology(name)
        session = Session("ResNet-50", topo)
        preset_time = session.simulate(strategy_registry["SPD-KFAC"]).iteration_time
        row = next(
            r
            for r in rows
            if r["model"] == "ResNet-50" and r["topology"] == topo.name
        )
        assert row["time(s)"] == preset_time


def test_headline_variant_beats_paper_everywhere(result):
    """fp16 factors + interval-4 inverses wins on every (model, topology)."""
    headline = [r for r in result.rows if r["variant"] == HEADLINE_VARIANT]
    assert headline, "headline variant missing from the sweep"
    for row in headline:
        assert row["speedup"] > 1.0
        assert row["time(s)"] > 0
    assert any(row["speedup"] > 1.5 for row in headline)


def test_cheaper_wire_never_increases_traffic(result):
    """Every non-paper variant ships at most the paper's wire bytes."""
    by_cell = {}
    for row in result.rows:
        by_cell.setdefault((row["model"], row["topology"]), {})[row["variant"]] = row
    assert by_cell
    for variants in by_cell.values():
        paper = variants["paper"]
        for label, _ in VARIANTS:
            assert variants[label]["wire(MB/iter)"] <= paper["wire(MB/iter)"] + 1e-9

    # ...and time never regresses either (these axes only remove work).
    for variants in by_cell.values():
        paper = variants["paper"]
        for label, _ in VARIANTS:
            assert variants[label]["time(s)"] <= paper["time(s)"] + 1e-12
