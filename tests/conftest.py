"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.builder import SpecBuilder
from repro.models.spec import ModelSpec
from repro.perf import paper_cluster_profile, scaled_cluster_profile


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def paper_profile():
    """The paper's 64-GPU testbed profile (immutable, session-shared)."""
    return paper_cluster_profile()


@pytest.fixture(scope="session")
def small_profile():
    """A 4-worker profile for cheap distributed simulations."""
    return scaled_cluster_profile(4)


def build_tiny_spec(num_layers: int = 4, batch_size: int = 8) -> ModelSpec:
    """A small synthetic CNN spec for scheduler tests."""
    b = SpecBuilder(model_name=f"tiny-{num_layers}", batch_size=batch_size, input_size=32)
    channels = 3
    for i in range(num_layers - 1):
        out = 8 * (i + 1)
        b.conv(f"conv{i}", channels, out, kernel=3, stride=1, padding=1)
        channels = out
    b.linear("fc", channels, 10)
    return b.build()


@pytest.fixture
def tiny_spec() -> ModelSpec:
    return build_tiny_spec()


def finite_difference_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite-difference gradient of scalar ``fn`` w.r.t. ``x``."""
    grad = np.zeros_like(x, dtype=float)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn()
        flat[i] = original - eps
        minus = fn()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad
