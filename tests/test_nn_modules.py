"""Behavioural tests for the NN substrate (shapes, hooks, losses, SGD)."""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm2d,
    Conv2d,
    CrossEntropyLoss,
    Linear,
    MSELoss,
    Parameter,
    ReLU,
    SGD,
    Sequential,
)
from repro.nn.functional import col2im, conv_output_size, im2col
from repro.nn.loss import softmax


class TestParameter:
    def test_grad_accumulates(self):
        p = Parameter(np.zeros((2, 2)))
        p.add_grad(np.ones((2, 2)))
        p.add_grad(np.ones((2, 2)))
        np.testing.assert_allclose(p.grad, 2 * np.ones((2, 2)))

    def test_shape_mismatch(self):
        p = Parameter(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            p.add_grad(np.ones(3))

    def test_zero_grad(self):
        p = Parameter(np.zeros(2))
        p.add_grad(np.ones(2))
        p.zero_grad()
        assert p.grad is None


class TestModuleTree:
    def test_parameters_traversal(self, rng):
        net = Sequential(Linear(3, 4, rng=rng), ReLU(), Linear(4, 2, rng=rng))
        names = [n for n, _ in net.named_parameters()]
        assert names == ["0.weight", "0.bias", "2.weight", "2.bias"]
        assert net.num_parameters() == 3 * 4 + 4 + 4 * 2 + 2

    def test_train_eval_propagates(self, rng):
        net = Sequential(Conv2d(1, 2, 3, rng=rng), BatchNorm2d(2))
        net.eval()
        assert all(not m.training for m in net.modules())
        net.train()
        assert all(m.training for m in net.modules())

    def test_forward_pre_hook_sees_input(self, rng):
        layer = Linear(3, 2, rng=rng)
        seen = []
        layer.register_forward_pre_hook(lambda mod, x: seen.append(x.copy()))
        x = rng.normal(size=(4, 3))
        layer(x)
        assert len(seen) == 1
        np.testing.assert_array_equal(seen[0], x)

    def test_backward_hook_sees_grad_output(self, rng):
        layer = Linear(3, 2, rng=rng)
        seen = []
        layer.register_backward_hook(lambda mod, gi, go: seen.append(go.copy()))
        layer(rng.normal(size=(4, 3)))
        grad = rng.normal(size=(4, 2))
        layer.run_backward(grad)
        np.testing.assert_array_equal(seen[0], grad)

    def test_hooks_fire_through_sequential(self, rng):
        net = Sequential(Linear(3, 3, rng=rng), ReLU(), Linear(3, 2, rng=rng))
        order = []
        net.layers[0].register_forward_pre_hook(lambda m, x: order.append("pre0"))
        net.layers[2].register_forward_pre_hook(lambda m, x: order.append("pre2"))
        net.layers[0].register_backward_hook(lambda m, gi, go: order.append("bwd0"))
        net.layers[2].register_backward_hook(lambda m, gi, go: order.append("bwd2"))
        out = net(rng.normal(size=(2, 3)))
        net.run_backward(np.ones_like(out))
        # Forward hooks fire first-to-last; backward hooks last-to-first —
        # exactly the A-pass / G-pass orders of Fig. 1(b).
        assert order == ["pre0", "pre2", "bwd2", "bwd0"]

    def test_backward_before_forward_raises(self, rng):
        with pytest.raises(RuntimeError):
            Linear(2, 2, rng=rng).backward(np.ones((1, 2)))


class TestIm2Col:
    def test_output_size(self):
        assert conv_output_size(8, 3, 1, 1) == 8
        assert conv_output_size(8, 3, 2, 1) == 4
        with pytest.raises(ValueError):
            conv_output_size(2, 5, 1, 0)

    def test_im2col_shape_and_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        cols = im2col(x, (2, 2), stride=2, padding=0)
        assert cols.shape == (4, 4)
        np.testing.assert_array_equal(cols[0], [0, 1, 4, 5])
        np.testing.assert_array_equal(cols[3], [10, 11, 14, 15])

    def test_col2im_adjoint_of_im2col(self, rng):
        """<im2col(x), y> == <x, col2im(y)> — adjointness is exactly what
        conv backward relies on."""
        x = rng.normal(size=(2, 3, 5, 5))
        cols = im2col(x, (3, 3), stride=1, padding=1)
        y = rng.normal(size=cols.shape)
        lhs = float((cols * y).sum())
        rhs = float((x * col2im(y, x.shape, (3, 3), 1, 1)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_conv_equals_direct_computation(self, rng):
        """im2col conv matches a naive nested-loop convolution."""
        layer = Conv2d(2, 3, kernel_size=3, stride=1, padding=1, rng=rng)
        x = rng.normal(size=(1, 2, 4, 4))
        out = layer(x)
        xp = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        naive = np.zeros_like(out)
        for co in range(3):
            for i in range(4):
                for j in range(4):
                    patch = xp[0, :, i : i + 3, j : j + 3]
                    naive[0, co, i, j] = (patch * layer.weight.data[co]).sum()
        np.testing.assert_allclose(out, naive, rtol=1e-10)


class TestLosses:
    def test_softmax_rows_sum_to_one(self, rng):
        probs = softmax(rng.normal(size=(5, 7)) * 10)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(5), rtol=1e-12)

    def test_cross_entropy_perfect_prediction(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss = CrossEntropyLoss()
        assert loss(logits, np.array([0, 1])) == pytest.approx(0.0, abs=1e-10)

    def test_cross_entropy_gradient_matches_fd(self, rng):
        logits = rng.normal(size=(4, 3))
        targets = rng.integers(0, 3, 4)
        loss = CrossEntropyLoss()
        loss(logits, targets)
        grad = loss.backward()
        eps = 1e-6
        for i in range(4):
            for j in range(3):
                bumped = logits.copy()
                bumped[i, j] += eps
                plus = CrossEntropyLoss()(bumped, targets)
                bumped[i, j] -= 2 * eps
                minus = CrossEntropyLoss()(bumped, targets)
                assert grad[i, j] == pytest.approx((plus - minus) / (2 * eps), abs=1e-5)

    def test_cross_entropy_input_validation(self):
        loss = CrossEntropyLoss()
        with pytest.raises(ValueError):
            loss(np.zeros((2, 3, 4)), np.zeros(2, dtype=int))
        with pytest.raises(ValueError):
            loss(np.zeros((2, 3)), np.zeros(3, dtype=int))

    def test_mse(self, rng):
        loss = MSELoss()
        a, b = rng.normal(size=(3, 2)), rng.normal(size=(3, 2))
        assert loss(a, b) == pytest.approx(float(((a - b) ** 2).mean()))
        np.testing.assert_allclose(loss.backward(), 2 * (a - b) / a.size)

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            CrossEntropyLoss().backward()


class TestSGD:
    def test_plain_step(self, rng):
        p = Parameter(np.ones(3))
        p.add_grad(np.full(3, 2.0))
        SGD([p], lr=0.5).step()
        np.testing.assert_allclose(p.data, np.ones(3) - 1.0)

    def test_momentum_accumulates(self):
        p = Parameter(np.zeros(1))
        opt = SGD([p], lr=1.0, momentum=0.9)
        for _ in range(2):
            p.grad = np.ones(1)
            opt.step()
        # First step: -1; second: velocity = 0.9 + 1 = 1.9 -> total -2.9.
        np.testing.assert_allclose(p.data, [-2.9])

    def test_weight_decay(self):
        p = Parameter(np.full(1, 10.0))
        p.add_grad(np.zeros(1))
        SGD([p], lr=0.1, weight_decay=0.5).step()
        np.testing.assert_allclose(p.data, [10.0 - 0.1 * 5.0])

    def test_missing_grad_raises(self):
        p = Parameter(np.zeros(1))
        opt = SGD([p], lr=0.1)
        with pytest.raises(RuntimeError):
            opt.step()

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_sgd_descends_on_quadratic(self, rng):
        """SGD on f(w) = ||w||^2/2 converges toward zero."""
        p = Parameter(rng.normal(size=5))
        opt = SGD([p], lr=0.2)
        for _ in range(50):
            p.zero_grad()
            p.add_grad(p.data.copy())
            opt.step()
        assert np.linalg.norm(p.data) < 1e-4
