"""Differential tests: the comm-scheme-extended grid, B&B vs exhaustive.

Enabling ``comm_schemes=("paper", "comm_opt", "mem_opt")`` nearly
triples the autotuner's grid and adds the first *constrained* axis pair
(``mem_opt`` excludes ``placement="non_dist"``).  The contract stays
winner identity: on every (model, cluster) cell, nominal or robust,
``search="bnb"`` must return the same best candidate — same label, same
objective value, bit-identical resolved plan digest — as the exhaustive
grid, with both engines accounting the same candidate universe
(simulated + reused + pruned == candidates, no double counting of the
excluded pairs).
"""

import pytest

from repro.autotune import autotune
from repro.autotune.search import AxisDomains, count_completions
from repro.core.schedule import PLACEMENT_STRATEGIES
from repro.autotune.grid import FACTOR_AXES
from repro.models.catalog import PAPER_MODELS
from repro.plan import Session
from repro.plan.strategy import COMM_SCHEMES
from repro.topo import heterogeneous, multi_rack

CLUSTER_NAMES = ("flat", "multi-rack", "heterogeneous")


def make_cluster(name):
    """Small instances of the three cluster shapes the suite sweeps."""
    if name == "flat":
        return 8  # profile-backed session, collective axis fixed to "auto"
    if name == "multi-rack":
        return multi_rack(2, 2, 1)
    return heterogeneous([(1, 2, "nvlink"), (1, 2, "pcie")])


CELLS = [
    (model, cluster) for model in sorted(PAPER_MODELS) for cluster in CLUSTER_NAMES
]


def assert_same_winner(session, grid_report, bnb_report):
    """Label, objective value, and resolved plan digest must all agree."""
    assert grid_report.best.label == bnb_report.best.label
    assert grid_report.outcome_value(grid_report.best) == bnb_report.outcome_value(
        bnb_report.best
    )
    grid_plan = session.plan(grid_report.best.strategy)
    bnb_plan = session.plan(bnb_report.best.strategy)
    assert grid_plan.digest() == bnb_plan.digest()
    # Both engines cover the same candidate universe, fully accounted:
    # the grid skips mem_opt x non_dist by construction and B&B must
    # neither search nor count those leaves.
    assert grid_report.stats["candidates"] == bnb_report.stats["candidates"]
    for report in (grid_report, bnb_report):
        assert (
            report.stats["simulated"]
            + report.stats["reused"]
            + report.stats["pruned"]
            == report.stats["candidates"]
        )


@pytest.mark.parametrize("model,cluster_name", CELLS)
def test_bnb_matches_grid_nominal(model, cluster_name):
    session = Session(model, make_cluster(cluster_name))
    grid = autotune(session, comm_schemes=COMM_SCHEMES)
    bnb = autotune(session, search="bnb", comm_schemes=COMM_SCHEMES)
    # 198 = 72 x 3 schemes - 2x9 excluded mem_opt/non_dist points, per
    # collective option.
    assert grid.stats["candidates"] % 198 == 0
    assert_same_winner(session, grid, bnb)
    assert bnb.speedup_over_presets >= 1.0


@pytest.mark.parametrize("model,cluster_name", CELLS)
def test_bnb_matches_grid_robust(model, cluster_name):
    session = Session(model, make_cluster(cluster_name))
    kwargs = dict(
        comm_schemes=COMM_SCHEMES, scenario="stragglers", samples=3
    )
    grid = autotune(session, **kwargs)
    bnb = autotune(session, search="bnb", **kwargs)
    assert grid.objective == bnb.objective == "p95"
    assert_same_winner(session, grid, bnb)


def test_mem_opt_wins_some_cell():
    """The new axis must actually matter: on the heterogeneous cluster
    the winner under the extended grid uses a non-paper scheme."""
    session = Session("ResNet-50", make_cluster("heterogeneous"))
    report = autotune(session, search="bnb", comm_schemes=COMM_SCHEMES)
    assert report.best.strategy.comm_scheme == "mem_opt"
    # ...and it strictly beats the best all-paper candidate.
    paper = autotune(session, search="bnb")
    assert report.best.iteration_time < paper.best.iteration_time


def test_default_grid_unchanged_without_comm_schemes():
    """Omitting comm_schemes= keeps the classic 72-point grid and a
    paper-scheme winner — the axis is strictly opt-in."""
    session = Session("ResNet-50", 8)
    report = autotune(session)
    assert report.stats["candidates"] == 72
    assert report.best.strategy.comm_scheme == "paper"


def test_count_completions_excludes_constrained_pairs():
    """The leaf accounting matches the grid size at every prefix."""
    domains = AxisDomains(
        collectives=("auto",),
        placements=tuple(PLACEMENT_STRATEGIES),
        factor_axes=tuple(FACTOR_AXES),
        gradient_reductions=("wfbp", "bulk"),
        wire_dtypes=(("fp32", "fp32", "fp32"),),
        compressions=(1.0,),
        intervals=((1, 1),),
        comm_schemes=tuple(COMM_SCHEMES),
    )
    assert domains.total_leaves == 198
    # Fixing the constrained axes splits the count exactly.
    assert count_completions(domains, {"comm_scheme": "mem_opt"}) == 54
    assert count_completions(domains, {"comm_scheme": "paper"}) == 72
    assert count_completions(domains, {"placement": "non_dist"}) == 36
    assert (
        count_completions(
            domains, {"placement": "non_dist", "comm_scheme": "mem_opt"}
        )
        == 0
    )
    assert sum(
        count_completions(domains, {"comm_scheme": s}) for s in COMM_SCHEMES
    ) == 198
    assert sum(
        count_completions(domains, {"placement": p})
        for p in PLACEMENT_STRATEGIES
    ) == 198
