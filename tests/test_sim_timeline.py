"""Tests for timelines, breakdowns and trace export."""

import json

import pytest

from repro.sim import Phase, TaskGraph, simulate
from repro.sim.task import FF_BP_KEY
from repro.sim.timeline import PAPER_CATEGORIES


def build_wfbp_like_graph():
    """1 rank: B(1s) -> comm(2s) overlapping B2(0.5s), then idle wait."""
    g = TaskGraph(1)
    b1 = g.add_compute("B1", Phase.BACKWARD, 0, 1.0)
    g.add_collective("C1", Phase.GRAD_COMM, [0], 2.0, deps=[b1])
    g.add_compute("B2", Phase.BACKWARD, 0, 0.5)
    return g


class TestBreakdown:
    def test_total_equals_makespan_on_critical_rank(self):
        tl = simulate(build_wfbp_like_graph())
        bd = tl.breakdown()
        assert bd.total == pytest.approx(tl.makespan)
        assert sum(bd.seconds.values()) == pytest.approx(tl.makespan)

    def test_non_overlapped_comm_accounting(self):
        """2s of comm, 0.5s hidden behind B2 => 1.5s exposed GradComm."""
        tl = simulate(build_wfbp_like_graph())
        bd = tl.breakdown()
        assert bd.get(Phase.BACKWARD.value) == pytest.approx(1.5)
        assert bd.get(Phase.GRAD_COMM.value) == pytest.approx(1.5)

    def test_fully_hidden_comm_contributes_zero(self):
        g = TaskGraph(1)
        b = g.add_compute("B", Phase.BACKWARD, 0, 1.0)
        g.add_collective("C", Phase.GRAD_COMM, [0], 0.5, deps=[b])
        g.add_compute("B2", Phase.BACKWARD, 0, 1.0)
        bd = simulate(g).breakdown()
        assert bd.get(Phase.GRAD_COMM.value) == 0.0

    def test_idle_gap_attributed_to_blocking_task(self):
        """Rank 0 waits for rank 1's slow compute before a collective; the
        wait is billed to the collective's phase."""
        g = TaskGraph(2)
        a0 = g.add_compute("a0", Phase.FORWARD, 0, 1.0)
        a1 = g.add_compute("a1", Phase.FORWARD, 1, 4.0)
        g.add_collective("ar", Phase.FACTOR_COMM, [0, 1], 1.0, deps=[a0, a1])
        bd = simulate(g).breakdown(rank=0)
        assert bd.get(Phase.FACTOR_COMM.value) == pytest.approx(4.0)
        assert bd.get(Phase.FORWARD.value) == pytest.approx(1.0)

    def test_paper_categories_merge_ff_bp(self):
        g = TaskGraph(1)
        g.add_compute("F", Phase.FORWARD, 0, 1.0)
        g.add_compute("B", Phase.BACKWARD, 0, 2.0)
        g.add_compute("P", Phase.PRECONDITION, 0, 0.5)
        cats = simulate(g).breakdown().paper_categories()
        assert set(cats) == set(PAPER_CATEGORIES)
        assert cats[FF_BP_KEY] == pytest.approx(3.5)  # precond folds in

    def test_critical_rank_selection(self):
        g = TaskGraph(2)
        g.add_compute("fast", Phase.FORWARD, 0, 1.0)
        g.add_compute("slow", Phase.FORWARD, 1, 5.0)
        tl = simulate(g)
        assert tl.critical_rank() == 1
        assert tl.breakdown().rank == 1

    def test_breakdown_empty_rank(self):
        g = TaskGraph(2)
        g.add_compute("only0", Phase.FORWARD, 0, 1.0)
        bd = simulate(g).breakdown(rank=1)
        assert bd.total == 0.0
        assert bd.seconds == {}


class TestTimelineQueries:
    def test_rank_entries_filter(self):
        g = TaskGraph(2)
        g.add_compute("c0", Phase.FORWARD, 0, 1.0)
        g.add_collective("ar", Phase.GRAD_COMM, [0, 1], 1.0)
        tl = simulate(g)
        assert len(tl.rank_entries(0)) == 2
        assert len(tl.rank_entries(1)) == 1
        assert len(tl.rank_entries(0, kind="comm")) == 1

    def test_busy_by_phase_double_counts_overlap(self):
        tl = simulate(build_wfbp_like_graph())
        busy = tl.busy_by_phase(0)
        assert busy[Phase.GRAD_COMM.value] == pytest.approx(2.0)
        assert busy[Phase.BACKWARD.value] == pytest.approx(1.5)


class TestChromeTrace:
    def test_trace_roundtrips_as_json(self, tmp_path):
        tl = simulate(build_wfbp_like_graph())
        path = tmp_path / "trace.json"
        tl.save_chrome_trace(str(path))
        data = json.loads(path.read_text())
        events = data["traceEvents"]
        assert len(events) == 3
        assert {e["ph"] for e in events} == {"X"}
        comm = next(e for e in events if e["name"] == "C1")
        assert comm["tid"] == 1  # comm stream
        assert comm["dur"] == pytest.approx(2e6)
