"""Differential tests: caching and serialization never change a verdict.

The autotuner ranks strategies by simulated iteration time, mostly served
from the shared Session cache — so a cache hit must be *bit-identical*
to a fresh simulation, and a plan must survive JSON round-tripping with
an identical re-simulation.  Any drift here could silently reorder a
tuning report.
"""

import pytest

from repro.models import get_model_spec
from repro.models.builder import SpecBuilder
from repro.perf import scaled_cluster_profile
from repro.plan import Plan, Session, clear_caches, strategy_registry

#: The compared sample: the three distributed presets plus non-preset
#: combinations from the autotuner's grid (one per varied axis).
def sample_strategies():
    spd = strategy_registry["SPD-KFAC"]
    return [
        strategy_registry["D-KFAC"],
        strategy_registry["MPD-KFAC"],
        spd,
        spd.but(name="bulk-grad", gradient_reduction="bulk"),
        spd.but(name="threshold-post", factor_fusion="threshold",
                factor_pipelining=False),
        spd.but(name="balanced", placement="balanced"),
        spd.but(name="solve-off", include_solve=False, placement="non_dist"),
    ]


def small_spec():
    builder = SpecBuilder(model_name="tiny-diff", batch_size=4, input_size=16)
    builder.conv("conv0", 3, 8, kernel=3, stride=1, padding="same")
    builder.conv("conv1", 8, 8, kernel=3, stride=1, padding="same")
    builder.linear("fc", 8, 10)
    return builder.build()


def specs():
    return [small_spec(), get_model_spec("ResNet-50")]


@pytest.mark.parametrize("strategy", sample_strategies(), ids=lambda s: s.name)
def test_cached_results_bit_identical_to_fresh_session(strategy):
    profile = scaled_cluster_profile(4)
    for spec in specs():
        clear_caches()
        first = Session(spec, profile)
        plan_a = first.plan(strategy)
        result_a = first.simulate(strategy)
        # Same session, warm cache: the identical objects come back.
        assert first.plan(strategy) is plan_a
        assert first.simulate(strategy) is result_a

        # Fresh session over a cleared cache: bit-identical values.
        clear_caches()
        second = Session(spec, profile)
        plan_b = second.plan(strategy)
        result_b = second.simulate(strategy)
        assert plan_b is not plan_a
        assert plan_b == plan_a
        assert result_b.iteration_time == result_a.iteration_time
        assert result_b.breakdown.total == result_a.breakdown.total
        assert result_b.breakdown.seconds == result_a.breakdown.seconds
        assert result_b.categories() == result_a.categories()


@pytest.mark.parametrize("strategy", sample_strategies(), ids=lambda s: s.name)
def test_serialized_plans_resimulate_bit_identically(strategy):
    profile = scaled_cluster_profile(4)
    for spec in specs():
        session = Session(spec, profile)
        plan = session.plan(strategy)
        reference = session.simulate(strategy)

        loaded = Plan.from_json(plan.to_json())
        assert loaded == plan

        from repro.core.schedule import run_iteration

        replayed = run_iteration(
            loaded.build_graph(spec), loaded.strategy.name, spec.name
        )
        assert replayed.iteration_time == reference.iteration_time
        assert replayed.breakdown.seconds == reference.breakdown.seconds
        assert loaded.predicted_makespan == reference.iteration_time
        assert dict(loaded.predicted_breakdown) == reference.categories()


def test_autotune_verdict_stable_across_cache_states():
    """The tuner's ranking must not depend on what is already cached."""
    from repro.autotune import autotune

    spec = small_spec()
    profile = scaled_cluster_profile(4)
    clear_caches()
    cold = autotune(spec, profile)
    warm = autotune(spec, profile)  # everything served from cache
    assert [o.label for o in cold.outcomes] == [o.label for o in warm.outcomes]
    assert [o.iteration_time for o in cold.outcomes] == [
        o.iteration_time for o in warm.outcomes
    ]
    assert cold.best.iteration_time == warm.best.iteration_time
