"""Tests for the discrete-event simulator: tasks, engine, deadlocks."""

import pytest

from repro.sim import COMM, COMPUTE, DeadlockError, Phase, SimTask, TaskGraph, simulate


class TestTaskGraph:
    def test_add_compute_returns_sequential_ids(self):
        g = TaskGraph(2)
        assert g.add_compute("a", Phase.FORWARD, 0, 1.0) == 0
        assert g.add_compute("b", Phase.FORWARD, 1, 1.0) == 1

    def test_dep_must_exist(self):
        g = TaskGraph(1)
        with pytest.raises(ValueError, match="unknown task"):
            g.add_compute("a", Phase.FORWARD, 0, 1.0, deps=[5])

    def test_forward_dep_only(self):
        g = TaskGraph(1)
        t = g.add_compute("a", Phase.FORWARD, 0, 1.0)
        with pytest.raises(ValueError):
            g.add_compute("b", Phase.FORWARD, 0, 1.0, deps=[t + 1])

    def test_rank_bounds(self):
        g = TaskGraph(2)
        with pytest.raises(ValueError, match="rank"):
            g.add_compute("a", Phase.FORWARD, 2, 1.0)

    def test_compute_task_single_rank(self):
        with pytest.raises(ValueError):
            SimTask(0, "x", Phase.FORWARD, COMPUTE, (0, 1), 1.0, ())

    def test_duplicate_ranks_rejected(self):
        with pytest.raises(ValueError):
            SimTask(0, "x", Phase.GRAD_COMM, COMM, (0, 0), 1.0, ())

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            SimTask(0, "x", Phase.FORWARD, COMPUTE, (0,), -1.0, ())

    def test_stream_queues_follow_insertion_order(self):
        g = TaskGraph(2)
        a = g.add_compute("a", Phase.FORWARD, 0, 1.0)
        c = g.add_collective("c", Phase.GRAD_COMM, [0, 1], 1.0)
        b = g.add_compute("b", Phase.FORWARD, 0, 1.0)
        queues = g.stream_queues()
        assert queues[(0, COMPUTE)] == [a, b]
        assert queues[(0, COMM)] == [c]
        assert queues[(1, COMM)] == [c]


class TestEngineBasics:
    def test_chain_serializes(self):
        g = TaskGraph(1)
        g.add_compute("a", Phase.FORWARD, 0, 1.0)
        g.add_compute("b", Phase.FORWARD, 0, 2.0)
        tl = simulate(g)
        assert tl.makespan == pytest.approx(3.0)
        assert tl.entries[1].start == pytest.approx(1.0)

    def test_compute_comm_overlap(self):
        """Comm on its own stream overlaps compute — the WFBP principle."""
        g = TaskGraph(1)
        a = g.add_compute("a", Phase.BACKWARD, 0, 1.0)
        g.add_collective("c", Phase.GRAD_COMM, [0], 2.0, deps=[a])
        g.add_compute("b", Phase.BACKWARD, 0, 2.0)
        tl = simulate(g)
        assert tl.makespan == pytest.approx(3.0)  # comm hidden behind b

    def test_gang_start_waits_for_all_ranks(self):
        g = TaskGraph(2)
        a0 = g.add_compute("a0", Phase.FORWARD, 0, 1.0)
        a1 = g.add_compute("a1", Phase.FORWARD, 1, 3.0)
        g.add_collective("ar", Phase.GRAD_COMM, [0, 1], 0.5, deps=[a0, a1])
        tl = simulate(g)
        entry = next(e for e in tl.entries if e.task.name == "ar")
        assert entry.start == pytest.approx(3.0)  # straggler rank gates it
        assert tl.makespan == pytest.approx(3.5)

    def test_fifo_comm_stream_serializes_collectives(self):
        g = TaskGraph(2)
        g.add_collective("c1", Phase.GRAD_COMM, [0, 1], 1.0)
        g.add_collective("c2", Phase.GRAD_COMM, [0, 1], 1.0)
        tl = simulate(g)
        c2 = next(e for e in tl.entries if e.task.name == "c2")
        assert c2.start == pytest.approx(1.0)

    def test_zero_duration_tasks(self):
        g = TaskGraph(1)
        a = g.add_compute("a", Phase.FORWARD, 0, 0.0)
        g.add_compute("b", Phase.FORWARD, 0, 0.0, deps=[a])
        assert simulate(g).makespan == 0.0

    def test_empty_graph(self):
        assert simulate(TaskGraph(3)).makespan == 0.0

    def test_fig5_sequential_placement_example(self):
        """Fig. 5(a): 4 tensors, 2 GPUs, sequential placement = 7 slots.

        Tensor costs (comp, comm): T1=(2,1), T3=(2,1) on GPU0; T2=(1,1),
        T4=(1,1) on GPU1 — the paper's illustration where GPU0 finishes
        at 7 time slots with comm serialized per GPU pair.
        """
        g = TaskGraph(2)
        t1 = g.add_compute("T1", Phase.INVERSE_COMP, 0, 2.0)
        c1 = g.add_collective("C1", Phase.INVERSE_COMM, [0, 1], 1.0, deps=[t1])
        t3 = g.add_compute("T3", Phase.INVERSE_COMP, 0, 3.0, deps=[])
        g.add_collective("C3", Phase.INVERSE_COMM, [0, 1], 1.0, deps=[t3])
        tl = simulate(g)
        assert tl.makespan == pytest.approx(6.0)
        assert next(e for e in tl.entries if e.task.name == "C1").start == pytest.approx(2.0)


class TestDeadlockDetection:
    def test_cross_rank_wait_through_collectives_is_fine(self):
        """Per-rank collectives chained across ranks by deps resolve
        without deadlock as long as the combined graph is acyclic."""
        g = TaskGraph(2)
        c1 = g.add_collective("c1", Phase.GRAD_COMM, [0], 1.0)
        c2 = g.add_collective("c2", Phase.GRAD_COMM, [1], 1.0)
        g.add_collective("c1b", Phase.GRAD_COMM, [1], 1.0, deps=[c1])
        g.add_collective("c2b", Phase.GRAD_COMM, [0], 1.0, deps=[c2])
        assert simulate(g).makespan == pytest.approx(2.0)

    def test_cycle_via_stream_and_dep_edges(self):
        """dep edge y->x combined with stream order x before y is cyclic."""
        g = TaskGraph(1)
        g.tasks.append(
            SimTask(0, "x", Phase.FORWARD, COMPUTE, (0,), 1.0, deps=(1,))
        )
        g.tasks.append(SimTask(1, "y", Phase.FORWARD, COMPUTE, (0,), 1.0, deps=()))
        with pytest.raises(DeadlockError, match="x"):
            simulate(g)

    def test_deadlock_error_lists_tasks(self):
        g = TaskGraph(1)
        g.tasks.append(SimTask(0, "first", Phase.FORWARD, COMPUTE, (0,), 1.0, deps=(1,)))
        g.tasks.append(SimTask(1, "second", Phase.FORWARD, COMPUTE, (0,), 1.0, deps=()))
        with pytest.raises(DeadlockError) as excinfo:
            simulate(g)
        assert "first" in str(excinfo.value)

    def test_deadlock_error_names_blocking_dependencies(self):
        """The error shows *why* each stuck task is stuck: the unresolved
        dependencies it waits on, not just the cycle's membership."""
        g = TaskGraph(1)
        g.tasks.append(SimTask(0, "first", Phase.FORWARD, COMPUTE, (0,), 1.0, deps=(1,)))
        g.tasks.append(SimTask(1, "second", Phase.FORWARD, COMPUTE, (0,), 1.0, deps=()))
        with pytest.raises(DeadlockError) as excinfo:
            simulate(g)
        err = excinfo.value
        assert set(err.stuck_task_names) == {"first", "second"}
        assert err.blocked_on["first"] == ("second",)  # dep edge
        assert err.blocked_on["second"] == ("first",)  # stream FIFO edge
        assert "blocked on:" in str(err)
        assert "first <- (second)" in str(err)

    def test_deadlock_error_constructible_without_blocked_on(self):
        """The reference scheduler (and any older caller) still raises
        with just the stuck-name list."""
        err = DeadlockError(["a", "b"])
        assert err.stuck_task_names == ["a", "b"]
        assert err.blocked_on == {}
        assert "blocked on:" not in str(err)
