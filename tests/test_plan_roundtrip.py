"""Property test: plan serialization is lossless.

A random valid strategy is planned, serialized to JSON, deserialized,
and re-simulated — the reloaded plan must equal the original value-wise
and reproduce the exact same timeline bit for bit (floats survive JSON
via repr round-tripping).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import FACTOR_FUSION_POLICIES
from repro.core.schedule import PLACEMENT_STRATEGIES, run_iteration
from repro.perf import scaled_cluster_profile
from repro.plan import Plan, Session, TrainingStrategy
from repro.sim import simulate
from tests.conftest import build_tiny_spec

SPEC = build_tiny_spec(num_layers=6)
PROFILE = scaled_cluster_profile(4)


@st.composite
def valid_strategies(draw) -> TrainingStrategy:
    """Random strategies satisfying the axis-combination rules."""
    second_order = draw(st.booleans())
    distributed = draw(st.booleans())
    fusion = draw(st.sampled_from(FACTOR_FUSION_POLICIES))
    pipelined = draw(st.booleans())
    combine = (
        draw(st.booleans()) if (fusion == "bulk" and not pipelined) else False
    )
    if second_order:
        placement = (
            draw(st.sampled_from(PLACEMENT_STRATEGIES)) if distributed else "non_dist"
        )
    else:
        placement = "non_dist"
    return TrainingStrategy(
        name=draw(st.sampled_from(("probe", "sweep", "custom"))),
        second_order=second_order,
        distributed=distributed,
        gradient_reduction=(
            draw(st.sampled_from(("wfbp", "bulk"))) if distributed else "none"
        ),
        factor_fusion=fusion,
        factor_pipelining=pipelined,
        combine_factor_passes=combine,
        placement=placement,
        include_solve=draw(st.booleans()) if second_order else True,
    )


@given(strategy=valid_strategies())
@settings(max_examples=25, deadline=None)
def test_plan_json_round_trip_is_lossless_and_bit_identical(strategy):
    plan = Session(SPEC, PROFILE).plan(strategy)
    reloaded = Plan.from_json(plan.to_json())

    # Lossless: every resolved artifact survives serialization exactly.
    assert reloaded == plan

    # Bit-identical re-simulation from the deserialized plan.
    original = simulate(plan.build_graph(SPEC))
    restored = simulate(reloaded.build_graph(SPEC))
    assert restored.makespan == original.makespan
    assert [(e.start, e.end) for e in restored.entries] == [
        (e.start, e.end) for e in original.entries
    ]

    # And the packaged result matches what the plan predicted.
    result = run_iteration(reloaded.build_graph(SPEC), strategy.name, SPEC.name)
    assert result.iteration_time == plan.predicted_makespan
    assert result.categories() == reloaded.breakdown_dict()
