"""Tests for the K-FAC extension features: eig inverses, update
frequencies, parameter broadcast."""

import numpy as np
import pytest

from repro.comm import run_spmd
from repro.core import KFACOptimizer, KFACPreconditioner, damped_inverse, eig_damped_inverse
from repro.core.distributed import DistKFACOptimizer, InverseStrategy
from repro.models import make_mlp
from repro.nn import CrossEntropyLoss, Linear, Sequential


class TestEigInverse:
    def test_matches_cholesky_on_spd(self, rng):
        root = rng.normal(size=(12, 12))
        factor = root @ root.T
        np.testing.assert_allclose(
            eig_damped_inverse(factor, 0.1), damped_inverse(factor, 0.1), rtol=1e-8
        )

    def test_handles_psd_rank_deficient(self, rng):
        v = rng.normal(size=(5, 2))
        factor = v @ v.T  # rank 2, Cholesky of undamped would fail
        inv = eig_damped_inverse(factor, 1e-3)
        np.testing.assert_allclose(
            inv @ (factor + 1e-3 * np.eye(5)), np.eye(5), atol=1e-6
        )

    def test_clamps_small_negative_eigenvalues(self):
        # Nearly-PSD factor with a tiny negative eigenvalue from rounding.
        factor = np.diag([1.0, 1e-14]) - np.full((2, 2), 2e-14)
        inv = eig_damped_inverse(factor, 0.5)
        assert np.isfinite(inv).all()

    def test_result_symmetric(self, rng):
        root = rng.normal(size=(7, 7))
        inv = eig_damped_inverse(root @ root.T, 1e-2)
        np.testing.assert_array_equal(inv, inv.T)


class TestInverseMethodOption:
    def _one_step(self, method, rng_seed=3):
        net = Sequential(Linear(5, 4, rng=rng_seed), Linear(4, 3, rng=rng_seed + 1))
        prec = KFACPreconditioner(net, damping=1e-2, stat_decay=0.0, inverse_method=method)
        loss = CrossEntropyLoss()
        r = np.random.default_rng(0)
        x, y = r.normal(size=(16, 5)), r.integers(0, 3, 16)
        loss(net(x), y)
        net.run_backward(loss.backward())
        prec.step()
        return np.concatenate([p.grad.ravel() for p in net.parameters()])

    def test_methods_agree(self):
        np.testing.assert_allclose(
            self._one_step("cholesky"), self._one_step("eig"), rtol=1e-7
        )

    def test_invalid_method_rejected(self, rng):
        with pytest.raises(ValueError, match="inverse_method"):
            KFACPreconditioner(make_mlp(rng=0), inverse_method="qr")


class TestUpdateFrequencies:
    def _trainable(self, factor_update_freq):
        net = Sequential(Linear(4, 3, rng=5))
        prec = KFACPreconditioner(
            net, damping=1e-2, stat_decay=0.5, factor_update_freq=factor_update_freq
        )
        loss = CrossEntropyLoss()
        r = np.random.default_rng(1)
        return net, prec, loss, r

    def test_factor_freq_skips_refreshes(self):
        net, prec, loss, r = self._trainable(factor_update_freq=2)
        snapshots = []
        for _ in range(4):
            net.zero_grad()
            loss(net(r.normal(size=(8, 4))), r.integers(0, 3, 8))
            net.run_backward(loss.backward())
            prec.step()
            snapshots.append(prec.ordered_states()[0].factor_a.copy())
        # Steps 0 and 1 share factors (refresh at 0 only), as do 2 and 3.
        np.testing.assert_array_equal(snapshots[0], snapshots[1])
        np.testing.assert_array_equal(snapshots[2], snapshots[3])
        assert not np.array_equal(snapshots[1], snapshots[2])

    def test_invalid_freq(self):
        with pytest.raises(ValueError):
            KFACPreconditioner(make_mlp(rng=0), factor_update_freq=0)
        with pytest.raises(ValueError):
            KFACOptimizer(make_mlp(rng=0), lr=0.1, inverse_update_freq=0)


class TestDistributedExtensions:
    def test_broadcast_parameters_syncs_ranks(self):
        def rank_fn(comm):
            net = make_mlp(in_features=4, hidden=6, num_classes=2, rng=comm.rank)
            opt = DistKFACOptimizer(net, comm, lr=0.1)
            opt.broadcast_parameters(root=0)
            return np.concatenate([p.data.ravel() for p in net.parameters()])

        params = run_spmd(3, rank_fn)
        for other in params[1:]:
            np.testing.assert_array_equal(params[0], other)

    def test_eig_method_numerically_identical_across_ranks(self):
        def rank_fn(comm):
            net = make_mlp(in_features=4, hidden=6, num_classes=2, rng=9)
            opt = DistKFACOptimizer(
                net, comm, lr=0.1, inverse_strategy=InverseStrategy.LBP,
                inverse_method="eig",
            )
            loss = CrossEntropyLoss()
            r = np.random.default_rng(50 + comm.rank)
            for _ in range(2):
                x, y = r.normal(size=(6, 4)), r.integers(0, 2, 6)
                opt.zero_grad()
                loss(net(x), y)
                net.run_backward(loss.backward())
                opt.step()
            return np.concatenate([p.data.ravel() for p in net.parameters()])

        params = run_spmd(3, rank_fn)
        for other in params[1:]:
            np.testing.assert_array_equal(params[0], other)

    def test_factor_update_freq_distributed_consistency(self):
        """Skipped factor refreshes must not desynchronize ranks."""

        def rank_fn(comm):
            net = make_mlp(in_features=4, hidden=6, num_classes=2, rng=9)
            opt = DistKFACOptimizer(net, comm, lr=0.1, factor_update_freq=2)
            loss = CrossEntropyLoss()
            r = np.random.default_rng(70 + comm.rank)
            for _ in range(4):
                x, y = r.normal(size=(6, 4)), r.integers(0, 2, 6)
                opt.zero_grad()
                loss(net(x), y)
                net.run_backward(loss.backward())
                opt.step()
            return np.concatenate([p.data.ravel() for p in net.parameters()])

        params = run_spmd(2, rank_fn)
        np.testing.assert_array_equal(params[0], params[1])


class TestExtensionExperiments:
    def test_scaling_experiment_shape(self):
        from repro.experiments.ext_scaling import run

        result = run(cluster_sizes=(4, 16, 64))
        assert [row["GPUs"] for row in result.rows] == [4, 16, 64]
        for row in result.rows:
            assert row["SPD-KFAC"] <= row["D-KFAC"] + 1e-9
        assert result.rows[-1]["SP1"] > result.rows[0]["SP1"]

    def test_planner_ablation_shape(self):
        from repro.experiments.ext_planner_ablation import run

        result = run()
        for row in result.rows:
            assert row["A-pass DP(s)"] <= row["A-pass greedy(s)"] + 1e-9
