"""Robust autotuning: sound pruning bounds, determinism, report surface.

The central property (ISSUE 6): the jitter-adjusted lower bound of
:func:`repro.autotune.scenario_adjusted_bound` must not exceed the
simulated time of *any* perturbed sample — that is what keeps pruning
sound when the tuner ranks by a tail objective instead of the nominal
time.  Alongside it: common-random-number determinism (two identical
robust searches produce byte-identical JSON) and the prune/no-prune
verdict equivalence.
"""

import dataclasses

import numpy as np
import pytest

from repro.autotune import (
    ROBUST_OBJECTIVES,
    AutotuneReport,
    CandidateBound,
    CandidateOutcome,
    autotune,
    candidate_bound,
    candidate_sample_times,
    pareto_frontier,
    robust_value,
    scenario_adjusted_bound,
    strategy_grid,
)
from repro.autotune.robust import RobustStats
from repro.faults import FaultScenario, StragglerSpec, named_scenario
from repro.plan import Session, resolve_plan_parts, strategy_registry

SAMPLES = 6


@pytest.fixture(scope="module")
def robust_report():
    return autotune(
        "ResNet-50", 8, scenario="stragglers", objective="p95", samples=SAMPLES
    )


class TestBoundSoundness:
    def test_adjusted_bound_below_every_perturbed_sample(self):
        """bound * min_factor * (1 + rate) <= every sampled time."""
        session = Session("ResNet-50", 8)
        spec = session.spec
        scenario = named_scenario("severe-stragglers")
        seeds = scenario.sample_seeds(SAMPLES)
        for strategy in strategy_grid()[::7]:  # a spread of the grid
            profile = session.profile_for(strategy)
            parts = resolve_plan_parts(spec, profile, strategy)
            num_ranks, grad_plan, fplan, placement = parts
            bound = candidate_bound(
                spec,
                profile,
                num_ranks=num_ranks,
                grad_plan=grad_plan,
                fplan=fplan,
                placement=placement,
                include_solve=strategy.include_solve,
                strategy=strategy,
            )
            adjusted = scenario_adjusted_bound(bound, scenario)
            times = candidate_sample_times(
                spec,
                profile,
                strategy,
                scenario,
                seeds,
                num_ranks=num_ranks,
                grad_plan=grad_plan,
                fplan=fplan,
                placement=placement,
            )
            assert adjusted.total <= times.min() * (1 + 1e-12)
            # factors are clamped >= 1, so the nominal bound itself holds too
            assert bound.total <= times.min() * (1 + 1e-12)

    def test_adjusted_bound_scales_by_overhead_rate(self):
        bound = CandidateBound(compute=2.0, comm=3.0, chain=1.0)
        scenario = FaultScenario(straggler=StragglerSpec(sigma=0.5))
        adjusted = scenario_adjusted_bound(bound, scenario, overhead_rate=0.5)
        assert adjusted.compute == pytest.approx(2.0 * 1.5)
        assert adjusted.comm == pytest.approx(3.0 * 1.5)
        assert adjusted.chain == pytest.approx(1.0 * 1.5)
        with pytest.raises(ValueError, match="overhead_rate"):
            scenario_adjusted_bound(bound, scenario, overhead_rate=-0.1)

    def test_prune_never_changes_the_verdict(self, robust_report):
        unpruned = autotune(
            "ResNet-50",
            8,
            scenario="stragglers",
            objective="p95",
            samples=SAMPLES,
            prune=False,
        )
        assert unpruned.stats["pruned"] == 0
        assert robust_report.best.label == unpruned.best.label
        assert robust_report.outcome_value(
            robust_report.best
        ) == unpruned.outcome_value(unpruned.best)

    def test_pruned_candidates_could_not_have_won(self, robust_report):
        best_value = robust_report.outcome_value(robust_report.best)
        for outcome in robust_report.outcomes:
            if outcome.status == "pruned":
                assert outcome.robust is None
                # the *nominal* bound already exceeds nothing it shouldn't:
                # the adjusted bound used for pruning is >= this one.
                assert outcome.bound.total * robust_report.scenario.min_compute_factor() >= 0

        # every simulated candidate's objective value >= the winner's
        for outcome in robust_report.outcomes:
            value = robust_report.outcome_value(outcome)
            if value is not None:
                assert value >= best_value


class TestRobustValues:
    def test_summary_statistics_order(self):
        times = [1.0, 2.0, 3.0, 4.0, 10.0]
        assert robust_value(times, "mean") == pytest.approx(4.0)
        assert robust_value(times, "worst") == 10.0
        assert robust_value(times, "p95") <= robust_value(times, "worst")
        assert robust_value(times, "cvar95") == 10.0  # worst 5% of 5 = 1 sample
        stats = RobustStats.from_times(times)
        assert stats.samples == 5
        assert stats.best == 1.0
        assert stats.mean <= stats.p95 <= stats.worst
        assert stats.p95 <= stats.cvar95 <= stats.worst
        for objective in ROBUST_OBJECTIVES[1:]:
            assert stats.value(objective) == robust_value(times, objective)

    def test_validation(self):
        with pytest.raises(ValueError, match="non-empty"):
            robust_value([], "mean")
        with pytest.raises(ValueError, match="unknown robust objective"):
            robust_value([1.0], "median")
        with pytest.raises(ValueError, match="unknown robust objective"):
            RobustStats.from_times([1.0]).value("nominal")


class TestAutotuneRobustMode:
    def test_deterministic_across_runs(self, robust_report):
        again = autotune(
            "ResNet-50", 8, scenario="stragglers", objective="p95", samples=SAMPLES
        )
        assert again.to_json() == robust_report.to_json()

    def test_robust_values_dominate_nominal_times(self, robust_report):
        for outcome in robust_report.outcomes:
            if outcome.robust is not None:
                assert outcome.robust.best >= outcome.iteration_time
                assert outcome.robust.samples == SAMPLES

    def test_ranked_by_objective_not_nominal(self, robust_report):
        values = [
            robust_report.outcome_value(o)
            for o in robust_report.outcomes
            if o.simulated
        ]
        assert values == sorted(values)

    def test_report_surface(self, robust_report):
        assert robust_report.objective == "p95"
        assert robust_report.scenario.name == "stragglers"
        assert set(robust_report.preset_values) == set(robust_report.preset_times)
        text = robust_report.to_text()
        assert "objective: p95" in text and "p95(s)" in text
        payload = robust_report.to_dict()
        assert payload["objective"] == "p95"
        assert payload["scenario"]["name"] == "stragglers"
        assert payload["best"]["robust"]["samples"] == SAMPLES

    def test_seed_override_changes_samples(self):
        a = autotune("ResNet-50", 8, scenario="stragglers", samples=4, seed=1)
        b = autotune("ResNet-50", 8, scenario="stragglers", samples=4, seed=2)
        assert a.scenario.seed == 1 and b.scenario.seed == 2
        assert a.best.robust.to_dict() != b.best.robust.to_dict()

    def test_nominal_mode_unchanged(self):
        report = autotune("ResNet-50", 8, presets=("SPD-KFAC",))
        assert report.objective == "nominal"
        assert report.scenario is None and report.preset_values == {}
        assert all(o.robust is None for o in report.outcomes)
        assert "objective:" not in report.to_text()

    def test_validation_errors(self):
        with pytest.raises(ValueError, match="needs a fault scenario"):
            autotune("ResNet-50", 8, objective="p95")
        with pytest.raises(ValueError, match="not a robust objective"):
            autotune("ResNet-50", 8, scenario="stragglers", objective="nominal")
        with pytest.raises(ValueError, match="not a robust objective"):
            autotune("ResNet-50", 8, scenario="stragglers", objective="median")
        with pytest.raises(ValueError, match="samples"):
            autotune("ResNet-50", 8, scenario="stragglers", samples=0)
        with pytest.raises(TypeError, match="scenario"):
            autotune("ResNet-50", 8, scenario=42)
        with pytest.raises(KeyError, match="unknown fault scenario"):
            autotune("ResNet-50", 8, scenario="asteroids")
        with pytest.raises(ValueError, match="scenario-bound Session"):
            autotune(
                Session("ResNet-50", 8, scenario=named_scenario("stragglers"))
            )


def _outcome(label: str, time: float, traffic: float) -> CandidateOutcome:
    return CandidateOutcome(
        strategy=strategy_registry["SPD-KFAC"].but(name=label),
        preset=None,
        bound=CandidateBound(compute=0.0, comm=0.0),
        iteration_time=time,
        breakdown=(),
        traffic_elements=traffic,
        traffic_bytes=traffic,
        traffic_by_op=(),
        status="simulated",
    )


class TestParetoTieBreak:
    def test_equal_cells_break_ties_on_label_deterministically(self):
        """Identical (time, traffic) candidates must keep one canonical
        order no matter how the input list was ordered."""
        outcomes = [
            _outcome("zeta", 1.0, 100.0),
            _outcome("alpha", 1.0, 100.0),
            _outcome("mid", 1.0, 100.0),
        ]
        frontier = pareto_frontier(outcomes)
        assert [o.label for o in frontier] == ["alpha"]
        for rotation in range(3):
            rotated = outcomes[rotation:] + outcomes[:rotation]
            assert [o.label for o in pareto_frontier(rotated)] == ["alpha"]

    def test_frontier_minimizes_both_axes(self):
        outcomes = [
            _outcome("fast-heavy", 1.0, 300.0),
            _outcome("mid", 2.0, 200.0),
            _outcome("slow-light", 3.0, 100.0),
            _outcome("dominated", 3.0, 300.0),
        ]
        labels = [o.label for o in pareto_frontier(outcomes)]
        assert labels == ["fast-heavy", "mid", "slow-light"]
