"""Tests for the synthetic workload generators."""

import numpy as np
import pytest

from repro.workloads import (
    gaussian_blobs,
    sharded_batches,
    spiral_classification,
    synthetic_images,
)


class TestGaussianBlobs:
    def test_shapes_and_labels(self):
        x, y = gaussian_blobs(100, 8, 4, rng=0)
        assert x.shape == (100, 8)
        assert y.shape == (100,)
        assert set(np.unique(y)) <= set(range(4))

    def test_anisotropy(self):
        x, _ = gaussian_blobs(2000, 10, 3, scale_spread=5.0, rng=0)
        stds = x.std(axis=0)
        assert stds[-1] / stds[0] > 2.0

    def test_reproducible(self):
        x1, y1 = gaussian_blobs(50, 4, 2, rng=3)
        x2, y2 = gaussian_blobs(50, 4, 2, rng=3)
        np.testing.assert_array_equal(x1, x2)
        np.testing.assert_array_equal(y1, y2)

    def test_validation(self):
        with pytest.raises(ValueError):
            gaussian_blobs(0, 4, 2)


class TestSpiral:
    def test_balanced_classes(self):
        x, y = spiral_classification(90, num_classes=3, rng=0)
        assert x.shape == (90, 2)
        counts = np.bincount(y)
        assert all(c == 30 for c in counts)

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            spiral_classification(2, num_classes=3)


class TestSyntheticImages:
    def test_shapes(self):
        x, y = synthetic_images(20, channels=2, size=8, num_classes=4, rng=0)
        assert x.shape == (20, 2, 8, 8)
        assert y.shape == (20,)

    def test_signal_in_labeled_quadrant(self):
        x, y = synthetic_images(40, channels=1, size=8, num_classes=4, rng=1)
        for i in range(40):
            half = 4
            quads = [
                x[i, 0, :half, :half].mean(),
                x[i, 0, :half, half:].mean(),
                x[i, 0, half:, :half].mean(),
                x[i, 0, half:, half:].mean(),
            ]
            assert int(np.argmax(quads)) == y[i] % 4

    def test_odd_size_rejected(self):
        with pytest.raises(ValueError):
            synthetic_images(4, size=7)


class TestShardedBatches:
    def test_disjoint_shards_per_round(self):
        data = gaussian_blobs(64, 4, 2, rng=0)
        stream = sharded_batches(data, world_size=4, batch_size=8, rng=0)
        shards = next(stream)
        assert len(shards) == 4
        seen = set()
        for xs, ys in shards:
            assert xs.shape == (8, 4)
            assert ys.shape == (8,)
            rows = {tuple(row) for row in xs}
            assert not (rows & seen)
            seen |= rows

    def test_dataset_too_small(self):
        data = gaussian_blobs(8, 4, 2, rng=0)
        with pytest.raises(ValueError):
            next(sharded_batches(data, world_size=4, batch_size=8))

    def test_stream_is_endless_and_reshuffles(self):
        data = gaussian_blobs(32, 4, 2, rng=0)
        stream = sharded_batches(data, world_size=2, batch_size=4, rng=1)
        first = next(stream)[0][0]
        second = next(stream)[0][0]
        assert not np.array_equal(first, second)
