"""Property/fuzz tests over the whole TrainingStrategy axis space.

The autotuner's search space is every valid axis combination; this is
the safety net it stands on.  Seeded random combinations (via
``utils/rng``) are checked against an *independently stated* validity
predicate: valid combos must construct, plan, and simulate without
error, with breakdown components summing to the iteration time and the
autotuner's lower bound below it; invalid combos must raise
``ValueError``.
"""

import math

import pytest

from repro.autotune import candidate_bound, strategy_grid
from repro.core.pipeline import FACTOR_FUSION_POLICIES
from repro.core.schedule import PLACEMENT_STRATEGIES
from repro.models.builder import SpecBuilder
from repro.perf import scaled_cluster_profile
from repro.plan import (
    COLLECTIVE_ALGORITHMS,
    GRADIENT_REDUCTIONS,
    Session,
    TrainingStrategy,
    resolve_plan_parts,
)
from repro.utils.rng import new_rng

SEED = 20260728

#: Every axis with its full domain — the fuzzer draws uniformly here.
AXIS_DOMAINS = {
    "second_order": (True, False),
    "distributed": (True, False),
    "gradient_reduction": GRADIENT_REDUCTIONS,
    "factor_fusion": FACTOR_FUSION_POLICIES,
    "factor_pipelining": (True, False),
    "combine_factor_passes": (True, False),
    "placement": PLACEMENT_STRATEGIES,
    "include_solve": (True, False),
    "collective": COLLECTIVE_ALGORITHMS,
}


def is_valid(combo):
    """The validity rules, stated independently of the validator."""
    if combo["distributed"] and combo["gradient_reduction"] == "none":
        return False
    if not combo["distributed"] and combo["gradient_reduction"] != "none":
        return False
    if (
        not combo["distributed"]
        and combo["second_order"]
        and combo["placement"] != "non_dist"
    ):
        return False
    if combo["combine_factor_passes"] and (
        combo["factor_fusion"] != "bulk" or combo["factor_pipelining"]
    ):
        return False
    if not combo["second_order"] and not combo["include_solve"]:
        return False
    return True


def random_combo(rng):
    return {
        axis: domain[int(rng.integers(len(domain)))]
        for axis, domain in AXIS_DOMAINS.items()
    }


def tiny_spec():
    builder = SpecBuilder(model_name="tiny-fuzz", batch_size=4, input_size=16)
    builder.conv("conv0", 3, 8, kernel=3, stride=1, padding="same")
    builder.conv("conv1", 8, 16, kernel=3, stride=1, padding="same")
    builder.linear("fc", 16, 10)
    return builder.build()


def test_validator_agrees_with_independent_predicate():
    """400 seeded random combos: constructibility == the stated rules."""
    rng = new_rng(SEED)
    valid_seen = invalid_seen = 0
    for _ in range(400):
        combo = random_combo(rng)
        if is_valid(combo):
            TrainingStrategy(**combo)  # must not raise
            valid_seen += 1
        else:
            with pytest.raises(ValueError):
                TrainingStrategy(**combo)
            invalid_seen += 1
    # The draw must actually exercise both sides.
    assert valid_seen > 50
    assert invalid_seen > 50


def test_every_valid_combo_plans_and_simulates():
    """Seeded valid combos (plus the full autotuner grid) all plan,
    simulate, and account their time consistently."""
    spec = tiny_spec()
    profile = scaled_cluster_profile(4)
    session = Session(spec, profile)

    rng = new_rng(SEED + 1)
    sampled = []
    while len(sampled) < 60:
        combo = random_combo(rng)
        if is_valid(combo):
            sampled.append(TrainingStrategy(**combo))
    # The autotuner's grid is the distributed second-order subspace; the
    # random sample adds single-device, first-order, and solve-off combos.
    for strategy in sampled + strategy_grid():
        plan = session.plan(strategy)
        result = session.simulate(strategy)

        # Planning and simulation agree on the headline number.
        assert result.iteration_time > 0
        assert plan.predicted_makespan == result.iteration_time

        # Breakdown components sum to the iteration time.
        breakdown = result.breakdown
        assert breakdown.total == result.iteration_time
        assert math.isclose(
            sum(breakdown.seconds.values()), breakdown.total, rel_tol=1e-9
        )
        assert math.isclose(
            sum(result.categories().values()), result.iteration_time, rel_tol=1e-9
        )

        # The autotuner's pruning bound never exceeds the simulated time.
        num_ranks, grad_plan, fplan, placement = resolve_plan_parts(
            spec, profile, strategy
        )
        bound = candidate_bound(
            spec,
            profile,
            num_ranks=num_ranks,
            grad_plan=grad_plan,
            fplan=fplan,
            placement=placement,
            include_solve=strategy.include_solve,
        )
        assert bound.total <= result.iteration_time + 1e-12


def test_invalid_axis_values_raise():
    """Unknown axis values (not just bad combinations) raise ValueError."""
    rng = new_rng(SEED + 2)
    for axis in AXIS_DOMAINS:
        if AXIS_DOMAINS[axis] == (True, False):
            continue
        combo = random_combo(rng)
        while not is_valid(combo):
            combo = random_combo(rng)
        combo[axis] = "definitely-not-a-real-option"
        with pytest.raises(ValueError):
            TrainingStrategy(**combo)
