"""Reproduction shape tests: every experiment must match the paper's
qualitative results (orderings, crossovers, rough factors).

These are the acceptance tests of DESIGN.md §4.  Simulation results for
the heavyweight experiments are cached per session via the experiments'
own lru-cached helpers.
"""

import pytest

from repro.experiments import EXPERIMENTS, get_experiment
from repro.experiments.base import PAPER_MODEL_NAMES


def rows_by(result, **filters):
    out = [
        row
        for row in result.rows
        if all(row.get(k) == v for k, v in filters.items())
    ]
    assert out, f"no rows matching {filters}"
    return out


def one_row(result, **filters):
    rows = rows_by(result, **filters)
    assert len(rows) == 1
    return rows[0]


@pytest.fixture(scope="module")
def results():
    """Run every experiment once for the whole module.

    ``ext_elastic`` re-prices 36 robust-autotune cells (~50 s) and is
    covered by its own frozen-subset suite in tests/test_ext_elastic.py,
    so it is excluded from this sweep.
    """
    return {
        eid: get_experiment(eid).run()
        for eid in EXPERIMENTS
        if eid != "ext_elastic"
    }


class TestRegistry:
    def test_all_paper_artifacts_covered(self):
        paper_ids = {
            "tab2", "fig2", "fig3", "fig7", "fig8", "tab3",
            "fig9", "fig10", "fig11", "fig12", "fig13",
        }
        assert paper_ids <= set(EXPERIMENTS)
        assert set(EXPERIMENTS) - paper_ids == {
            "ext_scaling", "ext_planner", "ext_convergence",
            "ext_topology", "ext_topo_crossover", "ext_autotune",
            "ext_precision", "ext_elastic", "ext_comm_schemes",
        }

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            get_experiment("fig99")

    def test_renderers(self, results):
        for result in results.values():
            text = result.to_text()
            markdown = result.to_markdown()
            assert result.experiment_id in text
            assert markdown.startswith("###")


class TestTable2(object):
    def test_layer_counts_exact(self, results):
        for row in results["tab2"].rows:
            assert row["layers"] == row["paper#L"]

    def test_params_close(self, results):
        for row in results["tab2"].rows:
            assert row["params(M)"] == pytest.approx(row["paper"], rel=0.02)

    def test_a_elements_close(self, results):
        for row in results["tab2"].rows:
            assert row["As(M)"] == pytest.approx(row["paperAs"], rel=0.02)


class TestFig2:
    def test_kfac_much_slower_than_sgd(self, results):
        sgd = one_row(results["fig2"], scheme="SGD")["total"]
        kfac = one_row(results["fig2"], scheme="KFAC")["total"]
        assert 2.0 < kfac / sgd < 6.0  # paper: ~4x

    def test_factor_comm_exceeds_grad_comm(self, results):
        dkfac = one_row(results["fig2"], scheme="D-KFAC")
        assert dkfac["FactorComm"] > dkfac["GradComm"]

    def test_mpd_trades_inverse_comp_for_comm(self, results):
        d = one_row(results["fig2"], scheme="D-KFAC")
        mpd = one_row(results["fig2"], scheme="MPD-KFAC")
        assert mpd["InverseComp"] < 0.2 * d["InverseComp"]
        assert mpd["InverseComm"] > 0.05
        assert d["InverseComm"] == 0.0

    def test_mpd_inverse_comm_near_paper_value(self, results):
        mpd = one_row(results["fig2"], scheme="MPD-KFAC")
        assert mpd["InverseComm"] == pytest.approx(0.134, rel=0.4)

    def test_ssgd_overhead_small(self, results):
        sgd = one_row(results["fig2"], scheme="SGD")["total"]
        ssgd = one_row(results["fig2"], scheme="S-SGD")["total"]
        assert 1.0 <= ssgd / sgd < 1.3


class TestFig3:
    def test_resnet50_extremes_exact(self, results):
        row = one_row(results["fig3"], model="ResNet-50")
        assert row["min"] == 2080
        assert row["max"] == 10_619_136

    def test_factor_counts(self, results):
        expected = {"ResNet-50": 108, "ResNet-152": 312, "DenseNet-201": 402, "Inception-v4": 300}
        for name, count in expected.items():
            assert one_row(results["fig3"], model=name)["factors"] == count

    def test_sizes_span_many_decades(self, results):
        for row in results["fig3"].rows:
            decades_hit = sum(1 for d in (2, 3, 4, 5, 6, 7) if row[f"1e{d}"] > 0)
            assert decades_hit >= 3


class TestFig7:
    def test_fit_recovers_paper_constants(self, results):
        for row in results["fig7"].rows:
            assert row["alpha"] == pytest.approx(row["paper_alpha"], rel=0.25)
            assert row["beta"] == pytest.approx(row["paper_beta"], rel=0.1)
            assert row["R2"] > 0.99


class TestFig8:
    def test_exponential_family_fits_real_cholesky(self, results):
        note = results["fig8"].notes[0]
        r2 = float(note.split("R2=")[1].split(" ")[0].rstrip(","))
        assert r2 > 0.8

    def test_measured_times_increase_with_dimension(self, results):
        measured = results["fig8"].column("measured(s)")
        assert measured[-1] > measured[0]


class TestTable3:
    def test_spd_fastest_everywhere(self, results):
        for row in results["tab3"].rows:
            assert row["SPD-KFAC"] < row["MPD-KFAC"]
            assert row["SPD-KFAC"] < row["D-KFAC"]

    def test_mpd_slower_than_d_on_densenet_only_plus_inception(self, results):
        """The paper's DenseNet-201 inversion: MPD-KFAC loses to D-KFAC."""
        densenet = one_row(results["tab3"], model="DenseNet-201")
        assert densenet["MPD-KFAC"] > densenet["D-KFAC"]
        for name in ("ResNet-50", "ResNet-152"):
            row = one_row(results["tab3"], model=name)
            assert row["MPD-KFAC"] < row["D-KFAC"]

    def test_speedups_in_paper_ballpark(self, results):
        """Paper: SP1 in [1.10, 1.35], SP2 in [1.13, 1.19].  Allow a wide
        band (simulator vs testbed) but demand real, bounded speedups."""
        for row in results["tab3"].rows:
            assert 1.05 < row["SP1"] < 2.2
            assert 1.05 < row["SP2"] < 2.2


class TestFig9:
    def test_unoptimized_phases_identical_across_variants(self, results):
        for name in PAPER_MODEL_NAMES:
            rows = rows_by(results["fig9"], model=name)
            ffbp = {round(r["FF & BP"], 6) for r in rows}
            fcomp = {round(r["FactorComp"], 6) for r in rows}
            assert len(ffbp) == 1
            assert len(fcomp) == 1

    def test_spd_hides_factor_comm(self, results):
        for name in PAPER_MODEL_NAMES:
            d = one_row(results["fig9"], model=name, algorithm="D-KFAC")
            spd = one_row(results["fig9"], model=name, algorithm="SPD-KFAC")
            assert spd["FactorComm"] < 0.5 * d["FactorComm"]

    def test_totals_match_tab3(self, results):
        tab3 = {row["model"]: row for row in results["tab3"].rows}
        for name in PAPER_MODEL_NAMES:
            spd = one_row(results["fig9"], model=name, algorithm="SPD-KFAC")
            assert spd["total"] == pytest.approx(tab3[name]["SPD-KFAC"], rel=1e-9)


class TestFig10:
    def test_lw_without_fusion_worst(self, results):
        for name in PAPER_MODEL_NAMES:
            rows = {r["strategy"]: r["total"] for r in rows_by(results["fig10"], model=name)}
            assert rows["LW w/o TF"] > rows["Naive"]
            assert rows["LW w/o TF"] == max(rows.values())

    def test_otf_best_or_tied(self, results):
        for name in PAPER_MODEL_NAMES:
            rows = {r["strategy"]: r["total"] for r in rows_by(results["fig10"], model=name)}
            # Allow a 1% tie-band against TTF (DenseNet's G factors are so
            # small that both plans are near-optimal there).
            assert rows["SP w/ OTF"] <= min(rows.values()) * 1.01

    def test_otf_hides_most_factor_comm(self, results):
        """Paper: pipelining hides 50-84% of the factor communication
        relative to the Naive overlap of [20, 22]."""
        for name in PAPER_MODEL_NAMES:
            naive = one_row(results["fig10"], model=name, strategy="Naive")
            otf = one_row(results["fig10"], model=name, strategy="SP w/ OTF")
            if naive["FactorComm"] > 0.02:  # hidden-fraction meaningful
                assert otf["FactorComm"] < 0.65 * naive["FactorComm"]


class TestFig11:
    def test_crossover_in_mid_range(self, results):
        note = results["fig11"].notes[0]
        crossover = int(note.split("d ~= ")[1].split(":")[0])
        assert 3000 < crossover < 4500

    def test_small_dims_prefer_compute(self, results):
        for row in results["fig11"].rows:
            if row["d"] <= 2048:
                assert row["cheaper"] == "compute (NCT)"
            if row["d"] >= 6144:
                assert row["cheaper"] == "broadcast (CT)"


class TestFig12:
    def test_lbp_best_on_every_model(self, results):
        for name in PAPER_MODEL_NAMES:
            rows = {r["strategy"]: r["total"] for r in rows_by(results["fig12"], model=name)}
            assert rows["lbp"] == min(rows.values())

    def test_seq_dist_worse_than_non_dist_on_densenet(self, results):
        rows = {r["strategy"]: r["total"] for r in rows_by(results["fig12"], model="DenseNet-201")}
        assert rows["seq_dist"] > rows["non_dist"]

    def test_lbp_improvement_range(self, results):
        """Paper: 10-62% improvement over Non-Dist and Seq-Dist."""
        for name in PAPER_MODEL_NAMES:
            rows = {r["strategy"]: r["total"] for r in rows_by(results["fig12"], model=name)}
            improvement = max(rows["non_dist"], rows["seq_dist"]) / rows["lbp"]
            assert improvement > 1.08

    def test_lbp_uses_fewer_broadcasts(self, results):
        for name in PAPER_MODEL_NAMES:
            lbp = one_row(results["fig12"], model=name, strategy="lbp")
            seq = one_row(results["fig12"], model=name, strategy="seq_dist")
            assert lbp["CTs"] < seq["CTs"]


class TestFig13:
    def test_each_optimization_helps(self, results):
        for row in results["fig13"].rows:
            baseline = row["-Pipe-LBP"]
            assert row["+Pipe-LBP"] < baseline
            assert row["-Pipe+LBP"] < baseline
            assert row["+Pipe+LBP"] <= min(row["+Pipe-LBP"], row["-Pipe+LBP"])

    def test_combined_improvement_band(self, results):
        """Paper: 10-35% combined; allow the simulator's wider band."""
        for row in results["fig13"].rows:
            assert 1.1 < row["improvement"] < 2.0

    def test_baseline_equals_mpd_kfac(self, results):
        tab3 = {r["model"]: r for r in results["tab3"].rows}
        for row in results["fig13"].rows:
            assert row["-Pipe-LBP"] == pytest.approx(tab3[row["model"]]["MPD-KFAC"], rel=1e-9)


class TestExtTopology:
    def test_full_grid_present(self, results):
        rows = results["ext_topology"].rows
        topologies = {r["topology"] for r in rows}
        algorithms = {r["algorithm"] for r in rows}
        assert len(topologies) >= 4
        assert algorithms == {"ring", "tree", "hierarchical"}
        assert len(rows) == len(topologies) * len(algorithms)

    def test_hierarchical_beats_ring_on_multi_rack(self, results):
        """The acceptance scenario: hierarchical all-reduce must beat the
        flat ring on at least one multi-rack cluster, for both variants."""
        rows = rows_by(results["ext_topology"], topology="4 racks x 4 x 4 / eth spine")
        by_alg = {r["algorithm"]: r for r in rows}
        assert by_alg["hierarchical"]["SPD-KFAC(s)"] < by_alg["ring"]["SPD-KFAC(s)"]
        assert by_alg["hierarchical"]["D-KFAC(s)"] < by_alg["ring"]["D-KFAC(s)"]

    def test_algorithms_tie_on_flat_ring_equivalence(self, results):
        """On the flat paper fabric, hierarchical degenerates to the ring."""
        rows = rows_by(results["ext_topology"], topology="flat-64 (paper fabric)")
        by_alg = {r["algorithm"]: r for r in rows}
        assert by_alg["hierarchical"]["SPD-KFAC(s)"] == pytest.approx(
            by_alg["ring"]["SPD-KFAC(s)"], rel=1e-9
        )

    def test_all_iteration_times_positive(self, results):
        for row in results["ext_topology"].rows:
            assert row["SPD-KFAC(s)"] > 0
            assert row["D-KFAC(s)"] >= row["SPD-KFAC(s)"] * 0.8


class TestExtAutotune:
    def test_every_cell_covered(self, results):
        rows = results["ext_autotune"].rows
        assert {r["model"] for r in rows} == set(PAPER_MODEL_NAMES)
        assert len({r["topology"] for r in rows}) == 3
        assert len(rows) == 12

    def test_best_never_worse_than_best_preset(self, results):
        """Acceptance: on every (model, cluster) cell the tuner's best is
        at least as fast as the best named registry preset."""
        for row in results["ext_autotune"].rows:
            assert row["best(s)"] <= row["preset(s)"]
            assert row["speedup"] >= 1.0

    def test_strictly_better_non_preset_on_heterogeneous(self, results):
        """Acceptance: at least one heterogeneous/multi-rack cell finds a
        strictly better combination than every named preset."""
        strict = [
            r
            for r in results["ext_autotune"].rows
            if r["best(s)"] < r["preset(s)"] and "pcie" in r["topology"]
        ]
        assert strict, "no strict win on the heterogeneous topology"

    def test_spd_kfac_rediscovered_on_paper_fabric(self, results):
        row = one_row(
            results["ext_autotune"],
            model="ResNet-50",
            topology="flat-64 (paper fabric)",
        )
        assert row["best strategy"] == "wfbp|optimal+pipe|lbp|auto"
        assert row["best preset"] == "SPD-KFAC"

    def test_pruning_does_meaningful_work(self, results):
        for row in results["ext_autotune"].rows:
            assert row["cands"] == 288
            assert row["sim"] + row["pruned"] <= row["cands"]
            assert row["pruned"] > row["cands"] / 3

    def test_notes_name_a_beaten_preset(self, results):
        assert any("beats" in note for note in results["ext_autotune"].notes)


class TestExtTopoCrossover:
    def test_tree_wins_small_ring_wins_large_on_flat(self, results):
        rows = rows_by(results["ext_topo_crossover"], topology="flat-64 (paper fabric)")
        by_size = {r["m(elem)"]: r for r in rows}
        assert by_size[min(by_size)]["cheapest"] == "tree"
        assert by_size[max(by_size)]["cheapest"] == "ring"

    def test_hierarchical_dominates_multi_rack(self, results):
        rows = rows_by(results["ext_topo_crossover"], topology="4 racks x 4 x 4 / eth spine")
        for row in rows:
            assert row["cheapest"] == "hierarchical"

    def test_costs_monotone_in_message_size(self, results):
        for topology in {r["topology"] for r in results["ext_topo_crossover"].rows}:
            rows = sorted(
                rows_by(results["ext_topo_crossover"], topology=topology),
                key=lambda r: r["m(elem)"],
            )
            for col in ("ring(s)", "tree(s)", "hierarchical(s)"):
                values = [r[col] for r in rows]
                assert values == sorted(values)

    def test_crossover_notes_present(self, results):
        assert len(results["ext_topo_crossover"].notes) >= 2
