"""The ext_elastic experiment: frozen rows + divergence guarantees.

``tests/data/frozen_ext_elastic_rows.json`` pins the full 36-cell sweep
(4 models x 3 topologies x 3 fault scenarios) bit-exactly, floats
stored as ``float.hex``.  The live run here prices only a subset
(2 models x severe-stragglers x all topologies) to keep the suite fast;
cells are independent, so the subset must match the corresponding
frozen cells bit-for-bit.  To regenerate after an *intentional*
cost-model or scenario-preset change::

    PYTHONPATH=src python - <<'PY'
    import json
    from repro.experiments.base import get_experiment
    result = get_experiment("ext_elastic").run()
    rows = [{k: (float.hex(v) if isinstance(v, float) else v)
             for k, v in row.items()} for row in result.rows]
    payload = {"ext_elastic": {"columns": list(result.columns), "rows": rows}}
    with open("tests/data/frozen_ext_elastic_rows.json", "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True); f.write("\n")
    PY
"""

import json
from pathlib import Path

import pytest

from repro.experiments.base import get_experiment
from repro.experiments.ext_elastic import FAULT_SCENARIOS, TOPOLOGY_NAMES

FROZEN_PATH = Path(__file__).parent / "data" / "frozen_ext_elastic_rows.json"

#: The cells the live run re-prices (every severe-stragglers cell of two
#: models); the frozen file additionally holds the other scenarios/models.
SUBSET_MODELS = ("ResNet-50", "ResNet-152")
SUBSET_SCENARIOS = ("severe-stragglers",)


@pytest.fixture(scope="module")
def result():
    return get_experiment("ext_elastic").run(
        models=SUBSET_MODELS, scenarios=SUBSET_SCENARIOS
    )


def load_frozen():
    with open(FROZEN_PATH) as f:
        return json.load(f)["ext_elastic"]


def test_subset_rows_identical_to_frozen_snapshot(result):
    frozen = load_frozen()
    assert list(result.columns) == frozen["columns"]
    expected = [
        row
        for row in frozen["rows"]
        if row["model"] in SUBSET_MODELS and row["scenario"] in SUBSET_SCENARIOS
    ]
    normalized = [
        {k: (float.hex(v) if isinstance(v, float) else v) for k, v in row.items()}
        for row in result.rows
    ]
    assert normalized == expected


def test_frozen_sweep_covers_full_grid_and_finds_divergence():
    """The frozen full sweep has every cell and >= 1 nominal/robust flip."""
    frozen = load_frozen()
    rows = frozen["rows"]
    assert len(rows) == 4 * len(TOPOLOGY_NAMES) * len(FAULT_SCENARIOS)
    differing = [r for r in rows if r["differs"]]
    assert differing, "fault-aware autotuning never changed a decision"
    for row in differing:
        assert row["nominal_best"] != row["robust_best"]
    # severe straggling flips the placement axis on every topology.
    severe = [r for r in rows if r["scenario"] == "severe-stragglers"]
    assert severe and all(r["differs"] for r in severe)


def test_perturbed_tail_never_beats_nominal(result):
    """p95 over factor>=1 samples can only be slower than noise-free."""
    for row in result.rows:
        assert row["p95(s)"] >= row["time(s)"] > 0


def test_live_subset_reports_divergence(result):
    assert any(row["differs"] for row in result.rows)
    note = " ".join(result.notes)
    assert "breaks even" in note and "p95-robust-optimal" in note
