"""Gradient checks: every layer's backward vs central finite differences."""

import numpy as np
import pytest

from repro.nn import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    ReLU,
    Residual,
    Sequential,
    Tanh,
)
from tests.conftest import finite_difference_grad


def check_input_grad(module, x, rtol=1e-5, atol=1e-7):
    """Backward's grad-input must match finite differences of sum(output)."""
    out = module(x)
    grad_in = module.run_backward(np.ones_like(out))

    def scalar():
        return float(module(x).sum())

    numeric = finite_difference_grad(scalar, x)
    np.testing.assert_allclose(grad_in, numeric, rtol=rtol, atol=atol)


def check_param_grads(module, x, rtol=1e-5, atol=1e-7):
    """Parameter gradients must match finite differences."""
    module.zero_grad()
    out = module(x)
    module.run_backward(np.ones_like(out))
    analytic = {name: p.grad.copy() for name, p in module.named_parameters()}
    for name, p in module.named_parameters():

        def scalar():
            return float(module(x).sum())

        numeric = finite_difference_grad(scalar, p.data)
        np.testing.assert_allclose(analytic[name], numeric, rtol=rtol, atol=atol)


class TestLinear:
    def test_input_grad(self, rng):
        check_input_grad(Linear(5, 4, rng=rng), rng.normal(size=(3, 5)))

    def test_param_grads(self, rng):
        check_param_grads(Linear(4, 3, rng=rng), rng.normal(size=(2, 4)))

    def test_no_bias(self, rng):
        layer = Linear(4, 3, bias=False, rng=rng)
        assert layer.bias is None
        check_param_grads(layer, rng.normal(size=(2, 4)))


class TestConv2d:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (2, 0)])
    def test_input_grad(self, rng, stride, padding):
        layer = Conv2d(2, 3, kernel_size=3, stride=stride, padding=padding, rng=rng)
        check_input_grad(layer, rng.normal(size=(2, 2, 6, 6)))

    def test_param_grads(self, rng):
        layer = Conv2d(2, 2, kernel_size=3, padding=1, bias=True, rng=rng)
        check_param_grads(layer, rng.normal(size=(2, 2, 4, 4)))

    def test_1x1_conv(self, rng):
        layer = Conv2d(3, 5, kernel_size=1, rng=rng)
        check_input_grad(layer, rng.normal(size=(2, 3, 4, 4)))


class TestActivations:
    def test_relu_grad(self, rng):
        x = rng.normal(size=(4, 6)) + 0.05  # keep away from the kink
        check_input_grad(ReLU(), x)

    def test_tanh_grad(self, rng):
        check_input_grad(Tanh(), rng.normal(size=(4, 6)), rtol=1e-4)


class TestBatchNorm:
    def test_train_mode_grads(self, rng):
        layer = BatchNorm2d(3)
        check_input_grad(layer, rng.normal(size=(4, 3, 3, 3)), rtol=1e-4, atol=1e-6)

    def test_param_grads(self, rng):
        layer = BatchNorm2d(2)
        x = rng.normal(size=(3, 2, 2, 2))
        layer.zero_grad()
        out = layer(x)
        layer.run_backward(np.ones_like(out))
        # beta's gradient of sum(out) is the count of positions per channel.
        np.testing.assert_allclose(layer.beta.grad, np.full(2, 3 * 2 * 2), rtol=1e-9)

    def test_eval_mode_uses_running_stats(self, rng):
        layer = BatchNorm2d(2)
        x = rng.normal(size=(4, 2, 3, 3))
        layer(x)  # populate running stats
        layer.eval()
        check_input_grad(layer, rng.normal(size=(2, 2, 3, 3)), rtol=1e-4)


class TestPooling:
    def test_maxpool_grad(self, rng):
        # Distinct values avoid argmax ties that break finite differences.
        x = rng.permutation(np.arange(2 * 2 * 4 * 4).astype(float)).reshape(2, 2, 4, 4)
        check_input_grad(MaxPool2d(2), x)

    def test_maxpool_with_stride_padding(self, rng):
        x = rng.permutation(np.arange(1 * 1 * 5 * 5).astype(float)).reshape(1, 1, 5, 5)
        check_input_grad(MaxPool2d(3, stride=2, padding=1), x)

    def test_avgpool_grad(self, rng):
        check_input_grad(AvgPool2d(2), rng.normal(size=(2, 3, 4, 4)))

    def test_global_avgpool_grad(self, rng):
        check_input_grad(GlobalAvgPool2d(), rng.normal(size=(2, 3, 4, 4)))

    def test_flatten_grad(self, rng):
        check_input_grad(Flatten(), rng.normal(size=(2, 3, 2, 2)))


class TestComposites:
    def test_sequential_grad(self, rng):
        net = Sequential(Linear(5, 8, rng=rng), Tanh(), Linear(8, 3, rng=rng))
        check_input_grad(net, rng.normal(size=(3, 5)), rtol=1e-4)

    def test_residual_grad(self, rng):
        block = Sequential(Linear(6, 6, rng=rng), Tanh())
        check_input_grad(Residual(block), rng.normal(size=(2, 6)), rtol=1e-4)

    def test_residual_shape_mismatch_raises(self, rng):
        with pytest.raises(ValueError, match="residual"):
            Residual(Linear(4, 5, rng=rng))(rng.normal(size=(2, 4)))
