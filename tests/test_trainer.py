"""Tests for the Trainer convenience harness."""

from repro.core import KFACOptimizer, Trainer
from repro.models import make_mlp
from repro.nn import SGD
from repro.workloads import gaussian_blobs, sharded_batches


class TestTrainer:
    def test_fit_records_history(self):
        x, y = gaussian_blobs(64, 6, 3, rng=0)
        net = make_mlp(in_features=6, hidden=8, num_classes=3, rng=1)
        trainer = Trainer(net, SGD(net.parameters(), lr=0.1))
        losses = trainer.fit([(x, y)] * 5)
        assert len(losses) == 5
        assert trainer.history == losses
        assert losses[-1] < losses[0]

    def test_fit_appends_across_calls(self):
        x, y = gaussian_blobs(32, 4, 2, rng=0)
        net = make_mlp(in_features=4, hidden=6, num_classes=2, rng=1)
        trainer = Trainer(net, SGD(net.parameters(), lr=0.1))
        trainer.fit([(x, y)] * 2)
        second = trainer.fit([(x, y)] * 3)
        assert len(trainer.history) == 5
        assert trainer.history[2:] == second

    def test_evaluate_restores_train_mode(self):
        x, y = gaussian_blobs(64, 6, 3, rng=0)
        net = make_mlp(in_features=6, hidden=8, num_classes=3, rng=1)
        trainer = Trainer(net, SGD(net.parameters(), lr=0.1))
        loss, accuracy = trainer.evaluate(x, y)
        assert 0.0 <= accuracy <= 1.0
        assert loss > 0.0
        assert all(m.training for m in net.modules())

    def test_kfac_trainer_reaches_high_accuracy(self):
        data = gaussian_blobs(256, 8, 3, rng=2)
        x, y = data
        net = make_mlp(in_features=8, hidden=16, num_classes=3, rng=3)
        opt = KFACOptimizer(net, lr=0.1, damping=1e-2, stat_decay=0.5, kl_clip=1e-2)
        trainer = Trainer(net, opt)
        stream = sharded_batches(data, world_size=1, batch_size=64, rng=4)
        batches = [next(stream)[0] for _ in range(30)]
        trainer.fit(batches)
        _, accuracy = trainer.evaluate(x, y)
        assert accuracy > 0.9

    def test_works_with_generator_input(self):
        x, y = gaussian_blobs(32, 4, 2, rng=0)
        net = make_mlp(in_features=4, hidden=6, num_classes=2, rng=1)
        trainer = Trainer(net, SGD(net.parameters(), lr=0.1))
        losses = trainer.fit((x, y) for _ in range(3))
        assert len(losses) == 3
