"""Tests for the model zoo: Table II statistics and spec invariants."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.models import (
    PAPER_MODELS,
    LayerSpec,
    get_model_spec,
    make_mlp,
    make_residual_mlp,
    make_small_cnn,
)
from repro.models.builder import SpecBuilder


class TestLayerSpec:
    def test_conv_kfac_dims(self):
        layer = LayerSpec("c", "conv", in_dim=512, out_dim=512, kernel=(3, 3), spatial_out=49)
        assert layer.a_dim == 4608
        assert layer.g_dim == 512
        assert layer.a_elements == 10_619_136  # the paper's largest factor

    def test_bias_adds_homogeneous_coordinate(self):
        layer = LayerSpec("fc", "linear", in_dim=2048, out_dim=1000, has_bias=True)
        assert layer.a_dim == 2049
        assert layer.num_params == 2048 * 1000 + 1000

    def test_flops_counting(self):
        layer = LayerSpec("c", "conv", in_dim=4, out_dim=8, kernel=(3, 3), spatial_out=16)
        assert layer.forward_flops == 2 * 4 * 9 * 8 * 16
        assert layer.backward_flops == 2 * layer.forward_flops
        assert layer.factor_a_flops(2) == 2 * 2 * 16 * 36**2

    def test_linear_cannot_have_kernel(self):
        with pytest.raises(ValueError):
            LayerSpec("bad", "linear", in_dim=4, out_dim=4, kernel=(3, 3))

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            LayerSpec("bad", "pool", in_dim=4, out_dim=4)


TABLE2 = {
    # name: (params M, layers, batch, As M, Gs M)
    "ResNet-50": (25.6, 54, 32, 62.3, 14.6),
    "ResNet-152": (60.2, 156, 8, 162.0, 32.9),
    "DenseNet-201": (20.0, 201, 16, 131.0, 1.8),  # paper prints 18.0; see tab2 note
    "Inception-v4": (42.7, 150, 16, 116.4, 4.7),
}


class TestPaperModels:
    @pytest.mark.parametrize("name", list(PAPER_MODELS))
    def test_table2_layer_counts_exact(self, name):
        assert get_model_spec(name).num_layers == TABLE2[name][1]

    @pytest.mark.parametrize("name", list(PAPER_MODELS))
    def test_table2_batch_sizes(self, name):
        assert get_model_spec(name).batch_size == TABLE2[name][2]

    @pytest.mark.parametrize("name", list(PAPER_MODELS))
    def test_table2_params_within_2pct(self, name):
        spec = get_model_spec(name)
        assert spec.num_params / 1e6 == pytest.approx(TABLE2[name][0], rel=0.02)

    @pytest.mark.parametrize("name", list(PAPER_MODELS))
    def test_table2_factor_elements_within_2pct(self, name):
        spec = get_model_spec(name)
        assert spec.total_a_elements / 1e6 == pytest.approx(TABLE2[name][3], rel=0.02)
        assert spec.total_g_elements / 1e6 == pytest.approx(TABLE2[name][4], rel=0.02)

    def test_resnet50_extreme_factor_sizes(self):
        """Fig. 3's quoted ResNet-50 extremes must match exactly."""
        sizes = get_model_spec("ResNet-50").tensor_size_distribution()
        assert min(sizes) == 2080
        assert max(sizes) == 10_619_136

    def test_factor_dims_interleaving(self):
        spec = get_model_spec("ResNet-50")
        dims = spec.factor_dims()
        assert len(dims) == 2 * spec.num_layers
        assert dims[0] == spec.layers[0].a_dim
        assert dims[1] == spec.layers[0].g_dim

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            get_model_spec("VGG-16")

    def test_case_insensitive_lookup(self):
        assert get_model_spec("resnet-50").name == "ResNet-50"

    def test_punctuation_insensitive_lookup(self):
        assert get_model_spec("resnet50").name == "ResNet-50"
        assert get_model_spec("RESNET 152").name == "ResNet-152"
        assert get_model_spec("inceptionv4").name == "Inception-v4"

    def test_resnet50_forward_flops_in_published_range(self):
        """~4.1 GMACs/image => ~8.2 GFLOPs at 2 FLOPs per MAC."""
        spec = get_model_spec("ResNet-50")
        assert spec.forward_flops() / 1e9 == pytest.approx(8.2, rel=0.05)


class TestSpecBuilder:
    def test_spatial_tracking(self):
        b = SpecBuilder(model_name="t", batch_size=1, input_size=224)
        b.conv("c1", 3, 64, kernel=7, stride=2, padding=3)
        assert b.spatial == (112, 112)
        b.pool(kernel=3, stride=2, padding=1)
        assert b.spatial == (56, 56)

    def test_valid_padding(self):
        b = SpecBuilder(model_name="t", batch_size=1, input_size=10)
        b.conv("c", 3, 4, kernel=3, padding="valid")
        assert b.spatial == (8, 8)

    def test_same_padding_with_stride(self):
        b = SpecBuilder(model_name="t", batch_size=1, input_size=11)
        b.conv("c", 3, 4, kernel=3, stride=2, padding="same")
        assert b.spatial == (6, 6)

    def test_branch_does_not_advance_trunk(self):
        b = SpecBuilder(model_name="t", batch_size=1, input_size=16)
        b.conv("branch", 3, 4, kernel=3, stride=2, padding="valid", update_spatial=False)
        assert b.spatial == (16, 16)

    def test_batch_norm_params_accumulate(self):
        b = SpecBuilder(model_name="t", batch_size=1, input_size=8)
        b.conv("c", 3, 10, kernel=3)
        assert b.extra_params == 20

    def test_empty_model_rejected(self):
        b = SpecBuilder(model_name="t", batch_size=1, input_size=8)
        with pytest.raises(ValueError):
            b.build()

    @given(st.integers(min_value=1, max_value=64), st.integers(min_value=1, max_value=7))
    def test_conv_spatial_never_negative(self, size, kernel):
        b = SpecBuilder(model_name="t", batch_size=1, input_size=size)
        if kernel > size:
            with pytest.raises(ValueError):
                b.conv("c", 1, 1, kernel=kernel, padding="valid")
        else:
            b.conv("c", 1, 1, kernel=kernel, padding="valid")
            assert min(b.spatial) >= 1


class TestSmallNets:
    def test_mlp_shapes(self, rng):
        net = make_mlp(in_features=7, hidden=5, num_classes=3, depth=3, rng=0)
        out = net(rng.normal(size=(4, 7)))
        assert out.shape == (4, 3)

    def test_small_cnn_shapes(self, rng):
        net = make_small_cnn(in_channels=2, num_classes=5, rng=0)
        out = net(rng.normal(size=(3, 2, 8, 8)))
        assert out.shape == (3, 5)

    def test_residual_mlp_shapes(self, rng):
        net = make_residual_mlp(in_features=6, hidden=8, num_classes=2, rng=0)
        assert net(rng.normal(size=(2, 6))).shape == (2, 2)

    def test_same_seed_same_weights(self):
        a, b = make_mlp(rng=9), make_mlp(rng=9)
        import numpy as np

        for (n1, p1), (n2, p2) in zip(a.named_parameters(), b.named_parameters()):
            assert n1 == n2
            np.testing.assert_array_equal(p1.data, p2.data)
