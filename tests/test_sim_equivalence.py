"""Equivalence tests: vectorized engine vs. a reference implementation.

The array-based engine in :mod:`repro.sim.engine` must schedule exactly
like the straightforward per-task Kahn's algorithm it replaced — same
start/end time for every task on arbitrary DAGs, and the same
:class:`DeadlockError` (with the same stuck-task set) on cyclic graphs.
The reference below *is* that original implementation, kept here as the
executable specification.
"""

from __future__ import annotations

from collections import deque
from typing import List, Tuple

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import COMM, COMPUTE, DeadlockError, Phase, SimTask, TaskGraph, simulate, simulate_many


def reference_schedule(graph: TaskGraph) -> Tuple[List[float], List[float]]:
    """The seed's pure-Python O(V+E) scheduler: (start, end) per task.

    Raises :class:`DeadlockError` on cyclic combined graphs, listing the
    unresolvable tasks in task-id order, exactly like the engine.
    """
    tasks = graph.tasks
    n = len(tasks)
    predecessors: List[List[int]] = [list(t.deps) for t in tasks]
    for queue in graph.stream_queues().values():
        for prev_tid, next_tid in zip(queue, queue[1:]):
            predecessors[next_tid].append(prev_tid)
    indegree = [len(preds) for preds in predecessors]
    successors: List[List[int]] = [[] for _ in range(n)]
    for tid, preds in enumerate(predecessors):
        for pred in preds:
            successors[pred].append(tid)
    start = [0.0] * n
    end = [0.0] * n
    ready = deque(tid for tid in range(n) if indegree[tid] == 0)
    resolved = 0
    while ready:
        tid = ready.popleft()
        start[tid] = max((end[p] for p in predecessors[tid]), default=0.0)
        end[tid] = start[tid] + tasks[tid].duration
        resolved += 1
        for succ in successors[tid]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
    if resolved != n:
        raise DeadlockError([t.name for t in tasks if indegree[t.tid] > 0])
    return start, end


@st.composite
def random_task_graphs(draw) -> TaskGraph:
    num_ranks = draw(st.integers(min_value=1, max_value=4))
    num_tasks = draw(st.integers(min_value=0, max_value=40))
    graph = TaskGraph(num_ranks)
    for tid in range(num_tasks):
        duration = draw(st.floats(min_value=0.0, max_value=5.0, allow_nan=False))
        deps = (
            draw(
                st.lists(
                    st.integers(min_value=0, max_value=tid - 1),
                    max_size=min(3, tid),
                    unique=True,
                )
            )
            if tid > 0
            else []
        )
        if draw(st.booleans()):
            rank = draw(st.integers(min_value=0, max_value=num_ranks - 1))
            graph.add_compute(f"t{tid}", Phase.FORWARD, rank, duration, deps=deps)
        else:
            ranks = draw(
                st.lists(
                    st.integers(min_value=0, max_value=num_ranks - 1),
                    min_size=1,
                    max_size=num_ranks,
                    unique=True,
                )
            )
            graph.add_collective(f"t{tid}", Phase.GRAD_COMM, ranks, duration, deps=deps)
    return graph


def assert_matches_reference(graph: TaskGraph) -> None:
    ref_start, ref_end = reference_schedule(graph)
    timeline = simulate(graph)
    entries = timeline.entries
    assert len(entries) == len(ref_start)
    for tid, entry in enumerate(entries):
        assert entry.task.tid == tid
        assert entry.start == pytest.approx(ref_start[tid], abs=1e-12)
        assert entry.end == pytest.approx(ref_end[tid], abs=1e-12)
    assert timeline.makespan == pytest.approx(max(ref_end, default=0.0), abs=1e-12)


class TestRandomizedEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(random_task_graphs())
    def test_engine_matches_reference_on_random_dags(self, graph):
        assert_matches_reference(graph)

    def test_builder_graphs_match_reference(self, small_profile):
        from repro.plan import build_strategy_graph
        from tests.conftest import build_tiny_spec

        spec = build_tiny_spec(num_layers=5)
        for name in ("S-SGD", "D-KFAC", "MPD-KFAC", "SPD-KFAC"):
            assert_matches_reference(build_strategy_graph(spec, small_profile, name))

    def test_empty_graph(self):
        assert simulate(TaskGraph(2)).makespan == 0.0

    def test_timeline_unaffected_by_later_graph_appends(self):
        """A Timeline snapshot covers the graph as simulated; tasks added
        to the graph afterwards don't leak into (or crash) its entries."""
        g = TaskGraph(1)
        g.add_compute("a", Phase.FORWARD, 0, 1.0)
        tl = simulate(g)
        g.add_compute("late", Phase.FORWARD, 0, 5.0)
        assert len(tl.entries) == 1
        assert tl.entries[0].task.name == "a"
        assert tl.makespan == pytest.approx(1.0)

    def test_externally_appended_tasks_are_scheduled(self):
        """SimTask objects appended straight to ``graph.tasks`` (the escape
        hatch tests use to build cyclic graphs) enter the schedule."""
        g = TaskGraph(1)
        a = g.add_compute("a", Phase.FORWARD, 0, 1.0)
        g.tasks.append(SimTask(1, "b", Phase.FORWARD, COMPUTE, (0,), 2.0, deps=(a,)))
        g.tasks.append(SimTask(2, "c", Phase.GRAD_COMM, COMM, (0,), 1.0, deps=(1,)))
        assert_matches_reference(g)
        assert simulate(g).makespan == pytest.approx(4.0)


class TestDeadlockEquivalence:
    def _cyclic_graph(self) -> TaskGraph:
        """Two collectives enqueued in opposite FIFO orders across ranks
        (the classic NCCL deadlock), via direct task construction."""
        g = TaskGraph(2)
        g.tasks.append(SimTask(0, "ar0", Phase.GRAD_COMM, COMM, (0,), 1.0, deps=(1,)))
        g.tasks.append(SimTask(1, "ar1", Phase.GRAD_COMM, COMM, (0,), 1.0, deps=()))
        return g

    def test_engine_and_reference_raise_identically(self):
        g = self._cyclic_graph()
        with pytest.raises(DeadlockError) as ref_err:
            reference_schedule(self._cyclic_graph())
        with pytest.raises(DeadlockError) as eng_err:
            simulate(g)
        assert eng_err.value.stuck_task_names == ref_err.value.stuck_task_names

    def test_partial_cycle_reports_only_stuck_tasks(self):
        g = TaskGraph(1)
        g.add_compute("ok", Phase.FORWARD, 0, 1.0)
        g.tasks.append(SimTask(1, "x", Phase.FORWARD, COMPUTE, (0,), 1.0, deps=(2,)))
        g.tasks.append(SimTask(2, "y", Phase.FORWARD, COMPUTE, (0,), 1.0, deps=()))
        with pytest.raises(DeadlockError) as err:
            simulate(g)
        assert err.value.stuck_task_names == ["x", "y"]

    @settings(max_examples=50, deadline=None)
    @given(random_task_graphs())
    def test_random_graphs_with_injected_cycle(self, graph):
        """Appending a forward-pointing dependency after random prefix
        construction deadlocks both engines on the same task set."""
        n = len(graph)
        tid = n
        graph.tasks.append(
            SimTask(tid, "cyc_a", Phase.FORWARD, COMPUTE, (0,), 1.0, deps=(tid + 1,))
        )
        graph.tasks.append(
            SimTask(tid + 1, "cyc_b", Phase.FORWARD, COMPUTE, (0,), 1.0, deps=())
        )
        with pytest.raises(DeadlockError) as ref_err:
            reference_schedule(graph)
        with pytest.raises(DeadlockError) as eng_err:
            simulate(graph)
        assert eng_err.value.stuck_task_names == ref_err.value.stuck_task_names
        assert "cyc_a" in eng_err.value.stuck_task_names


class TestSimulateMany:
    def test_matches_individual_simulate(self, small_profile):
        from repro.plan import build_strategy_graph
        from tests.conftest import build_tiny_spec

        spec = build_tiny_spec(num_layers=4)
        graphs = [
            build_strategy_graph(spec, small_profile, "D-KFAC"),
            build_strategy_graph(spec, small_profile, "SPD-KFAC"),
        ]
        batched = simulate_many(graphs)
        assert len(batched) == 2
        for graph, timeline in zip(graphs, batched):
            assert timeline.makespan == pytest.approx(simulate(graph).makespan)

    def test_empty_batch(self):
        assert simulate_many([]) == []
