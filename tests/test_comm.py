"""Tests for the in-process collective runtime."""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import (
    CollectiveAbortedError,
    CollectiveGroup,
    CollectiveMismatchError,
    pack_symmetric,
    run_spmd,
    unpack_symmetric,
)


class TestPacking:
    def test_roundtrip(self, rng):
        root = rng.normal(size=(6, 6))
        sym = root + root.T
        np.testing.assert_allclose(unpack_symmetric(pack_symmetric(sym), 6), sym)

    def test_packed_length(self):
        assert pack_symmetric(np.eye(64)).size == 2080  # paper's smallest factor

    def test_unpack_validates_size(self):
        with pytest.raises(ValueError):
            unpack_symmetric(np.zeros(5), 4)

    def test_pack_requires_square(self):
        with pytest.raises(ValueError):
            pack_symmetric(np.zeros((2, 3)))

    @settings(max_examples=30)
    @given(st.integers(min_value=1, max_value=20))
    def test_roundtrip_property(self, d):
        rng = np.random.default_rng(d)
        root = rng.normal(size=(d, d))
        sym = (root + root.T) / 2
        recovered = unpack_symmetric(pack_symmetric(sym), d)
        np.testing.assert_allclose(recovered, sym)
        assert pack_symmetric(sym).size == d * (d + 1) // 2


class TestAllreduce:
    @pytest.mark.parametrize("world", [1, 2, 4, 7])
    def test_mean_matches_numpy(self, world):
        results = run_spmd(world, lambda c: c.allreduce(np.full(4, float(c.rank))))
        expected = np.full(4, sum(range(world)) / world)
        for r in results:
            np.testing.assert_allclose(r, expected)

    def test_sum_op(self):
        results = run_spmd(3, lambda c: c.allreduce(np.ones(2), op="sum"))
        np.testing.assert_allclose(results[0], [3.0, 3.0])

    def test_results_bitwise_identical_across_ranks(self):
        def fn(c):
            rng = np.random.default_rng(c.rank)
            return c.allreduce(rng.normal(size=100))

        results = run_spmd(4, fn)
        for r in results[1:]:
            np.testing.assert_array_equal(results[0], r)

    def test_invalid_op(self):
        with pytest.raises(ValueError):
            run_spmd(2, lambda c: c.allreduce(np.ones(1), op="max"))

    def test_shape_mismatch_detected(self):
        def fn(c):
            return c.allreduce(np.ones(c.rank + 1))

        with pytest.raises(CollectiveMismatchError):
            run_spmd(2, fn)

    def test_mismatched_collectives_detected(self):
        def fn(c):
            if c.rank == 0:
                return c.allreduce(np.ones(1))
            return c.broadcast(np.ones(1), root=1)

        with pytest.raises(CollectiveMismatchError):
            run_spmd(2, fn)


class TestBroadcast:
    def test_root_value_distributed(self):
        def fn(c):
            payload = np.arange(3.0) if c.rank == 1 else None
            return c.broadcast(payload, root=1)

        for r in run_spmd(3, fn):
            np.testing.assert_allclose(r, [0.0, 1.0, 2.0])

    def test_root_without_buffer_raises(self):
        with pytest.raises(ValueError):
            run_spmd(2, lambda c: c.broadcast(None, root=0))

    def test_invalid_root(self):
        with pytest.raises(ValueError):
            run_spmd(2, lambda c: c.broadcast(np.ones(1), root=5))


class TestAllgather:
    def test_gathers_by_rank(self):
        results = run_spmd(3, lambda c: c.allgather(np.full(2, float(c.rank))))
        for gathered in results:
            assert len(gathered) == 3
            for rank, piece in enumerate(gathered):
                np.testing.assert_allclose(piece, np.full(2, float(rank)))


class TestTrafficAndLifecycle:
    def test_traffic_counter(self):
        group = CollectiveGroup(2)

        def fn(c):
            c.allreduce(np.ones(10))
            c.broadcast(np.ones(5) if c.rank == 0 else None, root=0)

        threads = [
            threading.Thread(target=fn, args=(group.communicator(r),)) for r in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert group.traffic.elements["allreduce"] == 10
        assert group.traffic.elements["broadcast"] == 5
        assert group.traffic.calls["allreduce"] == 1
        assert group.traffic.total_elements() == 15
        # Byte accounting is dtype-aware: both buffers above are fp64.
        assert group.traffic.bytes["allreduce"] == 80
        assert group.traffic.bytes["broadcast"] == 40
        assert group.traffic.total_bytes() == 120

    def test_traffic_bytes_follow_wire_dtype(self):
        group = CollectiveGroup(2)

        def fn(c):
            c.allreduce(np.ones(6, dtype=np.float32))
            c.allgather(np.ones(3, dtype=np.float16))
            c.broadcast(
                np.ones(4, dtype=np.int64) if c.rank == 1 else None, root=1
            )

        threads = [
            threading.Thread(target=fn, args=(group.communicator(r),)) for r in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert group.traffic.bytes["allreduce"] == 6 * 4
        assert group.traffic.bytes["allgather"] == 3 * 2
        assert group.traffic.bytes["broadcast"] == 4 * 8
        assert group.traffic.total_elements() == 13
        assert group.traffic.total_bytes() == 24 + 6 + 32

    def test_record_defaults_to_fp32_bytes(self):
        from repro.comm import TrafficCounter

        counter = TrafficCounter()
        counter.record("allreduce", 100)
        assert counter.bytes["allreduce"] == 400
        counter.record("allreduce", 10, num_bytes=80)
        assert counter.bytes["allreduce"] == 480
        assert counter.total_bytes() == 480

    def test_rank_failure_propagates_not_hangs(self):
        def fn(c):
            if c.rank == 0:
                raise RuntimeError("rank 0 exploded")
            return c.allreduce(np.ones(1))

        with pytest.raises(RuntimeError, match="exploded"):
            run_spmd(2, fn)

    def test_sequence_of_collectives(self):
        def fn(c):
            total = c.allreduce(np.ones(1), op="sum")
            again = c.allreduce(total, op="sum")
            return float(again[0])

        assert run_spmd(4, fn) == [16.0] * 4

    def test_barrier(self):
        assert run_spmd(3, lambda c: c.barrier()) == [None] * 3

    def test_invalid_world_size(self):
        with pytest.raises(ValueError):
            CollectiveGroup(0)

    def test_invalid_rank(self):
        with pytest.raises(ValueError):
            CollectiveGroup(2).communicator(2)


class TestFailurePaths:
    """Mismatch detection and abort propagation across threaded ranks."""

    def run_per_rank(self, world, fn):
        """Like run_spmd but returning each rank's raised exception (or
        result) instead of collapsing to the first failure."""
        group = CollectiveGroup(world)
        outcomes = [None] * world

        def worker(rank):
            try:
                outcomes[rank] = ("ok", fn(group.communicator(rank)))
            except Exception as exc:  # noqa: BLE001 - inspected by the test
                outcomes[rank] = ("err", exc)
                # Mismatches already surface on every rank via the shared
                # error slot; aborting again would race peers still
                # draining the final barrier.
                if not isinstance(exc, (CollectiveMismatchError, CollectiveAbortedError)):
                    group.abort()

        threads = [threading.Thread(target=worker, args=(r,)) for r in range(world)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        return outcomes

    def test_mismatched_shapes_raise_on_every_rank(self):
        outcomes = self.run_per_rank(3, lambda c: c.allreduce(np.ones(c.rank + 1)))
        for kind, value in outcomes:
            assert kind == "err"
            assert isinstance(value, CollectiveMismatchError)

    def test_mismatched_ops_raise_on_every_rank(self):
        def fn(c):
            if c.rank == 0:
                return c.allreduce(np.ones(2), op="sum")
            return c.allreduce(np.ones(2), op="mean")

        outcomes = self.run_per_rank(2, fn)
        for kind, value in outcomes:
            assert kind == "err"
            assert isinstance(value, CollectiveMismatchError)

    def test_mismatched_dtypes_detected(self):
        def fn(c):
            dtype = np.float32 if c.rank == 0 else np.float64
            return c.allreduce(np.ones(2, dtype=dtype))

        with pytest.raises(CollectiveMismatchError):
            run_spmd(2, fn)

    def test_rank_failure_surfaces_aborted_error_on_peers(self):
        """A crashing rank must break the barrier; its peers observe
        CollectiveAbortedError rather than hanging forever."""

        def fn(c):
            if c.rank == 0:
                raise RuntimeError("rank 0 exploded")
            return c.allreduce(np.ones(4))

        outcomes = self.run_per_rank(3, fn)
        kinds = {rank: value for rank, (kind, value) in enumerate(outcomes)}
        assert isinstance(kinds[0], RuntimeError)
        for rank in (1, 2):
            assert isinstance(kinds[rank], CollectiveAbortedError)

    def test_run_spmd_prefers_root_cause_over_abort(self):
        """run_spmd re-raises the original failure, not the secondary
        CollectiveAbortedError the surviving ranks saw."""

        def fn(c):
            if c.rank == 1:
                raise ValueError("root cause")
            return c.broadcast(np.ones(2) if c.rank == 0 else None, root=0)

        with pytest.raises(ValueError, match="root cause"):
            run_spmd(3, fn)

    def test_external_abort_propagates_aborted_error(self):
        """When every rank fails with the abort itself (no root cause),
        run_spmd raises CollectiveAbortedError."""

        def fn(c):
            if c.rank == 0:
                c.group.abort()
            return c.allreduce(np.ones(1))

        with pytest.raises(CollectiveAbortedError):
            run_spmd(2, fn)

    def test_group_usable_error_surface_is_consistent(self):
        """After a mismatch, a *fresh* group still works (state is not
        poisoned across groups)."""
        with pytest.raises(CollectiveMismatchError):
            run_spmd(2, lambda c: c.allreduce(np.ones(c.rank + 1)))
        results = run_spmd(2, lambda c: c.allreduce(np.ones(2), op="sum"))
        np.testing.assert_allclose(results[0], [2.0, 2.0])
