"""Integration tests: distributed K-FAC variants over the comm runtime.

The central claim (paper Section VI): D-KFAC, MPD-KFAC and SPD-KFAC are
*numerically identical* — the optimizations only reorganize computation
and communication.  We assert bit-level rank consistency and cross-variant
agreement, plus equivalence with single-process K-FAC on the union batch.
"""

import numpy as np
import pytest

from repro.comm import run_spmd
from repro.core import KFACOptimizer
from repro.core.distributed import DistKFACOptimizer, InverseStrategy, layer_kfac_dims
from repro.models import make_mlp, make_small_cnn
from repro.nn import Conv2d, CrossEntropyLoss, Linear

WORLD = 4


def batch_for(seed, n=8, features=6, classes=3):
    r = np.random.default_rng(seed)
    return r.normal(size=(n, features)), r.integers(0, classes, n)


def run_variant(strategy, steps=3, fusion="bulk", world=WORLD):
    def rank_fn(comm):
        net = make_mlp(in_features=6, hidden=10, num_classes=3, rng=42)
        opt = DistKFACOptimizer(
            net,
            comm,
            lr=0.1,
            damping=1e-2,
            stat_decay=0.9,
            inverse_strategy=strategy,
            factor_fusion=fusion,
            fusion_threshold_elements=50,
        )
        loss_fn = CrossEntropyLoss()
        for it in range(steps):
            x, y = batch_for(1000 + world * it + comm.rank)
            opt.zero_grad()
            loss_fn(net(x), y)
            net.run_backward(loss_fn.backward())
            opt.step()
        return np.concatenate([p.data.ravel() for p in net.parameters()])

    return run_spmd(world, rank_fn)


class TestLayerDims:
    def test_linear_dims(self, rng):
        assert layer_kfac_dims(Linear(10, 4, rng=rng)) == (11, 4)
        assert layer_kfac_dims(Linear(10, 4, bias=False, rng=rng)) == (10, 4)

    def test_conv_dims(self, rng):
        assert layer_kfac_dims(Conv2d(3, 8, kernel_size=5, rng=rng)) == (75, 8)

    def test_unsupported(self):
        from repro.nn import ReLU

        with pytest.raises(TypeError):
            layer_kfac_dims(ReLU())


class TestNumericalIdentity:
    @pytest.mark.parametrize(
        "strategy",
        [
            InverseStrategy.LOCAL,
            InverseStrategy.SEQ_DIST,
            InverseStrategy.BALANCED,
            InverseStrategy.LBP,
        ],
    )
    def test_ranks_stay_consistent(self, strategy):
        params = run_variant(strategy)
        for other in params[1:]:
            np.testing.assert_array_equal(params[0], other)

    def test_all_variants_agree(self):
        reference = run_variant(InverseStrategy.LOCAL)[0]
        for strategy in (InverseStrategy.SEQ_DIST, InverseStrategy.BALANCED, InverseStrategy.LBP):
            np.testing.assert_allclose(run_variant(strategy)[0], reference, atol=1e-9)

    def test_fusion_does_not_change_results(self):
        bulk = run_variant(InverseStrategy.LBP, fusion="bulk")[0]
        threshold = run_variant(InverseStrategy.LBP, fusion="threshold")[0]
        np.testing.assert_allclose(bulk, threshold, atol=1e-11)

    def test_matches_single_process_on_union_batch(self):
        """P ranks with disjoint shards == one process on the concatenated
        batch (Eq. 13 reduces to Eq. 12 with the union expectation).

        Per-rank factor/grad means equal the union mean only when shards
        have equal size (they do here).
        """
        steps = 2
        dist_params = run_variant(InverseStrategy.LOCAL, steps=steps)[0]

        net = make_mlp(in_features=6, hidden=10, num_classes=3, rng=42)
        opt = KFACOptimizer(net, lr=0.1, damping=1e-2, stat_decay=0.9)
        loss_fn = CrossEntropyLoss()
        for it in range(steps):
            shards = [batch_for(1000 + WORLD * it + r) for r in range(WORLD)]
            x = np.concatenate([s[0] for s in shards])
            y = np.concatenate([s[1] for s in shards])
            opt.zero_grad()
            loss_fn(net(x), y)
            net.run_backward(loss_fn.backward())
            opt.step()
        single = np.concatenate([p.data.ravel() for p in net.parameters()])
        # Conv/linear G factors aggregate means of per-shard outer products;
        # for equal shards this equals the union-batch factor exactly.
        np.testing.assert_allclose(dist_params, single, atol=1e-8)

    def test_world_size_one_degenerates_to_local_kfac(self):
        dist = run_variant(InverseStrategy.LBP, world=1)[0]
        local = run_variant(InverseStrategy.LOCAL, world=1)[0]
        np.testing.assert_allclose(dist, local, atol=1e-12)


class TestDistributedTraining:
    def test_loss_decreases_with_conv_model(self):
        from repro.workloads import synthetic_images

        def rank_fn(comm):
            net = make_small_cnn(in_channels=1, num_classes=4, rng=7)
            opt = DistKFACOptimizer(
                net, comm, lr=0.03, damping=1e-1, stat_decay=0.5,
                inverse_strategy=InverseStrategy.LBP,
            )
            loss_fn = CrossEntropyLoss()
            losses = []
            for it in range(6):
                x, y = synthetic_images(8, rng=300 + 2 * it + comm.rank)
                opt.zero_grad()
                losses.append(loss_fn(net(x), y))
                net.run_backward(loss_fn.backward())
                opt.step()
            return losses

        losses_by_rank = run_spmd(2, rank_fn)
        for losses in losses_by_rank:
            assert losses[-1] < losses[0]

    def test_placement_computed_once_and_valid(self):
        def rank_fn(comm):
            net = make_mlp(in_features=6, hidden=10, num_classes=3, rng=42)
            opt = DistKFACOptimizer(
                net, comm, lr=0.1, inverse_strategy=InverseStrategy.LBP
            )
            placement = opt.placement
            assert placement.num_ranks == comm.world_size
            assert len(placement.dims) == 2 * len(opt.preconditioner.layers)
            return placement.num_cts()

        counts = run_spmd(3, rank_fn)
        assert len(set(counts)) == 1  # identical plan everywhere

    def test_invalid_fusion_argument(self):
        def rank_fn(comm):
            net = make_mlp(rng=0)
            DistKFACOptimizer(net, comm, lr=0.1, factor_fusion="bogus")

        with pytest.raises(ValueError, match="factor_fusion"):
            run_spmd(1, rank_fn)
