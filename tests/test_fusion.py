"""Tests for tensor-fusion planning (Section IV-A, Eq. 15 / MG-WFBP)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fusion import (
    FusionPlan,
    TensorFusionController,
    fusion_completion_time,
    plan_bulk,
    plan_eq15_greedy,
    plan_no_fusion,
    plan_optimal_fusion,
    plan_threshold_fusion,
)
from repro.perf import LinearCommModel

COMM = LinearCommModel(alpha=1.0, beta=0.01)


class TestFusionPlan:
    def test_validates_contiguity(self):
        with pytest.raises(ValueError):
            FusionPlan(((0, 2), (1,)))

    def test_validates_coverage(self):
        with pytest.raises(ValueError):
            FusionPlan(((0,), (2,)))

    def test_rejects_empty_bucket(self):
        with pytest.raises(ValueError):
            FusionPlan(((0,), ()))

    def test_bucket_of(self):
        plan = FusionPlan(((0, 1), (2,)))
        assert plan.bucket_of(0) == 0
        assert plan.bucket_of(2) == 1
        with pytest.raises(IndexError):
            plan.bucket_of(3)

    def test_bucket_elements(self):
        plan = FusionPlan(((0, 1), (2,)))
        assert plan.bucket_elements([10, 20, 5]) == [30, 5]
        with pytest.raises(ValueError):
            plan.bucket_elements([1, 2])


class TestSimplePlanners:
    def test_no_fusion(self):
        plan = plan_no_fusion(4)
        assert plan.num_buckets == 4
        assert plan.buckets == ((0,), (1,), (2,), (3,))

    def test_bulk(self):
        assert plan_bulk(3).buckets == ((0, 1, 2),)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            plan_no_fusion(0)
        with pytest.raises(ValueError):
            plan_bulk(0)

    def test_threshold_closes_at_capacity(self):
        plan = plan_threshold_fusion([5, 5, 5, 5], threshold_elements=10)
        assert plan.buckets == ((0, 1), (2, 3))

    def test_threshold_trailing_bucket(self):
        plan = plan_threshold_fusion([10, 3], threshold_elements=10)
        assert plan.buckets == ((0,), (1,))

    def test_threshold_one_giant_tensor(self):
        plan = plan_threshold_fusion([100], threshold_elements=10)
        assert plan.buckets == ((0,),)

    def test_threshold_never_reached(self):
        plan = plan_threshold_fusion([1, 1, 1], threshold_elements=1000)
        assert plan.buckets == ((0, 1, 2),)


class TestOptimalFusion:
    def test_dense_arrivals_fuse(self):
        """Tensors arriving much faster than alpha should merge heavily."""
        avail = [0.0, 0.01, 0.02, 0.03]
        plan = plan_optimal_fusion([1, 1, 1, 1], avail, COMM)
        assert plan.num_buckets <= 2

    def test_sparse_arrivals_stay_separate(self):
        """Arrivals spaced far beyond the bucket comm time do not merge —
        each all-reduce completes before the next tensor exists."""
        avail = [0.0, 100.0, 200.0]
        plan = plan_optimal_fusion([1, 1, 1], avail, COMM)
        assert plan.num_buckets == 3

    def test_beats_or_ties_every_contiguous_alternative(self):
        """DP optimality: no other contiguous partition finishes earlier."""
        sizes = [50, 10, 200, 5, 5, 80]
        avail = [0.0, 0.5, 2.0, 2.1, 2.2, 6.0]
        best = plan_optimal_fusion(sizes, avail, COMM)
        best_finish = fusion_completion_time(best, sizes, avail, COMM)

        def partitions(n):
            if n == 0:
                yield []
                return
            for head in range(1, n + 1):
                for rest in partitions(n - head):
                    yield [head] + rest

        for shape in partitions(len(sizes)):
            start = 0
            buckets = []
            for width in shape:
                buckets.append(tuple(range(start, start + width)))
                start += width
            alt = FusionPlan(tuple(buckets))
            assert best_finish <= fusion_completion_time(alt, sizes, avail, COMM) + 1e-12

    def test_initial_channel_free_delays_everything(self):
        sizes, avail = [10, 10], [0.0, 0.1]
        free = fusion_completion_time(
            plan_optimal_fusion(sizes, avail, COMM), sizes, avail, COMM
        )
        busy = fusion_completion_time(
            plan_optimal_fusion(sizes, avail, COMM, initial_channel_free=50.0),
            sizes,
            avail,
            COMM,
            initial_channel_free=50.0,
        )
        assert busy >= 50.0 + 1.0
        assert busy > free

    def test_decreasing_avail_rejected(self):
        with pytest.raises(ValueError):
            plan_optimal_fusion([1, 1], [1.0, 0.5], COMM)

    def test_negative_avail_rejected(self):
        with pytest.raises(ValueError):
            plan_optimal_fusion([1], [-0.1], COMM)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            plan_optimal_fusion([1, 2], [0.0], COMM)

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.integers(min_value=1, max_value=500), min_size=1, max_size=12),
        st.lists(st.floats(min_value=0, max_value=10, allow_nan=False), min_size=1, max_size=12),
    )
    def test_optimal_never_worse_than_bulk_or_none(self, sizes, gaps):
        n = min(len(sizes), len(gaps))
        sizes = sizes[:n]
        avail = []
        clock = 0.0
        for gap in gaps[:n]:
            clock += gap
            avail.append(clock)
        best = plan_optimal_fusion(sizes, avail, COMM)
        t_best = fusion_completion_time(best, sizes, avail, COMM)
        for reference in (plan_bulk(n), plan_no_fusion(n)):
            assert t_best <= fusion_completion_time(reference, sizes, avail, COMM) + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=100), min_size=1, max_size=15))
    def test_greedy_valid_and_never_better_than_dp(self, sizes):
        avail = [0.2 * i for i in range(len(sizes))]
        greedy = plan_eq15_greedy(sizes, avail, COMM)
        dp = plan_optimal_fusion(sizes, avail, COMM)
        assert greedy.num_tensors == len(sizes)
        t_greedy = fusion_completion_time(greedy, sizes, avail, COMM)
        t_dp = fusion_completion_time(dp, sizes, avail, COMM)
        assert t_dp <= t_greedy + 1e-9


class TestController:
    def test_releases_buckets_in_order(self):
        plan = FusionPlan(((0, 1), (2,)))
        ctrl = TensorFusionController(plan)
        assert ctrl.submit(0, "a") is None
        released = ctrl.submit(1, "b")
        assert released == [(0, "a"), (1, "b")]
        assert ctrl.submit(2, "c") == [(2, "c")]

    def test_out_of_order_submission_rejected(self):
        ctrl = TensorFusionController(plan_no_fusion(3))
        ctrl.submit(0, None)
        with pytest.raises(ValueError):
            ctrl.submit(2, None)

    def test_reset_between_iterations(self):
        ctrl = TensorFusionController(plan_bulk(2))
        ctrl.submit(0, "x")
        ctrl.submit(1, "y")
        ctrl.reset()
        assert ctrl.submit(0, "x2") is None

    def test_reset_with_pending_raises(self):
        ctrl = TensorFusionController(plan_bulk(2))
        ctrl.submit(0, "x")
        with pytest.raises(RuntimeError):
            ctrl.reset()
