"""Differential tests: branch-and-bound autotune vs the exhaustive grid.

The contract of ``autotune(search="bnb")`` is *winner identity*: on every
(model, cluster) cell, nominal or robust, it must return the same best
candidate — same label, same objective value, bit-identical resolved
plan digest — as the exhaustive grid search, while pruning subtrees the
grid enumerates one by one.  These tests check that contract across the
paper models and three cluster shapes (flat fabric, multi-rack topology,
heterogeneous topology), plus the admissibility property the subtree
pruning rests on: a partial assignment's relaxed bound never exceeds the
exact bound of any of its completions.
"""

import random

import pytest

from repro.autotune import autotune, candidate_bound, strategy_grid
from repro.autotune.grid import FACTOR_AXES
from repro.autotune.search import (
    STRUCT_AXES,
    AxisDomains,
    _ProfileCtx,
    family_strategies,
    partial_bound,
)
from repro.core.schedule import PLACEMENT_STRATEGIES
from repro.models.catalog import PAPER_MODELS
from repro.plan import Session, resolve_plan_parts
from repro.topo import heterogeneous, multi_rack

CLUSTER_NAMES = ("flat", "multi-rack", "heterogeneous")


def make_cluster(name):
    """Small instances of the three cluster shapes the suite sweeps."""
    if name == "flat":
        return 8  # profile-backed session, collective axis fixed to "auto"
    if name == "multi-rack":
        return multi_rack(2, 2, 1)
    return heterogeneous([(1, 2, "nvlink"), (1, 2, "pcie")])


CELLS = [
    (model, cluster) for model in sorted(PAPER_MODELS) for cluster in CLUSTER_NAMES
]


def assert_same_winner(session, grid_report, bnb_report):
    """Label, objective value, and resolved plan digest must all agree."""
    assert grid_report.best.label == bnb_report.best.label
    assert grid_report.outcome_value(grid_report.best) == bnb_report.outcome_value(
        bnb_report.best
    )
    grid_plan = session.plan(grid_report.best.strategy)
    bnb_plan = session.plan(bnb_report.best.strategy)
    assert grid_plan.digest() == bnb_plan.digest()
    # Both engines cover the same candidate universe, fully accounted.
    assert grid_report.stats["candidates"] == bnb_report.stats["candidates"]
    for report in (grid_report, bnb_report):
        assert (
            report.stats["simulated"]
            + report.stats["reused"]
            + report.stats["pruned"]
            == report.stats["candidates"]
        )


@pytest.mark.parametrize("model,cluster_name", CELLS)
def test_bnb_matches_grid_nominal(model, cluster_name):
    session = Session(model, make_cluster(cluster_name))
    grid = autotune(session)
    bnb = autotune(session, search="bnb")
    assert_same_winner(session, grid, bnb)
    assert bnb.speedup_over_presets >= 1.0


@pytest.mark.parametrize("model,cluster_name", CELLS)
def test_bnb_matches_grid_robust(model, cluster_name):
    session = Session(model, make_cluster(cluster_name))
    kwargs = dict(scenario="stragglers", samples=3)
    grid = autotune(session, **kwargs)
    bnb = autotune(session, search="bnb", **kwargs)
    assert grid.objective == bnb.objective == "p95"
    assert_same_winner(session, grid, bnb)


def test_bnb_matches_grid_extended_axes():
    """The 10x grid (precision / compression / staleness axes) agrees too."""
    session = Session("ResNet-50", 8)
    kwargs = dict(
        wire_dtypes=[("fp32", "fp32", "fp32"), ("fp32", "fp16", "fp16")],
        compressions=[1.0, 0.1],
        intervals=[(1, 1), (1, 4), (4, 16)],
    )
    grid = autotune(session, **kwargs)
    bnb = autotune(session, search="bnb", **kwargs)
    assert grid.stats["candidates"] == 72 * 2 * 2 * 3
    assert_same_winner(session, grid, bnb)


def test_bnb_no_prune_prices_every_candidate():
    session = Session("ResNet-50", 4)
    grid = autotune(session, prune=False)
    bnb = autotune(session, search="bnb", prune=False)
    assert bnb.stats["pruned"] == 0
    assert bnb.stats["simulated"] + bnb.stats["reused"] == 72
    assert_same_winner(session, grid, bnb)


def test_bnb_telemetry_and_report_text():
    report = autotune("ResNet-50", 8, search="bnb")
    assert report.telemetry["search"] == "bnb"
    nodes = report.telemetry["nodes"]
    assert nodes["expanded"] >= 1
    assert nodes["families_evaluated"] >= 1
    assert (
        nodes["leaves_pruned"] <= report.stats["pruned"]
    )  # family-level prunes are counted in stats but not as subtree leaves
    batches = report.telemetry["batches"]
    assert batches["count"] >= 0 and batches["graphs"] >= 0
    text = report.telemetry_text()
    assert "bnb nodes" in text
    assert "batched pricing" in text
    # The standard report renders identically to the grid engine's.
    assert "searched 72 candidates" in report.to_text()


def test_bnb_rejects_candidate_shortlists():
    shortlist = strategy_grid()[:3]
    with pytest.raises(ValueError, match="shortlist"):
        autotune("ResNet-50", 4, search="bnb", candidates=shortlist)


def test_unknown_search_engine_rejected():
    with pytest.raises(ValueError, match="search"):
        autotune("ResNet-50", 4, search="dfs")


def _completions(domains, assign):
    """Every full structural assignment extending ``assign``."""
    free = [axis for axis in STRUCT_AXES if axis not in assign]
    if not free:
        yield dict(assign)
        return
    axis = free[0]
    for option in domains.structural(axis):
        yield from _completions(domains, {**assign, axis: option})


def test_partial_bound_admissible_for_every_completion():
    """partial_bound(P) <= candidate_bound(c), component-wise, for all c in P.

    This is the property subtree pruning relies on: if the relaxed bound
    of a partial assignment already meets the incumbent, no completion
    can beat it.  Checked component-wise (compute/comm/chain), which is
    stronger than the total-only statement the search needs.
    """
    session = Session("ResNet-50", 4)
    spec = session.spec
    domains = AxisDomains(
        collectives=("auto",),
        placements=tuple(PLACEMENT_STRATEGIES),
        factor_axes=tuple(FACTOR_AXES),
        gradient_reductions=("wfbp", "bulk"),
        wire_dtypes=(("fp32", "fp32", "fp32"), ("fp32", "fp16", "fp16")),
        compressions=(1.0, 0.1),
        intervals=((1, 1), (1, 4)),
    )
    profile = session.profile_for(strategy_grid()[0])
    ctx = _ProfileCtx(spec, profile)
    rng = random.Random(20260808)
    for _ in range(8):
        assign = {"collective": "auto"}
        depth = rng.randrange(1, len(STRUCT_AXES) + 1)
        for axis in STRUCT_AXES[1:depth]:
            assign[axis] = rng.choice(domains.structural(axis))
        relaxed = partial_bound(spec, ctx, domains, assign)
        completions = list(_completions(domains, assign))
        # Keep the exact-bound sweep bounded: sample completions when the
        # subtree is large, always checking at least one full family.
        rng.shuffle(completions)
        for completion in completions[:6]:
            for member in family_strategies(domains, completion):
                num_ranks, grad_plan, fplan, placement = resolve_plan_parts(
                    spec, profile, member
                )
                exact = candidate_bound(
                    spec,
                    profile,
                    num_ranks=num_ranks,
                    grad_plan=grad_plan,
                    fplan=fplan,
                    placement=placement,
                    include_solve=member.include_solve,
                    strategy=member,
                )
                tol = 1e-9
                assert relaxed.compute <= exact.compute + tol
                assert relaxed.comm <= exact.comm + tol
                assert relaxed.chain <= exact.chain + tol
                assert relaxed.total <= exact.total + tol


def test_family_strategies_match_grid_enumeration():
    """A leaf family is exactly the grid slice with its structural axes."""
    domains = AxisDomains(
        collectives=("auto",),
        placements=tuple(PLACEMENT_STRATEGIES),
        factor_axes=tuple(FACTOR_AXES),
        gradient_reductions=("wfbp", "bulk"),
        wire_dtypes=(("fp32", "fp32", "fp32"), ("fp32", "fp16", "fp16")),
        compressions=(1.0, 0.25),
        intervals=((1, 1), (2, 8)),
    )
    assign = {
        "collective": "auto",
        "placement": "lbp",
        "factor_axes": ("optimal", True, False),
        "gradient_reduction": "wfbp",
    }
    family = family_strategies(domains, assign)
    assert len(family) == domains.family_size == 2 * 2 * 2
    twins = [
        s
        for s in strategy_grid(
            wire_dtypes=domains.wire_dtypes,
            compressions=domains.compressions,
            intervals=domains.intervals,
        )
        if s.placement == "lbp"
        and s.factor_fusion == "optimal"
        and s.factor_pipelining
        and not s.combine_factor_passes
        and s.gradient_reduction == "wfbp"
    ]
    assert {s.name for s in family} == {s.name for s in twins}
    assert sorted(s.name for s in family) == sorted(s.name for s in twins)
    assert domains.total_leaves == len(
        strategy_grid(
            wire_dtypes=domains.wire_dtypes,
            compressions=domains.compressions,
            intervals=domains.intervals,
        )
    )
