"""Tests for the model fitters (the paper's one-time calibration step)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perf import ExpComputeModel, LinearCommModel, fit_exp_compute, fit_linear_comm


class TestFitLinearComm:
    def test_recovers_exact_constants(self):
        truth = LinearCommModel(alpha=1.22e-2, beta=1.45e-9)
        sizes = np.logspace(6, 9, 12)
        times = [truth.time(m) for m in sizes]
        fitted = fit_linear_comm(sizes, times)
        assert fitted.alpha == pytest.approx(truth.alpha, rel=1e-6)
        assert fitted.beta == pytest.approx(truth.beta, rel=1e-6)

    def test_robust_to_noise(self):
        truth = LinearCommModel(alpha=1.59e-2, beta=7.85e-10)
        rng = np.random.default_rng(0)
        sizes = np.logspace(6, 9, 40)
        times = [truth.time(m) * (1 + rng.normal(0, 0.02)) for m in sizes]
        fitted = fit_linear_comm(sizes, times)
        assert fitted.beta == pytest.approx(truth.beta, rel=0.1)

    def test_clamps_negative_intercept(self):
        fitted = fit_linear_comm([1.0, 2.0, 3.0], [0.0, 1.0, 2.0])
        assert fitted.alpha >= 0.0

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            fit_linear_comm([1.0], [1.0])

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            fit_linear_comm([1.0, 2.0], [1.0])

    @settings(max_examples=25)
    @given(
        st.floats(min_value=1e-4, max_value=1.0),
        st.floats(min_value=1e-12, max_value=1e-6),
    )
    def test_roundtrip_property(self, alpha, beta):
        truth = LinearCommModel(alpha=alpha, beta=beta)
        sizes = np.linspace(1e3, 1e9, 10)
        fitted = fit_linear_comm(sizes, [truth.time(m) for m in sizes])
        assert fitted.time(5e8) == pytest.approx(truth.time(5e8), rel=1e-3)


class TestFitExpCompute:
    def test_recovers_paper_constants(self):
        truth = ExpComputeModel(alpha=3.64e-3, beta=4.77e-4)
        dims = np.linspace(64, 8192, 20)
        fitted = fit_exp_compute(dims, [truth.time(d) for d in dims])
        assert fitted.alpha == pytest.approx(truth.alpha, rel=1e-6)
        assert fitted.beta == pytest.approx(truth.beta, rel=1e-6)

    def test_rejects_nonpositive_times(self):
        with pytest.raises(ValueError):
            fit_exp_compute([1.0, 2.0], [1.0, 0.0])

    @settings(max_examples=25)
    @given(
        st.floats(min_value=1e-5, max_value=1e-2),
        st.floats(min_value=1e-5, max_value=1e-3),
    )
    def test_roundtrip_property(self, alpha, beta):
        truth = ExpComputeModel(alpha=alpha, beta=beta)
        dims = np.linspace(64, 4096, 12)
        fitted = fit_exp_compute(dims, [truth.time(d) for d in dims])
        assert fitted.time(2048) == pytest.approx(truth.time(2048), rel=1e-3)
