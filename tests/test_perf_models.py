"""Tests for the performance-model families (Eqs. 14, 26, 27)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.perf import (
    CubicComputeModel,
    ExpComputeModel,
    FlopsComputeModel,
    LinearCommModel,
    symmetric_elements,
)


class TestSymmetricElements:
    def test_paper_values(self):
        # The paper's quoted ResNet-50 extremes.
        assert symmetric_elements(64) == 2080
        assert symmetric_elements(4608) == 10_619_136

    def test_small(self):
        assert symmetric_elements(0) == 0
        assert symmetric_elements(1) == 1
        assert symmetric_elements(2) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            symmetric_elements(-1)

    @given(st.integers(min_value=0, max_value=10_000))
    def test_matches_formula(self, d):
        assert symmetric_elements(d) == d * (d + 1) // 2


class TestLinearCommModel:
    def test_eq14(self):
        model = LinearCommModel(alpha=1e-2, beta=1e-9)
        assert model.time(0) == pytest.approx(1e-2)
        assert model.time(1e9) == pytest.approx(1e-2 + 1.0)

    def test_time_symmetric_packs_triangle(self):
        model = LinearCommModel(alpha=0.0, beta=1.0)
        assert model.time_symmetric(64) == pytest.approx(2080.0)

    def test_saturating_size(self):
        model = LinearCommModel(alpha=2.0, beta=0.5)
        assert model.saturating_size() == pytest.approx(4.0)
        assert LinearCommModel(alpha=1.0, beta=0.0).saturating_size() == math.inf

    def test_negative_params_rejected(self):
        with pytest.raises(ValueError):
            LinearCommModel(alpha=-1.0, beta=0.0)
        with pytest.raises(ValueError):
            LinearCommModel(alpha=0.0, beta=-1.0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            LinearCommModel(alpha=0.0, beta=1.0).time(-1)

    @given(
        st.floats(min_value=0, max_value=1, allow_nan=False),
        st.floats(min_value=0, max_value=1e-6, allow_nan=False),
        st.integers(min_value=0, max_value=10**9),
        st.integers(min_value=0, max_value=10**9),
    )
    def test_monotone_in_size(self, alpha, beta, m1, m2):
        model = LinearCommModel(alpha=alpha, beta=beta)
        lo, hi = sorted((m1, m2))
        assert model.time(lo) <= model.time(hi)


class TestExpComputeModel:
    def test_eq26(self):
        model = ExpComputeModel(alpha=3.64e-3, beta=4.77e-4)
        assert model.time(0) == pytest.approx(3.64e-3)
        # Paper's Fig. 8 endpoint: ~0.18 s at d=8192.
        assert model.time(8192) == pytest.approx(0.181, rel=0.05)

    def test_rejects_nonpositive_alpha(self):
        with pytest.raises(ValueError):
            ExpComputeModel(alpha=0.0, beta=1.0)

    def test_monotone(self):
        model = ExpComputeModel(alpha=1e-3, beta=1e-4)
        assert model.time(100) < model.time(200)


class TestCubicComputeModel:
    def test_agrees_with_exp_fit_on_upper_paper_range(self):
        """On d in [4096, 8192] — where Fig. 8's measurements carry the
        fit — the cubic execution model tracks the exponential fit within
        ~35%; both describe the same measured curve there."""
        exp = ExpComputeModel(alpha=3.64e-3, beta=4.77e-4)
        cubic = CubicComputeModel(overhead=7.0e-4, coeff=0.175 / 8192**3)
        for d in (4096, 6144, 8192):
            assert cubic.time(d) == pytest.approx(exp.time(d), rel=0.35)
        # Below that the exponential's startup floor dominates and the two
        # families intentionally diverge (see calibration.py).
        assert cubic.time(2048) < exp.time(2048)

    def test_no_floor_at_small_d(self):
        cubic = CubicComputeModel(overhead=7.0e-4, coeff=0.175 / 8192**3)
        assert cubic.time(64) < 1e-3  # Eq. 26's fit would say 3.75 ms

    def test_validation(self):
        with pytest.raises(ValueError):
            CubicComputeModel(overhead=-1.0, coeff=0.0)


class TestFlopsComputeModel:
    def test_basic(self):
        model = FlopsComputeModel(overhead=1e-5, throughput=1e12)
        assert model.time(0) == pytest.approx(1e-5)
        assert model.time(1e12) == pytest.approx(1.0 + 1e-5)

    def test_rejects_zero_throughput(self):
        with pytest.raises(ValueError):
            FlopsComputeModel(overhead=0.0, throughput=0.0)
