"""Tests for the calibrated cluster profiles."""

import pytest

from repro.perf import (
    PAPER_ALLREDUCE_64GPU,
    PAPER_BROADCAST_64GPU,
    PAPER_INVERSE_RTX2080TI,
    paper_cluster_profile,
    scaled_cluster_profile,
)


class TestPaperProfile:
    def test_published_constants(self):
        """The profile must carry the paper's Section VI-B constants verbatim."""
        p = paper_cluster_profile()
        assert p.num_workers == 64
        assert p.allreduce.alpha == pytest.approx(1.22e-2)
        assert p.allreduce.beta == pytest.approx(1.45e-9)
        assert p.broadcast.alpha == pytest.approx(1.59e-2)
        assert p.broadcast.beta == pytest.approx(7.85e-10)
        assert p.inverse_estimator.alpha == pytest.approx(3.64e-3)
        assert p.inverse_estimator.beta == pytest.approx(4.77e-4)

    def test_resnet50_gradient_allreduce_matches_fig2(self):
        """25.6M gradients all-reduce ~= 49 ms — the Fig. 2 GradComm bar."""
        p = paper_cluster_profile()
        assert p.allreduce.time(25.6e6) == pytest.approx(0.049, rel=0.05)

    def test_streamed_models_keep_bandwidth(self):
        p = paper_cluster_profile()
        assert p.allreduce_streamed.beta == p.allreduce.beta
        assert p.broadcast_streamed.beta == p.broadcast.beta
        assert p.allreduce_streamed.alpha < p.allreduce.alpha
        assert p.broadcast_streamed.alpha < p.broadcast.alpha

    def test_mpd_inverse_comm_calibration(self):
        """108 back-to-back ResNet-50 inverse broadcasts must land near the
        paper's measured ~134 ms (Section III / Fig. 2)."""
        from repro.models import resnet50_spec

        p = paper_cluster_profile()
        spec = resnet50_spec()
        total = sum(
            p.broadcast_streamed.time_symmetric(d) for d in spec.factor_dims()
        )
        assert total == pytest.approx(0.134, rel=0.25)

    def test_ff_bp_calibration(self):
        """ResNet-50 batch-32 FF&BP lands near the paper's ~0.21 s."""
        from repro.models import resnet50_spec

        p = paper_cluster_profile()
        spec = resnet50_spec()
        flops = 3.0 * spec.forward_flops() * spec.batch_size
        t = flops / p.train_compute.throughput + 2 * len(spec.layers) * p.train_compute.overhead
        assert t == pytest.approx(0.21, rel=0.15)


class TestScaledProfile:
    def test_p64_is_identity(self):
        base = paper_cluster_profile()
        scaled = scaled_cluster_profile(64)
        assert scaled.allreduce == base.allreduce
        assert scaled.broadcast == base.broadcast

    def test_single_worker_has_free_comm(self):
        p1 = scaled_cluster_profile(1)
        assert p1.allreduce.time(10**9) == 0.0
        assert p1.broadcast.time(10**9) == 0.0

    def test_alpha_grows_with_workers(self):
        small, big = scaled_cluster_profile(8), scaled_cluster_profile(128)
        assert small.allreduce.alpha < big.allreduce.alpha
        assert small.broadcast.alpha < big.broadcast.alpha

    def test_ring_beta_saturates(self):
        """Ring all-reduce beta approaches 2/bandwidth as P grows."""
        betas = [scaled_cluster_profile(p).allreduce.beta for p in (4, 16, 64, 256)]
        assert all(b1 <= b2 * 1.001 for b1, b2 in zip(betas, betas[1:]))
        assert betas[-1] / betas[0] < 1.5

    def test_compute_models_unchanged(self):
        assert scaled_cluster_profile(8).inverse_actual == paper_cluster_profile().inverse_actual

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            scaled_cluster_profile(0)
