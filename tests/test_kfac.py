"""Tests for the single-process K-FAC preconditioner/optimizer (Eq. 12)."""

import numpy as np
import pytest

from repro.core import KFACOptimizer, KFACPreconditioner, damped_inverse
from repro.models import make_mlp, make_residual_mlp, make_small_cnn
from repro.nn import CrossEntropyLoss, Linear, Sequential
from repro.workloads import gaussian_blobs


def train_step(net, opt, loss_fn, x, y):
    opt.zero_grad()
    value = loss_fn(net(x), y)
    net.run_backward(loss_fn.backward())
    opt.step()
    return value


class TestDampedInverse:
    def test_inverse_correctness(self, rng):
        root = rng.normal(size=(8, 8))
        factor = root @ root.T
        inv = damped_inverse(factor, damping=0.5)
        np.testing.assert_allclose(inv @ (factor + 0.5 * np.eye(8)), np.eye(8), atol=1e-9)

    def test_result_symmetric(self, rng):
        root = rng.normal(size=(6, 6))
        inv = damped_inverse(root @ root.T, damping=1e-3)
        np.testing.assert_array_equal(inv, inv.T)

    def test_indefinite_matrix_raises(self):
        bad = np.diag([1.0, -5.0])
        with pytest.raises(np.linalg.LinAlgError):
            damped_inverse(bad, damping=0.1)

    def test_damping_regularizes_singular(self):
        singular = np.zeros((4, 4))
        inv = damped_inverse(singular, damping=2.0)
        np.testing.assert_allclose(inv, np.eye(4) / 2.0)

    def test_negative_damping_rejected(self):
        with pytest.raises(ValueError):
            damped_inverse(np.eye(2), damping=-1.0)


class TestPreconditionerMath:
    def test_preconditioned_grad_solves_kronecker_system(self, rng):
        """G^{-1} grad A^{-1} == solving (A (x) G + damping terms) in the
        Kronecker-factored sense: verify against the dense Kronecker solve."""
        net = Sequential(Linear(4, 3, bias=False, rng=rng))
        prec = KFACPreconditioner(net, damping=1e-2, stat_decay=0.0)
        loss = CrossEntropyLoss()
        x = rng.normal(size=(16, 4))
        y = rng.integers(0, 3, 16)
        loss(net(x), y)
        net.run_backward(loss.backward())
        layer = net.layers[0]
        raw_grad = layer.weight.grad.copy()
        prec.step()
        preconditioned = layer.weight.grad

        state = prec.ordered_states()[0]
        a_damped = state.factor_a + 1e-2 * np.eye(4)
        g_damped = state.factor_g + 1e-2 * np.eye(3)
        dense = np.kron(a_damped, g_damped)  # acts on column-major vec (x ⊗ g)
        solved = np.linalg.solve(dense, raw_grad.reshape(-1, order="F"))
        np.testing.assert_allclose(
            preconditioned.reshape(-1, order="F"), solved, rtol=1e-8
        )

    def test_identity_factors_reduce_to_scaled_sgd(self, rng):
        """If A = G = I (forced), preconditioning divides by (1+damping)^2."""
        net = Sequential(Linear(3, 3, bias=False, rng=rng))
        prec = KFACPreconditioner(net, damping=0.5, stat_decay=0.0)
        loss = CrossEntropyLoss()
        x = rng.normal(size=(8, 3))
        y = rng.integers(0, 3, 8)
        loss(net(x), y)
        net.run_backward(loss.backward())
        raw = net.layers[0].weight.grad.copy()
        state = prec.ordered_states()[0]
        prec.update_factors()
        state.factor_a = np.eye(3)
        state.factor_g = np.eye(3)
        state.compute_inverses(prec.damping)
        state.precondition()
        np.testing.assert_allclose(net.layers[0].weight.grad, raw / 1.5**2, rtol=1e-10)

    def test_bias_column_roundtrip(self, rng):
        """grad_matrix appends the bias column; apply_preconditioned splits
        it back without mixing weight and bias entries."""
        net = Sequential(Linear(4, 2, bias=True, rng=rng))
        prec = KFACPreconditioner(net, damping=1e-2)
        layer = net.layers[0]
        layer.weight.grad = rng.normal(size=(2, 4))
        layer.bias.grad = rng.normal(size=2)
        state = prec.ordered_states()[0]
        matrix = state.grad_matrix()
        assert matrix.shape == (2, 5)
        np.testing.assert_array_equal(matrix[:, -1], layer.bias.grad)
        state.apply_preconditioned(matrix * 2.0)
        np.testing.assert_allclose(layer.weight.grad, matrix[:, :4] * 2.0)
        np.testing.assert_allclose(layer.bias.grad, matrix[:, 4] * 2.0)

    def test_stat_decay_ema(self, rng):
        net = Sequential(Linear(3, 2, rng=rng))
        prec = KFACPreconditioner(net, damping=1e-2, stat_decay=0.9)
        loss = CrossEntropyLoss()
        x1 = rng.normal(size=(8, 3))
        loss(net(x1), rng.integers(0, 2, 8))
        net.run_backward(loss.backward())
        prec.update_factors()
        first = prec.ordered_states()[0].factor_a.copy()
        x2 = rng.normal(size=(8, 3))
        loss(net(x2), rng.integers(0, 2, 8))
        net.run_backward(loss.backward())
        batch = prec.ordered_states()[0].batch_a.copy()
        prec.update_factors()
        second = prec.ordered_states()[0].factor_a
        np.testing.assert_allclose(second, 0.9 * first + 0.1 * batch)

    def test_inverse_update_freq_reuses_stale_inverses(self, rng):
        net = Sequential(Linear(3, 2, rng=rng))
        prec = KFACPreconditioner(net, damping=1e-2, stat_decay=0.5, inverse_update_freq=3)
        loss = CrossEntropyLoss()
        inv_ids = []
        for _ in range(3):
            x = rng.normal(size=(6, 3))
            loss(net(x), rng.integers(0, 2, 6))
            net.zero_grad()
            loss(net(x), rng.integers(0, 2, 6))
            net.run_backward(loss.backward())
            prec.step()
            inv_ids.append(id(prec.ordered_states()[0].inv_a))
        assert inv_ids[0] == inv_ids[1] == inv_ids[2]  # recomputed only at step 0

    def test_eval_mode_does_not_capture(self, rng):
        net = Sequential(Linear(3, 2, rng=rng))
        prec = KFACPreconditioner(net, damping=1e-2)
        net.eval()
        net(rng.normal(size=(4, 3)))
        assert prec.ordered_states()[0].batch_a is None

    def test_model_without_kfac_layers_rejected(self):
        from repro.nn import ReLU

        with pytest.raises(ValueError):
            KFACPreconditioner(Sequential(ReLU()), damping=1e-2)

    def test_step_without_factors_raises(self, rng):
        net = Sequential(Linear(3, 2, rng=rng))
        prec = KFACPreconditioner(net, damping=1e-2)
        with pytest.raises(RuntimeError):
            prec.step()


class TestKFACTraining:
    def test_kfac_reduces_loss_mlp(self, rng):
        x, y = gaussian_blobs(128, 8, 3, rng=0)
        net = make_mlp(in_features=8, hidden=16, num_classes=3, rng=1)
        opt = KFACOptimizer(net, lr=0.05, damping=1e-2, stat_decay=0.5)
        loss_fn = CrossEntropyLoss()
        losses = [train_step(net, opt, loss_fn, x, y) for _ in range(25)]
        assert losses[-1] < 0.3 * losses[0]

    def test_kfac_trains_conv_net(self, rng):
        from repro.workloads import synthetic_images

        x, y = synthetic_images(48, channels=1, size=8, num_classes=4, rng=0)
        net = make_small_cnn(in_channels=1, num_classes=4, rng=2)
        opt = KFACOptimizer(net, lr=0.03, damping=1e-1, stat_decay=0.5)
        loss_fn = CrossEntropyLoss()
        losses = [train_step(net, opt, loss_fn, x, y) for _ in range(20)]
        assert losses[-1] < losses[0]

    def test_kfac_trains_residual_topology(self, rng):
        x, y = gaussian_blobs(96, 6, 3, rng=3)
        net = make_residual_mlp(in_features=6, hidden=12, num_classes=3, rng=4)
        opt = KFACOptimizer(net, lr=0.02, damping=1e-1, stat_decay=0.7, momentum=0.9)
        loss_fn = CrossEntropyLoss()
        losses = [train_step(net, opt, loss_fn, x, y) for _ in range(25)]
        assert losses[-1] < 0.6 * losses[0]

    def test_kl_clip_bounds_update_norm(self, rng):
        """With a tiny kl_clip the applied step must shrink relative to the
        unclipped natural-gradient step."""
        x, y = gaussian_blobs(64, 6, 3, rng=7)
        loss_fn = CrossEntropyLoss()

        def step_norm(kl_clip):
            net = make_mlp(in_features=6, hidden=8, num_classes=3, rng=8)
            before = np.concatenate([p.data.ravel() for p in net.parameters()]).copy()
            opt = KFACOptimizer(net, lr=0.1, damping=1e-2, stat_decay=0.0, kl_clip=kl_clip)
            train_step(net, opt, loss_fn, x, y)
            after = np.concatenate([p.data.ravel() for p in net.parameters()])
            return float(np.linalg.norm(after - before))

        assert step_norm(1e-6) < 0.25 * step_norm(1e9)

    def test_kl_clip_validation(self, rng):
        with pytest.raises(ValueError):
            KFACOptimizer(make_mlp(rng=0), lr=0.1, kl_clip=-1.0)

    def test_kfac_beats_sgd_per_iteration_on_ill_conditioned_task(self, rng):
        """The motivation for second-order methods ([13], cited by the
        paper): on inputs with anisotropic covariance, K-FAC makes more
        progress in 20 iterations than SGD at *any* learning rate in a
        sweep.  Inputs are rescaled to a bounded range so the comparison
        starts from the same sane initialization."""
        from repro.nn import SGD

        x, y = gaussian_blobs(160, 10, 3, scale_spread=8.0, rng=5)
        x = x / np.abs(x).max() * 3.0
        loss_fn = CrossEntropyLoss()

        def final_loss(make_opt):
            net = make_mlp(in_features=10, hidden=12, num_classes=3, rng=6)
            opt = make_opt(net)
            for _ in range(20):
                opt.zero_grad()
                loss_fn(net(x), y)
                net.run_backward(loss_fn.backward())
                opt.step()
            return loss_fn(net(x), y)

        kfac_loss = final_loss(
            lambda n: KFACOptimizer(n, lr=0.3, damping=1e-2, stat_decay=0.5, kl_clip=1e-2)
        )
        best_sgd = min(
            final_loss(lambda n, lr=lr: SGD(n.parameters(), lr=lr))
            for lr in (1.0, 0.3, 0.1, 0.03)
        )
        assert kfac_loss < 0.5 * best_sgd
