"""Differential tests for batched simulation paths.

Every batched entry point — ``simulate_batch`` row stacking,
``simulate_many`` run-coalescing, ``simulate_plans`` shape-digest
grouping, and ``Session.simulate_many`` one-shot multi-plan pricing —
promises *bit-identical* results to the naive per-entry ``simulate()``
loop.  These tests check that promise over random mixes of shared and
distinct graphs with ``None``/array duration overrides, plus the
degenerate shapes (0-task graphs, single-wave graphs, empty batches)
where vectorized code paths most often diverge.
"""

import numpy as np
import pytest

from repro.autotune import strategy_grid
from repro.plan import Session, clear_caches
from repro.plan.session import build_strategy_graph
from repro.sim import (
    graph_shape_digest,
    simulate,
    simulate_batch,
    simulate_many,
    simulate_plans,
)
from repro.sim.analysis import REFRESH
from repro.sim.task import TaskGraph


def assert_timelines_equal(actual, expected):
    assert actual.makespan == expected.makespan
    assert np.array_equal(actual._start, expected._start)
    assert np.array_equal(actual._end, expected._end)


@pytest.fixture(scope="module")
def graph_pool():
    """Real iteration graphs from a handful of grid strategies.

    Dtype/compression variants of one fusion plan share a task-graph
    shape, so this pool contains both same-shape distinct objects (the
    simulate_plans batching case) and genuinely different shapes.
    """
    session = Session("ResNet-50", 4)
    spec = session.spec
    strategies = strategy_grid(
        wire_dtypes=[("fp32", "fp32", "fp32"), ("fp32", "fp16", "fp16")],
        compressions=[1.0, 0.1],
    )[:12]
    graphs = []
    for strategy in strategies:
        profile = session.profile_for(strategy)
        graphs.append(build_strategy_graph(spec, profile, strategy))
    return graphs


def _tiny_chain_graph(scale=1.0):
    graph = TaskGraph(2)
    a = graph.add_compute("fwd0", REFRESH, 0, 1.0 * scale)
    b = graph.add_compute("fwd1", REFRESH, 1, 2.0 * scale)
    c = graph.add_collective("allreduce", REFRESH, (0, 1), 0.5 * scale, deps=(a, b))
    graph.add_compute("update", REFRESH, 0, 0.25 * scale, deps=(c,))
    return graph


def _single_wave_graph():
    graph = TaskGraph(2)
    graph.add_compute("a", REFRESH, 0, 1.0)
    graph.add_compute("b", REFRESH, 1, 2.0)
    return graph


# -- simulate_plans vs naive per-entry simulate -------------------------


def test_simulate_plans_matches_naive_over_random_mixes(graph_pool):
    rng = np.random.default_rng(20260808)
    pool = list(graph_pool) + [_tiny_chain_graph(), _tiny_chain_graph(3.0)]
    for _ in range(6):
        picks = rng.integers(0, len(pool), size=10)
        graphs = [pool[i] for i in picks]  # repeats = shared graph objects
        durations = []
        for graph in graphs:
            if rng.random() < 0.4:
                durations.append(None)
            else:
                base = graph.columns().durations
                durations.append(base * rng.uniform(0.5, 1.5, size=base.shape))
        batch_sizes = []
        batched = simulate_plans(graphs, durations, batch_sizes=batch_sizes)
        assert sum(batch_sizes) == len(graphs)
        for graph, dur, timeline in zip(graphs, durations, batched):
            assert_timelines_equal(timeline, simulate(graph, dur))


def test_simulate_plans_groups_same_shape_distinct_objects(graph_pool):
    # Same strategy shape, different dtype/compression -> same digest,
    # distinct objects: this is the path one scheduling pass must cover.
    digests = [graph_shape_digest(g) for g in graph_pool]
    groups = {}
    for digest, graph in zip(digests, graph_pool):
        groups.setdefault(digest, []).append(graph)
    shared = max(groups.values(), key=len)
    assert len(shared) >= 2, "pool should contain same-shape variants"
    batch_sizes = []
    batched = simulate_plans(shared, batch_sizes=batch_sizes)
    assert max(batch_sizes) == len(shared)
    for graph, timeline in zip(shared, batched):
        assert_timelines_equal(timeline, simulate(graph))


def test_simulate_plans_empty_and_zero_task_groups():
    assert simulate_plans([]) == []
    # Two distinct 0-task graphs share the empty digest; the n == 0
    # branch must still return one (empty) timeline per member.
    out = simulate_plans([TaskGraph(2), TaskGraph(4)])
    assert [t.makespan for t in out] == [0.0, 0.0]
    for timeline in out:
        assert timeline._start.shape == (0,)


def test_simulate_plans_validates_duration_arity():
    graph = _tiny_chain_graph()
    with pytest.raises(ValueError, match="one entry per graph"):
        simulate_plans([graph, graph], [None])


# -- simulate_many run-coalescing ---------------------------------------


def test_simulate_many_coalescing_matches_naive(graph_pool):
    rng = np.random.default_rng(7)
    graph = graph_pool[0]
    other = _tiny_chain_graph()
    base = graph.columns().durations
    # Consecutive same-object runs with overrides (coalesced through
    # simulate_batch), broken by None entries and a different graph.
    graphs = [graph, graph, graph, other, graph, graph]
    durations = [
        base * rng.uniform(0.5, 1.5, size=base.shape),
        base * rng.uniform(0.5, 1.5, size=base.shape),
        None,
        other.columns().durations * 2.0,
        base.copy(),
        base * 0.75,
    ]
    results = simulate_many(graphs, durations)
    for graph_i, dur_i, timeline in zip(graphs, durations, results):
        assert_timelines_equal(timeline, simulate(graph_i, dur_i))


def test_simulate_many_without_durations(graph_pool):
    results = simulate_many(graph_pool[:3])
    for graph, timeline in zip(graph_pool[:3], results):
        assert_timelines_equal(timeline, simulate(graph))


# -- simulate_batch edge cases ------------------------------------------


def test_simulate_batch_zero_tasks():
    out = simulate_batch(TaskGraph(2), np.zeros((3, 0)))
    assert [t.makespan for t in out] == [0.0, 0.0, 0.0]


def test_simulate_batch_zero_samples():
    graph = _tiny_chain_graph()
    assert simulate_batch(graph, np.zeros((0, graph.columns().n))) == []


def test_simulate_batch_single_wave():
    # No dependencies at all: every task starts at t=0 in one wave.
    graph = _single_wave_graph()
    durations = np.array([[1.0, 2.0], [3.0, 0.5]])
    for row, timeline in zip(durations, simulate_batch(graph, durations)):
        ref = simulate(graph, row)
        assert_timelines_equal(timeline, ref)
        assert np.array_equal(timeline._start, np.zeros(2))
        assert timeline.makespan == row.max()


# -- graph_shape_digest properties --------------------------------------


def test_graph_shape_digest_ignores_durations_and_names():
    a = _tiny_chain_graph(1.0)
    b = _tiny_chain_graph(17.0)
    assert graph_shape_digest(a) == graph_shape_digest(b)

    renamed = TaskGraph(2)
    x = renamed.add_compute("x", REFRESH, 0, 9.0)
    y = renamed.add_compute("y", REFRESH, 1, 9.0)
    z = renamed.add_collective("coll", REFRESH, (0, 1), 9.0, deps=(x, y))
    renamed.add_compute("tail", REFRESH, 0, 9.0, deps=(z,))
    assert graph_shape_digest(a) == graph_shape_digest(renamed)


def test_graph_shape_digest_separates_structure():
    chain = _tiny_chain_graph()
    wave = _single_wave_graph()
    assert graph_shape_digest(chain) != graph_shape_digest(wave)
    # Same tasks, one extra dependency edge -> different shape.
    variant = TaskGraph(2)
    a = variant.add_compute("fwd0", REFRESH, 0, 1.0)
    b = variant.add_compute("fwd1", REFRESH, 1, 2.0, deps=(a,))
    c = variant.add_collective("allreduce", REFRESH, (0, 1), 0.5, deps=(a, b))
    variant.add_compute("update", REFRESH, 0, 0.25, deps=(c,))
    assert graph_shape_digest(chain) != graph_shape_digest(variant)


# -- Session.simulate_many vs sequential Session.simulate ----------------


@pytest.fixture
def no_plan_store():
    """Detach any globally installed disk store (a prior test's leftover)."""
    from repro.plan import get_plan_store, set_plan_store

    previous = get_plan_store()
    set_plan_store(None)
    clear_caches()
    yield
    set_plan_store(previous)
    clear_caches()


def test_session_simulate_many_matches_sequential(no_plan_store):
    strategies = strategy_grid()[:8] + [strategy_grid()[0]]  # with duplicate
    clear_caches()
    naive_session = Session("ResNet-50", 4)
    naive = [naive_session.simulate(s) for s in strategies]

    clear_caches()
    session = Session("ResNet-50", 4)
    batch_sizes = []
    batched = session.simulate_many(strategies, batch_sizes=batch_sizes)

    assert len(batched) == len(naive)
    assert batch_sizes, "cold batch should issue scheduling passes"
    for got, want in zip(batched, naive):
        assert got.iteration_time == want.iteration_time
        assert got.categories() == want.categories()
    # Duplicate entries resolve to the same cached result object.
    assert batched[-1] is batched[0]


def test_session_simulate_many_serves_warm_entries_from_cache(no_plan_store):
    clear_caches()
    session = Session("ResNet-50", 4)
    strategies = strategy_grid()[:4]
    first = session.simulate_many(strategies)
    batch_sizes = []
    second = session.simulate_many(strategies, batch_sizes=batch_sizes)
    assert batch_sizes == []  # fully cache-served: no scheduling passes
    for a, b in zip(first, second):
        assert a is b
