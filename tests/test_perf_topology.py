"""Tests for the topology -> ClusterPerfProfile bridge and its calibration.

The load-bearing acceptance check lives here: a flat homogeneous 64-GPU
ring topology must reproduce the paper's calibrated all-reduce and
broadcast times within 10% across the Fig. 7 message-size range.
"""

import pytest

from repro.perf import (
    LAUNCH_CONSTANTS,
    ClusterPerfProfile,
    paper_cluster_profile,
    paper_flat_topology,
    select_algorithms,
    topology_models,
    topology_profile,
)
from repro.perf.calibration import PAPER_ALLREDUCE_64GPU, PAPER_BROADCAST_64GPU
from repro.perf.models import symmetric_elements
from repro.topo import flat, heterogeneous, multi_node, multi_rack

#: The Fig. 7 sweep: 1M .. 512M elements.
FIG7_SIZES = tuple(1 << s for s in range(20, 30))


class TestPaperCalibration:
    def test_flat64_ring_allreduce_matches_paper_within_10pct(self):
        models = topology_models(paper_flat_topology(), "ring")
        for m in FIG7_SIZES:
            assert models["allreduce"].time(m) == pytest.approx(
                PAPER_ALLREDUCE_64GPU.time(m), rel=0.10
            )

    def test_flat64_ring_broadcast_matches_paper_within_10pct(self):
        models = topology_models(paper_flat_topology(), "ring")
        for m in FIG7_SIZES:
            assert models["broadcast"].time(m) == pytest.approx(
                PAPER_BROADCAST_64GPU.time(m), rel=0.10
            )
        # And over the paper's factor dimensions (symmetric payloads):
        for d in (256, 1024, 2048, 4096, 8192):
            assert models["broadcast"].time_symmetric(d) == pytest.approx(
                PAPER_BROADCAST_64GPU.time_symmetric(d), rel=0.10
            )

    def test_flat64_ring_allreduce_constants_exact(self):
        """The launch split is exact for the fitted algorithm: alpha and
        beta of the flat-64 ring equal the paper's Eq. 14 constants."""
        models = topology_models(paper_flat_topology(), "ring")
        assert models["allreduce"].alpha == pytest.approx(PAPER_ALLREDUCE_64GPU.alpha)
        assert models["allreduce"].beta == pytest.approx(PAPER_ALLREDUCE_64GPU.beta)

    def test_streamed_variants_carry_streamed_launch(self):
        base = paper_cluster_profile()
        models = topology_models(paper_flat_topology(), "ring")
        assert models["allreduce_streamed"].alpha == pytest.approx(
            base.allreduce_streamed.alpha
        )
        assert models["allreduce_streamed"].beta == pytest.approx(
            base.allreduce_streamed.beta
        )

    def test_launch_constants_positive(self):
        for name, value in LAUNCH_CONSTANTS.items():
            assert value > 0, name


class TestTopologyProfile:
    def test_returns_standard_profile(self):
        profile = topology_profile(multi_node(8, 8))
        assert isinstance(profile, ClusterPerfProfile)
        assert profile.num_workers == 64
        # Frozen + hashable so the schedule builders' lru caches accept it.
        assert hash(profile) == hash(topology_profile(multi_node(8, 8)))

    def test_world_size_mismatch_raises(self):
        with pytest.raises(ValueError):
            topology_profile(flat(8), world_size=64)
        assert topology_profile(flat(8), world_size=8).num_workers == 8

    def test_unknown_algorithm_raises(self):
        with pytest.raises(KeyError):
            topology_profile(flat(8), algorithm="carrier-pigeon")

    def test_auto_prefers_ring_on_flat_fabric(self):
        ar, _ = select_algorithms(paper_flat_topology())
        assert ar == "ring"

    def test_auto_prefers_hierarchical_on_multi_rack(self):
        ar, bc = select_algorithms(multi_rack(4, 4, 4, spine="ethernet"))
        assert ar == "hierarchical"
        assert bc == "hierarchical"

    def test_hierarchical_profile_beats_ring_profile_on_multi_rack(self):
        topo = multi_rack(4, 4, 4, spine="ethernet")
        ring = topology_profile(topo, "ring")
        hier = topology_profile(topo, "hierarchical")
        m = 16 << 20
        assert hier.allreduce.time(m) < ring.allreduce.time(m)
        d = 4096
        assert hier.broadcast.time_symmetric(d) <= ring.broadcast.time_symmetric(d)

    def test_compute_scale_rescales_compute_models(self):
        from repro.topo import ClusterTopology, IB_100G, NVLINK, NodeSpec, Switch

        nodes = tuple(NodeSpec(f"n{i}", 8, NVLINK, compute_scale=0.5) for i in range(4))
        slow = ClusterTopology("half-speed", (Switch("s0", IB_100G, nodes),))
        base = topology_profile(multi_node(4, 8))
        halved = topology_profile(slow)
        assert halved.train_compute.throughput == pytest.approx(
            base.train_compute.throughput / 2
        )
        assert halved.inverse_actual.time(4096) == pytest.approx(
            base.inverse_actual.time(4096) * 2
        )
        assert halved.inverse_estimator.time(4096) == pytest.approx(
            base.inverse_estimator.time(4096) * 2
        )

    def test_single_gpu_topology_has_free_comm(self):
        profile = topology_profile(flat(1))
        assert profile.allreduce.time(10**9) == 0.0
        assert profile.broadcast.time_symmetric(8192) == 0.0

    def test_profile_drives_schedule_builders(self):
        """End-to-end: a topology profile drops into the simulator stack."""
        from repro.plan import Session

        profile = topology_profile(multi_node(2, 2), "hierarchical")
        result = Session("ResNet-50", profile).simulate("SPD-KFAC")
        assert result.iteration_time > 0

    def test_symmetric_elements_consistency(self):
        """time_symmetric of the bridge models equals time over packed size."""
        models = topology_models(multi_node(4, 4), "hierarchical")
        d = 1000
        assert models["broadcast"].time_symmetric(d) == pytest.approx(
            models["broadcast"].time(symmetric_elements(d))
        )
