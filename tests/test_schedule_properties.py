"""Property-based tests over randomly generated model specs.

The paper's headline inequality — SPD-KFAC never slower than D-KFAC or
MPD-KFAC under the same cost models — should hold for *any* layer-size
profile, not just the four evaluated CNNs.  Hypothesis generates random
architectures and cluster sizes and checks the invariants end-to-end
(plan -> task graph -> simulate).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.schedule import run_iteration
from repro.plan import build_strategy_graph
from repro.models.builder import SpecBuilder
from repro.models.spec import ModelSpec
from repro.perf import scaled_cluster_profile
from repro.sim import Phase, simulate


@st.composite
def random_specs(draw) -> ModelSpec:
    num_layers = draw(st.integers(min_value=2, max_value=10))
    batch = draw(st.integers(min_value=1, max_value=16))
    builder = SpecBuilder(model_name="random", batch_size=batch, input_size=32)
    channels = draw(st.integers(min_value=1, max_value=8))
    for i in range(num_layers - 1):
        out = draw(st.integers(min_value=1, max_value=64))
        kernel = draw(st.sampled_from([1, 3]))
        builder.conv(f"conv{i}", channels, out, kernel=kernel, stride=1, padding="same")
        channels = out
    builder.linear("fc", channels, draw(st.integers(min_value=2, max_value=100)))
    return builder.build()


@settings(max_examples=25, deadline=None)
@given(random_specs(), st.integers(min_value=2, max_value=8))
def test_spd_never_slower_than_dkfac(spec, num_workers):
    """SPD-KFAC vs D-KFAC: pipelining can only remove exposed factor
    communication, and LBP's per-tensor CT/NCT rule only promotes a
    tensor off the everyone-computes baseline when that is estimated
    cheaper — so SPD-KFAC should never lose to D-KFAC (small slack for
    FIFO scheduling artifacts).

    No such guarantee exists against MPD-KFAC: on tiny toy models,
    broadcasting every inverse is near-free and round-robin placement can
    beat LBP's tensor-local greedy (the mirror image of the paper's
    DenseNet-201 case), so that comparison is only asserted for the real
    CNNs in test_experiments.py.
    """
    profile = scaled_cluster_profile(num_workers)
    d = run_iteration(build_strategy_graph(spec, profile, "D-KFAC"), "d", spec.name).iteration_time
    spd = run_iteration(build_strategy_graph(spec, profile, "SPD-KFAC"), "s", spec.name).iteration_time
    assert spd <= d * 1.02


@settings(max_examples=25, deadline=None)
@given(random_specs())
def test_single_gpu_kfac_is_sum_of_parts(spec):
    """With one GPU there is no overlap: the KFAC makespan equals the sum
    of all task durations (single FIFO compute stream)."""
    profile = scaled_cluster_profile(1)
    graph = build_strategy_graph(spec, profile, "KFAC")
    timeline = simulate(graph)
    total = sum(t.duration for t in graph.tasks)
    assert timeline.makespan == pytest.approx(total, rel=1e-12)


@settings(max_examples=20, deadline=None)
@given(random_specs(), st.integers(min_value=2, max_value=6))
def test_breakdown_categories_nonnegative_and_complete(spec, num_workers):
    profile = scaled_cluster_profile(num_workers)
    result = run_iteration(build_strategy_graph(spec, profile, "SPD-KFAC"), "s", spec.name)
    cats = result.categories()
    assert all(v >= 0 for v in cats.values())
    assert sum(cats.values()) == pytest.approx(result.iteration_time, rel=1e-6)


@settings(max_examples=20, deadline=None)
@given(random_specs(), st.integers(min_value=2, max_value=6))
def test_dkfac_has_no_inverse_comm(spec, num_workers):
    profile = scaled_cluster_profile(num_workers)
    graph = build_strategy_graph(spec, profile, "D-KFAC")
    assert not [t for t in graph.tasks if t.phase == Phase.INVERSE_COMM]


