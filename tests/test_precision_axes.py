"""Property tests over the precision / compression / staleness axes.

Mirrors the discipline of ``test_strategy_property.py`` for the three
new axis groups: seeded random combinations are checked against an
independently stated validity predicate; every valid combination plans,
simulates, JSON round-trips losslessly, and re-simulates bit-identically
from the deserialized plan; the autotuner's lower bound stays below the
(amortized) simulated time; and the paper-default point is bit-identical
to the legacy behavior.
"""

import math

import pytest

from repro.autotune import candidate_bound, parts_traffic, strategy_grid
from repro.comm.wire import (
    WIRE_DTYPES,
    compressed_elements,
    dtype_bytes,
    fp32_equivalent_elements,
    wire_bytes,
)
from repro.core.schedule import AmortizedIterationResult, IterationResult
from repro.models.builder import SpecBuilder
from repro.perf import scaled_cluster_profile
from repro.plan import Plan, Session, TrainingStrategy, resolve_plan_parts, strategy_registry
from repro.sim import amortized_makespan, interval_weights
from repro.utils.rng import new_rng

SEED = 20260728

WIRE_AXIS_DOMAINS = {
    "grad_dtype": ("fp32", "fp16", "bf16"),
    "factor_dtype": ("fp32", "fp16", "bf16"),
    "inverse_dtype": ("fp32", "fp16", "bf16"),
    "grad_compression": (1.0, 0.5, 0.1, 0.01),
    "factor_update_interval": (1, 2, 3, 4),
    "inverse_update_interval": (1, 2, 3, 4, 6, 8),
}

BASE_DOMAINS = {
    "second_order": (True, False),
    "distributed": (True, False),
    "gradient_reduction": ("none", "wfbp", "bulk"),
    "include_solve": (True, False),
}


def wire_combo_is_valid(combo):
    """The new-axis validity rules, stated independently of the validator."""
    reduces_gradients = combo["distributed"] and combo["gradient_reduction"] != "none"
    if not reduces_gradients and (
        combo["grad_dtype"] != "fp32" or combo["grad_compression"] != 1.0
    ):
        return False
    comm_factors = combo["second_order"] and combo["distributed"]
    if not comm_factors and (
        combo["factor_dtype"] != "fp32" or combo["inverse_dtype"] != "fp32"
    ):
        return False
    stale = combo["factor_update_interval"] > 1 or combo["inverse_update_interval"] > 1
    if stale and (not combo["second_order"] or not combo["include_solve"]):
        return False
    if combo["inverse_update_interval"] % combo["factor_update_interval"] != 0:
        return False
    return True


def base_combo_is_valid(combo):
    if combo["distributed"] != (combo["gradient_reduction"] != "none"):
        return False
    if not combo["second_order"] and not combo["include_solve"]:
        return False
    return True


def random_combo(rng):
    combo = {
        axis: domain[int(rng.integers(len(domain)))]
        for axis, domain in {**BASE_DOMAINS, **WIRE_AXIS_DOMAINS}.items()
    }
    # Half the draws use a consistent distributed second-order base so the
    # new-axis rules (not the classic base rules) decide validity; the
    # other half exercises the joint space.
    if int(rng.integers(2)):
        combo.update(
            second_order=True,
            distributed=True,
            include_solve=True,
            gradient_reduction=("wfbp", "bulk")[int(rng.integers(2))],
        )
    # Keep the classic axes consistent so failures isolate the new rules.
    if not combo["distributed"] or not combo["second_order"]:
        combo["placement"] = "non_dist"
    return combo


def tiny_spec():
    builder = SpecBuilder(model_name="tiny-wire", batch_size=4, input_size=16)
    builder.conv("conv0", 3, 8, kernel=3, stride=1, padding="same")
    builder.conv("conv1", 8, 16, kernel=3, stride=1, padding="same")
    builder.linear("fc", 16, 10)
    return builder.build()


# ---------------------------------------------------------------------------
# wire-format primitives
# ---------------------------------------------------------------------------


class TestWirePrimitives:
    def test_dtype_bytes(self):
        assert dtype_bytes("fp32") == 4
        assert dtype_bytes("fp16") == 2
        assert dtype_bytes("bf16") == 2
        with pytest.raises(ValueError):
            dtype_bytes("fp64")

    def test_compressed_elements_bounds(self):
        rng = new_rng(SEED)
        for _ in range(200):
            m = int(rng.integers(0, 10_000))
            ratio = float(rng.uniform(0.001, 1.0))
            kept = compressed_elements(m, ratio)
            assert 0 <= kept <= m or (m > 0 and kept == 1)
            if m > 0:
                assert kept >= 1
            assert compressed_elements(m, 1.0) == m
        with pytest.raises(ValueError):
            compressed_elements(10, 0.0)
        with pytest.raises(ValueError):
            compressed_elements(10, 1.5)

    def test_wire_bytes_defaults_are_paper_fp32(self):
        assert wire_bytes(123) == 4 * 123
        assert fp32_equivalent_elements(123) == 123
        assert isinstance(fp32_equivalent_elements(123), int)

    def test_wire_bytes_compression_includes_indices(self):
        # 10% of 1000 = 100 values (fp16) + 100 int32 indices.
        assert wire_bytes(1000, "fp16", 0.1) == 100 * 2 + 100 * 4

    def test_interval_weights_partition_the_cycle(self):
        for k_f in (1, 2, 3, 4):
            for mult in (1, 2, 3):
                k_inv = k_f * mult
                weights = dict(interval_weights(k_f, k_inv))
                assert sum(weights.values()) == k_inv
                assert weights["refresh"] == 1
        with pytest.raises(ValueError):
            interval_weights(2, 3)
        with pytest.raises(ValueError):
            interval_weights(0, 1)

    def test_amortized_makespan_is_cycle_average(self):
        times = {"refresh": 1.0, "factor_refresh": 0.7, "steady": 0.4}
        expected = (1.0 + 0.7 + 2 * 0.4) / 4
        assert math.isclose(amortized_makespan(times, 2, 4), expected)
        with pytest.raises(ValueError):
            amortized_makespan({"refresh": 1.0}, 1, 4)  # missing phases


# ---------------------------------------------------------------------------
# validator vs independent predicate
# ---------------------------------------------------------------------------


def test_validator_agrees_with_independent_predicate():
    rng = new_rng(SEED + 10)
    valid_seen = invalid_seen = 0
    for _ in range(400):
        combo = random_combo(rng)
        if base_combo_is_valid(combo) and wire_combo_is_valid(combo):
            TrainingStrategy(**combo)  # must not raise
            valid_seen += 1
        else:
            with pytest.raises(ValueError):
                TrainingStrategy(**combo)
            invalid_seen += 1
    assert valid_seen > 50
    assert invalid_seen > 50


def test_but_rejects_invalid_axis_values():
    spd = strategy_registry["SPD-KFAC"]
    for overrides in (
        {"grad_dtype": "fp64"},
        {"factor_dtype": "int8"},
        {"inverse_dtype": ""},
        {"grad_compression": 0.0},
        {"grad_compression": -0.5},
        {"grad_compression": 1.5},
        {"grad_compression": True},
        {"factor_update_interval": 0},
        {"inverse_update_interval": -1},
        {"factor_update_interval": 2.5},
        {"factor_update_interval": True},
        {"factor_update_interval": 4, "inverse_update_interval": 6},
        {"inverse_update_interval": 4, "include_solve": False},
    ):
        with pytest.raises(ValueError):
            spd.but(**overrides)
    # First-order / single-device strategies reject the wire axes outright.
    with pytest.raises(ValueError):
        strategy_registry["S-SGD"].but(factor_dtype="fp16")
    with pytest.raises(ValueError):
        strategy_registry["S-SGD"].but(inverse_update_interval=2)
    with pytest.raises(ValueError):
        strategy_registry["KFAC"].but(grad_compression=0.5)


def test_but_derivation_round_trips_to_base():
    spd = strategy_registry["SPD-KFAC"]
    derived = spd.but(
        grad_dtype="bf16",
        grad_compression=0.25,
        factor_dtype="fp16",
        inverse_dtype="fp16",
        factor_update_interval=2,
        inverse_update_interval=4,
    )
    assert derived.stale_updates
    back = derived.but(
        grad_dtype="fp32",
        grad_compression=1.0,
        factor_dtype="fp32",
        inverse_dtype="fp32",
        factor_update_interval=1,
        inverse_update_interval=1,
    )
    assert back == spd
    assert not back.stale_updates


# ---------------------------------------------------------------------------
# simulation, serialization, bounds
# ---------------------------------------------------------------------------


def _sampled_wire_strategies(n=40):
    """Seeded valid distributed second-order strategies over the new axes."""
    rng = new_rng(SEED + 20)
    out = []
    while len(out) < n:
        combo = random_combo(rng)
        combo.update(second_order=True, distributed=True, include_solve=True)
        combo["gradient_reduction"] = ("wfbp", "bulk")[int(rng.integers(2))]
        combo.pop("placement", None)
        if wire_combo_is_valid(combo):
            out.append(TrainingStrategy(**combo))
    return out


@pytest.fixture(scope="module")
def wire_session():
    return Session(tiny_spec(), scaled_cluster_profile(4))


class TestWireStrategiesSimulate:
    def test_every_valid_combo_plans_simulates_and_round_trips(self, wire_session):
        session = wire_session
        spec = session.spec
        profile = session.profile_for("SPD-KFAC")
        for strategy in _sampled_wire_strategies():
            plan = session.plan(strategy)
            result = session.simulate(strategy)

            # Planning and simulation agree on the (amortized) headline.
            assert result.iteration_time > 0
            assert plan.predicted_makespan == result.iteration_time
            assert math.isclose(
                sum(result.categories().values()),
                result.iteration_time,
                rel_tol=1e-9,
            )

            # Stale strategies return the amortized result type with a
            # coherent cycle decomposition.
            if strategy.stale_updates:
                assert isinstance(result, AmortizedIterationResult)
                times = result.phase_times()
                assert result.refresh.iteration_time == times["refresh"]
                assert result.iteration_time <= times["refresh"] + 1e-12
                assert result.iteration_time >= min(times.values()) - 1e-12
                assert result.cycle_iterations == strategy.inverse_update_interval
            else:
                assert isinstance(result, IterationResult)

            # Lossless JSON round trip, and the loaded plan re-simulates
            # bit-identically.
            loaded = Plan.from_json(plan.to_json())
            assert loaded == plan
            re_result = session.simulate(loaded)
            assert re_result.iteration_time == result.iteration_time
            assert re_result.categories() == result.categories()

            # The tuner's lower bound stays below the amortized time.
            num_ranks, grad_plan, fplan, placement = resolve_plan_parts(
                spec, profile, strategy
            )
            bound = candidate_bound(
                spec,
                profile,
                num_ranks=num_ranks,
                grad_plan=grad_plan,
                fplan=fplan,
                placement=placement,
                include_solve=strategy.include_solve,
                strategy=strategy,
            )
            assert bound.total <= result.iteration_time + 1e-12

    def test_default_axes_are_bit_identical_to_legacy_path(self, wire_session):
        spd = strategy_registry["SPD-KFAC"]
        explicit = spd.but(
            grad_dtype="fp32",
            factor_dtype="fp32",
            inverse_dtype="fp32",
            grad_compression=1.0,
            factor_update_interval=1,
            inverse_update_interval=1,
        )
        assert explicit == spd
        base = wire_session.simulate(spd)
        assert isinstance(base, IterationResult)
        assert wire_session.simulate(explicit).iteration_time == base.iteration_time

    def test_k1_cycle_is_plain_iteration_result(self, wire_session):
        s = strategy_registry["SPD-KFAC"].but(factor_dtype="fp16")
        assert isinstance(wire_session.simulate(s), IterationResult)

    def test_cheaper_wire_never_slower(self, wire_session):
        spd = strategy_registry["SPD-KFAC"]
        base = wire_session.simulate(spd).iteration_time
        for overrides in (
            {"grad_dtype": "fp16"},
            {"grad_compression": 0.1},
            {"factor_dtype": "fp16"},
            {"inverse_dtype": "bf16"},
            {"inverse_update_interval": 4},
            {"factor_update_interval": 2, "inverse_update_interval": 4},
        ):
            variant = spd.but(name=str(overrides), **overrides)
            assert wire_session.simulate(variant).iteration_time <= base + 1e-12


class TestWireTraffic:
    def test_dtype_halves_factor_bytes(self, wire_session):
        spec = wire_session.spec
        profile = wire_session.profile_for("SPD-KFAC")
        spd = strategy_registry["SPD-KFAC"]
        num_ranks, grad_plan, fplan, placement = resolve_plan_parts(
            spec, profile, spd
        )
        base = parts_traffic(
            spec, num_ranks=num_ranks, grad_plan=grad_plan, fplan=fplan,
            placement=placement,
        )
        fp16 = parts_traffic(
            spec, num_ranks=num_ranks, grad_plan=grad_plan, fplan=fplan,
            placement=placement, strategy=spd.but(factor_dtype="fp16"),
        )
        assert fp16.bytes["allreduce.factor"] * 2 == base.bytes["allreduce.factor"]
        assert fp16.bytes["allreduce.grad"] == base.bytes["allreduce.grad"]
        assert fp16.elements == base.elements  # same logical elements

    def test_intervals_amortize_traffic(self, wire_session):
        spec = wire_session.spec
        profile = wire_session.profile_for("SPD-KFAC")
        spd = strategy_registry["SPD-KFAC"]
        num_ranks, grad_plan, fplan, placement = resolve_plan_parts(
            spec, profile, spd
        )
        base = parts_traffic(
            spec, num_ranks=num_ranks, grad_plan=grad_plan, fplan=fplan,
            placement=placement,
        )
        stale = parts_traffic(
            spec, num_ranks=num_ranks, grad_plan=grad_plan, fplan=fplan,
            placement=placement,
            strategy=spd.but(factor_update_interval=2, inverse_update_interval=4),
        )
        assert stale.bytes["allreduce.factor"] * 2 == base.bytes["allreduce.factor"]
        assert stale.bytes["broadcast.inverse"] * 4 == base.bytes["broadcast.inverse"]
        assert stale.bytes["allreduce.grad"] == base.bytes["allreduce.grad"]

    def test_strategy_none_is_integer_fp32_accounting(self, wire_session):
        spec = wire_session.spec
        profile = wire_session.profile_for("SPD-KFAC")
        num_ranks, grad_plan, fplan, placement = resolve_plan_parts(
            spec, profile, strategy_registry["SPD-KFAC"]
        )
        counter = parts_traffic(
            spec, num_ranks=num_ranks, grad_plan=grad_plan, fplan=fplan,
            placement=placement,
        )
        for op, elements in counter.elements.items():
            assert isinstance(elements, int)
            assert counter.bytes[op] == 4 * elements


def test_extended_grid_defaults_unchanged():
    """The default grid is exactly the classic 72 points (paper axes only)."""
    grid = strategy_grid()
    assert len(grid) == 72
    for s in grid:
        assert not s.stale_updates
        assert (s.grad_dtype, s.factor_dtype, s.inverse_dtype) == ("fp32",) * 3
        assert s.grad_compression == 1.0


def test_extended_grid_labels_are_unique():
    grid = strategy_grid(
        wire_dtypes=[("fp32", "fp32", "fp32"), ("fp16", "fp16", "fp16")],
        compressions=[1.0, 0.1],
        intervals=[(1, 1), (2, 4)],
    )
    labels = [s.name for s in grid]
    assert len(labels) == len(set(labels))
    assert len(grid) == 72 * 8


class TestDtypeAwareCostModels:
    def test_linear_model_time_bytes_is_fp32_equivalent(self):
        from repro.perf import LinearCommModel

        model = LinearCommModel(alpha=1e-3, beta=1e-9)
        assert model.time_bytes(4000) == model.time(1000.0)
        # fp16 halves the bandwidth term of the same logical transfer.
        assert model.time_bytes(wire_bytes(1000, "fp16")) == model.time(500.0)

    def test_topology_collective_time_bytes(self):
        from repro.topo import flat
        from repro.topo.collectives import RingAllReduce

        ring = RingAllReduce(flat(8))
        assert ring.time_bytes(80 * ring.element_bytes) == ring.time(80.0)

    def test_describe_topology_preset(self):
        from repro.topo import describe_topology_preset, topology_preset_names

        for name in topology_preset_names():
            description = describe_topology_preset(name)
            assert description and len(description.splitlines()) == 1
        with pytest.raises(KeyError):
            describe_topology_preset("warp-fabric")

    def test_broadcast_symmetric_time_matches_wire_bytes(self):
        from repro.core.schedule import broadcast_symmetric_time
        from repro.perf import LinearCommModel
        from repro.perf.models import symmetric_elements

        model = LinearCommModel(alpha=1e-3, beta=1e-9)
        assert broadcast_symmetric_time(model, 64) == model.time_symmetric(64)
        assert broadcast_symmetric_time(model, 64, "fp16") == model.time_bytes(
            wire_bytes(symmetric_elements(64), "fp16")
        )


def test_plan_build_phase_graphs_reproduces_amortized_prediction():
    """Simulating a stale plan's phase graphs cycle-averages to its prediction."""
    from repro.core.schedule import run_iteration

    spec = tiny_spec()
    session = Session(spec, scaled_cluster_profile(4))
    strategy = strategy_registry["SPD-KFAC"].but(
        name="stale", factor_dtype="fp16", factor_update_interval=2,
        inverse_update_interval=4,
    )
    plan = session.plan(strategy)
    graphs = plan.build_phase_graphs(spec)
    assert set(graphs) == {"refresh", "factor_refresh", "steady"}
    times = {
        phase: run_iteration(graph, "stale", spec.name).iteration_time
        for phase, graph in graphs.items()
    }
    assert amortized_makespan(times, 2, 4) == plan.predicted_makespan
    # The single-shape accessor builds the refresh graph only.
    refresh = plan.build_graph(spec)
    assert run_iteration(refresh, "stale", spec.name).iteration_time == times["refresh"]


def test_autotune_rejects_candidates_with_grid_axes():
    """candidates= replaces the grid, so grid-axis kwargs must not silently vanish."""
    from repro.autotune import autotune

    shortlist = [strategy_registry["SPD-KFAC"]]
    with pytest.raises(ValueError, match="intervals"):
        autotune(
            Session(tiny_spec(), scaled_cluster_profile(4)),
            candidates=shortlist,
            intervals=[(1, 4)],
        )
