"""Property-based tests of the simulator's scheduling invariants.

Random task graphs (acyclic by construction, since deps may only point
backwards) must always schedule such that:

* every task starts at or after each of its dependencies' ends;
* tasks sharing a stream never overlap and respect FIFO order;
* gang (collective) tasks occupy all participants simultaneously;
* the makespan is the max task end.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import COMM, COMPUTE, Phase, TaskGraph, simulate


@st.composite
def random_task_graphs(draw) -> TaskGraph:
    num_ranks = draw(st.integers(min_value=1, max_value=4))
    num_tasks = draw(st.integers(min_value=1, max_value=30))
    graph = TaskGraph(num_ranks)
    for tid in range(num_tasks):
        duration = draw(st.floats(min_value=0.0, max_value=5.0, allow_nan=False))
        num_deps = draw(st.integers(min_value=0, max_value=min(3, tid)))
        deps = draw(
            st.lists(
                st.integers(min_value=0, max_value=tid - 1),
                min_size=num_deps,
                max_size=num_deps,
                unique=True,
            )
        ) if tid > 0 else []
        if draw(st.booleans()):
            rank = draw(st.integers(min_value=0, max_value=num_ranks - 1))
            graph.add_compute(f"t{tid}", Phase.FORWARD, rank, duration, deps=deps)
        else:
            count = draw(st.integers(min_value=1, max_value=num_ranks))
            ranks = draw(
                st.lists(
                    st.integers(min_value=0, max_value=num_ranks - 1),
                    min_size=count,
                    max_size=count,
                    unique=True,
                )
            )
            graph.add_collective(f"t{tid}", Phase.GRAD_COMM, ranks, duration, deps=deps)
    return graph


@settings(max_examples=150, deadline=None)
@given(random_task_graphs())
def test_schedule_invariants(graph: TaskGraph):
    timeline = simulate(graph)
    entries = {e.task.tid: e for e in timeline.entries}

    # 1. Precedence: dependencies complete before dependents start.
    for entry in timeline.entries:
        for dep in entry.task.deps:
            assert entries[dep].end <= entry.start + 1e-12

    # 2. Stream exclusivity + FIFO.
    for stream, queue in graph.stream_queues().items():
        del stream
        for prev_tid, next_tid in zip(queue, queue[1:]):
            assert entries[prev_tid].end <= entries[next_tid].start + 1e-12

    # 3. Durations respected (up to fp rounding of start + duration).
    for entry in timeline.entries:
        assert entry.end - entry.start == pytest.approx(entry.task.duration, abs=1e-9)

    # 4. Makespan is the max end.
    if timeline.entries:
        assert timeline.makespan == max(e.end for e in timeline.entries)


@settings(max_examples=60, deadline=None)
@given(random_task_graphs())
def test_breakdown_covers_critical_rank(graph: TaskGraph):
    """Stacked breakdown sums exactly to the critical rank's horizon."""
    timeline = simulate(graph)
    breakdown = timeline.breakdown()
    assert sum(breakdown.seconds.values()) <= breakdown.total + 1e-9
    assert abs(sum(breakdown.seconds.values()) - breakdown.total) < 1e-6


@settings(max_examples=60, deadline=None)
@given(random_task_graphs(), st.floats(min_value=0.1, max_value=10.0))
def test_duration_scaling_scales_makespan(graph: TaskGraph, factor: float):
    """Scaling every duration by c scales the whole schedule by c
    (the engine is a pure longest-path computation)."""
    base = simulate(graph)
    scaled_graph = TaskGraph(graph.num_ranks)
    for task in graph.tasks:
        if task.kind == COMPUTE:
            scaled_graph.add_compute(
                task.name, task.phase, task.ranks[0], task.duration * factor, deps=task.deps
            )
        else:
            assert task.kind == COMM
            scaled_graph.add_collective(
                task.name, task.phase, list(task.ranks), task.duration * factor, deps=task.deps
            )
    scaled = simulate(scaled_graph)
    assert scaled.makespan * 1.0 == base.makespan * factor or abs(
        scaled.makespan - base.makespan * factor
    ) < 1e-9 * max(1.0, base.makespan)
