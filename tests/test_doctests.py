"""Doctest pass over the documented public packages.

The docstring audit (ISSUE 5) requires runnable examples on the public
surface of ``repro.plan``, ``repro.autotune``, and ``repro.topo``; this
module executes every embedded example so the docs can never drift from
the code.  ``make doctest`` runs exactly this file.
"""

import doctest
import importlib

import pytest

#: Modules whose docstring examples must all pass.
DOCTEST_MODULES = [
    "repro.comm.wire",
    "repro.plan.strategy",
    "repro.plan.plan",
    "repro.plan.session",
    "repro.autotune.grid",
    "repro.autotune.tuner",
    "repro.utils.digest",
    "repro.serve.store",
    "repro.serve.service",
    "repro.serve.server",
    "repro.serve.client",
    "repro.topo.presets",
    "repro.topo.graph",
    "repro.sim.analysis",
]


@pytest.mark.parametrize("module_name", DOCTEST_MODULES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(
        module, verbose=False, optionflags=doctest.NORMALIZE_WHITESPACE
    )
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {module_name}"


def test_docstring_examples_exist_where_required():
    """The audited packages actually carry runnable examples."""
    total = 0
    for module_name in DOCTEST_MODULES:
        module = importlib.import_module(module_name)
        finder = doctest.DocTestFinder(exclude_empty=True)
        total += sum(len(t.examples) for t in finder.find(module))
    assert total >= 20, f"only {total} doctest examples across the audited modules"
