"""Tests for the topology graph and collective-algorithm cost models."""

import pytest

from repro.perf.models import CommModelLike, LinearCommModel
from repro.topo import (
    ETHERNET_25G,
    IB_100G,
    NVLINK,
    PAPER_IB,
    PCIE3,
    ClusterTopology,
    HierarchicalAllReduce,
    HierarchicalBroadcast,
    Link,
    NodeSpec,
    RingAllReduce,
    RingBroadcast,
    Switch,
    TreeAllReduce,
    TreeBroadcast,
    allreduce_model,
    broadcast_model,
    flat,
    heterogeneous,
    multi_node,
    multi_rack,
    resolve_link,
)


class TestGraph:
    def test_flat_structure(self):
        topo = flat(64)
        assert topo.world_size == 64
        assert topo.num_racks == 1
        assert topo.num_nodes == 1
        assert topo.levels() == ((64, PAPER_IB),)

    def test_multi_node_structure(self):
        topo = multi_node(8, 4, intra="nvlink", inter="ib")
        assert topo.world_size == 32
        assert topo.num_nodes == 8
        (g0, l0), (g1, l1) = topo.levels()
        assert (g0, g1) == (4, 8)
        assert l0.bandwidth == NVLINK.bandwidth
        assert l1 == IB_100G

    def test_multi_rack_structure(self):
        topo = multi_rack(4, 4, 4)
        assert topo.world_size == 64
        assert topo.num_racks == 4
        sizes = [g for g, _ in topo.levels()]
        assert sizes == [4, 4, 4]

    def test_multi_rack_requires_spine(self):
        nodes = (NodeSpec("n", 2, NVLINK),)
        switches = (Switch("s0", IB_100G, nodes), Switch("s1", IB_100G, nodes))
        with pytest.raises(ValueError):
            ClusterTopology("broken", switches)

    def test_bottleneck_is_slowest_active_link(self):
        topo = multi_rack(2, 2, 2, intra="nvlink", inter="ib", spine="ethernet")
        bottleneck = topo.bottleneck_link()
        assert bottleneck.bandwidth == ETHERNET_25G.bandwidth
        assert bottleneck.latency == ETHERNET_25G.latency

    def test_single_node_racks_still_traverse_tor_uplink(self):
        """Cross-rack traffic exits through the ToR uplink even when each
        rack holds one node — the uplink must bottleneck both the flat
        composite and the spine level."""
        topo = multi_rack(2, 1, 8, intra="nvlink", inter="ethernet", spine="ib")
        assert topo.bottleneck_link().bandwidth == ETHERNET_25G.bandwidth
        spine_level = topo.levels()[-1]
        assert spine_level[0] == 2
        assert spine_level[1].bandwidth == ETHERNET_25G.bandwidth

    def test_heterogeneous_level_uses_slowest_node(self):
        topo = heterogeneous(((3, 8, "nvlink"), (1, 8, "pcie")))
        (g0, l0), _ = topo.levels()
        assert g0 == 8
        assert l0.bandwidth == PCIE3.bandwidth

    def test_single_gpu_nodes_do_not_create_an_intra_level(self):
        topo = multi_node(8, 1, inter="ib")
        assert topo.levels() == ((8, IB_100G),)

    def test_link_preset_resolution(self):
        assert resolve_link("nvlink") is NVLINK
        assert resolve_link(PAPER_IB) is PAPER_IB
        with pytest.raises(KeyError):
            resolve_link("carrier-pigeon")

    def test_link_validation(self):
        with pytest.raises(ValueError):
            Link("bad", latency=-1.0, bandwidth=1e9)
        with pytest.raises(ValueError):
            Link("bad", latency=1e-6, bandwidth=0.0)

    def test_compute_scale_gated_by_slowest_node(self):
        fast = NodeSpec("fast", 4, NVLINK, compute_scale=2.0)
        slow = NodeSpec("slow", 4, NVLINK, compute_scale=0.5)
        topo = ClusterTopology("mixed", (Switch("s0", IB_100G, (fast, slow)),))
        assert topo.compute_scale() == 0.5

    def test_describe_mentions_links(self):
        text = multi_node(4, 4).describe()
        assert "16 GPUs" in text
        assert "nvlink" in text


class TestCostModels:
    def test_models_satisfy_comm_protocol(self):
        topo = flat(8)
        for model in (
            RingAllReduce(topo),
            TreeAllReduce(topo),
            HierarchicalAllReduce(topo),
            RingBroadcast(topo),
            TreeBroadcast(topo),
            HierarchicalBroadcast(topo),
        ):
            assert isinstance(model, CommModelLike)
            assert model.time(0) == pytest.approx(model.alpha)
            assert model.time_symmetric(64) >= model.alpha
            assert model.as_linear() == LinearCommModel(model.alpha, model.beta)

    def test_ring_matches_textbook_coefficients(self):
        link = Link("l", latency=1e-6, bandwidth=1e10)
        topo = flat(16, link)
        ring = RingAllReduce(topo)
        assert ring.alpha == pytest.approx(2 * 15 * 1e-6)
        assert ring.beta == pytest.approx(2 * 15 / 16 * 4 / 1e10)

    def test_tree_has_log_latency(self):
        topo = flat(64)
        assert TreeAllReduce(topo).alpha == pytest.approx(2 * 6 * PAPER_IB.latency)
        assert TreeBroadcast(topo).alpha == pytest.approx(6 * PAPER_IB.latency)

    def test_hierarchical_equals_ring_on_flat(self):
        topo = flat(32)
        ring, hier = RingAllReduce(topo), HierarchicalAllReduce(topo)
        assert hier.alpha == pytest.approx(ring.alpha)
        assert hier.beta == pytest.approx(ring.beta)

    def test_hierarchical_beats_ring_on_hierarchical_fabric(self):
        topo = multi_node(8, 8, intra="nvlink", inter="ib")
        ring, hier = RingAllReduce(topo), HierarchicalAllReduce(topo)
        assert hier.beta < ring.beta / 3
        # At a fused-buffer message the full collective is cheaper too.
        assert hier.time(16 << 20) < ring.time(16 << 20)

    def test_hierarchical_shrinks_spine_traffic(self):
        """The spine bandwidth term must be divided by the inner fan-out."""
        topo = multi_rack(4, 4, 4, intra="nvlink", inter="ib", spine="ethernet")
        hier = HierarchicalAllReduce(topo)
        spine_full = 2 * 3 / 4 * 4 / ETHERNET_25G.bandwidth
        assert hier.beta < spine_full / 4  # way below an unshrunk spine ring term

    def test_uneven_node_sizes_use_pessimal_share(self):
        """Small nodes carry big leftover chunks into the inter-node
        phase; the share divisor must follow the smallest group."""
        uneven = heterogeneous(((1, 8, "nvlink"), (8, 2, "pcie")), inter="ethernet")
        assert uneven.level_share_divisors() == (2, 9)
        even = heterogeneous(((8, 8, "pcie"),), inter="ethernet")
        assert even.level_share_divisors() == (8, 8)
        # The inter-node beta term divides by 2 (not 8): a 2-GPU node's
        # ranks enter the ethernet ring carrying m/2.
        hier = HierarchicalAllReduce(uneven)
        inter_term = 2 * (9 - 1) / 9 * (4 / ETHERNET_25G.bandwidth) / 2
        assert hier.beta > inter_term

    def test_single_gpu_is_free(self):
        topo = flat(1)
        for factory in (RingAllReduce, TreeAllReduce, HierarchicalAllReduce,
                        RingBroadcast, TreeBroadcast, HierarchicalBroadcast):
            model = factory(topo, launch=1.0)
            assert model.time(1 << 20) == 0.0

    def test_launch_adds_to_alpha_only(self):
        topo = flat(8)
        base, launched = RingAllReduce(topo), RingAllReduce(topo, launch=1e-3)
        assert launched.alpha == pytest.approx(base.alpha + 1e-3)
        assert launched.beta == base.beta

    def test_element_bytes_scales_beta(self):
        topo = flat(8)
        fp32, fp16 = RingAllReduce(topo), RingAllReduce(topo, element_bytes=2)
        assert fp16.beta == pytest.approx(fp32.beta / 2)
        assert fp16.alpha == fp32.alpha

    def test_factory_functions(self):
        topo = flat(4)
        assert isinstance(allreduce_model(topo, "tree"), TreeAllReduce)
        assert isinstance(broadcast_model(topo, "hierarchical"), HierarchicalBroadcast)
        with pytest.raises(KeyError):
            allreduce_model(topo, "carrier-pigeon")

    def test_models_are_hashable_and_frozen(self):
        topo = flat(4)
        model = RingAllReduce(topo)
        assert hash(model) == hash(RingAllReduce(topo))
        with pytest.raises(AttributeError):
            model.alpha = 0.0
