"""Shared helpers for the reproduction benchmarks.

Each ``bench_*.py`` regenerates one table/figure of the paper via
pytest-benchmark (``pytest benchmarks/ --benchmark-only``).  The
experiment body runs exactly once per benchmark (``rounds=1``) — these
are reproduction harnesses whose *output* is the point; the benchmark
timing records how long the reproduction itself takes.
"""

from __future__ import annotations

import sys

from repro.experiments import get_experiment


def run_experiment(benchmark, experiment_id: str):
    """Run experiment ``experiment_id`` once under the benchmark fixture,
    print its table (visible with ``pytest -s``), and return the result."""
    module = get_experiment(experiment_id)
    result = benchmark.pedantic(module.run, rounds=1, iterations=1, warmup_rounds=0)
    print(file=sys.stderr)
    print(result.to_text(), file=sys.stderr)
    return result


def rows_by(result, **filters):
    rows = [r for r in result.rows if all(r.get(k) == v for k, v in filters.items())]
    assert rows, f"no rows matching {filters}"
    return rows


def one_row(result, **filters):
    rows = rows_by(result, **filters)
    assert len(rows) == 1
    return rows[0]
