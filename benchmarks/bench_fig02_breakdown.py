"""Fig. 2: iteration-time breakdowns of the five training schemes."""

from benchmarks.conftest import one_row, run_experiment


def test_fig02_breakdown(benchmark):
    result = run_experiment(benchmark, "fig2")
    sgd = one_row(result, scheme="SGD")["total"]
    kfac = one_row(result, scheme="KFAC")["total"]
    d = one_row(result, scheme="D-KFAC")
    mpd = one_row(result, scheme="MPD-KFAC")
    assert 2.0 < kfac / sgd < 6.0  # paper: KFAC ~4x SGD
    assert d["FactorComm"] > d["GradComm"]
    assert mpd["InverseComp"] < d["InverseComp"]
    assert mpd["InverseComm"] > 0.0
