"""Fig. 12: inverse placement strategy comparison."""

from benchmarks.conftest import rows_by, run_experiment
from repro.experiments.base import PAPER_MODEL_NAMES


def test_fig12_placement(benchmark):
    result = run_experiment(benchmark, "fig12")
    for name in PAPER_MODEL_NAMES:
        totals = {r["strategy"]: r["total"] for r in rows_by(result, model=name)}
        assert totals["lbp"] == min(totals.values())  # LBP always best
    densenet = {r["strategy"]: r["total"] for r in rows_by(result, model="DenseNet-201")}
    assert densenet["seq_dist"] > densenet["non_dist"]
