"""Extension: iterations-to-accuracy of K-FAC vs SGD (real training)."""

from benchmarks.conftest import one_row, run_experiment


def test_ext_convergence(benchmark):
    result = run_experiment(benchmark, "ext_convergence")
    kfac = one_row(result, optimizer="K-FAC")
    sgd = one_row(result, optimizer="SGD")
    assert isinstance(kfac["iters_to_99%"], int)
    if isinstance(sgd["iters_to_99%"], int):
        assert kfac["iters_to_99%"] <= sgd["iters_to_99%"]
