"""Extension: cluster-size scaling sweep (beyond the paper's 64-GPU point)."""

from benchmarks.conftest import run_experiment


def test_ext_scaling(benchmark):
    result = run_experiment(benchmark, "ext_scaling")
    for row in result.rows:
        assert row["SPD-KFAC"] <= row["D-KFAC"] + 1e-9
    # SPD-KFAC's advantage grows from small to large clusters.
    sp1 = result.column("SP1")
    assert sp1[-1] > sp1[0]
