"""Extension: ablation of fusion-planner and LBP-weight design choices."""

from benchmarks.conftest import run_experiment


def test_ext_planner_ablation(benchmark):
    result = run_experiment(benchmark, "ext_planner")
    for row in result.rows:
        assert row["A-pass DP(s)"] <= row["A-pass greedy(s)"] + 1e-9
        assert row["inverse LBP-d2(s)"] <= row["inverse LBP-d(s)"] * 1.1
