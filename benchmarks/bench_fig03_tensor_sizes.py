"""Fig. 3: Kronecker-factor tensor-size distributions."""

from benchmarks.conftest import one_row, run_experiment


def test_fig03_tensor_sizes(benchmark):
    result = run_experiment(benchmark, "fig3")
    rn50 = one_row(result, model="ResNet-50")
    assert rn50["min"] == 2080  # the paper's quoted extremes
    assert rn50["max"] == 10_619_136
    assert sum(r["factors"] for r in result.rows) == 108 + 312 + 402 + 300
