"""Table II: model statistics derived from the architecture specs."""

import pytest

from benchmarks.conftest import run_experiment


def test_table2_model_stats(benchmark):
    result = run_experiment(benchmark, "tab2")
    for row in result.rows:
        assert row["layers"] == row["paper#L"]
        assert row["params(M)"] == pytest.approx(row["paper"], rel=0.02)
        assert row["As(M)"] == pytest.approx(row["paperAs"], rel=0.02)
