"""Micro-benchmarks of the library's hot kernels.

Unlike the ``bench_fig*`` reproduction harnesses these use pytest-benchmark
conventionally (many rounds) to track the performance of the pieces a
user actually runs: factor construction, damped inversion, the fusion
planner DP, LBP, topology-derived cost-model evaluation, and the
simulator engine itself.
"""

import numpy as np
import pytest

from repro.core.factors import conv_factor_A, linear_factor_A
from repro.core.fusion import plan_optimal_fusion
from repro.core.kfac import damped_inverse
from repro.core.placement import lbp_placement
from repro.models import get_model_spec, resnet50_spec
from repro.nn import Conv2d
from repro.perf import paper_cluster_profile, topology_profile
from repro.plan import Session, build_strategy_graph, clear_caches
from repro.sim import simulate
from repro.topo import multi_rack


@pytest.fixture(scope="module")
def profile():
    return paper_cluster_profile()


def test_damped_inverse_d256(benchmark):
    rng = np.random.default_rng(0)
    root = rng.normal(size=(256, 256))
    spd = root @ root.T / 256 + np.eye(256)
    benchmark(damped_inverse, spd, 1e-2)


def test_linear_factor_a(benchmark):
    rng = np.random.default_rng(0)
    x = rng.normal(size=(256, 512))
    benchmark(linear_factor_A, x, True)


def test_conv_factor_a(benchmark):
    rng = np.random.default_rng(0)
    layer = Conv2d(16, 32, kernel_size=3, padding=1, rng=0)
    x = rng.normal(size=(8, 16, 16, 16))
    benchmark(conv_factor_A, x, layer)


def test_optimal_fusion_planner_resnet152(benchmark, profile):
    spec = get_model_spec("ResNet-152")
    sizes = [layer.a_elements for layer in spec.layers]
    avail = list(np.cumsum(np.full(len(sizes), 2e-3)))
    benchmark(plan_optimal_fusion, sizes, avail, profile.allreduce_streamed)


def test_lbp_planner_densenet201(benchmark, profile):
    spec = get_model_spec("DenseNet-201")
    dims = spec.factor_dims()
    benchmark(
        lbp_placement, dims, 64, profile.inverse_actual, profile.broadcast_streamed
    )


def test_topology_hierarchical_allreduce_fig11_grid(benchmark):
    """Derive a multi-rack hierarchical profile and price the fig11 grid.

    This is the per-cell hot path of the ``ext_topology`` sweep: build
    the topology, derive the collective cost models, and evaluate the
    hierarchical all-reduce across the paper's factor-dimension grid.
    """
    dims = (64, 256, 512, 1024, 2048, 3072, 4096, 6144, 8192)

    def run():
        topo = multi_rack(4, 4, 4, intra="nvlink", inter="ib", spine="ethernet")
        p = topology_profile(topo, "hierarchical")
        return sum(p.allreduce.time_symmetric(d) for d in dims)

    total = benchmark(run)
    assert total > 0


def test_simulator_spd_kfac_resnet50_64gpu(benchmark, profile):
    """Build + simulate a full 64-GPU SPD-KFAC iteration (~25k tasks)."""
    spec = resnet50_spec()

    def run():
        return simulate(build_strategy_graph(spec, profile, "SPD-KFAC")).makespan

    makespan = benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=0)
    assert makespan > 0


def test_obs_overhead(benchmark, profile):
    """Disabled-instrumentation overhead on the 64-GPU simulate bench.

    ``simulate()`` is the instrumented wrapper (its disabled fast path is
    one recorder-enabled attribute check before delegating to the raw
    ``_simulate`` impl).  With the recorder off, the wrapper must cost
    <2% over the impl on a full SPD-KFAC ResNet-50@64 iteration — the
    observability layer is free unless someone is looking.
    """
    import time

    from repro.obs import recorder
    from repro.sim.engine import _simulate

    assert not recorder().enabled
    graph = build_strategy_graph(resnet50_spec(), profile, "SPD-KFAC")
    simulate(graph)  # warm the cached wave plan; both paths then share it

    raw_best = wrapped_best = float("inf")
    for _ in range(7):  # interleaved min-of-7: immune to drift and spikes
        t0 = time.perf_counter()
        _simulate(graph, None)
        raw_best = min(raw_best, time.perf_counter() - t0)
        t0 = time.perf_counter()
        simulate(graph)
        wrapped_best = min(wrapped_best, time.perf_counter() - t0)
    overhead = wrapped_best / raw_best - 1.0
    print(f"\ndisabled-obs overhead: {overhead * 100:+.2f}% "
          f"({wrapped_best * 1e3:.2f} vs {raw_best * 1e3:.2f} ms)", end=" ")
    # 1e-4 s absolute floor keeps scheduler noise from failing the 2% bar.
    assert wrapped_best <= raw_best * 1.02 + 1e-4, (
        f"disabled instrumentation costs {overhead * 100:.2f}% "
        f"({wrapped_best:.6f}s wrapped vs {raw_best:.6f}s raw)"
    )

    makespan = benchmark.pedantic(
        lambda: simulate(graph).makespan, rounds=2, iterations=1, warmup_rounds=0
    )
    assert makespan > 0


def test_autotune_full_grid_resnet50_64gpu(benchmark, profile):
    """Full-grid autotune of ResNet-50 on the paper's 64-GPU testbed.

    The acceptance bar: a cold full-grid search (72 candidates, pruning
    by lower bound, presets first) must finish in under 10 s, and the
    warm search — everything served from the shared Session cache — is
    the benchmarked path (what a sweep pays per revisited cell).
    """
    import time

    from repro.autotune import autotune

    clear_caches()
    t0 = time.perf_counter()
    cold = autotune(resnet50_spec(), profile)
    cold_seconds = time.perf_counter() - t0
    print(f"\ncold full-grid autotune: {cold_seconds:.2f} s "
          f"({cold.stats['simulated']} simulated, {cold.stats['pruned']} pruned)",
          end=" ")
    assert cold_seconds < 10.0, f"cold full-grid search took {cold_seconds:.2f}s"
    assert cold.best.iteration_time <= cold.best_preset[1]

    warm = benchmark(autotune, resnet50_spec(), profile)
    assert warm.best.iteration_time == cold.best.iteration_time


def test_autotune_bnb_resnet50_64gpu(benchmark, profile):
    """Branch-and-bound autotune over the precision-extended grid on the
    paper's 64-GPU testbed: 864 candidates, 12x the default 72.

    The acceptance bar: the *cold* best-first search over the extended
    grid must finish under the same 10 s the 72-candidate exhaustive
    grid gets — subtree pruning against the incumbent discards most
    leaf families unsimulated, and the survivors are priced through
    shape-batched scheduling passes.  The benchmarked path is the warm
    search; the subtree-pruned leaf count is published via
    ``extra_info`` so the snapshot gate watches pruning effectiveness
    (``::nodes-pruned``), not just wall-clock.
    """
    import time

    from repro.autotune import autotune

    kwargs = dict(
        search="bnb",
        wire_dtypes=[("fp32", "fp32", "fp32"), ("fp32", "fp16", "fp16")],
        compressions=[1.0, 0.1],
        intervals=[(1, 1), (1, 4), (4, 16)],
    )
    clear_caches()
    t0 = time.perf_counter()
    cold = autotune(resnet50_spec(), profile, **kwargs)
    cold_seconds = time.perf_counter() - t0
    nodes = cold.telemetry["nodes"]
    print(f"\ncold bnb autotune (864 candidates): {cold_seconds:.2f} s "
          f"({cold.stats['simulated']} simulated, {cold.stats['pruned']} pruned, "
          f"{nodes['subtrees_pruned']} subtrees cut)",
          end=" ")
    assert cold.stats["candidates"] == 864
    assert cold_seconds < 10.0, f"cold bnb search took {cold_seconds:.2f}s"
    assert cold.best.iteration_time <= cold.best_preset[1]

    def run():
        return autotune(resnet50_spec(), profile, **kwargs)

    warm = benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=0)
    assert warm.best.iteration_time == cold.best.iteration_time
    benchmark.extra_info["nodes-pruned_count"] = warm.stats["pruned"]


def test_autotune_comm_schemes_resnet50_64gpu(benchmark, profile):
    """Branch-and-bound autotune over the three-scheme communication
    grid on the paper's 64-GPU testbed: 198 candidates (72 per scheme,
    minus the 18 excluded ``mem_opt`` x ``non_dist`` points).

    The acceptance bar matches the other autotune benches: the *cold*
    search over the comm-scheme-extended grid must clear the same 10 s
    bar as the paper's 72-candidate grid.  On this fabric ``mem_opt``
    supplies the incumbent early (its per-layer preconditioned-gradient
    broadcasts beat the packed inverse volume on every paper model), so
    the paper/comm_opt subtrees are mostly priced by bound only.
    """
    import time

    from repro.autotune import autotune
    from repro.plan.strategy import COMM_SCHEMES

    kwargs = dict(search="bnb", comm_schemes=list(COMM_SCHEMES))
    clear_caches()
    t0 = time.perf_counter()
    cold = autotune(resnet50_spec(), profile, **kwargs)
    cold_seconds = time.perf_counter() - t0
    print(f"\ncold comm-scheme bnb autotune (198 candidates): "
          f"{cold_seconds:.2f} s ({cold.stats['simulated']} simulated, "
          f"{cold.stats['pruned']} pruned)",
          end=" ")
    assert cold.stats["candidates"] == 198
    assert cold_seconds < 10.0, f"cold comm-scheme search took {cold_seconds:.2f}s"
    assert cold.best.iteration_time <= cold.best_preset[1]
    assert cold.best.strategy.comm_scheme == "mem_opt"

    def run():
        return autotune(resnet50_spec(), profile, **kwargs)

    warm = benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=0)
    assert warm.best.iteration_time == cold.best.iteration_time


def test_robust_autotune_resnet50_64gpu(benchmark, profile):
    """Full-grid p95-robust autotune (N=32 scenario samples) on the
    paper's 64-GPU testbed.

    Every simulated candidate is additionally priced across 32 seeded
    straggler samples, batched through ``simulate_batch`` — one
    scheduling pass per candidate, not 32.  The acceptance bar: the
    cold robust search must finish in under 30 s; the benchmarked path
    is the warm search (plans cached, samples re-priced), which is what
    a scenario sweep pays per revisited cell.
    """
    import time

    from repro.autotune import autotune

    clear_caches()
    t0 = time.perf_counter()
    cold = autotune(resnet50_spec(), profile, scenario="stragglers", samples=32)
    cold_seconds = time.perf_counter() - t0
    print(f"\ncold robust full-grid autotune: {cold_seconds:.2f} s "
          f"({cold.stats['simulated']} simulated x "
          f"{cold.stats['samples']} samples)",
          end=" ")
    assert cold_seconds < 30.0, f"cold robust search took {cold_seconds:.2f}s"
    assert cold.objective == "p95"
    assert cold.best.robust.p95 >= cold.best.iteration_time

    def run():
        return autotune(resnet50_spec(), profile, scenario="stragglers", samples=32)

    warm = benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=0)
    assert warm.best.robust.p95 == cold.best.robust.p95


def test_session_plan_cache(benchmark, profile):
    """Cached SPD-KFAC/ResNet-50/64-GPU plan lookup via the Session cache.

    The cold plan (resolve fusion + placement, build ~25k tasks,
    simulate) is paid once in setup and printed for reference; the
    benchmarked path is what every sweep cell after the first pays.
    """
    import time

    clear_caches()
    session = Session(resnet50_spec(), profile)
    t0 = time.perf_counter()
    cold_plan = session.plan("SPD-KFAC")
    cold_seconds = time.perf_counter() - t0
    print(f"\ncold plan: {cold_seconds * 1e3:.1f} ms", end=" ")

    cached_plan = benchmark(session.plan, "SPD-KFAC")
    assert cached_plan is cold_plan
    assert cold_seconds > 0


def test_serve_load_resnet50_64gpu(benchmark):
    """1000 mixed queries against the plan server, 8 concurrent clients.

    Boots a real ``PlanServer`` (ephemeral port, disk store in a temp
    dir), warms it with one pass over the distinct-query pool, then the
    benchmarked path is a full warm load-test round: 1000 seeded
    plan/simulate/autotune requests fired from 8 client threads.  The
    snapshot tracks the aggregate round time plus per-request p50/p99
    (harvested from ``extra_info`` into ``::p50``/``::p99`` sub-entries
    by ``benchmarks/snapshot.py``); the acceptance bar is the warm
    per-request p99.
    """
    import tempfile

    from repro.plan import set_plan_store
    from repro.serve import PlanServer, run_load_test

    clear_caches()
    reports = []
    with tempfile.TemporaryDirectory(prefix="bench-serve-") as tmp, PlanServer(
        store=f"{tmp}/store"
    ) as server:
        # Warm pass: one single-threaded sweep of the distinct-query pool
        # populates the Session LRU and the disk store.
        run_load_test(server.host, server.port, queries=1, concurrency=1)

        def run():
            report = run_load_test(
                server.host,
                server.port,
                queries=1000,
                concurrency=8,
                seed=42,
                warmup=False,
            )
            reports.append(report)
            return report

        benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=0)
    report = reports[-1]
    assert report.errors == 0
    assert report.completed == 1000
    p50, p99 = report.percentile(0.50), report.percentile(0.99)
    print(
        f"\nwarm serve load: p50 {p50 * 1e3:.2f} ms, p99 {p99 * 1e3:.2f} ms, "
        f"{report.throughput:.0f} req/s",
        end=" ",
    )
    # Warm queries are cache/store lookups; even under 8-way contention a
    # request must answer well inside interactive latency.
    assert p99 < 0.25, f"warm p99 {p99 * 1e3:.1f} ms exceeds the 250 ms bound"
    benchmark.extra_info["p50_s"] = p50
    benchmark.extra_info["p99_s"] = p99
    benchmark.extra_info["throughput_rps"] = report.throughput
    clear_caches()
    set_plan_store(None)
