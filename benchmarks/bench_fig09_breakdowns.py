"""Fig. 9: per-phase breakdowns of the three D-KFAC variants."""

from benchmarks.conftest import one_row, run_experiment
from repro.experiments.base import PAPER_MODEL_NAMES


def test_fig09_breakdowns(benchmark):
    result = run_experiment(benchmark, "fig9")
    for name in PAPER_MODEL_NAMES:
        d = one_row(result, model=name, algorithm="D-KFAC")
        mpd = one_row(result, model=name, algorithm="MPD-KFAC")
        spd = one_row(result, model=name, algorithm="SPD-KFAC")
        assert spd["FactorComm"] < d["FactorComm"]  # pipelining hides it
        assert mpd["InverseComp"] < d["InverseComp"]  # model parallelism
        assert mpd["InverseComm"] > spd["InverseComm"]  # LBP avoids bcasts
