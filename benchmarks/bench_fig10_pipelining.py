"""Fig. 10: factor computation/communication pipelining strategies."""

from benchmarks.conftest import rows_by, run_experiment
from repro.experiments.base import PAPER_MODEL_NAMES


def test_fig10_pipelining(benchmark):
    result = run_experiment(benchmark, "fig10")
    for name in PAPER_MODEL_NAMES:
        totals = {r["strategy"]: r["total"] for r in rows_by(result, model=name)}
        assert totals["LW w/o TF"] == max(totals.values())
        assert totals["SP w/ OTF"] <= min(totals.values()) * 1.01
