"""Fig. 7: all-reduce / broadcast communication model calibration."""

import pytest

from benchmarks.conftest import run_experiment


def test_fig07_comm_models(benchmark):
    result = run_experiment(benchmark, "fig7")
    for row in result.rows:
        assert row["alpha"] == pytest.approx(row["paper_alpha"], rel=0.25)
        assert row["beta"] == pytest.approx(row["paper_beta"], rel=0.1)
        assert row["R2"] > 0.99
