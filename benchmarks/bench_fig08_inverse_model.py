"""Fig. 8: inverse computation-time model (real Cholesky measurements)."""

from benchmarks.conftest import run_experiment


def test_fig08_inverse_model(benchmark):
    result = run_experiment(benchmark, "fig8")
    measured = result.column("measured(s)")
    assert measured == sorted(measured)  # strictly growing cost with d
    r2 = float(result.notes[0].split("R2=")[1].split(" ")[0].rstrip(","))
    assert r2 > 0.8
