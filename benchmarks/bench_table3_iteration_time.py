"""Table III: wall-clock iteration times and SP1/SP2 speedups."""

from benchmarks.conftest import one_row, run_experiment


def test_table3_iteration_time(benchmark):
    result = run_experiment(benchmark, "tab3")
    for row in result.rows:
        assert row["SPD-KFAC"] < min(row["D-KFAC"], row["MPD-KFAC"])
        assert row["SP1"] > 1.05 and row["SP2"] > 1.05
    densenet = one_row(result, model="DenseNet-201")
    assert densenet["MPD-KFAC"] > densenet["D-KFAC"]  # the paper's inversion
