"""Fig. 13 / Table IV: ablation of pipelining and LBP."""

from benchmarks.conftest import run_experiment


def test_fig13_ablation(benchmark):
    result = run_experiment(benchmark, "fig13")
    for row in result.rows:
        base = row["-Pipe-LBP"]
        assert row["+Pipe-LBP"] < base
        assert row["-Pipe+LBP"] < base
        assert row["+Pipe+LBP"] <= min(row["+Pipe-LBP"], row["-Pipe+LBP"])
