#!/usr/bin/env python
"""Benchmark-snapshot harness: run ``bench_kernels.py``, record, compare.

Runs the kernel micro-benchmark suite under pytest-benchmark, distills
each benchmark's median time into the stable snapshot schema of
:mod:`repro.perf.regression`, writes it to ``BENCH_kernels.json`` at the
repository root, and — when a previous snapshot exists — prints a
per-benchmark before/after table so speedups and regressions are visible
PR-over-PR.

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/snapshot.py
    PYTHONPATH=src python benchmarks/snapshot.py --output BENCH_kernels.json
    PYTHONPATH=src python benchmarks/snapshot.py --check   # exit 1 on regression

See ``benchmarks/README.md`` for the full workflow.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from typing import Dict

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.perf.regression import (  # noqa: E402  (path bootstrap above)
    BenchmarkResult,
    compare_snapshots,
    format_comparison,
    has_regressions,
    load_snapshot,
    make_snapshot,
    save_snapshot,
)

DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_kernels.json")
SUITE = os.path.join(REPO_ROOT, "benchmarks", "bench_kernels.py")


def run_suite() -> Dict[str, BenchmarkResult]:
    """Run bench_kernels.py under pytest-benchmark; return per-test medians."""
    with tempfile.TemporaryDirectory() as tmp:
        report = os.path.join(tmp, "benchmark.json")
        env = dict(os.environ)
        src = os.path.join(REPO_ROOT, "src")
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "pytest",
                SUITE,
                "--benchmark-only",
                f"--benchmark-json={report}",
                "-q",
            ],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0:
            sys.stderr.write(proc.stdout)
            sys.stderr.write(proc.stderr)
            raise SystemExit(f"bench_kernels.py run failed with exit code {proc.returncode}")
        with open(report) as f:
            payload = json.load(f)
    results: Dict[str, BenchmarkResult] = {}
    for bench in payload["benchmarks"]:
        name = bench["name"]
        stats = bench["stats"]
        results[name] = BenchmarkResult(
            name=name, seconds=float(stats["median"]), rounds=int(stats["rounds"])
        )
        # Benchmarks can publish extra tracked metrics via
        # benchmark.extra_info: every "<metric>_s" float becomes its own
        # "<name>::<metric>" entry (the serve load test's per-request
        # p50/p99), and every "<metric>_count" becomes a dimensionless
        # "<name>::<metric>" entry (the BnB autotuner's pruned-leaf
        # count), so the gate watches tail latency and search
        # effectiveness, not just round time.
        for key, value in bench.get("extra_info", {}).items():
            if not isinstance(value, (int, float)):
                continue
            if key.endswith("_s"):
                sub = f"{name}::{key[:-2]}"
            elif key.endswith("_count"):
                sub = f"{name}::{key[: -len('_count')]}"
            else:
                continue
            results[sub] = BenchmarkResult(
                name=sub, seconds=float(value), rounds=int(stats["rounds"])
            )
    if not results:
        raise SystemExit("bench_kernels.py produced no benchmark records")
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        default=DEFAULT_OUTPUT,
        help=f"snapshot path to write and compare against (default: {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit with status 1 if any benchmark regressed beyond the noise threshold",
    )
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="only compare against the existing snapshot; do not overwrite it",
    )
    args = parser.parse_args(argv)

    previous = None
    if os.path.exists(args.output):
        previous = load_snapshot(args.output)

    results = run_suite()
    snapshot = make_snapshot(results, suite="bench_kernels")

    if previous is not None:
        rows = compare_snapshots(previous, snapshot)
        print(f"comparison against previous snapshot {args.output}:")
        print(format_comparison(rows))
    else:
        rows = []
        print(f"no previous snapshot at {args.output}; recording baseline")
        for name in sorted(results):
            print(f"  {name}: {results[name].seconds:.6f} s")

    regressed = args.check and has_regressions(rows)
    if not args.no_write:
        if regressed:
            # Keep the reference intact so a re-run still sees the regression.
            print(f"regression detected; leaving {args.output} unchanged")
        else:
            save_snapshot(args.output, snapshot)
            print(f"wrote {args.output}")

    if regressed:
        print("benchmark regressions detected", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
