"""Fig. 11: inverse-compute vs broadcast-communication crossover."""

from benchmarks.conftest import run_experiment


def test_fig11_crossover(benchmark):
    result = run_experiment(benchmark, "fig11")
    crossover = int(result.notes[0].split("d ~= ")[1].split(":")[0])
    assert 3000 < crossover < 4500
    small = [r for r in result.rows if r["d"] <= 1024]
    assert all(r["cheaper"] == "compute (NCT)" for r in small)
