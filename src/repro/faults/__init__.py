"""Fault-aware simulation: stragglers, preemption, and elastic clusters.

The planner and simulator price a noise-free iteration on a fixed
cluster; this package layers deterministic, seeded fault scenarios on
top without touching either:

* :mod:`repro.faults.scenario` — declarative :class:`FaultScenario`
  values (straggler jitter, preemption events/rates) with stable
  digests for plan-cache keys;
* :mod:`repro.faults.perturb` — vectorized duration perturbation over
  the columnar graph layout, batched through
  :func:`repro.sim.simulate_batch`;
* :mod:`repro.faults.checkpoint` — checkpoint/restart economics with
  the analytic Young/Daly-optimal interval;
* :mod:`repro.faults.elastic` — world-size changes priced as a re-plan
  (through the shared :class:`~repro.plan.Session` cache) plus a state
  transition on a :class:`~repro.comm.TrafficCounter`.

Scenarios plug into :class:`repro.plan.Session` (``scenario=...``) and
:func:`repro.autotune.autotune` (``objective="p95", scenario=...``).
"""

from repro.faults.scenario import (
    SCENARIO_PRESETS,
    FaultEvent,
    FaultScenario,
    PreemptionSpec,
    StragglerSpec,
    named_scenario,
    scenario_preset_names,
)
from repro.faults.perturb import (
    perturb_durations,
    perturb_durations_many,
    run_faulted_phase_iterations,
    sample_iteration_times,
    sample_makespans,
    simulate_faulted,
    simulate_faulted_many,
    straggler_factors,
)
from repro.faults.checkpoint import (
    CheckpointPolicy,
    FaultRunReport,
    checkpoint_write_cost,
    default_policy,
    expected_overhead_rate,
    optimal_checkpoint_interval,
    price_events,
    scenario_overhead_rate,
    simulate_checkpoint_run,
)
from repro.faults.elastic import (
    ElasticRunReport,
    ElasticTransition,
    price_elastic_run,
    replan,
    transition_time,
    transition_traffic,
)

__all__ = [
    "FaultScenario",
    "StragglerSpec",
    "FaultEvent",
    "PreemptionSpec",
    "SCENARIO_PRESETS",
    "named_scenario",
    "scenario_preset_names",
    "perturb_durations",
    "perturb_durations_many",
    "straggler_factors",
    "simulate_faulted",
    "simulate_faulted_many",
    "sample_makespans",
    "sample_iteration_times",
    "run_faulted_phase_iterations",
    "CheckpointPolicy",
    "FaultRunReport",
    "checkpoint_write_cost",
    "optimal_checkpoint_interval",
    "expected_overhead_rate",
    "default_policy",
    "price_events",
    "scenario_overhead_rate",
    "simulate_checkpoint_run",
    "ElasticTransition",
    "ElasticRunReport",
    "replan",
    "price_elastic_run",
    "transition_traffic",
    "transition_time",
]
