"""Elastic world-size changes: re-plan mid-run and price the transition.

When a cluster grows or shrinks, the run re-plans at the new world size
(bucket boundaries, factor fusion, inverse placement all change) and
pays a one-off state transition before the first new-size iteration:

* **parameter redistribution** — every rank needs the current parameter
  vector (joining ranks have nothing; after a shrink the new root
  re-broadcasts to re-establish bitwise agreement);
* **factor state** — K-FAC's running Kronecker factor estimates are
  re-broadcast so joiners do not restart their EMA from zero;
* **inverse re-placement** — inverses live where the placement put
  them, and the new placement is computed for the new world size, so
  every inverse moves to (at worst) a new owner.

Each component is recorded on a :class:`~repro.comm.TrafficCounter`
(bytes that actually cross the wire) and priced with the *new*
profile's streamed-broadcast model.  Re-planning goes through
:class:`~repro.plan.Session`, so repeated transitions between the same
sizes hit the shared plan cache.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from repro.comm.group import TrafficCounter
from repro.perf.models import symmetric_elements
from repro.plan.plan import Plan
from repro.plan.session import ClusterLike, Session, resolve_strategy
from repro.plan.strategy import TrainingStrategy

#: TrafficCounter op labels of the three transition components.
PARAM_REDISTRIBUTION = "transition.params"
FACTOR_STATE_SYNC = "transition.factors"
INVERSE_REPLACEMENT = "transition.inverses"


def transition_traffic(spec, strategy: TrainingStrategy) -> TrafficCounter:
    """Wire traffic of one elastic transition for ``spec``/``strategy``.

    Parameters always move; factor and inverse state only exist for
    second-order strategies (and inverses only when the strategy solves
    them explicitly).  Dtypes follow the strategy's wire axes.
    """
    counter = TrafficCounter()
    counter.record(PARAM_REDISTRIBUTION, spec.num_params)
    if strategy.second_order:
        factor_elements = sum(symmetric_elements(d) for d in spec.factor_dims())
        counter.record(FACTOR_STATE_SYNC, factor_elements)
        if strategy.include_solve:
            counter.record(INVERSE_REPLACEMENT, factor_elements)
    return counter


def transition_time(profile, traffic: TrafficCounter) -> float:
    """Seconds the transition's broadcasts take on ``profile``.

    Each component is one streamed broadcast on the new cluster (the
    transition happens *after* the resize, on the surviving fabric).
    """
    return sum(
        profile.broadcast_streamed.time(elements)
        for elements in traffic.elements.values()
    )


@dataclass(frozen=True)
class ElasticTransition:
    """One re-plan: old cluster -> new cluster for a fixed strategy."""

    model: str
    strategy: TrainingStrategy
    old_plan: Plan
    new_plan: Plan
    old_time: float  #: per-iteration seconds before the resize
    new_time: float  #: per-iteration seconds after the resize
    traffic: TrafficCounter
    transition_time: float  #: one-off seconds to move state

    @property
    def old_world_size(self) -> int:
        """Ranks before the resize."""
        return self.old_plan.num_ranks

    @property
    def new_world_size(self) -> int:
        """Ranks after the resize."""
        return self.new_plan.num_ranks

    def break_even_iterations(self) -> float:
        """Iterations until the transition cost is recovered.

        Finite only when the new plan is faster per iteration (growing
        the cluster); ``inf`` for shrinks, where the transition is
        forced rather than chosen.
        """
        gain = self.old_time - self.new_time
        if gain <= 0:
            return math.inf
        return self.transition_time / gain

    def describe(self) -> str:
        """Multi-line human-readable summary of the transition."""
        lines = [
            f"elastic transition: {self.model} x {self.strategy.name}, "
            f"{self.old_world_size} -> {self.new_world_size} ranks",
            f"  iteration time: {self.old_time * 1e3:.2f} ms -> "
            f"{self.new_time * 1e3:.2f} ms",
            f"  transition: {self.transition_time * 1e3:.2f} ms, "
            f"{self.traffic.total_bytes() / 1e6:.1f} MB moved",
        ]
        breakeven = self.break_even_iterations()
        if math.isfinite(breakeven):
            lines.append(f"  break-even after {breakeven:.1f} iterations")
        else:
            lines.append("  no break-even (new plan is not faster per iteration)")
        return "\n".join(lines)


def replan(
    model: str,
    strategy: Union[str, TrainingStrategy],
    old_cluster: ClusterLike,
    new_cluster: ClusterLike,
    scenario=None,
) -> ElasticTransition:
    """Re-plan ``strategy`` at a new world size and price the transition.

    Builds one :class:`~repro.plan.Session` per cluster (both share the
    module-level plan cache, so repeated resizes between the same sizes
    replan for free) and prices the state movement on the new cluster's
    profile.  ``scenario`` makes both sides price under the same fault
    scenario.
    """
    strategy = resolve_strategy(strategy)
    old_session = Session(model, old_cluster, scenario=scenario)
    new_session = Session(model, new_cluster, scenario=scenario)
    old_plan = old_session.plan(strategy)
    new_plan = new_session.plan(strategy)
    traffic = transition_traffic(old_session.spec, strategy)
    return ElasticTransition(
        model=old_session.model,
        strategy=strategy,
        old_plan=old_plan,
        new_plan=new_plan,
        old_time=old_plan.predicted_makespan,
        new_time=new_plan.predicted_makespan,
        traffic=traffic,
        transition_time=transition_time(
            new_session.profile_for(strategy), traffic
        ),
    )


@dataclass(frozen=True)
class ElasticRunReport:
    """End-to-end price of a run whose world size changes mid-training."""

    model: str
    strategy: TrainingStrategy
    segments: Tuple[Tuple[int, int, float], ...]  #: (world, iterations, iter seconds)
    transitions: Tuple[ElasticTransition, ...]

    @property
    def training_time(self) -> float:
        """Seconds spent in actual iterations across every segment."""
        return sum(iters * t for _, iters, t in self.segments)

    @property
    def transition_time(self) -> float:
        """Seconds spent moving state between segments."""
        return sum(t.transition_time for t in self.transitions)

    @property
    def total_time(self) -> float:
        """Wall-clock seconds: training plus transitions."""
        return self.training_time + self.transition_time

    def describe(self) -> str:
        """Multi-line human-readable summary of the elastic run."""
        lines = [f"elastic run: {self.model} x {self.strategy.name}"]
        for world, iters, t in self.segments:
            lines.append(
                f"  {iters} iterations @ {world} ranks x {t * 1e3:.2f} ms"
            )
        lines.append(
            f"  total {self.total_time:.2f} s "
            f"({self.transition_time * 1e3:.2f} ms in "
            f"{len(self.transitions)} transition(s))"
        )
        return "\n".join(lines)


def price_elastic_run(
    model: str,
    strategy: Union[str, TrainingStrategy],
    segments: Sequence[Tuple[ClusterLike, int]],
    scenario=None,
) -> ElasticRunReport:
    """Price a training run across a sequence of ``(cluster, iterations)``
    segments, charging one transition between each consecutive pair."""
    if not segments:
        raise ValueError("segments must be non-empty")
    strategy = resolve_strategy(strategy)
    seg_rows: List[Tuple[int, int, float]] = []
    transitions: List[ElasticTransition] = []
    model_name: Optional[str] = None
    for idx, (cluster, iterations) in enumerate(segments):
        if iterations < 0:
            raise ValueError(f"iterations must be >= 0, got {iterations}")
        session = Session(model, cluster, scenario=scenario)
        model_name = session.model
        plan = session.plan(strategy)
        seg_rows.append((plan.num_ranks, iterations, plan.predicted_makespan))
        if idx > 0:
            transitions.append(
                replan(model, strategy, segments[idx - 1][0], cluster, scenario)
            )
    assert model_name is not None
    return ElasticRunReport(
        model=model_name,
        strategy=strategy,
        segments=tuple(seg_rows),
        transitions=tuple(transitions),
    )
