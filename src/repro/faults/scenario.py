"""Fault scenarios: seeded, declarative descriptions of cluster trouble.

A :class:`FaultScenario` is a frozen value object describing what goes
wrong during a training run — per-rank compute stragglers, a timeline of
deterministic preemption events, and/or a stochastic preemption rate —
plus a base seed that makes every derived sample reproducible.  The
scenario itself never touches a graph; :mod:`repro.faults.perturb` turns
it into perturbed duration vectors and :mod:`repro.faults.checkpoint`
prices its failure events.

Two invariants keep the rest of the stack sound:

* **Straggler factors are clamped at 1.0** — stragglers only ever slow a
  rank down.  Every perturbed duration is therefore >= its nominal
  value, makespans are monotone in durations, and the autotuner's
  nominal lower bounds remain valid lower bounds on *every* perturbed
  sample (see :func:`repro.autotune.scenario_adjusted_bound`).
* **All randomness flows from ``seed``** via ``numpy.random.Generator``
  with a fixed draw order, so a scenario plus a seed is bit-reproducible
  across runs, and :meth:`FaultScenario.digest` can serve as a plan
  cache key component.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.utils.rng import new_rng

STRAGGLER_DISTRIBUTIONS = ("lognormal", "uniform")


@dataclass(frozen=True)
class StragglerSpec:
    """Per-rank multiplicative compute jitter.

    Each sample draws one slowdown factor per rank: with probability
    ``prob`` the rank is afflicted and its factor is drawn from
    ``distribution`` (then clamped at 1.0 — stragglers never speed a
    rank up); otherwise the factor is exactly 1.0.  ``sigma`` is the
    log-normal shape parameter, or the width of the uniform band
    ``[1, 1 + sigma]``.
    """

    distribution: str = "lognormal"
    sigma: float = 0.25
    prob: float = 1.0

    def __post_init__(self) -> None:
        if self.distribution not in STRAGGLER_DISTRIBUTIONS:
            raise ValueError(
                f"unknown straggler distribution {self.distribution!r}; "
                f"choose from {STRAGGLER_DISTRIBUTIONS}"
            )
        if self.sigma <= 0:
            raise ValueError(f"sigma must be > 0, got {self.sigma}")
        if not 0.0 < self.prob <= 1.0:
            raise ValueError(f"prob must be in (0, 1], got {self.prob}")

    def min_factor(self) -> float:
        """Smallest slowdown factor any rank can receive (always 1.0).

        The clamp below is what keeps nominal lower bounds valid on
        every perturbed sample, so this is an invariant, not a detail.
        """
        return 1.0

    def sample_factors(self, num_ranks: int, rng: np.random.Generator) -> np.ndarray:
        """One slowdown factor per rank, >= 1.0, drawn in a fixed order.

        The afflicted mask and the raw factors are always both drawn
        (mask first), so the stream position after a call depends only
        on ``num_ranks`` — never on which ranks happened to straggle.
        """
        afflicted = rng.random(num_ranks) < self.prob
        if self.distribution == "lognormal":
            raw = np.exp(self.sigma * rng.standard_normal(num_ranks))
        else:  # uniform
            raw = 1.0 + self.sigma * rng.random(num_ranks)
        factors = np.maximum(raw, 1.0)
        return np.where(afflicted, factors, 1.0)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form used by scenario digests and serialization."""
        return {
            "distribution": self.distribution,
            "sigma": self.sigma,
            "prob": self.prob,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "StragglerSpec":
        """Inverse of :meth:`to_dict`."""
        return cls(**payload)


@dataclass(frozen=True)
class FaultEvent:
    """One deterministic preemption: ``rank`` dies after ``time`` seconds
    of useful training work and rejoins ``downtime`` seconds later.

    ``time`` is measured in *work* seconds (progress through the run,
    excluding checkpoint and recovery overhead), which keeps event
    pricing independent of the checkpoint policy being evaluated.
    """

    rank: int
    time: float
    downtime: float

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError(f"rank must be >= 0, got {self.rank}")
        if self.time < 0:
            raise ValueError(f"time must be >= 0, got {self.time}")
        if self.downtime < 0:
            raise ValueError(f"downtime must be >= 0, got {self.downtime}")

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form used by scenario digests and serialization."""
        return {"rank": self.rank, "time": self.time, "downtime": self.downtime}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultEvent":
        """Inverse of :meth:`to_dict`."""
        return cls(**payload)


@dataclass(frozen=True)
class PreemptionSpec:
    """Stochastic preemption pressure: whole-cluster mean time between
    failures (seconds of work) and the per-event restart downtime."""

    mtbf: float
    downtime: float = 120.0

    def __post_init__(self) -> None:
        if self.mtbf <= 0:
            raise ValueError(f"mtbf must be > 0, got {self.mtbf}")
        if self.downtime < 0:
            raise ValueError(f"downtime must be >= 0, got {self.downtime}")

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form used by scenario digests and serialization."""
        return {"mtbf": self.mtbf, "downtime": self.downtime}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "PreemptionSpec":
        """Inverse of :meth:`to_dict`."""
        return cls(**payload)


@dataclass(frozen=True)
class FaultScenario:
    """A named, seeded bundle of fault behaviour for one simulated run.

    Combine any of: ``straggler`` jitter applied to every iteration,
    a deterministic ``events`` timeline of preemptions, and a stochastic
    ``preemption`` rate used for amortized checkpoint/restart overhead.
    ``seed`` anchors all sampling; :meth:`sample_seeds` derives the
    per-sample sub-seeds deterministically.
    """

    name: str = "scenario"
    straggler: Optional[StragglerSpec] = None
    events: Tuple[FaultEvent, ...] = ()
    preemption: Optional[PreemptionSpec] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            if not isinstance(event, FaultEvent):
                raise TypeError(f"events must be FaultEvent instances, got {event!r}")

    def min_compute_factor(self) -> float:
        """Lower bound on every compute slowdown factor (>= 1.0)."""
        return self.straggler.min_factor() if self.straggler else 1.0

    def sample_seeds(self, count: int) -> List[int]:
        """``count`` deterministic per-sample seeds derived from ``seed``."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        rng = new_rng(self.seed)
        return [int(s) for s in rng.integers(0, 2**63 - 1, size=count)]

    def to_dict(self) -> Dict[str, Any]:
        """Canonical plain-dict form (digest input and serialization)."""
        return {
            "name": self.name,
            "straggler": self.straggler.to_dict() if self.straggler else None,
            "events": [event.to_dict() for event in self.events],
            "preemption": self.preemption.to_dict() if self.preemption else None,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultScenario":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=payload["name"],
            straggler=(
                StragglerSpec.from_dict(payload["straggler"])
                if payload.get("straggler")
                else None
            ),
            events=tuple(
                FaultEvent.from_dict(e) for e in payload.get("events", ())
            ),
            preemption=(
                PreemptionSpec.from_dict(payload["preemption"])
                if payload.get("preemption")
                else None
            ),
            seed=payload.get("seed", 0),
        )

    def digest(self) -> str:
        """Stable 16-hex-char content hash, usable in plan-cache keys."""
        payload = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def describe(self) -> str:
        """One-line human-readable summary."""
        parts = []
        if self.straggler:
            s = self.straggler
            parts.append(
                f"stragglers({s.distribution}, sigma={s.sigma:g}, prob={s.prob:g})"
            )
        if self.events:
            parts.append(f"{len(self.events)} preemption event(s)")
        if self.preemption:
            parts.append(
                f"preemption(mtbf={self.preemption.mtbf:g}s, "
                f"downtime={self.preemption.downtime:g}s)"
            )
        body = " + ".join(parts) if parts else "no faults"
        return f"{self.name}: {body} [seed={self.seed}]"


SCENARIO_PRESETS: Dict[str, FaultScenario] = {
    "stragglers": FaultScenario(
        name="stragglers",
        straggler=StragglerSpec(distribution="lognormal", sigma=0.35, prob=0.25),
        seed=2021,
    ),
    "severe-stragglers": FaultScenario(
        name="severe-stragglers",
        straggler=StragglerSpec(distribution="lognormal", sigma=0.6, prob=0.5),
        seed=2021,
    ),
    "preemption": FaultScenario(
        name="preemption",
        straggler=StragglerSpec(distribution="lognormal", sigma=0.2, prob=0.15),
        preemption=PreemptionSpec(mtbf=3600.0, downtime=120.0),
        seed=2021,
    ),
}


def scenario_preset_names() -> Tuple[str, ...]:
    """The registered scenario preset names, in registration order."""
    return tuple(SCENARIO_PRESETS)


def named_scenario(name: str) -> FaultScenario:
    """Look up a scenario preset by name (exact match)."""
    try:
        return SCENARIO_PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIO_PRESETS))
        raise KeyError(f"unknown fault scenario {name!r}; choose from: {known}") from None
