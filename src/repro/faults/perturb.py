"""Apply fault scenarios to task graphs: vectorized duration perturbation.

A straggler scenario turns into one slowdown factor per rank; applying
it to a :class:`~repro.sim.TaskGraph` is a single vectorized pass over
the graph's columnar layout — compute tasks are scaled by their rank's
factor, communication tasks are left untouched (stragglers model slow
*kernels*, not slow wires; a slow NIC is a topology property).  The
perturbed vector is handed to :func:`repro.sim.simulate` (or, for many
samples at once, :func:`repro.sim.simulate_batch`) without ever mutating
the graph, so nominal and faulted pricing share one graph build.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.schedule import (
    AmortizedIterationResult,
    IterationResult,
)
from repro.sim import TaskGraph, Timeline, interval_weights, simulate, simulate_batch
from repro.sim.analysis import REFRESH
from repro.faults.scenario import FaultScenario
from repro.utils.rng import new_rng


def straggler_factors(
    scenario: FaultScenario, num_ranks: int, seed: Optional[int] = None
) -> np.ndarray:
    """The per-rank slowdown factors one sample of ``scenario`` draws.

    ``seed`` defaults to ``scenario.seed``; all factors are >= 1.0 (see
    :class:`~repro.faults.scenario.StragglerSpec`).  Scenarios without a
    straggler spec yield all-ones.
    """
    if scenario.straggler is None:
        return np.ones(num_ranks)
    rng = new_rng(scenario.seed if seed is None else seed)
    return scenario.straggler.sample_factors(num_ranks, rng)


def _apply_factors(graph: TaskGraph, factors: np.ndarray) -> np.ndarray:
    cols = graph.columns()
    if factors.shape != (graph.num_ranks,):
        raise ValueError(
            f"factors must have shape ({graph.num_ranks},), got {factors.shape}"
        )
    if cols.n == 0:
        return cols.durations.copy()
    # Compute tasks occupy exactly one rank, so each task's first rank
    # occurrence *is* its rank; collectives keep factor 1.0.
    first_rank = cols.ranks_flat[cols.ranks_indptr[:-1]]
    scale = np.where(cols.is_comm, 1.0, factors[first_rank])
    return cols.durations * scale


def perturb_durations(
    graph: TaskGraph, scenario: FaultScenario, seed: Optional[int] = None
) -> np.ndarray:
    """One perturbed duration vector for ``graph`` under ``scenario``.

    Deterministic in ``(scenario, seed)``; ``seed`` defaults to
    ``scenario.seed``.  The graph is not modified — feed the result to
    ``simulate(graph, durations=...)``.
    """
    return _apply_factors(graph, straggler_factors(scenario, graph.num_ranks, seed))


def perturb_durations_many(
    graph: TaskGraph, scenario: FaultScenario, seeds: Sequence[int]
) -> np.ndarray:
    """A ``(len(seeds), n)`` matrix of perturbed duration samples.

    Row ``i`` is bit-identical to ``perturb_durations(graph, scenario,
    seeds[i])``; the matrix feeds :func:`repro.sim.simulate_batch` so
    all samples are priced in one batched scheduling pass.
    """
    cols = graph.columns()
    if not seeds:
        return np.empty((0, cols.n))
    return np.stack([perturb_durations(graph, scenario, s) for s in seeds])


def simulate_faulted(
    graph: TaskGraph, scenario: FaultScenario, seed: Optional[int] = None
) -> Timeline:
    """Simulate one perturbed sample of ``graph`` under ``scenario``."""
    return simulate(graph, perturb_durations(graph, scenario, seed))


def simulate_faulted_many(
    graph: TaskGraph, scenario: FaultScenario, seeds: Sequence[int]
) -> List[Timeline]:
    """Simulate one perturbed sample per seed, batched into one pass."""
    if not seeds:
        return []
    return simulate_batch(graph, perturb_durations_many(graph, scenario, seeds))


def sample_makespans(
    graph: TaskGraph, scenario: FaultScenario, seeds: Sequence[int]
) -> np.ndarray:
    """Per-sample makespans of ``graph`` under ``scenario`` (batched)."""
    return np.array(
        [t.makespan for t in simulate_faulted_many(graph, scenario, seeds)]
    )


def sample_iteration_times(
    graphs: Dict[str, TaskGraph],
    scenario: FaultScenario,
    seeds: Sequence[int],
    factor_interval: int = 1,
    inverse_interval: int = 1,
) -> np.ndarray:
    """Per-sample amortized iteration times for a phase-graph bundle.

    Stale-refresh strategies mix several iteration shapes per cycle;
    each shape is batch-simulated across all seeds (every sample uses
    the *same* per-rank straggler factors in every phase — a straggling
    GPU straggles all cycle) and the cycle average is taken per sample.
    Plain strategies collapse to the refresh graph's sample makespans.
    """
    weights = interval_weights(factor_interval, inverse_interval)
    if len(weights) == 1:
        return sample_makespans(graphs[REFRESH], scenario, seeds)
    per_phase = {
        phase: sample_makespans(graphs[phase], scenario, seeds)
        for phase, _ in weights
    }
    total = sum(per_phase[phase] * count for phase, count in weights)
    return total / inverse_interval


def run_faulted_phase_iterations(
    graphs: Dict[str, TaskGraph],
    algorithm: str,
    model: str,
    factor_interval: int = 1,
    inverse_interval: int = 1,
    *,
    scenario: FaultScenario,
    seed: Optional[int] = None,
) -> "IterationResult | AmortizedIterationResult":
    """Fault-scenario counterpart of
    :func:`repro.core.schedule.run_phase_iterations`.

    Simulates every phase graph under one perturbed sample (the same
    per-rank factors across phases) and packages the same result types,
    so scenario-aware :class:`~repro.plan.Session` plans report through
    the unchanged ``IterationResult`` surface.
    """
    weights = interval_weights(factor_interval, inverse_interval)

    def one(phase: str) -> IterationResult:
        timeline = simulate_faulted(graphs[phase], scenario, seed)
        return IterationResult(
            algorithm=algorithm,
            model=model,
            timeline=timeline,
            breakdown=timeline.breakdown(),
        )

    if len(weights) == 1:
        return one(REFRESH)
    results = {phase: one(phase) for phase, _ in weights}
    return AmortizedIterationResult(
        algorithm=algorithm,
        model=model,
        refresh=results[REFRESH],
        factor_refresh=results.get("factor_refresh"),
        steady=results.get("steady"),
        weights=weights,
    )
