"""Checkpoint/restart economics for preemption-prone clusters.

Preemptions are priced with the classic checkpoint-restart model: the
run writes a checkpoint every ``interval`` seconds of useful work at a
cost of ``write_cost`` seconds each; a failure at work-time ``t`` loses
the work since the last checkpoint, then pays the node's downtime and a
restore.  The write cost itself comes from the cluster — a checkpoint is
a parameter-sized transfer over the slowest link on the path to storage
(:func:`checkpoint_write_cost` derives it from a
:class:`~repro.topo.ClusterTopology`'s bottleneck link, or from a
:class:`~repro.perf.ClusterPerfProfile`'s streamed-broadcast model when
no topology is available).

For a Poisson failure process with mean time between failures ``M`` the
expected overhead per second of useful work is

    ``overhead(tau) = C/tau + (tau/2 + D + R) / M``

(write cost ``C`` amortized over the interval, plus the expected half-
interval of lost work and the downtime ``D`` + restore ``R`` per
failure).  Minimizing over ``tau`` gives the Young/Daly optimum
``tau* = sqrt(2 C M)`` — exposed analytically by
:func:`optimal_checkpoint_interval` and validated against the seeded
Monte-Carlo simulation :func:`simulate_checkpoint_run` in the tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence

from repro.faults.scenario import FaultEvent, FaultScenario, PreemptionSpec
from repro.perf.models import WIRE_ELEMENT_BYTES
from repro.utils.rng import SeedLike, new_rng


@dataclass(frozen=True)
class CheckpointPolicy:
    """How a run protects itself: checkpoint every ``interval`` seconds
    of work, each write costing ``write_cost`` seconds; ``restore_cost``
    defaults to the write cost (symmetric storage path)."""

    interval: float
    write_cost: float
    restore_cost: Optional[float] = None

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError(f"interval must be > 0, got {self.interval}")
        if self.write_cost < 0:
            raise ValueError(f"write_cost must be >= 0, got {self.write_cost}")
        if self.restore_cost is not None and self.restore_cost < 0:
            raise ValueError(f"restore_cost must be >= 0, got {self.restore_cost}")

    @property
    def effective_restore_cost(self) -> float:
        """Restore cost, defaulting to ``write_cost`` when unset."""
        return self.write_cost if self.restore_cost is None else self.restore_cost

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form for reports and serialization."""
        return {
            "interval": self.interval,
            "write_cost": self.write_cost,
            "restore_cost": self.restore_cost,
        }


def checkpoint_write_cost(
    cluster: Any, num_params: int, element_bytes: int = WIRE_ELEMENT_BYTES
) -> float:
    """Seconds to write one parameter-sized checkpoint on ``cluster``.

    ``cluster`` may be a :class:`~repro.topo.ClusterTopology` (the
    checkpoint crosses its bottleneck link) or a
    :class:`~repro.perf.ClusterPerfProfile` (priced with the streamed
    broadcast model, the profile's only full-parameter transfer model).
    """
    if num_params <= 0:
        raise ValueError(f"num_params must be > 0, got {num_params}")
    bottleneck = getattr(cluster, "bottleneck_link", None)
    if callable(bottleneck):
        link = bottleneck()
        return link.latency + num_params * element_bytes / link.bandwidth
    broadcast = getattr(cluster, "broadcast_streamed", None)
    if broadcast is not None:
        return broadcast.time(num_params)
    raise TypeError(
        f"cluster must be a ClusterTopology or ClusterPerfProfile, got "
        f"{type(cluster).__name__}"
    )


def optimal_checkpoint_interval(write_cost: float, mtbf: float) -> float:
    """The Young/Daly first-order optimum ``sqrt(2 * write_cost * mtbf)``."""
    if write_cost < 0:
        raise ValueError(f"write_cost must be >= 0, got {write_cost}")
    if mtbf <= 0:
        raise ValueError(f"mtbf must be > 0, got {mtbf}")
    return math.sqrt(2.0 * write_cost * mtbf)


def expected_overhead_rate(policy: CheckpointPolicy, preemption: PreemptionSpec) -> float:
    """Expected overhead seconds per second of useful work.

    ``write_cost/interval + (interval/2 + downtime + restore) / mtbf``
    under a Poisson failure process — the function whose minimizer is
    :func:`optimal_checkpoint_interval`.  Always >= 0, so scaling a
    nominal lower bound by ``1 + rate`` keeps it a valid lower bound.
    """
    per_failure = (
        policy.interval / 2.0 + preemption.downtime + policy.effective_restore_cost
    )
    return policy.write_cost / policy.interval + per_failure / preemption.mtbf


def default_policy(
    cluster: Any, num_params: int, preemption: PreemptionSpec
) -> CheckpointPolicy:
    """The Young/Daly-optimal policy for ``cluster`` and ``preemption``."""
    write = checkpoint_write_cost(cluster, num_params)
    return CheckpointPolicy(
        interval=optimal_checkpoint_interval(write, preemption.mtbf),
        write_cost=write,
    )


@dataclass(frozen=True)
class FaultRunReport:
    """Deterministic price of a run's failure events under one policy."""

    work_time: float  #: useful training seconds
    checkpoint_time: float  #: seconds spent writing checkpoints
    lost_work: float  #: recomputed seconds (work since last checkpoint)
    downtime: float  #: seconds waiting for preempted nodes
    restore_time: float  #: seconds restoring from checkpoints

    @property
    def total_time(self) -> float:
        """Wall-clock seconds: work plus every overhead component."""
        return (
            self.work_time
            + self.checkpoint_time
            + self.lost_work
            + self.downtime
            + self.restore_time
        )

    @property
    def overhead(self) -> float:
        """Fractional slowdown over the fault-free run (>= 0)."""
        if self.work_time == 0:
            return 0.0
        return self.total_time / self.work_time - 1.0

    def to_dict(self) -> Dict[str, float]:
        """Plain-dict form for reports and serialization."""
        return {
            "work_time": self.work_time,
            "checkpoint_time": self.checkpoint_time,
            "lost_work": self.lost_work,
            "downtime": self.downtime,
            "restore_time": self.restore_time,
            "total_time": self.total_time,
            "overhead": self.overhead,
        }


def price_events(
    work_time: float,
    events: Sequence[FaultEvent],
    policy: CheckpointPolicy,
) -> FaultRunReport:
    """Deterministically price a run's :class:`FaultEvent` timeline.

    ``work_time`` is the useful-work length of the run; event times are
    in work seconds (see :class:`FaultEvent`).  Each failure loses the
    work since the last checkpoint (``t mod interval``) and pays the
    event's downtime plus one restore; checkpoints are written at every
    whole interval of completed work.
    """
    if work_time < 0:
        raise ValueError(f"work_time must be >= 0, got {work_time}")
    lost = 0.0
    down = 0.0
    restores = 0.0
    for event in sorted(events, key=lambda e: (e.time, e.rank)):
        if event.time >= work_time:
            continue
        lost += math.fmod(event.time, policy.interval)
        down += event.downtime
        restores += policy.effective_restore_cost
    num_checkpoints = math.floor(work_time / policy.interval)
    return FaultRunReport(
        work_time=work_time,
        checkpoint_time=num_checkpoints * policy.write_cost,
        lost_work=lost,
        downtime=down,
        restore_time=restores,
    )


def scenario_overhead_rate(
    scenario: FaultScenario, cluster: Any, num_params: int
) -> float:
    """Amortized preemption overhead per work second under ``scenario``.

    Zero when the scenario has no stochastic preemption spec; otherwise
    the expected overhead of the Young/Daly-optimal checkpoint policy on
    ``cluster``.  Used by the robust autotuner to fold checkpoint/
    restart costs into every sampled iteration time.
    """
    if scenario.preemption is None:
        return 0.0
    policy = default_policy(cluster, num_params, scenario.preemption)
    return expected_overhead_rate(policy, scenario.preemption)


def simulate_checkpoint_run(
    work_time: float,
    policy: CheckpointPolicy,
    preemption: PreemptionSpec,
    seed: SeedLike = None,
) -> float:
    """Seeded Monte-Carlo wall-clock of a run under Poisson preemptions.

    Failures arrive with exponential inter-arrival times (mean ``mtbf``
    in work seconds); each one loses the work since the last checkpoint
    and pays downtime + restore.  Used to validate that
    :func:`optimal_checkpoint_interval` actually minimizes the simulated
    wall-clock, not just the analytic rate.
    """
    if work_time < 0:
        raise ValueError(f"work_time must be >= 0, got {work_time}")
    rng = new_rng(seed)
    wall = 0.0
    progress = 0.0  # durable work, committed at the last checkpoint
    time_to_failure = float(rng.exponential(preemption.mtbf))
    while progress < work_time:
        needed = min(policy.interval, work_time - progress)
        if time_to_failure < needed:
            # Fail mid-segment: the partial segment is lost entirely.
            wall += time_to_failure
            wall += preemption.downtime + policy.effective_restore_cost
            time_to_failure = float(rng.exponential(preemption.mtbf))
            continue
        wall += needed
        time_to_failure -= needed
        progress += needed
        if progress < work_time:
            wall += policy.write_cost
    return wall
