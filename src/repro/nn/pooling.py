"""Pooling and reshaping layers."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.functional import conv_output_size
from repro.nn.module import Module


class MaxPool2d(Module):
    """Max pooling with square window."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None, padding: int = 0):
        super().__init__()
        if kernel_size < 1 or padding < 0:
            raise ValueError("invalid pooling geometry")
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self.padding = padding
        self._cache: Optional[tuple] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        k, s, p = self.kernel_size, self.stride, self.padding
        h_out = conv_output_size(h, k, s, p)
        w_out = conv_output_size(w, k, s, p)
        if p > 0:
            x_pad = np.pad(x, ((0, 0), (0, 0), (p, p), (p, p)), constant_values=-np.inf)
        else:
            x_pad = x
        s0, s1, s2, s3 = x_pad.strides
        windows = np.lib.stride_tricks.as_strided(
            x_pad,
            shape=(n, c, h_out, w_out, k, k),
            strides=(s0, s1, s2 * s, s3 * s, s2, s3),
        )
        flat = windows.reshape(n, c, h_out, w_out, k * k)
        argmax = flat.argmax(axis=-1)
        out = np.take_along_axis(flat, argmax[..., None], axis=-1)[..., 0]
        self._cache = (x.shape, x_pad.shape, argmax, (h_out, w_out))
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        in_shape, pad_shape, argmax, (h_out, w_out) = self._cache
        n, c = in_shape[:2]
        k, s, p = self.kernel_size, self.stride, self.padding
        grad_pad = np.zeros(pad_shape)
        rows, cols = np.divmod(argmax, k)
        for i in range(h_out):
            for j in range(w_out):
                r = i * s + rows[:, :, i, j]
                q = j * s + cols[:, :, i, j]
                np.add.at(
                    grad_pad,
                    (np.arange(n)[:, None], np.arange(c)[None, :], r, q),
                    grad_output[:, :, i, j],
                )
        if p > 0:
            return grad_pad[:, :, p:-p, p:-p]
        return grad_pad


class AvgPool2d(Module):
    """Average pooling with square window (no padding)."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None):
        super().__init__()
        if kernel_size < 1:
            raise ValueError("kernel_size must be >= 1")
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self._in_shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        k, s = self.kernel_size, self.stride
        h_out = conv_output_size(h, k, s, 0)
        w_out = conv_output_size(w, k, s, 0)
        self._in_shape = x.shape
        s0, s1, s2, s3 = x.strides
        windows = np.lib.stride_tricks.as_strided(
            x, shape=(n, c, h_out, w_out, k, k), strides=(s0, s1, s2 * s, s3 * s, s2, s3)
        )
        return windows.mean(axis=(-1, -2))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._in_shape is None:
            raise RuntimeError("backward called before forward")
        n, c, h, w = self._in_shape
        k, s = self.kernel_size, self.stride
        grad_in = np.zeros(self._in_shape)
        h_out, w_out = grad_output.shape[2:]
        scaled = grad_output / (k * k)
        for i in range(h_out):
            for j in range(w_out):
                grad_in[:, :, i * s : i * s + k, j * s : j * s + k] += scaled[:, :, i, j, None, None]
        return grad_in


class GlobalAvgPool2d(Module):
    """Average over all spatial positions: ``(N, C, H, W) -> (N, C)``."""

    def __init__(self) -> None:
        super().__init__()
        self._in_shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._in_shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._in_shape is None:
            raise RuntimeError("backward called before forward")
        n, c, h, w = self._in_shape
        return np.broadcast_to(grad_output[:, :, None, None], self._in_shape) / (h * w)


class Flatten(Module):
    """Flatten all non-batch dimensions."""

    def __init__(self) -> None:
        super().__init__()
        self._in_shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._in_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._in_shape is None:
            raise RuntimeError("backward called before forward")
        return grad_output.reshape(self._in_shape)
