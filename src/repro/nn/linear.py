"""Fully-connected layer."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.module import Module, Parameter
from repro.utils.rng import SeedLike, new_rng


class Linear(Module):
    """Affine layer ``y = x W^T + b`` with cached input for K-FAC.

    The cached ``last_input`` (shape ``(N, in_features)``) is the ``a``
    of Eq. (7); the gradient w.r.t. the pre-activation output received in
    ``backward`` is the ``g`` of Eq. (8).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: SeedLike = None,
    ):
        super().__init__()
        if in_features < 1 or out_features < 1:
            raise ValueError("in_features and out_features must be >= 1")
        rng = new_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        scale = np.sqrt(2.0 / in_features)
        self.weight = self.register_parameter(
            "weight", Parameter(rng.normal(0.0, scale, size=(out_features, in_features)))
        )
        self.bias: Optional[Parameter] = None
        if bias:
            self.bias = self.register_parameter("bias", Parameter(np.zeros(out_features)))
        self.last_input: Optional[np.ndarray] = None
        self.last_grad_output: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(f"expected input (N, {self.in_features}), got {x.shape}")
        self.last_input = x
        out = x @ self.weight.data.T
        if self.bias is not None:
            out = out + self.bias.data
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self.last_input is None:
            raise RuntimeError("backward called before forward")
        self.last_grad_output = grad_output
        self.weight.add_grad(grad_output.T @ self.last_input)
        if self.bias is not None:
            self.bias.add_grad(grad_output.sum(axis=0))
        return grad_output @ self.weight.data
