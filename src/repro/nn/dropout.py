"""Dropout regularization (inverted scaling)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.module import Module
from repro.utils.rng import SeedLike, new_rng
from repro.utils.validation import check_probability


class Dropout(Module):
    """Inverted dropout: scales by ``1/(1-p)`` at train time, identity at
    eval time (as Inception-v4's classifier head uses).

    Takes an explicit RNG so training runs stay reproducible.
    """

    def __init__(self, p: float = 0.5, rng: SeedLike = None):
        super().__init__()
        check_probability("p", p)
        if p >= 1.0:
            raise ValueError("p must be < 1 (p=1 would zero every activation)")
        self.p = p
        self.rng = new_rng(rng)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self.rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask
