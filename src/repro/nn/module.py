"""Base classes: :class:`Parameter` and :class:`Module` with hooks."""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

ForwardPreHook = Callable[["Module", np.ndarray], None]
BackwardHook = Callable[["Module", Optional[np.ndarray], np.ndarray], None]


class Parameter:
    """A trainable tensor with an accumulated gradient."""

    def __init__(self, data: np.ndarray):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return self.data.size

    def zero_grad(self) -> None:
        self.grad = None

    def add_grad(self, grad: np.ndarray) -> None:
        """Accumulate ``grad`` (summing, as autograd engines do)."""
        if grad.shape != self.data.shape:
            raise ValueError(f"gradient shape {grad.shape} != parameter shape {self.data.shape}")
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def __repr__(self) -> str:
        return f"Parameter(shape={self.data.shape})"


class Module:
    """Base class for all layers.

    Subclasses implement ``forward(x)`` and ``backward(grad_output)``;
    ``backward`` must return the gradient with respect to the input and
    accumulate parameter gradients.  ``__call__`` wraps forward with the
    pre-forward hooks, and ``run_backward`` wraps backward with the
    backward hooks — the two attachment points K-FAC uses to harvest
    layer inputs and output gradients.
    """

    def __init__(self) -> None:
        self.training = True
        self._forward_pre_hooks: List[ForwardPreHook] = []
        self._backward_hooks: List[BackwardHook] = []
        self._params: Dict[str, Parameter] = {}

    # -- parameters --------------------------------------------------------

    def register_parameter(self, name: str, param: Parameter) -> Parameter:
        self._params[name] = param
        return param

    def parameters(self) -> Iterator[Parameter]:
        """All trainable parameters, depth-first."""
        yield from self._params.values()
        for child in self.children():
            yield from child.parameters()

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._params.items():
            yield (f"{prefix}{name}", param)
        for i, child in enumerate(self.children()):
            yield from child.named_parameters(prefix=f"{prefix}{i}.")

    def children(self) -> Iterator["Module"]:
        """Direct sub-modules (overridden by containers)."""
        return iter(())

    def modules(self) -> Iterator["Module"]:
        """This module and all descendants, depth-first pre-order."""
        yield self
        for child in self.children():
            yield from child.modules()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # -- train/eval mode ----------------------------------------------------

    def train(self) -> "Module":
        for m in self.modules():
            m.training = True
        return self

    def eval(self) -> "Module":
        for m in self.modules():
            m.training = False
        return self

    # -- hooks ---------------------------------------------------------------

    def register_forward_pre_hook(self, hook: ForwardPreHook) -> None:
        """Call ``hook(module, input)`` right before every forward pass."""
        self._forward_pre_hooks.append(hook)

    def register_backward_hook(self, hook: BackwardHook) -> None:
        """Call ``hook(module, grad_input, grad_output)`` after every backward."""
        self._backward_hooks.append(hook)

    # -- forward / backward --------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        for hook in self._forward_pre_hooks:
            hook(self, x)
        return self.forward(x)

    def run_backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Run ``backward`` then fire backward hooks; returns grad input."""
        grad_input = self.backward(grad_output)
        for hook in self._backward_hooks:
            hook(self, grad_input, grad_output)
        return grad_input
