"""Minimal NumPy neural-network substrate with PyTorch-style hooks.

This package replaces PyTorch for the *numerical* side of the
reproduction.  It provides exactly what the paper's ``SPDKFACOptimizer``
implementation needs (Section V-A):

* layer modules that cache their inputs and output-gradients,
* ``register_forward_pre_hook`` — fires before a layer's forward pass,
  where the Kronecker factor ``A_{l-1}`` is computed,
* ``register_backward_hook`` — fires after a layer's backward pass, where
  ``G_l`` is computed,
* plain-SGD parameter updates for baselines.

Only small models are trained numerically (the paper-scale CNNs exist as
dimension specs for the simulator; see DESIGN.md §2), so clarity beats
throughput here; conv uses im2col.
"""

from repro.nn.module import Module, Parameter
from repro.nn.linear import Linear
from repro.nn.conv import Conv2d
from repro.nn.activations import ReLU, Tanh
from repro.nn.dropout import Dropout
from repro.nn.norm import BatchNorm2d
from repro.nn.pooling import AvgPool2d, Flatten, GlobalAvgPool2d, MaxPool2d
from repro.nn.container import Residual, Sequential
from repro.nn.loss import CrossEntropyLoss, MSELoss
from repro.nn.sgd import SGD

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "Conv2d",
    "ReLU",
    "Tanh",
    "Dropout",
    "BatchNorm2d",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Sequential",
    "Residual",
    "CrossEntropyLoss",
    "MSELoss",
    "SGD",
]
