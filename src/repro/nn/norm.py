"""Batch normalization."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.module import Module, Parameter


class BatchNorm2d(Module):
    """Per-channel batch normalization over ``(N, C, H, W)`` inputs.

    K-FAC preconditions only Linear/Conv2d layers (as in the paper — BN
    parameters are updated with plain SGD), so this layer does not cache
    K-FAC statistics.
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        if num_features < 1:
            raise ValueError("num_features must be >= 1")
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.gamma = self.register_parameter("gamma", Parameter(np.ones(num_features)))
        self.beta = self.register_parameter("beta", Parameter(np.zeros(num_features)))
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)
        self._cache: Optional[tuple] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.num_features:
            raise ValueError(f"expected (N, {self.num_features}, H, W), got {x.shape}")
        if self.training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self.running_mean = (1 - self.momentum) * self.running_mean + self.momentum * mean
            self.running_var = (1 - self.momentum) * self.running_var + self.momentum * var
        else:
            mean, var = self.running_mean, self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean[None, :, None, None]) * inv_std[None, :, None, None]
        self._cache = (x_hat, inv_std, x.shape)
        return self.gamma.data[None, :, None, None] * x_hat + self.beta.data[None, :, None, None]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_hat, inv_std, shape = self._cache
        n_eff = shape[0] * shape[2] * shape[3]
        self.gamma.add_grad((grad_output * x_hat).sum(axis=(0, 2, 3)))
        self.beta.add_grad(grad_output.sum(axis=(0, 2, 3)))
        if not self.training:
            return grad_output * (self.gamma.data * inv_std)[None, :, None, None]
        g = grad_output * self.gamma.data[None, :, None, None]
        sum_g = g.sum(axis=(0, 2, 3), keepdims=True)
        sum_gx = (g * x_hat).sum(axis=(0, 2, 3), keepdims=True)
        return inv_std[None, :, None, None] * (g - sum_g / n_eff - x_hat * sum_gx / n_eff)
