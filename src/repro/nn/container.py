"""Composite modules: Sequential and Residual."""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from repro.nn.module import Module


class Sequential(Module):
    """Chain of modules applied in order; backward runs in reverse.

    ``run_backward`` is used on children so their backward hooks fire —
    this is what lets a K-FAC optimizer attached to a deep model observe
    every layer's output gradient in backward order (last layer first),
    matching the paper's Fig. 1(b) task order.
    """

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers: List[Module] = list(layers)

    def children(self) -> Iterator[Module]:
        return iter(self.layers)

    def append(self, layer: Module) -> "Sequential":
        self.layers.append(layer)
        return self

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer(x)
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_output = layer.run_backward(grad_output)
        return grad_output


class Residual(Module):
    """Residual connection ``y = x + block(x)`` (shapes must match)."""

    def __init__(self, block: Module):
        super().__init__()
        self.block = block

    def children(self) -> Iterator[Module]:
        return iter((self.block,))

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = self.block(x)
        if out.shape != x.shape:
            raise ValueError(f"residual shape mismatch: {out.shape} vs {x.shape}")
        return x + out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output + self.block.run_backward(grad_output)
