"""Plain SGD parameter update (the paper's first-order baseline)."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.nn.module import Parameter
from repro.utils.validation import check_non_negative, check_positive


class SGD:
    """SGD with optional momentum and weight decay (Eq. 1).

    Works on any iterable of :class:`Parameter`; gradients must already be
    populated (by backward, and possibly preconditioned by K-FAC).
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("no parameters to optimize")
        self.lr = check_positive("lr", lr)
        self.momentum = check_non_negative("momentum", momentum)
        self.weight_decay = check_non_negative("weight_decay", weight_decay)
        self._velocity: Dict[int, np.ndarray] = {}

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        """Apply one update; raises if any parameter has no gradient."""
        for p in self.params:
            if p.grad is None:
                raise RuntimeError("parameter has no gradient; run backward first")
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                vel = self._velocity.get(id(p))
                vel = grad if vel is None else self.momentum * vel + grad
                self._velocity[id(p)] = vel
                grad = vel
            p.data -= self.lr * grad
