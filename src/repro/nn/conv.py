"""2-D convolution layer (im2col formulation)."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.functional import col2im, conv_output_size, im2col
from repro.nn.module import Module, Parameter
from repro.utils.rng import SeedLike, new_rng


class Conv2d(Module):
    """Convolution ``(N, C_in, H, W) -> (N, C_out, H', W')``.

    For K-FAC, the layer caches its raw input (``last_input``); the KFC
    expansion of that input into patch rows (the per-location ``a``) is
    recomputed by :mod:`repro.core.factors` via :func:`im2col`, and the
    gradient w.r.t. the output received in ``backward`` provides ``g``.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = False,
        rng: SeedLike = None,
    ):
        super().__init__()
        if min(in_channels, out_channels, kernel_size, stride) < 1 or padding < 0:
            raise ValueError("invalid convolution geometry")
        rng = new_rng(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        scale = np.sqrt(2.0 / fan_in)
        self.weight = self.register_parameter(
            "weight",
            Parameter(rng.normal(0.0, scale, size=(out_channels, in_channels, kernel_size, kernel_size))),
        )
        self.bias: Optional[Parameter] = None
        if bias:
            self.bias = self.register_parameter("bias", Parameter(np.zeros(out_channels)))
        self.last_input: Optional[np.ndarray] = None
        self.last_cols: Optional[np.ndarray] = None
        self.last_grad_output: Optional[np.ndarray] = None
        self._out_spatial: Tuple[int, int] = (0, 0)

    @property
    def kernel(self) -> Tuple[int, int]:
        return (self.kernel_size, self.kernel_size)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(f"expected input (N, {self.in_channels}, H, W), got {x.shape}")
        n = x.shape[0]
        h_out = conv_output_size(x.shape[2], self.kernel_size, self.stride, self.padding)
        w_out = conv_output_size(x.shape[3], self.kernel_size, self.stride, self.padding)
        self.last_input = x
        self._out_spatial = (h_out, w_out)
        cols = im2col(x, self.kernel, self.stride, self.padding)
        self.last_cols = cols
        w2d = self.weight.data.reshape(self.out_channels, -1)
        out = cols @ w2d.T  # (N*H'*W', C_out)
        if self.bias is not None:
            out = out + self.bias.data
        return out.reshape(n, h_out, w_out, self.out_channels).transpose(0, 3, 1, 2)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self.last_input is None or self.last_cols is None:
            raise RuntimeError("backward called before forward")
        self.last_grad_output = grad_output
        n = grad_output.shape[0]
        h_out, w_out = self._out_spatial
        g2d = grad_output.transpose(0, 2, 3, 1).reshape(n * h_out * w_out, self.out_channels)
        w2d = self.weight.data.reshape(self.out_channels, -1)
        self.weight.add_grad((g2d.T @ self.last_cols).reshape(self.weight.data.shape))
        if self.bias is not None:
            self.bias.add_grad(g2d.sum(axis=0))
        grad_cols = g2d @ w2d
        return col2im(grad_cols, self.last_input.shape, self.kernel, self.stride, self.padding)
