"""Elementwise activation layers."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.module import Module


class ReLU(Module):
    """Rectified linear unit."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return np.where(self._mask, grad_output, 0.0)


class Tanh(Module):
    """Hyperbolic tangent."""

    def __init__(self) -> None:
        super().__init__()
        self._out: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._out = np.tanh(x)
        return self._out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        return grad_output * (1.0 - self._out**2)
