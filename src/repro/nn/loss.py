"""Loss functions (mean-reduced over the batch)."""

from __future__ import annotations

from typing import Optional

import numpy as np


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax along the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


class CrossEntropyLoss:
    """Softmax cross-entropy with integer targets, averaged over the batch.

    ``backward()`` returns the gradient w.r.t. the logits, already scaled
    by ``1/N`` — the same convention PyTorch's mean-reduced loss uses, and
    the one the K-FAC ``G`` factor scaling in :mod:`repro.core.factors`
    assumes.
    """

    def __init__(self) -> None:
        self._probs: Optional[np.ndarray] = None
        self._targets: Optional[np.ndarray] = None

    def __call__(self, logits: np.ndarray, targets: np.ndarray) -> float:
        if logits.ndim != 2:
            raise ValueError(f"expected (N, classes) logits, got {logits.shape}")
        if targets.shape != (logits.shape[0],):
            raise ValueError(f"targets shape {targets.shape} != ({logits.shape[0]},)")
        probs = softmax(logits)
        self._probs = probs
        self._targets = targets
        n = logits.shape[0]
        picked = probs[np.arange(n), targets]
        return float(-np.log(np.clip(picked, 1e-300, None)).mean())

    def backward(self) -> np.ndarray:
        """Gradient of the mean loss w.r.t. the logits."""
        if self._probs is None or self._targets is None:
            raise RuntimeError("backward called before loss evaluation")
        n = self._probs.shape[0]
        grad = self._probs.copy()
        grad[np.arange(n), self._targets] -= 1.0
        return grad / n


class MSELoss:
    """Mean squared error, averaged over batch and features."""

    def __init__(self) -> None:
        self._diff: Optional[np.ndarray] = None

    def __call__(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        if predictions.shape != targets.shape:
            raise ValueError(f"shape mismatch: {predictions.shape} vs {targets.shape}")
        self._diff = predictions - targets
        return float((self._diff**2).mean())

    def backward(self) -> np.ndarray:
        if self._diff is None:
            raise RuntimeError("backward called before loss evaluation")
        return 2.0 * self._diff / self._diff.size
