"""Low-level array operations: im2col / col2im for convolution.

These are the patch-extraction primitives both ``Conv2d`` and the K-FAC
convolution factors (Grosse & Martens' KFC expansion) are built on, so
they live in one place and are tested once.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one axis."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out < 1:
        raise ValueError(
            f"convolution produces empty output: size={size} kernel={kernel} "
            f"stride={stride} padding={padding}"
        )
    return out


def im2col(
    x: np.ndarray, kernel: Tuple[int, int], stride: int, padding: int
) -> np.ndarray:
    """Extract sliding patches from ``x`` of shape ``(N, C, H, W)``.

    Returns an array of shape ``(N * H_out * W_out, C * kh * kw)`` whose
    rows are flattened receptive fields — the expanded activations used
    both by the convolution GEMM and by the K-FAC factor ``A``.
    """
    n, c, h, w = x.shape
    kh, kw = kernel
    h_out = conv_output_size(h, kh, stride, padding)
    w_out = conv_output_size(w, kw, stride, padding)
    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    # Gather strided views: shape (N, C, kh, kw, H_out, W_out).
    s0, s1, s2, s3 = x.strides
    shape = (n, c, kh, kw, h_out, w_out)
    strides = (s0, s1, s2, s3, s2 * stride, s3 * stride)
    patches = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
    cols = patches.transpose(0, 4, 5, 1, 2, 3).reshape(n * h_out * w_out, c * kh * kw)
    return np.ascontiguousarray(cols)


def col2im(
    cols: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: int,
    padding: int,
) -> np.ndarray:
    """Scatter-add patch gradients back to input shape (inverse of im2col)."""
    n, c, h, w = input_shape
    kh, kw = kernel
    h_out = conv_output_size(h, kh, stride, padding)
    w_out = conv_output_size(w, kw, stride, padding)
    expected_rows = n * h_out * w_out
    if cols.shape != (expected_rows, c * kh * kw):
        raise ValueError(f"cols shape {cols.shape} != ({expected_rows}, {c * kh * kw})")
    h_pad, w_pad = h + 2 * padding, w + 2 * padding
    out = np.zeros((n, c, h_pad, w_pad), dtype=cols.dtype)
    patches = cols.reshape(n, h_out, w_out, c, kh, kw).transpose(0, 3, 4, 5, 1, 2)
    for i in range(kh):
        for j in range(kw):
            out[:, :, i : i + stride * h_out : stride, j : j + stride * w_out : stride] += patches[
                :, :, i, j
            ]
    if padding > 0:
        out = out[:, :, padding : padding + h, padding : padding + w]
    return out
