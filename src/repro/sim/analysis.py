"""Post-simulation analysis: critical paths and optimization headroom.

The paper's optimizations are exercises in critical-path surgery: factor
pipelining removes FactorComm from the path, LBP removes InverseComp /
InverseComm.  :func:`critical_path` recovers the chain of tasks that
determines the makespan, and :func:`critical_path_phases` aggregates it
per phase — the quickest way to see *why* an iteration takes as long as
it does and what a further optimization could possibly win.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.sim.task import TaskGraph
from repro.sim.timeline import Timeline, TimelineEntry

_EPS = 1e-12


def critical_path(graph: TaskGraph, timeline: Timeline) -> List[TimelineEntry]:
    """The dependency/stream chain ending at the last-finishing task.

    Walks backwards from the makespan-defining entry: at each step the
    predecessor is a task (declared dependency or stream predecessor)
    whose end time equals the current task's start time.  Zero-duration
    idle gaps along the chain indicate the rank was genuinely blocked on
    nothing — they terminate the walk (the path starts there).

    Returns entries in execution order (earliest first).
    """
    entries = {e.task.tid: e for e in timeline.entries}
    if not entries:
        return []

    stream_prev: Dict[int, List[int]] = {tid: [] for tid in entries}
    for queue in graph.stream_queues().values():
        for prev_tid, next_tid in zip(queue, queue[1:]):
            stream_prev[next_tid].append(prev_tid)

    def blocking_predecessor(entry: TimelineEntry) -> Optional[TimelineEntry]:
        candidates = list(entry.task.deps) + stream_prev[entry.task.tid]
        for tid in candidates:
            pred = entries[tid]
            if abs(pred.end - entry.start) <= _EPS:
                return pred
        return None

    current = max(timeline.entries, key=lambda e: e.end)
    path = [current]
    while True:
        pred = blocking_predecessor(current)
        if pred is None:
            break
        path.append(pred)
        current = pred
    path.reverse()
    return path


def stream_lower_bounds(graph: TaskGraph) -> Tuple[float, float]:
    """Schedule-free makespan lower bounds of ``graph``: (compute, comm).

    ``compute`` is the busiest rank's total compute-kernel time (one
    serial compute stream per rank); ``comm`` is the total collective
    time (every collective occupies all its ranks' communication
    streams, so collectives spanning all ranks serialize globally).  Any
    legal schedule's makespan is at least ``max(compute, comm)`` — the
    analytic counterpart, computed from the built graph, of the planner
    bounds in :mod:`repro.autotune.bounds`.
    """
    cols = graph.columns()
    comm = float(cols.durations[cols.is_comm].sum())
    counts = np.diff(cols.ranks_indptr)
    flat_tids = np.repeat(np.arange(cols.n), counts)
    compute_mask = ~cols.is_comm[flat_tids]
    loads = np.zeros(graph.num_ranks, dtype=np.float64)
    np.add.at(
        loads, cols.ranks_flat[compute_mask], cols.durations[flat_tids[compute_mask]]
    )
    compute = float(loads.max()) if loads.size else 0.0
    return compute, comm


def critical_path_phases(graph: TaskGraph, timeline: Timeline) -> Dict[str, float]:
    """Total critical-path time per phase label.

    The values sum to (at most) the makespan; any shortfall is idle time
    at the very start of the path.
    """
    totals: Dict[str, float] = {}
    for entry in critical_path(graph, timeline):
        label = entry.task.phase.value
        totals[label] = totals.get(label, 0.0) + entry.duration
    return totals
