"""Post-simulation analysis: critical paths and optimization headroom.

The paper's optimizations are exercises in critical-path surgery: factor
pipelining removes FactorComm from the path, LBP removes InverseComp /
InverseComm.  :func:`critical_path` recovers the chain of tasks that
determines the makespan, and :func:`critical_path_phases` aggregates it
per phase — the quickest way to see *why* an iteration takes as long as
it does and what a further optimization could possibly win.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.sim.task import TaskGraph
from repro.sim.timeline import Timeline, TimelineEntry

_EPS = 1e-12


def critical_path(graph: TaskGraph, timeline: Timeline) -> List[TimelineEntry]:
    """The dependency/stream chain ending at the last-finishing task.

    Walks backwards from the makespan-defining entry: at each step the
    predecessor is a task (declared dependency or stream predecessor)
    whose end time equals the current task's start time.  Zero-duration
    idle gaps along the chain indicate the rank was genuinely blocked on
    nothing — they terminate the walk (the path starts there).

    Returns entries in execution order (earliest first).
    """
    entries = {e.task.tid: e for e in timeline.entries}
    if not entries:
        return []

    stream_prev: Dict[int, List[int]] = {tid: [] for tid in entries}
    for queue in graph.stream_queues().values():
        for prev_tid, next_tid in zip(queue, queue[1:]):
            stream_prev[next_tid].append(prev_tid)

    def blocking_predecessor(entry: TimelineEntry) -> Optional[TimelineEntry]:
        candidates = list(entry.task.deps) + stream_prev[entry.task.tid]
        for tid in candidates:
            pred = entries[tid]
            if abs(pred.end - entry.start) <= _EPS:
                return pred
        return None

    current = max(timeline.entries, key=lambda e: e.end)
    path = [current]
    while True:
        pred = blocking_predecessor(current)
        if pred is None:
            break
        path.append(pred)
        current = pred
    path.reverse()
    return path


def stream_lower_bounds(graph: TaskGraph) -> Tuple[float, float]:
    """Schedule-free makespan lower bounds of ``graph``: (compute, comm).

    ``compute`` is the busiest rank's total compute-kernel time (one
    serial compute stream per rank); ``comm`` is the total collective
    time (every collective occupies all its ranks' communication
    streams, so collectives spanning all ranks serialize globally).  Any
    legal schedule's makespan is at least ``max(compute, comm)`` — the
    analytic counterpart, computed from the built graph, of the planner
    bounds in :mod:`repro.autotune.bounds`.
    """
    cols = graph.columns()
    comm = float(cols.durations[cols.is_comm].sum())
    counts = np.diff(cols.ranks_indptr)
    flat_tids = np.repeat(np.arange(cols.n), counts)
    compute_mask = ~cols.is_comm[flat_tids]
    loads = np.zeros(graph.num_ranks, dtype=np.float64)
    np.add.at(
        loads, cols.ranks_flat[compute_mask], cols.durations[flat_tids[compute_mask]]
    )
    compute = float(loads.max()) if loads.size else 0.0
    return compute, comm


def critical_path_phases(graph: TaskGraph, timeline: Timeline) -> Dict[str, float]:
    """Total critical-path time per phase label.

    The values sum to (at most) the makespan; any shortfall is idle time
    at the very start of the path.
    """
    totals: Dict[str, float] = {}
    for entry in critical_path(graph, timeline):
        label = entry.task.phase.value
        totals[label] = totals.get(label, 0.0) + entry.duration
    return totals


# ---------------------------------------------------------------------------
# amortized multi-interval makespans (stale factor/inverse refresh)
# ---------------------------------------------------------------------------

#: Phase names of a stale-refresh iteration cycle.
REFRESH = "refresh"
FACTOR_REFRESH = "factor_refresh"
STEADY = "steady"


def interval_weights(
    factor_interval: int, inverse_interval: int
) -> Tuple[Tuple[str, int], ...]:
    """Iteration-shape mix of one stale-refresh cycle.

    With factors refreshed every ``factor_interval`` iterations and
    inverses every ``inverse_interval`` (a multiple of it), one cycle of
    ``inverse_interval`` iterations contains exactly one full refresh
    (factors + inverses), ``inverse_interval / factor_interval - 1``
    factor-only refreshes, and steady-state iterations for the rest.

    Parameters
    ----------
    factor_interval : int
        Iterations between factor recomputations/all-reduces (>= 1).
    inverse_interval : int
        Iterations between inverse recomputations/broadcasts; must be a
        positive multiple of ``factor_interval``.

    Returns
    -------
    tuple of (str, int)
        ``(phase, iterations per cycle)`` pairs with zero-count phases
        omitted; counts sum to ``inverse_interval``.

    Examples
    --------
    >>> interval_weights(1, 1)
    (('refresh', 1),)
    >>> interval_weights(2, 6)
    (('refresh', 1), ('factor_refresh', 2), ('steady', 3))
    """
    for name, value in (
        ("factor_interval", factor_interval),
        ("inverse_interval", inverse_interval),
    ):
        if isinstance(value, bool) or not isinstance(value, int) or value < 1:
            raise ValueError(f"{name} must be an integer >= 1, got {value!r}")
    if inverse_interval % factor_interval != 0:
        raise ValueError(
            "inverse_interval must be a multiple of factor_interval, got "
            f"{inverse_interval} vs {factor_interval}"
        )
    factor_refreshes = inverse_interval // factor_interval
    weights = [
        (REFRESH, 1),
        (FACTOR_REFRESH, factor_refreshes - 1),
        (STEADY, inverse_interval - factor_refreshes),
    ]
    return tuple((phase, count) for phase, count in weights if count > 0)


def amortized_makespan(
    phase_times: Dict[str, float], factor_interval: int, inverse_interval: int
) -> float:
    """Exact per-iteration average time of a stale-refresh cycle.

    Factor/inverse refresh work contributes ``1/K`` of its cost — not by
    scaling a single makespan, but by averaging the *simulated* makespans
    of the distinct iteration shapes over the cycle mix of
    :func:`interval_weights`.

    Parameters
    ----------
    phase_times : dict
        Simulated makespan per phase name; must cover every phase the
        cycle mix contains.
    factor_interval, inverse_interval : int
        The refresh intervals (see :func:`interval_weights`).

    Examples
    --------
    >>> amortized_makespan({"refresh": 1.0}, 1, 1)
    1.0
    >>> amortized_makespan({"refresh": 1.0, "steady": 0.5}, 4, 4)
    0.625
    """
    weights = interval_weights(factor_interval, inverse_interval)
    missing = [phase for phase, _ in weights if phase not in phase_times]
    if missing:
        raise ValueError(f"phase_times missing phases: {missing}")
    total = sum(phase_times[phase] * count for phase, count in weights)
    return total / inverse_interval
