"""Post-simulation analysis: critical paths, slack, and blame attribution.

The paper's optimizations are exercises in critical-path surgery: factor
pipelining removes FactorComm from the path, LBP removes InverseComp /
InverseComm.  :func:`critical_path` recovers the chain of tasks that
determines the makespan, and :func:`critical_path_phases` aggregates it
per phase — the quickest way to see *why* an iteration takes as long as
it does and what a further optimization could possibly win.

:func:`task_slack` generalizes the single chain to every task: how much
later could each task start without moving the makespan?  Zero-slack
tasks are the binding ones, and :func:`critical_path_report` packages
the whole story — the zero-slack chain, per-task slack, and a **blame
table** attributing the makespan to phases (the paper's Fig. 2/3
time-breakdown narrative, computed from the schedule instead of
hand-drawn).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.sim.task import TaskGraph
from repro.sim.timeline import Timeline, TimelineEntry

_EPS = 1e-12


def critical_path(graph: TaskGraph, timeline: Timeline) -> List[TimelineEntry]:
    """The dependency/stream chain ending at the last-finishing task.

    Walks backwards from the makespan-defining entry: at each step the
    predecessor is a task (declared dependency or stream predecessor)
    whose end time equals the current task's start time.  Zero-duration
    idle gaps along the chain indicate the rank was genuinely blocked on
    nothing — they terminate the walk (the path starts there).

    Returns entries in execution order (earliest first).
    """
    entries = {e.task.tid: e for e in timeline.entries}
    if not entries:
        return []

    stream_prev: Dict[int, List[int]] = {tid: [] for tid in entries}
    for queue in graph.stream_queues().values():
        for prev_tid, next_tid in zip(queue, queue[1:]):
            stream_prev[next_tid].append(prev_tid)

    def blocking_predecessor(entry: TimelineEntry) -> Optional[TimelineEntry]:
        candidates = list(entry.task.deps) + stream_prev[entry.task.tid]
        for tid in candidates:
            pred = entries[tid]
            if abs(pred.end - entry.start) <= _EPS:
                return pred
        return None

    current = max(timeline.entries, key=lambda e: e.end)
    path = [current]
    while True:
        pred = blocking_predecessor(current)
        if pred is None:
            break
        path.append(pred)
        current = pred
    path.reverse()
    return path


def stream_lower_bounds(graph: TaskGraph) -> Tuple[float, float]:
    """Schedule-free makespan lower bounds of ``graph``: (compute, comm).

    ``compute`` is the busiest rank's total compute-kernel time (one
    serial compute stream per rank); ``comm`` is the total collective
    time (every collective occupies all its ranks' communication
    streams, so collectives spanning all ranks serialize globally).  Any
    legal schedule's makespan is at least ``max(compute, comm)`` — the
    analytic counterpart, computed from the built graph, of the planner
    bounds in :mod:`repro.autotune.bounds`.
    """
    cols = graph.columns()
    comm = float(cols.durations[cols.is_comm].sum())
    counts = np.diff(cols.ranks_indptr)
    flat_tids = np.repeat(np.arange(cols.n), counts)
    compute_mask = ~cols.is_comm[flat_tids]
    loads = np.zeros(graph.num_ranks, dtype=np.float64)
    np.add.at(
        loads, cols.ranks_flat[compute_mask], cols.durations[flat_tids[compute_mask]]
    )
    compute = float(loads.max()) if loads.size else 0.0
    return compute, comm


def critical_path_phases(graph: TaskGraph, timeline: Timeline) -> Dict[str, float]:
    """Total critical-path time per phase label.

    The values sum to (at most) the makespan; any shortfall is idle time
    at the very start of the path.
    """
    totals: Dict[str, float] = {}
    for entry in critical_path(graph, timeline):
        label = entry.task.phase.value
        totals[label] = totals.get(label, 0.0) + entry.duration
    return totals


# ---------------------------------------------------------------------------
# slack and blame attribution
# ---------------------------------------------------------------------------


def _schedule_arrays(timeline: Timeline) -> Tuple[np.ndarray, np.ndarray]:
    """(start, end) vectors indexed by tid, from either timeline backing."""
    state = timeline._columnar()
    if state is not None:
        _, start, end = state
        return start, end
    entries = timeline.entries
    n = max((e.task.tid for e in entries), default=-1) + 1
    start = np.zeros(n, dtype=np.float64)
    end = np.zeros(n, dtype=np.float64)
    for entry in entries:
        start[entry.task.tid] = entry.start
        end[entry.task.tid] = entry.end
    return start, end


def task_slack(graph: TaskGraph, timeline: Timeline) -> np.ndarray:
    """Per-task slack: seconds each task could start later without
    moving the makespan, holding every duration and the stream FIFO
    order fixed.

    A reverse longest-path pass over the combined DAG (declared
    dependencies plus stream-serialization edges): a task's latest
    finish is the earliest latest-start among its successors (the
    makespan for sinks), and ``slack = latest_start - actual_start``.
    Zero-slack tasks are exactly the ones some critical chain runs
    through; every task the makespan-defining chain of
    :func:`critical_path` visits has slack 0.
    """
    # Local import: engine imports timeline, which this module also
    # uses; importing engine lazily keeps repro.sim's import order free.
    from repro.sim.engine import _combined_edges, _csr_from_edges

    start, end = _schedule_arrays(timeline)
    n = start.size
    if n == 0:
        return np.empty(0, dtype=np.float64)
    makespan = float(end.max())
    pred, succ = _combined_edges(graph)
    # Tasks appended after simulate() have no schedule; drop their edges.
    keep = (pred < n) & (succ < n)
    pred, succ = pred[keep], succ[keep]
    succ_indptr, succ_flat = _csr_from_edges(pred, succ, n)
    dur = end - start
    latest_start = np.empty(n, dtype=np.float64)
    # Combined-DAG edges always point to higher tids (dependency ids are
    # validated < tid; stream FIFO order is insertion order), so reverse
    # tid order is a reverse topological order.
    for tid in range(n - 1, -1, -1):
        row = succ_flat[succ_indptr[tid] : succ_indptr[tid + 1]]
        latest_end = float(latest_start[row].min()) if row.size else makespan
        latest_start[tid] = latest_end - dur[tid]
    return latest_start - start


@dataclass(frozen=True)
class BlameRow:
    """One phase's share of the critical path."""

    label: str  #: phase label (``Phase.value``)
    kind: str  #: ``"compute"`` or ``"comm"``
    seconds: float  #: summed critical-path residence of this phase
    share: float  #: ``seconds / makespan``
    tasks: int  #: number of critical-chain tasks in this phase

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready view of this row."""
        return {
            "label": self.label,
            "kind": self.kind,
            "seconds": self.seconds,
            "share": self.share,
            "tasks": self.tasks,
        }


@dataclass(frozen=True)
class CriticalPathReport:
    """The full makespan attribution of one simulated iteration.

    ``entries`` is the zero-slack chain of :func:`critical_path` in
    execution order: it starts at t=0, each link starts exactly when its
    blocking predecessor ends, the last link ends at the makespan, and
    the link durations sum to the makespan exactly.  ``slack`` is the
    per-task slack vector of :func:`task_slack` (tid-indexed), and
    ``blame`` attributes the makespan to phases — which tasks/links
    bound the iteration, sorted by descending seconds.
    """

    makespan: float
    entries: Tuple[TimelineEntry, ...]
    slack: np.ndarray
    blame: Tuple[BlameRow, ...]

    @property
    def critical_tids(self) -> Tuple[int, ...]:
        """Task ids on the makespan-defining chain, execution order."""
        return tuple(entry.task.tid for entry in self.entries)

    def zero_slack_tids(self, eps: float = 1e-9) -> np.ndarray:
        """All task ids with slack <= ``eps`` (every critical chain's tasks)."""
        return np.flatnonzero(self.slack <= eps)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready view: makespan, chain task ids, blame rows."""
        return {
            "makespan": self.makespan,
            "critical_tids": list(self.critical_tids),
            "blame": [row.to_dict() for row in self.blame],
        }

    def to_text(self) -> str:
        """Human-readable blame table (what the ``trace`` CLI prints)."""
        lines = [
            f"critical path: {len(self.entries)} tasks over "
            f"{self.makespan:.6f}s makespan"
        ]
        header = f"  {'phase':<14} {'kind':<8} {'seconds':>10} {'share':>7}  tasks"
        lines += [header, "  " + "-" * (len(header) - 2)]
        for row in self.blame:
            lines.append(
                f"  {row.label:<14} {row.kind:<8} {row.seconds:>10.6f} "
                f"{row.share * 100:>6.1f}%  {row.tasks}"
            )
        return "\n".join(lines)


def blame_table(
    entries: Tuple[TimelineEntry, ...], makespan: float
) -> Tuple[BlameRow, ...]:
    """Aggregate a critical chain into per-phase blame rows.

    Rows are sorted by descending seconds (ties by label) and their
    seconds sum to the chain's total duration — equal to the makespan
    for chains produced by :func:`critical_path` on engine schedules.
    """
    seconds: Dict[Tuple[str, str], float] = {}
    counts: Dict[Tuple[str, str], int] = {}
    for entry in entries:
        key = (entry.task.phase.value, entry.task.kind)
        seconds[key] = seconds.get(key, 0.0) + entry.duration
        counts[key] = counts.get(key, 0) + 1
    rows = [
        BlameRow(
            label=label,
            kind=kind,
            seconds=value,
            share=value / makespan if makespan > 0 else 0.0,
            tasks=counts[(label, kind)],
        )
        for (label, kind), value in seconds.items()
    ]
    rows.sort(key=lambda row: (-row.seconds, row.label))
    return tuple(rows)


def critical_path_report(graph: TaskGraph, timeline: Timeline) -> CriticalPathReport:
    """Chain + slack + blame for one simulated iteration.

    The computed counterpart of the paper's Fig. 2/3 profiling: instead
    of instrumenting a testbed, the simulated schedule is analyzed
    exactly — which phases the makespan-defining chain runs through, and
    how much headroom (slack) every other task has.
    """
    entries = tuple(critical_path(graph, timeline))
    makespan = timeline.makespan
    return CriticalPathReport(
        makespan=makespan,
        entries=entries,
        slack=task_slack(graph, timeline),
        blame=blame_table(entries, makespan),
    )


# ---------------------------------------------------------------------------
# amortized multi-interval makespans (stale factor/inverse refresh)
# ---------------------------------------------------------------------------

#: Phase names of a stale-refresh iteration cycle.
REFRESH = "refresh"
FACTOR_REFRESH = "factor_refresh"
STEADY = "steady"


def interval_weights(
    factor_interval: int, inverse_interval: int
) -> Tuple[Tuple[str, int], ...]:
    """Iteration-shape mix of one stale-refresh cycle.

    With factors refreshed every ``factor_interval`` iterations and
    inverses every ``inverse_interval`` (a multiple of it), one cycle of
    ``inverse_interval`` iterations contains exactly one full refresh
    (factors + inverses), ``inverse_interval / factor_interval - 1``
    factor-only refreshes, and steady-state iterations for the rest.

    Parameters
    ----------
    factor_interval : int
        Iterations between factor recomputations/all-reduces (>= 1).
    inverse_interval : int
        Iterations between inverse recomputations/broadcasts; must be a
        positive multiple of ``factor_interval``.

    Returns
    -------
    tuple of (str, int)
        ``(phase, iterations per cycle)`` pairs with zero-count phases
        omitted; counts sum to ``inverse_interval``.

    Examples
    --------
    >>> interval_weights(1, 1)
    (('refresh', 1),)
    >>> interval_weights(2, 6)
    (('refresh', 1), ('factor_refresh', 2), ('steady', 3))
    """
    for name, value in (
        ("factor_interval", factor_interval),
        ("inverse_interval", inverse_interval),
    ):
        if isinstance(value, bool) or not isinstance(value, int) or value < 1:
            raise ValueError(f"{name} must be an integer >= 1, got {value!r}")
    if inverse_interval % factor_interval != 0:
        raise ValueError(
            "inverse_interval must be a multiple of factor_interval, got "
            f"{inverse_interval} vs {factor_interval}"
        )
    factor_refreshes = inverse_interval // factor_interval
    weights = [
        (REFRESH, 1),
        (FACTOR_REFRESH, factor_refreshes - 1),
        (STEADY, inverse_interval - factor_refreshes),
    ]
    return tuple((phase, count) for phase, count in weights if count > 0)


def amortized_makespan(
    phase_times: Dict[str, float], factor_interval: int, inverse_interval: int
) -> float:
    """Exact per-iteration average time of a stale-refresh cycle.

    Factor/inverse refresh work contributes ``1/K`` of its cost — not by
    scaling a single makespan, but by averaging the *simulated* makespans
    of the distinct iteration shapes over the cycle mix of
    :func:`interval_weights`.

    Parameters
    ----------
    phase_times : dict
        Simulated makespan per phase name; must cover every phase the
        cycle mix contains.
    factor_interval, inverse_interval : int
        The refresh intervals (see :func:`interval_weights`).

    Examples
    --------
    >>> amortized_makespan({"refresh": 1.0}, 1, 1)
    1.0
    >>> amortized_makespan({"refresh": 1.0, "steady": 0.5}, 4, 4)
    0.625
    """
    weights = interval_weights(factor_interval, inverse_interval)
    missing = [phase for phase, _ in weights if phase not in phase_times]
    if missing:
        raise ValueError(f"phase_times missing phases: {missing}")
    total = sum(phase_times[phase] * count for phase, count in weights)
    return total / inverse_interval
