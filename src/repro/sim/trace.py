"""Perfetto-grade trace export of simulated schedules.

:func:`perfetto_trace` turns a :class:`~repro.sim.timeline.Timeline`
into a Chrome/Perfetto JSON trace that tells the whole scheduling story,
not just the slices:

* **process/thread metadata** — one process per rank (``rank 0`` …),
  two named threads per rank (``compute stream``, ``comm stream``),
  mirroring the CUDA-stream/NCCL-queue model the simulator executes;
* **slices** (``ph: "X"``) — one per (task, participating rank), built
  on a columnar fast path over the task-graph arrays (no
  ``TimelineEntry`` objects are materialized for engine schedules);
* **flow events** (``ph: "s"/"f"``) — one arrow per declared dependency
  edge, so clicking a collective shows exactly which kernels gated it;
* **per-rank counter tracks** (``ph: "C"``) — ``comm queue depth`` (comm
  tasks still unfinished on the rank's communication stream) and
  ``outstanding comm (s)`` (their summed remaining seconds — the byte
  backlog at the calibrated link rate);
* a **critical-path track** — a synthetic process replaying the
  zero-slack chain of :func:`repro.sim.analysis.critical_path_report`,
  so the makespan-defining spine is one glance away.

The export is fully deterministic (stable event order, sorted JSON
keys, no wall-clock stamps), so traces diff cleanly across runs.

Load the output at ``ui.perfetto.dev`` (or ``chrome://tracing``)::

    from repro.sim import simulate
    from repro.sim.trace import perfetto_trace, save_trace

    timeline = simulate(graph)
    save_trace("trace.json", perfetto_trace(timeline))
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.sim.analysis import CriticalPathReport, critical_path_report
from repro.sim.task import COMM, TaskGraph
from repro.sim.timeline import Timeline

__all__ = ["perfetto_trace", "save_trace"]

#: Thread ids of the two per-rank streams (matches ``Timeline.to_chrome_trace``).
COMPUTE_TID = 0
COMM_TID = 1

#: Counter-track names emitted per rank.
QUEUE_DEPTH_COUNTER = "comm queue depth"
OUTSTANDING_COMM_COUNTER = "outstanding comm (s)"

#: Category labels of the non-slice event kinds.
FLOW_CATEGORY = "dep"
CRITICAL_CATEGORY = "critical-path"


class _TraceColumns:
    """Flat tid-indexed views of one schedule, from either backing."""

    def __init__(
        self,
        num_ranks: int,
        names: List[str],
        cats: List[str],
        is_comm: np.ndarray,
        start: np.ndarray,
        end: np.ndarray,
        ranks_indptr: np.ndarray,
        ranks_flat: np.ndarray,
        deps_indptr: np.ndarray,
        deps_flat: np.ndarray,
    ):
        self.num_ranks = num_ranks
        self.names = names
        self.cats = cats
        self.is_comm = is_comm
        self.start = start
        self.end = end
        self.ranks_indptr = ranks_indptr
        self.ranks_flat = ranks_flat
        self.deps_indptr = deps_indptr
        self.deps_flat = deps_flat

    @property
    def n(self) -> int:
        return self.start.size

    def first_rank(self, tid: int) -> int:
        """The anchor rank a task's flow endpoints bind to."""
        return int(self.ranks_flat[self.ranks_indptr[tid]])


def _columns_from_graph(graph: TaskGraph, start: np.ndarray, end: np.ndarray) -> _TraceColumns:
    cols = graph.columns()
    n = end.size  # tasks appended after simulate() have no schedule
    return _TraceColumns(
        num_ranks=graph.num_ranks,
        names=graph.task_names()[:n],
        cats=[phase.value for phase in graph.task_phases()[:n]],
        is_comm=cols.is_comm[:n],
        start=start,
        end=end,
        ranks_indptr=cols.ranks_indptr[: n + 1],
        ranks_flat=cols.ranks_flat[: cols.ranks_indptr[n]],
        deps_indptr=cols.deps_indptr[: n + 1],
        deps_flat=cols.deps_flat[: cols.deps_indptr[n]],
    )


def _columns_from_entries(timeline: Timeline) -> _TraceColumns:
    """Object-path fallback for hand-built (entries-only) timelines."""
    entries = sorted(timeline.entries, key=lambda e: e.task.tid)
    n = len(entries)
    names = [e.task.name for e in entries]
    cats = [e.task.phase.value for e in entries]
    is_comm = np.array([e.task.kind == COMM for e in entries], dtype=bool)
    start = np.array([e.start for e in entries], dtype=np.float64)
    end = np.array([e.end for e in entries], dtype=np.float64)
    ranks_flat: List[int] = []
    ranks_indptr = [0]
    deps_flat: List[int] = []
    deps_indptr = [0]
    for entry in entries:
        ranks_flat.extend(entry.task.ranks)
        ranks_indptr.append(len(ranks_flat))
        deps_flat.extend(d for d in entry.task.deps if d < n)
        deps_indptr.append(len(deps_flat))
    return _TraceColumns(
        num_ranks=timeline.num_ranks,
        names=names,
        cats=cats,
        is_comm=is_comm,
        start=start,
        end=end,
        ranks_indptr=np.asarray(ranks_indptr, dtype=np.int64),
        ranks_flat=np.asarray(ranks_flat, dtype=np.int64),
        deps_indptr=np.asarray(deps_indptr, dtype=np.int64),
        deps_flat=np.asarray(deps_flat, dtype=np.int64),
    )


def _metadata_events(tc: _TraceColumns, critical: bool) -> List[dict]:
    events: List[dict] = []
    for rank in range(tc.num_ranks):
        events.append(
            {
                "ph": "M",
                "pid": rank,
                "tid": 0,
                "name": "process_name",
                "args": {"name": f"rank {rank}"},
            }
        )
        events.append(
            {
                "ph": "M",
                "pid": rank,
                "tid": 0,
                "name": "process_sort_index",
                "args": {"sort_index": rank},
            }
        )
        for tid, label in ((COMPUTE_TID, "compute stream"), (COMM_TID, "comm stream")):
            events.append(
                {
                    "ph": "M",
                    "pid": rank,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": label},
                }
            )
            events.append(
                {
                    "ph": "M",
                    "pid": rank,
                    "tid": tid,
                    "name": "thread_sort_index",
                    "args": {"sort_index": tid},
                }
            )
    if critical:
        pid = tc.num_ranks
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "name": "process_name",
                "args": {"name": "critical path"},
            }
        )
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "name": "process_sort_index",
                "args": {"sort_index": tc.num_ranks},
            }
        )
    return events


def _slice_events(tc: _TraceColumns) -> List[dict]:
    """One ``X`` slice per (task, participating rank), columnar."""
    counts = np.diff(tc.ranks_indptr)
    occ_tid = np.repeat(np.arange(tc.n, dtype=np.int64), counts)
    ts = (tc.start[occ_tid] * 1e6).tolist()
    dur = ((tc.end[occ_tid] - tc.start[occ_tid]) * 1e6).tolist()
    stream = tc.is_comm[occ_tid].astype(np.int64).tolist()
    tids = occ_tid.tolist()
    pids = tc.ranks_flat.tolist()
    names, cats = tc.names, tc.cats
    return [
        {
            "name": names[t],
            "cat": cats[t],
            "ph": "X",
            "ts": ts[i],
            "dur": dur[i],
            "pid": pids[i],
            "tid": stream[i],
            "args": {"tid": t},
        }
        for i, t in enumerate(tids)
    ]


def _flow_events(tc: _TraceColumns) -> List[dict]:
    """Dependency edges as ``s``/``f`` flow pairs anchored to slices."""
    counts = np.diff(tc.deps_indptr)
    succ = np.repeat(np.arange(tc.n, dtype=np.int64), counts)
    pred = tc.deps_flat
    events: List[dict] = []
    end_us = (tc.end * 1e6).tolist()
    start_us = (tc.start * 1e6).tolist()
    stream = tc.is_comm.astype(np.int64).tolist()
    anchors = tc.ranks_flat[tc.ranks_indptr[:-1]].tolist()
    for flow_id, (p, s) in enumerate(zip(pred.tolist(), succ.tolist())):
        events.append(
            {
                "name": FLOW_CATEGORY,
                "cat": FLOW_CATEGORY,
                "ph": "s",
                "id": flow_id,
                "ts": end_us[p],
                "pid": anchors[p],
                "tid": stream[p],
            }
        )
        events.append(
            {
                "name": FLOW_CATEGORY,
                "cat": FLOW_CATEGORY,
                "ph": "f",
                "bp": "e",
                "id": flow_id,
                "ts": start_us[s],
                "pid": anchors[s],
                "tid": stream[s],
            }
        )
    return events


def _counter_events(tc: _TraceColumns) -> List[dict]:
    """Per-rank comm-stream backlog counters, stepped at task ends."""
    counts = np.diff(tc.ranks_indptr)
    occ_tid = np.repeat(np.arange(tc.n, dtype=np.int64), counts)
    comm_mask = tc.is_comm[occ_tid]
    comm_tid = occ_tid[comm_mask]
    comm_rank = tc.ranks_flat[comm_mask]
    events: List[dict] = []
    for rank in range(tc.num_ranks):
        mine = comm_tid[comm_rank == rank]
        ends = tc.end[mine]
        durs = tc.end[mine] - tc.start[mine]
        order = np.argsort(ends, kind="stable")
        depth = int(mine.size)
        outstanding = float(durs.sum())
        steps: List[Tuple[float, int, float]] = [(0.0, depth, outstanding)]
        for i in order.tolist():
            depth -= 1
            outstanding -= float(durs[i])
            steps.append((float(ends[i]) * 1e6, depth, outstanding))
        for ts, depth_v, out_v in steps:
            events.append(
                {
                    "name": QUEUE_DEPTH_COUNTER,
                    "ph": "C",
                    "ts": ts,
                    "pid": rank,
                    "args": {"tasks": depth_v},
                }
            )
            events.append(
                {
                    "name": OUTSTANDING_COMM_COUNTER,
                    "ph": "C",
                    "ts": ts,
                    "pid": rank,
                    # Clamp float cancellation so the track ends at exactly 0.
                    "args": {"seconds": max(out_v, 0.0)},
                }
            )
    return events


def _critical_events(tc: _TraceColumns, report: CriticalPathReport) -> List[dict]:
    pid = tc.num_ranks
    events: List[dict] = []
    for entry in report.entries:
        events.append(
            {
                "name": entry.task.name,
                "cat": CRITICAL_CATEGORY,
                "ph": "X",
                "ts": entry.start * 1e6,
                "dur": entry.duration * 1e6,
                "pid": pid,
                "tid": 0,
                "args": {"tid": entry.task.tid, "slack": 0.0},
            }
        )
    return events


def perfetto_trace(
    timeline: Timeline,
    graph: Optional[TaskGraph] = None,
    *,
    flows: bool = True,
    counters: bool = True,
    critical: bool = True,
    report: Optional[CriticalPathReport] = None,
) -> Dict[str, object]:
    """Export ``timeline`` as a Perfetto-loadable Chrome JSON trace dict.

    ``graph`` defaults to the graph the timeline was scheduled from
    (engine timelines carry it); hand-built timelines reconstruct the
    needed columns from their entries.  ``flows``, ``counters`` and
    ``critical`` toggle the flow-event, counter-track and
    critical-path-track sections; ``report`` supplies a precomputed
    :func:`~repro.sim.analysis.critical_path_report` (otherwise one is
    derived when ``critical`` is on and a graph is available).

    Returns a dict with ``traceEvents``, ``displayTimeUnit`` and an
    ``otherData`` summary — pass it to :func:`save_trace` for
    deterministic serialization.
    """
    if graph is None:
        graph = timeline._graph
    state = timeline._columnar()
    if state is not None and (graph is None or graph is state[0]):
        graph, start, end = state
        tc = _columns_from_graph(graph, start, end)
    else:
        tc = _columns_from_entries(timeline)

    cp_report = report
    if critical and cp_report is None:
        if graph is not None:
            cp_report = critical_path_report(graph, timeline)
        else:
            critical = False

    events = _metadata_events(tc, critical=critical and cp_report is not None)
    events += _slice_events(tc)
    if flows:
        events += _flow_events(tc)
    if counters:
        events += _counter_events(tc)
    if critical and cp_report is not None:
        events += _critical_events(tc, cp_report)

    other: Dict[str, object] = {
        "makespan_s": timeline.makespan,
        "num_ranks": tc.num_ranks,
        "tasks": tc.n,
        "events": len(events),
    }
    if cp_report is not None:
        other["critical_path"] = cp_report.to_dict()
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def save_trace(path: Union[str, os.PathLike], trace: Dict[str, object]) -> None:
    """Write a trace dict as deterministic JSON (sorted keys, compact).

    ``path`` may be anything :func:`os.fspath` accepts.
    """
    with open(os.fspath(path), "w") as f:
        json.dump(trace, f, sort_keys=True, separators=(",", ":"))
        f.write("\n")
