"""Discrete-event simulator of a GPU cluster executing one training iteration.

The simulator is the substrate replacing the paper's 64-GPU testbed.  It
models what matters for the paper's claims:

* each rank (GPU) has a **compute stream** and a **communication stream**
  that each execute their tasks in FIFO order (mirroring CUDA streams and
  NCCL's in-order collective queues);
* a collective is a *gang* task that occupies the communication stream of
  every participating rank simultaneously and starts only when all of them
  reach it;
* precedence constraints link tasks across streams and ranks (e.g. the
  all-reduce of factor ``A_l`` depends on its local computation).

Because streams are FIFO, the start time of every task is uniquely
determined by a longest-path computation over the DAG formed by dependency
edges plus per-stream serialization edges; the engine exploits this to run
in O(V + E) and to detect scheduling deadlocks (cyclic waits caused by
mismatched collective orders) exactly.
"""

from repro.sim.task import GraphColumns, Phase, SimTask, TaskGraph, COMPUTE, COMM
from repro.sim.engine import (
    DeadlockError,
    graph_shape_digest,
    simulate,
    simulate_batch,
    simulate_many,
    simulate_plans,
)
from repro.sim.timeline import Breakdown, Timeline, TimelineEntry
from repro.sim.analysis import (
    BlameRow,
    CriticalPathReport,
    amortized_makespan,
    blame_table,
    critical_path,
    critical_path_phases,
    critical_path_report,
    interval_weights,
    stream_lower_bounds,
    task_slack,
)
from repro.sim.trace import perfetto_trace, save_trace

__all__ = [
    "GraphColumns",
    "Phase",
    "SimTask",
    "TaskGraph",
    "COMPUTE",
    "COMM",
    "graph_shape_digest",
    "simulate",
    "simulate_batch",
    "simulate_many",
    "simulate_plans",
    "DeadlockError",
    "Timeline",
    "TimelineEntry",
    "Breakdown",
    "critical_path",
    "critical_path_phases",
    "critical_path_report",
    "CriticalPathReport",
    "BlameRow",
    "blame_table",
    "task_slack",
    "perfetto_trace",
    "save_trace",
    "stream_lower_bounds",
    "interval_weights",
    "amortized_makespan",
]
