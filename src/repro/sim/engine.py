"""Simulation engine: schedules a :class:`TaskGraph` onto FIFO streams.

With FIFO streams the schedule is fully determined: a task starts at the
maximum of (a) the completion times of its declared dependencies and
(b) the completion times of its predecessors on every stream it occupies.
That is a longest-path computation over the DAG of dependency edges plus
stream-serialization edges, solved here with a *level-synchronous* Kahn's
algorithm in O(V+E): tasks are resolved in waves of simultaneously-ready
nodes, and each wave's start times, end times and indegree updates are
single vectorized numpy operations over the graph's flat CSR arrays —
no per-task Python objects are touched on this path.

The wave decomposition depends only on the graph topology, never on task
durations, so it is computed once per graph (and cached) and then priced
against any duration vector.  Fault injection exploits this:
:func:`simulate` accepts an optional ``durations`` override, and
:func:`simulate_batch` prices a whole matrix of perturbed duration
samples against the same cached wave plan in one pass per wave.

If the combined graph has a cycle — e.g. two ranks enqueue the same two
collectives in opposite orders, the classic NCCL deadlock — the engine
raises :class:`DeadlockError` naming the tasks involved and, for each,
the unresolved dependencies it was waiting on.
"""

from __future__ import annotations

import hashlib
import weakref
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs import recorder
from repro.sim.task import TaskGraph
from repro.sim.timeline import Timeline

_REC = recorder()


class DeadlockError(RuntimeError):
    """The task graph cannot be scheduled: cyclic wait between streams.

    ``stuck_task_names`` lists every task that never became ready;
    ``blocked_on`` maps each stuck task name to the names of the
    unresolved dependencies it was still waiting on (its incoming edges
    from other stuck tasks), so the cycle itself is visible in the error
    rather than just its membership.
    """

    def __init__(
        self,
        stuck_task_names: List[str],
        blocked_on: Optional[Dict[str, Tuple[str, ...]]] = None,
    ):
        preview = ", ".join(stuck_task_names[:8])
        if len(stuck_task_names) > 8:
            preview += f", ... ({len(stuck_task_names)} total)"
        message = (
            "scheduling deadlock: cyclic wait between dependency order and "
            f"stream FIFO order involving tasks [{preview}]"
        )
        if blocked_on:
            waits = "; ".join(
                f"{name} <- ({', '.join(deps)})"
                for name, deps in list(blocked_on.items())[:8]
                if deps
            )
            if waits:
                message += f"; blocked on: {waits}"
        super().__init__(message)
        self.stuck_task_names = stuck_task_names
        self.blocked_on: Dict[str, Tuple[str, ...]] = dict(blocked_on or {})


def _ragged_take(
    indptr: np.ndarray, flat: np.ndarray, rows: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Concatenated CSR entries of ``rows`` plus the per-row counts."""
    starts = indptr[rows]
    counts = indptr[rows + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=flat.dtype), counts
    offsets = np.cumsum(counts) - counts
    gather = np.repeat(starts - offsets, counts) + np.arange(total, dtype=np.int64)
    return flat[gather], counts


def _combined_edges(graph: TaskGraph) -> Tuple[np.ndarray, np.ndarray]:
    """(pred, succ) arrays of the combined DAG: declared dependencies plus
    the stream-FIFO edge from each task to its successor on every stream
    it occupies."""
    cols = graph.columns()
    n = cols.n
    # Dependency edges: succ repeated per dependency count.
    dep_counts = cols.deps_indptr[1:] - cols.deps_indptr[:-1]
    dep_succ = np.repeat(np.arange(n, dtype=np.int64), dep_counts)
    dep_pred = cols.deps_flat
    # Stream edges: each (task, rank) occurrence lands on stream
    # 2 * rank + is_comm; occurrences are generated in tid order, so a
    # stable sort by stream id yields each stream's FIFO queue, and
    # consecutive occurrences on the same stream form the edges.
    occ_counts = cols.ranks_indptr[1:] - cols.ranks_indptr[:-1]
    occ_task = np.repeat(np.arange(n, dtype=np.int64), occ_counts)
    occ_stream = 2 * cols.ranks_flat + np.repeat(cols.is_comm, occ_counts)
    order = np.argsort(occ_stream, kind="stable")
    sorted_stream = occ_stream[order]
    sorted_task = occ_task[order]
    same = sorted_stream[1:] == sorted_stream[:-1]
    stream_pred = sorted_task[:-1][same]
    stream_succ = sorted_task[1:][same]
    pred = np.concatenate([dep_pred, stream_pred])
    succ = np.concatenate([dep_succ, stream_succ])
    return pred, succ


def _csr_from_edges(
    keys: np.ndarray, values: np.ndarray, n: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Group ``values`` by ``keys`` into a CSR (indptr, flat) pair."""
    order = np.argsort(keys, kind="stable")
    counts = np.bincount(keys, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, values[order]


def _build_waves(graph: TaskGraph) -> List[Tuple[np.ndarray, ...]]:
    """Topologically decompose ``graph`` into duration-independent waves.

    Each wave is ``(frontier, preds, rows_with_preds, seg_offsets)``:
    the tasks resolved in that wave, the concatenated predecessor ids of
    the frontier, the subset of the frontier that has predecessors, and
    the reduceat segment offsets into ``preds``.  Raises
    :class:`DeadlockError` (with blocked-on dependency names) when the
    combined graph is cyclic.
    """
    cols = graph.columns()
    n = cols.n
    pred, succ = _combined_edges(graph)
    pred_indptr, pred_flat = _csr_from_edges(succ, pred, n)  # preds grouped by task
    succ_indptr, succ_flat = _csr_from_edges(pred, succ, n)  # succs grouped by task
    indegree = pred_indptr[1:] - pred_indptr[:-1]  # fresh array, mutated below

    waves: List[Tuple[np.ndarray, ...]] = []
    resolved = 0
    frontier = np.flatnonzero(indegree == 0)
    while frontier.size:
        resolved += frontier.size
        preds, counts = _ragged_take(pred_indptr, pred_flat, frontier)
        has = counts > 0
        seg_offsets = (np.cumsum(counts) - counts)[has]
        waves.append((frontier, preds, frontier[has], seg_offsets))
        succs, _ = _ragged_take(succ_indptr, succ_flat, frontier)
        if succs.size == 0:
            break
        np.subtract.at(indegree, succs, 1)
        candidates = np.unique(succs)
        frontier = candidates[indegree[candidates] == 0]

    if resolved != n:
        stuck_ids = np.flatnonzero(indegree > 0)
        stuck_set = set(int(t) for t in stuck_ids)
        stuck = [graph.task_name(int(tid)) for tid in stuck_ids]
        blocked_on: Dict[str, Tuple[str, ...]] = {}
        for tid in stuck_ids:
            row = pred_flat[pred_indptr[tid] : pred_indptr[tid + 1]]
            waiting: List[str] = []
            for p in row:
                if int(p) in stuck_set:
                    name = graph.task_name(int(p))
                    if name not in waiting:
                        waiting.append(name)
            blocked_on[graph.task_name(int(tid))] = tuple(waiting)
        raise DeadlockError(stuck, blocked_on)

    return waves


# Wave plans cached per graph; invalidated by identity-checking the
# columns snapshot, which TaskGraph rebuilds whenever tasks are appended.
_WAVES_CACHE: "weakref.WeakKeyDictionary[TaskGraph, Tuple[object, List[Tuple[np.ndarray, ...]]]]"
_WAVES_CACHE = weakref.WeakKeyDictionary()


def _waves(graph: TaskGraph) -> List[Tuple[np.ndarray, ...]]:
    cols = graph.columns()
    cached = _WAVES_CACHE.get(graph)
    if cached is not None and cached[0] is cols:
        return cached[1]
    waves = _build_waves(graph)
    try:
        _WAVES_CACHE[graph] = (cols, waves)
    except TypeError:  # pragma: no cover - non-weakrefable graph subclass
        pass
    return waves


# Shape digests cached per graph, invalidated like the wave cache: by
# identity-checking the columns snapshot.
_SHAPE_CACHE: "weakref.WeakKeyDictionary[TaskGraph, Tuple[object, str]]"
_SHAPE_CACHE = weakref.WeakKeyDictionary()


def graph_shape_digest(graph: TaskGraph) -> str:
    """Digest of a graph's *structure*: everything the schedule shape
    depends on except task durations.

    Two graphs with equal digests have identical dependency CSR arrays,
    stream occupancy (ranks + comm flags), and rank count — so they share
    one wave decomposition and can be priced together in a single batched
    scheduling pass (:func:`simulate_plans`).  Durations are deliberately
    excluded: that is the whole point — dtype/compression variants of one
    fusion plan differ only in durations.
    """
    cols = graph.columns()
    cached = _SHAPE_CACHE.get(graph)
    if cached is not None and cached[0] is cols:
        return cached[1]
    h = hashlib.blake2b(digest_size=16)
    h.update(f"n={cols.n};ranks={graph.num_ranks};".encode())
    for arr in (
        cols.is_comm,
        cols.deps_indptr,
        cols.deps_flat,
        cols.ranks_indptr,
        cols.ranks_flat,
    ):
        h.update(np.ascontiguousarray(arr).tobytes())
        h.update(b"|")
    digest = h.hexdigest()
    try:
        _SHAPE_CACHE[graph] = (cols, digest)
    except TypeError:  # pragma: no cover - non-weakrefable graph subclass
        pass
    return digest


def _resolve_durations(graph: TaskGraph, durations) -> np.ndarray:
    cols = graph.columns()
    if durations is None:
        return cols.durations
    arr = np.asarray(durations, dtype=np.float64)
    if arr.shape != (cols.n,):
        raise ValueError(
            f"durations must have shape ({cols.n},) to match the graph, "
            f"got {arr.shape}"
        )
    return arr


def simulate(graph: TaskGraph, durations: Optional[np.ndarray] = None) -> Timeline:
    """Schedule ``graph`` and return its :class:`Timeline`.

    ``durations``, when given, overrides the per-task durations stored in
    the graph (same order as ``graph.tasks``) without mutating it — this
    is how fault scenarios price straggler-perturbed iterations against
    the unmodified graph.  Raises :class:`DeadlockError` when the
    dependency order conflicts with some stream's FIFO order.
    """
    # The disabled-instrumentation fast path is this one attribute check;
    # benchmarks/bench_kernels.py::test_obs_overhead holds it to <2% of
    # the 64-GPU simulate bench by comparing against _simulate directly.
    if _REC.enabled:
        with _REC.span(
            "sim.simulate", tasks=len(graph), ranks=graph.num_ranks
        ):
            return _simulate(graph, durations)
    return _simulate(graph, durations)


def _simulate(graph: TaskGraph, durations: Optional[np.ndarray]) -> Timeline:
    cols = graph.columns()
    n = cols.n
    if n == 0:
        return Timeline.from_schedule(graph, np.empty(0), np.empty(0))
    dur = _resolve_durations(graph, durations)

    start = np.zeros(n)
    end = np.zeros(n)
    for frontier, preds, rows, seg_offsets in _waves(graph):
        if preds.size:
            start[rows] = np.maximum.reduceat(end[preds], seg_offsets)
        end[frontier] = start[frontier] + dur[frontier]
    return Timeline.from_schedule(graph, start, end)


def simulate_batch(graph: TaskGraph, durations: np.ndarray) -> List[Timeline]:
    """Schedule one graph under many duration samples in a single pass.

    ``durations`` is an ``(S, n)`` matrix — one row per sample.  The wave
    decomposition is computed once and every wave's start/end update runs
    vectorized across the whole sample axis, so pricing S fault-scenario
    samples costs one scheduling pass instead of S.  Each row's timeline
    is bit-identical to ``simulate(graph, durations[s])``.
    """
    if _REC.enabled:
        samples = np.asarray(durations).shape[0] if np.ndim(durations) == 2 else 0
        with _REC.span(
            "sim.simulate_batch", tasks=len(graph), samples=int(samples)
        ):
            return _simulate_batch(graph, durations)
    return _simulate_batch(graph, durations)


def _batch_schedule(
    graph: TaskGraph, dur: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Start/end matrices of ``graph``'s wave plan under ``(S, n)`` durations.

    The shared scheduling kernel of :func:`simulate_batch` (many duration
    samples, one graph) and :func:`simulate_plans` (one sample each of
    many structurally-identical graphs): row ``s`` is bit-identical to
    what ``simulate`` computes for ``dur[s]``, because the wave arrays —
    and therefore every ``reduceat`` segment order — depend only on the
    structure the callers already matched.
    """
    n = graph.columns().n
    num_samples = dur.shape[0]
    start = np.zeros((num_samples, n))
    end = np.zeros((num_samples, n))
    for frontier, preds, rows, seg_offsets in _waves(graph):
        if preds.size:
            start[:, rows] = np.maximum.reduceat(end[:, preds], seg_offsets, axis=1)
        end[:, frontier] = start[:, frontier] + dur[:, frontier]
    return start, end


def _simulate_batch(graph: TaskGraph, durations: np.ndarray) -> List[Timeline]:
    cols = graph.columns()
    n = cols.n
    dur = np.asarray(durations, dtype=np.float64)
    if dur.ndim != 2 or dur.shape[1] != n:
        raise ValueError(
            f"durations must have shape (samples, {n}) to match the graph, "
            f"got {dur.shape}"
        )
    num_samples = dur.shape[0]
    if num_samples == 0:
        return []
    if n == 0:
        empty = np.empty(0)
        return [Timeline.from_schedule(graph, empty, empty) for _ in range(num_samples)]

    start, end = _batch_schedule(graph, dur)
    return [
        Timeline.from_schedule(graph, start[s].copy(), end[s].copy())
        for s in range(num_samples)
    ]


def simulate_many(
    graphs: Iterable[TaskGraph],
    durations: Optional[Sequence[Optional[np.ndarray]]] = None,
) -> List[Timeline]:
    """Schedule a batch of graphs and return one :class:`Timeline` each.

    Sweep drivers (Fig. 9/13, the scaling extension) simulate hundreds of
    independent iteration graphs; this is the batch entry point so they
    make one call per sweep instead of one per cell.  ``durations``, when
    given, supplies one per-graph duration override (or ``None``) per
    entry.  Consecutive entries that reference the *same* graph object
    with overrides are priced together through :func:`simulate_batch`, so
    a fault sweep of S samples over one graph is a single batched
    scheduling pass.
    """
    graph_list = list(graphs)
    if durations is None:
        return [simulate(graph) for graph in graph_list]
    dur_list = list(durations)
    if len(dur_list) != len(graph_list):
        raise ValueError(
            f"durations must have one entry per graph: "
            f"{len(dur_list)} != {len(graph_list)}"
        )
    out: List[Optional[Timeline]] = [None] * len(graph_list)
    i = 0
    while i < len(graph_list):
        j = i + 1
        while (
            j < len(graph_list)
            and graph_list[j] is graph_list[i]
            and dur_list[j] is not None
            and dur_list[i] is not None
        ):
            j += 1
        if j - i > 1:
            stacked = np.stack([np.asarray(d, dtype=np.float64) for d in dur_list[i:j]])
            out[i:j] = simulate_batch(graph_list[i], stacked)
        else:
            out[i] = simulate(graph_list[i], dur_list[i])
        i = j
    return out  # type: ignore[return-value]


def simulate_plans(
    graphs: Iterable[TaskGraph],
    durations: Optional[Sequence[Optional[np.ndarray]]] = None,
    *,
    batch_sizes: Optional[List[int]] = None,
) -> List[Timeline]:
    """Schedule many *structurally-identical* graphs in shared batched passes.

    Where :func:`simulate_many` only coalesces consecutive references to
    the *same* graph object, this groups **distinct** graph objects by
    their :func:`graph_shape_digest` — same dependency/stream structure,
    different durations, exactly what dtype/compression variants of one
    fusion plan produce — and prices each group through a single
    vectorized scheduling pass over the first member's cached wave plan.
    Every returned timeline is bit-identical to ``simulate(graph_i,
    durations_i)`` (each row is wrapped against its *own* graph, so task
    names and breakdowns stay per-candidate).

    ``durations`` optionally overrides per-graph durations (``None``
    entries use each graph's stored durations).  ``batch_sizes``, when
    given a list, receives the size of each scheduling pass issued — the
    autotuner's telemetry hook.
    """
    graph_list = list(graphs)
    if durations is None:
        dur_list: List[Optional[np.ndarray]] = [None] * len(graph_list)
    else:
        dur_list = list(durations)
        if len(dur_list) != len(graph_list):
            raise ValueError(
                f"durations must have one entry per graph: "
                f"{len(dur_list)} != {len(graph_list)}"
            )
    if _REC.enabled:
        with _REC.span("sim.simulate_plans", graphs=len(graph_list)):
            return _simulate_plans(graph_list, dur_list, batch_sizes)
    return _simulate_plans(graph_list, dur_list, batch_sizes)


def _simulate_plans(
    graph_list: List[TaskGraph],
    dur_list: List[Optional[np.ndarray]],
    batch_sizes: Optional[List[int]],
) -> List[Timeline]:
    groups: Dict[str, List[int]] = {}
    for i, graph in enumerate(graph_list):
        groups.setdefault(graph_shape_digest(graph), []).append(i)

    out: List[Optional[Timeline]] = [None] * len(graph_list)
    for members in groups.values():
        if len(members) == 1:
            i = members[0]
            out[i] = simulate(graph_list[i], dur_list[i])
            if batch_sizes is not None:
                batch_sizes.append(1)
            continue
        ref = graph_list[members[0]]
        n = ref.columns().n
        if batch_sizes is not None:
            batch_sizes.append(len(members))
        if n == 0:
            empty = np.empty(0)
            for i in members:
                out[i] = Timeline.from_schedule(graph_list[i], empty, empty)
            continue
        stacked = np.stack(
            [_resolve_durations(graph_list[i], dur_list[i]) for i in members]
        )
        start, end = _batch_schedule(ref, stacked)
        for s, i in enumerate(members):
            out[i] = Timeline.from_schedule(
                graph_list[i], start[s].copy(), end[s].copy()
            )
    return out  # type: ignore[return-value]
