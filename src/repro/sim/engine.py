"""Simulation engine: schedules a :class:`TaskGraph` onto FIFO streams.

With FIFO streams the schedule is fully determined: a task starts at the
maximum of (a) the completion times of its declared dependencies and
(b) the completion times of its predecessors on every stream it occupies.
That is a longest-path computation over the DAG of dependency edges plus
stream-serialization edges, solved here with a *level-synchronous* Kahn's
algorithm in O(V+E): tasks are resolved in waves of simultaneously-ready
nodes, and each wave's start times, end times and indegree updates are
single vectorized numpy operations over the graph's flat CSR arrays —
no per-task Python objects are touched on this path.

If the combined graph has a cycle — e.g. two ranks enqueue the same two
collectives in opposite orders, the classic NCCL deadlock — the engine
raises :class:`DeadlockError` naming the tasks involved.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

import numpy as np

from repro.sim.task import TaskGraph
from repro.sim.timeline import Timeline


class DeadlockError(RuntimeError):
    """The task graph cannot be scheduled: cyclic wait between streams."""

    def __init__(self, stuck_task_names: List[str]):
        preview = ", ".join(stuck_task_names[:8])
        if len(stuck_task_names) > 8:
            preview += f", ... ({len(stuck_task_names)} total)"
        super().__init__(
            "scheduling deadlock: cyclic wait between dependency order and "
            f"stream FIFO order involving tasks [{preview}]"
        )
        self.stuck_task_names = stuck_task_names


def _ragged_take(
    indptr: np.ndarray, flat: np.ndarray, rows: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Concatenated CSR entries of ``rows`` plus the per-row counts."""
    starts = indptr[rows]
    counts = indptr[rows + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=flat.dtype), counts
    offsets = np.cumsum(counts) - counts
    gather = np.repeat(starts - offsets, counts) + np.arange(total, dtype=np.int64)
    return flat[gather], counts


def _combined_edges(graph: TaskGraph) -> Tuple[np.ndarray, np.ndarray]:
    """(pred, succ) arrays of the combined DAG: declared dependencies plus
    the stream-FIFO edge from each task to its successor on every stream
    it occupies."""
    cols = graph.columns()
    n = cols.n
    # Dependency edges: succ repeated per dependency count.
    dep_counts = cols.deps_indptr[1:] - cols.deps_indptr[:-1]
    dep_succ = np.repeat(np.arange(n, dtype=np.int64), dep_counts)
    dep_pred = cols.deps_flat
    # Stream edges: each (task, rank) occurrence lands on stream
    # 2 * rank + is_comm; occurrences are generated in tid order, so a
    # stable sort by stream id yields each stream's FIFO queue, and
    # consecutive occurrences on the same stream form the edges.
    occ_counts = cols.ranks_indptr[1:] - cols.ranks_indptr[:-1]
    occ_task = np.repeat(np.arange(n, dtype=np.int64), occ_counts)
    occ_stream = 2 * cols.ranks_flat + np.repeat(cols.is_comm, occ_counts)
    order = np.argsort(occ_stream, kind="stable")
    sorted_stream = occ_stream[order]
    sorted_task = occ_task[order]
    same = sorted_stream[1:] == sorted_stream[:-1]
    stream_pred = sorted_task[:-1][same]
    stream_succ = sorted_task[1:][same]
    pred = np.concatenate([dep_pred, stream_pred])
    succ = np.concatenate([dep_succ, stream_succ])
    return pred, succ


def _csr_from_edges(
    keys: np.ndarray, values: np.ndarray, n: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Group ``values`` by ``keys`` into a CSR (indptr, flat) pair."""
    order = np.argsort(keys, kind="stable")
    counts = np.bincount(keys, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, values[order]


def simulate(graph: TaskGraph) -> Timeline:
    """Schedule ``graph`` and return its :class:`Timeline`.

    Raises :class:`DeadlockError` when the dependency order conflicts with
    some stream's FIFO order.
    """
    cols = graph.columns()
    n = cols.n
    if n == 0:
        return Timeline.from_schedule(graph, np.empty(0), np.empty(0))

    pred, succ = _combined_edges(graph)
    pred_indptr, pred_flat = _csr_from_edges(succ, pred, n)  # preds grouped by task
    succ_indptr, succ_flat = _csr_from_edges(pred, succ, n)  # succs grouped by task
    indegree = pred_indptr[1:] - pred_indptr[:-1]  # fresh array, mutated below

    durations = cols.durations
    start = np.zeros(n)
    end = np.zeros(n)
    resolved = 0
    frontier = np.flatnonzero(indegree == 0)
    while frontier.size:
        resolved += frontier.size
        preds, counts = _ragged_take(pred_indptr, pred_flat, frontier)
        if preds.size:
            has = counts > 0
            seg_offsets = (np.cumsum(counts) - counts)[has]
            start[frontier[has]] = np.maximum.reduceat(end[preds], seg_offsets)
        end[frontier] = start[frontier] + durations[frontier]
        succs, _ = _ragged_take(succ_indptr, succ_flat, frontier)
        if succs.size == 0:
            break
        np.subtract.at(indegree, succs, 1)
        candidates = np.unique(succs)
        frontier = candidates[indegree[candidates] == 0]

    if resolved != n:
        stuck = [graph.task_name(int(tid)) for tid in np.flatnonzero(indegree > 0)]
        raise DeadlockError(stuck)

    return Timeline.from_schedule(graph, start, end)


def simulate_many(graphs: Iterable[TaskGraph]) -> List[Timeline]:
    """Schedule a batch of graphs and return one :class:`Timeline` each.

    Sweep drivers (Fig. 9/13, the scaling extension) simulate hundreds of
    independent iteration graphs; this is the batch entry point so they
    make one call per sweep instead of one per cell.  Scheduling is
    embarrassingly parallel across graphs — each is a single vectorized
    :func:`simulate` pass — so the batch API is a thin loop today, but it
    gives callers one place that a future parallel backend can accelerate
    without touching call sites.
    """
    return [simulate(graph) for graph in graphs]
