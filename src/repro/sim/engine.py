"""Simulation engine: schedules a :class:`TaskGraph` onto FIFO streams.

With FIFO streams the schedule is fully determined: a task starts at the
maximum of (a) the completion times of its declared dependencies and
(b) the completion times of its predecessors on every stream it occupies.
That is a longest-path computation over the DAG of dependency edges plus
stream-serialization edges, solved here with Kahn's algorithm in O(V+E).

If the combined graph has a cycle — e.g. two ranks enqueue the same two
collectives in opposite orders, the classic NCCL deadlock — the engine
raises :class:`DeadlockError` naming the tasks involved.
"""

from __future__ import annotations

from collections import deque
from typing import List

from repro.sim.task import TaskGraph
from repro.sim.timeline import Timeline, TimelineEntry


class DeadlockError(RuntimeError):
    """The task graph cannot be scheduled: cyclic wait between streams."""

    def __init__(self, stuck_task_names: List[str]):
        preview = ", ".join(stuck_task_names[:8])
        if len(stuck_task_names) > 8:
            preview += f", ... ({len(stuck_task_names)} total)"
        super().__init__(
            "scheduling deadlock: cyclic wait between dependency order and "
            f"stream FIFO order involving tasks [{preview}]"
        )
        self.stuck_task_names = stuck_task_names


def simulate(graph: TaskGraph) -> Timeline:
    """Schedule ``graph`` and return its :class:`Timeline`.

    Raises :class:`DeadlockError` when the dependency order conflicts with
    some stream's FIFO order.
    """
    tasks = graph.tasks
    n = len(tasks)
    queues = graph.stream_queues()

    # Predecessors of each task in the combined DAG: declared dependencies
    # plus the previous task on every stream the task occupies.
    predecessors: List[List[int]] = [list(t.deps) for t in tasks]
    for queue in queues.values():
        for prev_tid, next_tid in zip(queue, queue[1:]):
            predecessors[next_tid].append(prev_tid)

    indegree = [len(preds) for preds in predecessors]
    successors: List[List[int]] = [[] for _ in range(n)]
    for tid, preds in enumerate(predecessors):
        for pred in preds:
            successors[pred].append(tid)

    start_time = [0.0] * n
    end_time = [0.0] * n
    ready = deque(tid for tid in range(n) if indegree[tid] == 0)
    resolved = 0
    while ready:
        tid = ready.popleft()
        start = 0.0
        for pred in predecessors[tid]:
            if end_time[pred] > start:
                start = end_time[pred]
        start_time[tid] = start
        end_time[tid] = start + tasks[tid].duration
        resolved += 1
        for succ in successors[tid]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)

    if resolved != n:
        stuck = [t.name for t in tasks if indegree[t.tid] > 0]
        raise DeadlockError(stuck)

    entries = [
        TimelineEntry(task=tasks[tid], start=start_time[tid], end=end_time[tid])
        for tid in range(n)
    ]
    return Timeline(num_ranks=graph.num_ranks, entries=entries)
