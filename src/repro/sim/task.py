"""Task-graph representation consumed by the simulator engine.

A :class:`TaskGraph` is an append-only builder: schedule builders in
:mod:`repro.core.schedule` create one task per kernel or collective of a
training iteration.  Insertion order *matters* — it defines the FIFO
order of each stream, exactly as issuing order defines CUDA stream /
NCCL queue order on a real system.

Storage is *columnar*: the graph keeps flat per-field lists (names,
durations, CSR-style dependency and rank arrays) instead of one Python
object per task, so the engine can lift the whole graph into numpy
without touching 25k ``SimTask`` instances.  The classic object view is
still available through :attr:`TaskGraph.tasks`, which materializes
``SimTask`` objects lazily (tests and analysis code use it; the hot
build/simulate path never does).
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.utils.validation import check_non_negative

COMPUTE = "compute"
COMM = "comm"


class Phase(enum.Enum):
    """Iteration phases used by the paper's time breakdowns (Figs. 2, 9)."""

    FORWARD = "FF"
    BACKWARD = "BP"
    GRAD_COMM = "GradComm"
    FACTOR_COMP = "FactorComp"
    FACTOR_COMM = "FactorComm"
    INVERSE_COMP = "InverseComp"
    INVERSE_COMM = "InverseComm"
    PRECONDITION = "Precond"
    UPDATE = "Update"
    OTHER = "Other"

    @property
    def is_comm(self) -> bool:
        """Whether the phase represents communication time."""
        return self in (Phase.GRAD_COMM, Phase.FACTOR_COMM, Phase.INVERSE_COMM)


#: Breakdown key used by the paper for the merged forward+backward bar.
FF_BP_KEY = "FF & BP"


@dataclass(frozen=True)
class SimTask:
    """One unit of work: a kernel on one rank or a collective over many.

    ``ranks`` has exactly one element for ``kind == COMPUTE``; for
    ``kind == COMM`` it lists every participating rank (gang scheduling).
    ``duration`` is in seconds and applies to all participants.
    """

    tid: int
    name: str
    phase: Phase
    kind: str
    ranks: Tuple[int, ...]
    duration: float
    deps: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.kind not in (COMPUTE, COMM):
            raise ValueError(f"kind must be {COMPUTE!r} or {COMM!r}, got {self.kind!r}")
        if not self.ranks:
            raise ValueError("a task must run on at least one rank")
        if self.kind == COMPUTE and len(self.ranks) != 1:
            raise ValueError(f"compute task {self.name!r} must run on exactly one rank")
        if len(set(self.ranks)) != len(self.ranks):
            raise ValueError(f"duplicate ranks in task {self.name!r}: {self.ranks}")
        check_non_negative("duration", self.duration)

    @property
    def streams(self) -> Tuple[Tuple[int, str], ...]:
        """(rank, stream-kind) pairs this task occupies."""
        return tuple((r, self.kind) for r in self.ranks)


class GraphColumns(NamedTuple):
    """Flat numpy view of a :class:`TaskGraph` (the engine's input).

    ``deps``/``ranks`` are CSR ragged arrays: task ``t``'s entries live at
    ``flat[indptr[t]:indptr[t + 1]]``.
    """

    n: int
    durations: np.ndarray  # float64 (n,)
    is_comm: np.ndarray  # bool (n,)
    deps_indptr: np.ndarray  # int64 (n + 1,)
    deps_flat: np.ndarray  # int64
    ranks_indptr: np.ndarray  # int64 (n + 1,)
    ranks_flat: np.ndarray  # int64


class TaskGraph:
    """Append-only builder of an iteration's task DAG.

    ``num_ranks`` fixes the cluster size; every task must name ranks in
    ``range(num_ranks)``.
    """

    def __init__(self, num_ranks: int, tasks: Optional[List[SimTask]] = None):
        if num_ranks < 1:
            raise ValueError(f"num_ranks must be >= 1, got {num_ranks}")
        self.num_ranks = num_ranks
        self._n = 0
        self._names: List[str] = []
        self._phases: List[Phase] = []
        self._is_comm: List[bool] = []
        self._durations: List[float] = []
        self._deps_flat: List[int] = []
        self._deps_indptr: List[int] = [0]
        self._ranks_flat: List[int] = []
        self._ranks_indptr: List[int] = [0]
        self._tasks_cache: Optional[List[SimTask]] = None
        self._columns_cache: Optional[GraphColumns] = None
        if tasks:
            self._tasks_cache = list(tasks)
            self._absorb_external_tasks()

    # -- object view (lazy) ---------------------------------------------------

    @property
    def tasks(self) -> List[SimTask]:
        """Tasks as :class:`SimTask` objects, materialized on first access.

        The same list object is returned on every access, so callers may
        append pre-built ``SimTask`` instances directly (the engine picks
        them up); :meth:`_absorb_external_tasks` folds such appends back
        into the columnar store.
        """
        if self._tasks_cache is None:
            self._tasks_cache = [self._make_task(tid) for tid in range(self._n)]
        return self._tasks_cache

    def _make_task(self, tid: int) -> SimTask:
        d0, d1 = self._deps_indptr[tid], self._deps_indptr[tid + 1]
        r0, r1 = self._ranks_indptr[tid], self._ranks_indptr[tid + 1]
        return SimTask(
            tid,
            self._names[tid],
            self._phases[tid],
            COMM if self._is_comm[tid] else COMPUTE,
            tuple(self._ranks_flat[r0:r1]),
            self._durations[tid],
            tuple(self._deps_flat[d0:d1]),
        )

    def _absorb_external_tasks(self) -> None:
        """Fold ``SimTask`` objects appended directly to :attr:`tasks` into
        the columnar store (they were validated by ``SimTask.__post_init__``;
        dependency ids are taken as-is, which lets tests express the cyclic
        graphs the deadlock detector exists for)."""
        cache = self._tasks_cache
        if cache is None or len(cache) == self._n:
            return
        for task in cache[self._n :]:
            self._names.append(task.name)
            self._phases.append(task.phase)
            self._is_comm.append(task.kind == COMM)
            self._durations.append(task.duration)
            self._deps_flat.extend(task.deps)
            self._deps_indptr.append(len(self._deps_flat))
            self._ranks_flat.extend(task.ranks)
            self._ranks_indptr.append(len(self._ranks_flat))
        self._n = len(cache)
        self._columns_cache = None

    # -- columnar appends -----------------------------------------------------

    def _append_row(
        self,
        name: str,
        phase: Phase,
        is_comm: bool,
        ranks: Sequence[int],
        duration: float,
        deps: Tuple[int, ...],
    ) -> int:
        tid = self._n
        self._names.append(name)
        self._phases.append(phase)
        self._is_comm.append(is_comm)
        self._durations.append(duration)
        self._deps_flat.extend(deps)
        self._deps_indptr.append(len(self._deps_flat))
        self._ranks_flat.extend(ranks)
        self._ranks_indptr.append(len(self._ranks_flat))
        self._n = tid + 1
        if self._tasks_cache is not None:
            self._tasks_cache.append(self._make_task(tid))
        self._columns_cache = None
        return tid

    def _add(
        self,
        name: str,
        phase: Phase,
        kind: str,
        ranks: Sequence[int],
        duration: float,
        deps: Iterable[int],
    ) -> int:
        self._absorb_external_tasks()
        deps = tuple(deps)
        tid = self._n
        for dep in deps:
            if not 0 <= dep < tid:
                raise ValueError(f"task {name!r} depends on unknown task id {dep}")
        for rank in ranks:
            if not 0 <= rank < self.num_ranks:
                raise ValueError(f"task {name!r} names rank {rank} outside 0..{self.num_ranks - 1}")
        if not ranks:
            raise ValueError("a task must run on at least one rank")
        if len(set(ranks)) != len(ranks):
            raise ValueError(f"duplicate ranks in task {name!r}: {tuple(ranks)}")
        check_non_negative("duration", duration)
        return self._append_row(name, phase, kind == COMM, ranks, duration, deps)

    def add_compute(
        self,
        name: str,
        phase: Phase,
        rank: int,
        duration: float,
        deps: Iterable[int] = (),
    ) -> int:
        """Append a compute kernel on ``rank``; returns its task id."""
        return self._add(name, phase, COMPUTE, (rank,), duration, deps)

    def add_collective(
        self,
        name: str,
        phase: Phase,
        ranks: Sequence[int],
        duration: float,
        deps: Iterable[int] = (),
    ) -> int:
        """Append a gang communication task over ``ranks``; returns its id."""
        return self._add(name, phase, COMM, tuple(ranks), duration, deps)

    def add_compute_batch(
        self,
        name: str,
        phase: Phase,
        ranks: Sequence[int],
        duration: float,
        deps_per_rank: Optional[Sequence[Sequence[int]]] = None,
    ) -> List[int]:
        """Append one compute kernel per rank in ``ranks`` (shared name,
        phase and duration — the builders' "same kernel on every GPU"
        pattern); returns the task ids in ``ranks`` order.

        ``deps_per_rank[k]`` gives the dependencies of the task on
        ``ranks[k]``; ``None`` means no dependencies anywhere.  Validation
        is hoisted out of the per-rank loop, which matters on ~25k-task
        graphs.
        """
        self._absorb_external_tasks()
        check_non_negative("duration", duration)
        if deps_per_rank is not None and len(deps_per_rank) != len(ranks):
            raise ValueError(
                f"deps_per_rank has {len(deps_per_rank)} entries for {len(ranks)} ranks"
            )
        first_tid = self._n
        for rank in ranks:
            if not 0 <= rank < self.num_ranks:
                raise ValueError(
                    f"task {name!r} names rank {rank} outside 0..{self.num_ranks - 1}"
                )
        if deps_per_rank is not None:
            for deps in deps_per_rank:
                for dep in deps:
                    if not 0 <= dep < first_tid:
                        raise ValueError(f"task {name!r} depends on unknown task id {dep}")
        count = len(ranks)
        if count == 0:
            return []
        # Bulk-extend every column (one kernel per rank shares name, phase
        # and duration); per-task Python overhead is what the 25k-task
        # builders spend most of their time on otherwise.
        self._names.extend([name] * count)
        self._phases.extend([phase] * count)
        self._is_comm.extend([False] * count)
        self._durations.extend([duration] * count)
        deps_flat, deps_indptr = self._deps_flat, self._deps_indptr
        if deps_per_rank is None:
            deps_indptr.extend([len(deps_flat)] * count)
        else:
            for deps in deps_per_rank:
                deps_flat.extend(deps)
                deps_indptr.append(len(deps_flat))
        self._ranks_flat.extend(ranks)
        base = self._ranks_indptr[-1]
        self._ranks_indptr.extend(range(base + 1, base + count + 1))
        tids = list(range(first_tid, first_tid + count))
        self._n = first_tid + count
        self._columns_cache = None
        if self._tasks_cache is not None:
            self._tasks_cache.extend(self._make_task(tid) for tid in tids)
        return tids

    # -- views ----------------------------------------------------------------

    def columns(self) -> GraphColumns:
        """The graph as flat numpy arrays (cached until the next append)."""
        self._absorb_external_tasks()
        if self._columns_cache is None:
            self._columns_cache = GraphColumns(
                n=self._n,
                durations=np.asarray(self._durations, dtype=np.float64),
                is_comm=np.asarray(self._is_comm, dtype=bool),
                deps_indptr=np.asarray(self._deps_indptr, dtype=np.int64),
                deps_flat=np.asarray(self._deps_flat, dtype=np.int64),
                ranks_indptr=np.asarray(self._ranks_indptr, dtype=np.int64),
                ranks_flat=np.asarray(self._ranks_flat, dtype=np.int64),
            )
        return self._columns_cache

    def task_name(self, tid: int) -> str:
        """Name of task ``tid`` without materializing objects."""
        self._absorb_external_tasks()
        return self._names[tid]

    def task_phase(self, tid: int) -> Phase:
        """Phase of task ``tid`` without materializing objects."""
        self._absorb_external_tasks()
        return self._phases[tid]

    def task_names(self) -> List[str]:
        """All task names in tid order (a copy; no object materialization)."""
        self._absorb_external_tasks()
        return list(self._names)

    def task_phases(self) -> List[Phase]:
        """All task phases in tid order (a copy; no object materialization)."""
        self._absorb_external_tasks()
        return list(self._phases)

    def phase_counts(self) -> Dict[str, int]:
        """Task count per phase name (no object materialization)."""
        self._absorb_external_tasks()
        # Count by enum identity first: 25k ``.name`` attribute lookups
        # are the expensive part, not the counting.
        return {phase.name: count for phase, count in Counter(self._phases).items()}

    def stream_queues(self) -> Dict[Tuple[int, str], List[int]]:
        """FIFO queue (task ids in insertion order) per (rank, stream)."""
        self._absorb_external_tasks()
        queues: Dict[Tuple[int, str], List[int]] = {}
        indptr, flat = self._ranks_indptr, self._ranks_flat
        for tid in range(self._n):
            kind = COMM if self._is_comm[tid] else COMPUTE
            for rank in flat[indptr[tid] : indptr[tid + 1]]:
                queues.setdefault((rank, kind), []).append(tid)
        return queues

    def __len__(self) -> int:
        self._absorb_external_tasks()
        return self._n
