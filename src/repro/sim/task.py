"""Task-graph representation consumed by the simulator engine.

A :class:`TaskGraph` is an append-only builder: schedule builders in
:mod:`repro.core.schedule` create one task per kernel or collective of a
training iteration.  Insertion order *matters* — it defines the FIFO
order of each stream, exactly as issuing order defines CUDA stream /
NCCL queue order on a real system.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.utils.validation import check_non_negative

COMPUTE = "compute"
COMM = "comm"


class Phase(enum.Enum):
    """Iteration phases used by the paper's time breakdowns (Figs. 2, 9)."""

    FORWARD = "FF"
    BACKWARD = "BP"
    GRAD_COMM = "GradComm"
    FACTOR_COMP = "FactorComp"
    FACTOR_COMM = "FactorComm"
    INVERSE_COMP = "InverseComp"
    INVERSE_COMM = "InverseComm"
    PRECONDITION = "Precond"
    UPDATE = "Update"
    OTHER = "Other"

    @property
    def is_comm(self) -> bool:
        """Whether the phase represents communication time."""
        return self in (Phase.GRAD_COMM, Phase.FACTOR_COMM, Phase.INVERSE_COMM)


#: Breakdown key used by the paper for the merged forward+backward bar.
FF_BP_KEY = "FF & BP"


@dataclass(frozen=True)
class SimTask:
    """One unit of work: a kernel on one rank or a collective over many.

    ``ranks`` has exactly one element for ``kind == COMPUTE``; for
    ``kind == COMM`` it lists every participating rank (gang scheduling).
    ``duration`` is in seconds and applies to all participants.
    """

    tid: int
    name: str
    phase: Phase
    kind: str
    ranks: Tuple[int, ...]
    duration: float
    deps: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.kind not in (COMPUTE, COMM):
            raise ValueError(f"kind must be {COMPUTE!r} or {COMM!r}, got {self.kind!r}")
        if not self.ranks:
            raise ValueError("a task must run on at least one rank")
        if self.kind == COMPUTE and len(self.ranks) != 1:
            raise ValueError(f"compute task {self.name!r} must run on exactly one rank")
        if len(set(self.ranks)) != len(self.ranks):
            raise ValueError(f"duplicate ranks in task {self.name!r}: {self.ranks}")
        check_non_negative("duration", self.duration)

    @property
    def streams(self) -> Tuple[Tuple[int, str], ...]:
        """(rank, stream-kind) pairs this task occupies."""
        return tuple((r, self.kind) for r in self.ranks)


@dataclass
class TaskGraph:
    """Append-only builder of an iteration's task DAG.

    ``num_ranks`` fixes the cluster size; every task must name ranks in
    ``range(num_ranks)``.
    """

    num_ranks: int
    tasks: List[SimTask] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.num_ranks < 1:
            raise ValueError(f"num_ranks must be >= 1, got {self.num_ranks}")

    def _add(
        self,
        name: str,
        phase: Phase,
        kind: str,
        ranks: Sequence[int],
        duration: float,
        deps: Iterable[int],
    ) -> int:
        deps = tuple(deps)
        tid = len(self.tasks)
        for dep in deps:
            if not 0 <= dep < tid:
                raise ValueError(f"task {name!r} depends on unknown task id {dep}")
        for rank in ranks:
            if not 0 <= rank < self.num_ranks:
                raise ValueError(f"task {name!r} names rank {rank} outside 0..{self.num_ranks - 1}")
        self.tasks.append(SimTask(tid, name, phase, kind, tuple(ranks), duration, deps))
        return tid

    def add_compute(
        self,
        name: str,
        phase: Phase,
        rank: int,
        duration: float,
        deps: Iterable[int] = (),
    ) -> int:
        """Append a compute kernel on ``rank``; returns its task id."""
        return self._add(name, phase, COMPUTE, (rank,), duration, deps)

    def add_collective(
        self,
        name: str,
        phase: Phase,
        ranks: Sequence[int],
        duration: float,
        deps: Iterable[int] = (),
    ) -> int:
        """Append a gang communication task over ``ranks``; returns its id."""
        return self._add(name, phase, COMM, ranks, duration, deps)

    def stream_queues(self) -> Dict[Tuple[int, str], List[int]]:
        """FIFO queue (task ids in insertion order) per (rank, stream)."""
        queues: Dict[Tuple[int, str], List[int]] = {}
        for task in self.tasks:
            for stream in task.streams:
                queues.setdefault(stream, []).append(task.tid)
        return queues

    def __len__(self) -> int:
        return len(self.tasks)
