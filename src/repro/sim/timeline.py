"""Timelines and per-phase breakdowns of simulated iterations.

The paper reports two time views we reproduce here:

* **iteration time** — the makespan of the task graph (Table III);
* **stacked breakdowns** (Figs. 2, 9, 10, 12) — every instant of the
  critical rank's iteration attributed to exactly one phase, where
  communication counts only when it is *not* hidden by computation
  ("the non-overlapped communication time is the elapsed time of
  communication whose overlapped parts are excluded", Section VI-D).
"""

from __future__ import annotations

import json
import os
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.sim.task import COMM, COMPUTE, FF_BP_KEY, Phase, SimTask

if TYPE_CHECKING:
    from repro.sim.task import TaskGraph

#: Bar-stack order used across the paper's figures.
PAPER_CATEGORIES = (
    FF_BP_KEY,
    Phase.GRAD_COMM.value,
    Phase.FACTOR_COMP.value,
    Phase.FACTOR_COMM.value,
    Phase.INVERSE_COMP.value,
    Phase.INVERSE_COMM.value,
)


@dataclass(frozen=True)
class TimelineEntry:
    """One scheduled task occurrence."""

    task: SimTask
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class Breakdown:
    """Stacked per-phase attribution of one rank's iteration time.

    ``seconds`` maps phase labels to attributed wall time; values sum to
    ``total`` exactly (idle gaps are charged to the phase the rank was
    waiting on, matching how a profiler-based breakdown would bill them).
    """

    rank: int
    total: float
    seconds: Dict[str, float]

    def paper_categories(self) -> Dict[str, float]:
        """Collapse to the six stacked categories of Figs. 2 and 9.

        Forward and backward merge into "FF & BP"; preconditioning, the
        parameter update, and anything else fold into the nearest compute
        category ("FF & BP") as the paper's instrumentation does.
        """
        out = {key: 0.0 for key in PAPER_CATEGORIES}
        for label, value in self.seconds.items():
            if label in out:
                out[label] += value
            elif label in (Phase.FORWARD.value, Phase.BACKWARD.value):
                out[FF_BP_KEY] += value
            else:
                out[FF_BP_KEY] += value
        return out

    def get(self, label: str) -> float:
        """Attributed seconds for ``label`` (0.0 when absent)."""
        return self.seconds.get(label, 0.0)


class Timeline:
    """The full schedule produced by :func:`repro.sim.simulate`.

    Internally the schedule is just two float64 vectors (start/end per
    task) beside the source graph's columnar arrays; the object view
    (:attr:`entries`) is materialized lazily on first access, so summary
    queries like :attr:`makespan` on a 25k-task schedule never build 25k
    :class:`TimelineEntry` instances.
    """

    def __init__(self, num_ranks: int, entries: Optional[Sequence[TimelineEntry]] = None):
        self.num_ranks = num_ranks
        self._entries: Optional[List[TimelineEntry]] = list(entries) if entries is not None else []
        self._graph: Optional["TaskGraph"] = None
        self._start: Optional[np.ndarray] = None
        self._end: Optional[np.ndarray] = None
        self._rank_ends: Optional[np.ndarray] = None

    @classmethod
    def from_schedule(
        cls, graph: "TaskGraph", start: np.ndarray, end: np.ndarray
    ) -> "Timeline":
        """Wrap the engine's start/end vectors without materializing entries."""
        timeline = cls(graph.num_ranks)
        timeline._entries = None
        timeline._graph = graph
        timeline._start = start
        timeline._end = end
        return timeline

    @property
    def entries(self) -> List[TimelineEntry]:
        """All scheduled tasks as :class:`TimelineEntry` objects (lazy)."""
        if self._entries is None:
            assert self._graph is not None and self._start is not None and self._end is not None
            tasks = self._graph.tasks
            # Size by the schedule vectors, not the live graph: tasks
            # appended after simulate() have no start/end here.
            self._entries = [
                TimelineEntry(task=tasks[tid], start=float(self._start[tid]), end=float(self._end[tid]))
                for tid in range(self._end.size)
            ]
        return self._entries

    @property
    def makespan(self) -> float:
        """End-to-end iteration time (max task end over all ranks)."""
        if self._entries is None and self._end is not None:
            return float(self._end.max()) if self._end.size else 0.0
        return max((e.end for e in self.entries), default=0.0)

    # -- columnar fast paths --------------------------------------------------
    #
    # Schedules built by the engine carry flat start/end vectors beside
    # the graph's columnar arrays; summary queries (critical rank, per
    # rank horizons, breakdowns) run directly on those arrays instead of
    # materializing and scanning 25k ``TimelineEntry`` objects.  Every
    # fast path reproduces the object path bit-exactly (same boundary
    # order, same float accumulation order) — asserted by
    # ``tests/test_sim_timeline.py``.

    def _columnar(self) -> Optional[Tuple["TaskGraph", np.ndarray, np.ndarray]]:
        if self._graph is None or self._start is None or self._end is None:
            return None
        return self._graph, self._start, self._end

    def _rank_end_vector(self) -> Optional[np.ndarray]:
        """Per-rank completion times from the columnar arrays (cached)."""
        state = self._columnar()
        if state is None:
            return None
        if self._rank_ends is None:
            graph, _, end = state
            cols = graph.columns()
            n = end.size  # tasks appended after simulate() have no schedule
            counts = np.diff(cols.ranks_indptr[: n + 1])
            flat_tids = np.repeat(np.arange(n), counts)
            flat_ranks = cols.ranks_flat[: cols.ranks_indptr[n]]
            ends = np.zeros(self.num_ranks, dtype=np.float64)
            np.maximum.at(ends, flat_ranks, end[flat_tids])
            self._rank_ends = ends
        return self._rank_ends

    def _rank_tids(self, rank: int) -> np.ndarray:
        """Scheduled task ids involving ``rank``, in (start, end) order."""
        graph, start, end = self._columnar()
        cols = graph.columns()
        n = end.size
        counts = np.diff(cols.ranks_indptr[: n + 1])
        flat_tids = np.repeat(np.arange(n), counts)
        tids = flat_tids[cols.ranks_flat[: cols.ranks_indptr[n]] == rank]
        order = np.lexsort((end[tids], start[tids]))
        return tids[order]

    def rank_entries(self, rank: int, kind: Optional[str] = None) -> List[TimelineEntry]:
        """Entries involving ``rank``, optionally filtered by stream kind."""
        selected = [
            e
            for e in self.entries
            if rank in e.task.ranks and (kind is None or e.task.kind == kind)
        ]
        selected.sort(key=lambda e: (e.start, e.end))
        return selected

    def rank_end(self, rank: int) -> float:
        """Completion time of the last task involving ``rank``."""
        ends = self._rank_end_vector()
        if ends is not None:
            return float(ends[rank])
        return max((e.end for e in self.entries if rank in e.task.ranks), default=0.0)

    def critical_rank(self) -> int:
        """The rank that finishes last (defines iteration time)."""
        ends = self._rank_end_vector()
        if ends is not None:
            return int(np.argmax(ends))  # first max, like the object path
        return max(range(self.num_ranks), key=self.rank_end)

    def busy_by_phase(self, rank: int) -> Dict[str, float]:
        """Total busy time per phase on ``rank`` (overlaps double-counted)."""
        out: Dict[str, float] = {}
        for entry in self.rank_entries(rank):
            label = entry.task.phase.value
            out[label] = out.get(label, 0.0) + entry.duration
        return out

    def _fast_breakdown(self, rank: int) -> Breakdown:
        """Columnar :meth:`breakdown`: same attribution, array lookups.

        Positive-duration tasks of one (rank, stream) never overlap (the
        engine serializes each stream), so "the entry covering [a, b)" is
        a binary search over that stream's start times instead of a scan.
        Boundary set, attribution priority, and float accumulation order
        are identical to the object path.
        """
        graph, start, end = self._columnar()
        horizon = self.rank_end(rank)
        seconds: Dict[str, float] = {}
        if horizon <= 0.0:
            return Breakdown(rank=rank, total=horizon if horizon > 0 else 0.0, seconds=seconds)

        tids = self._rank_tids(rank)
        starts = start[tids]
        ends = end[tids]
        is_comm = graph.columns().is_comm[tids]
        labels = [graph.task_phase(int(t)).value for t in tids]
        positive = ends > starts

        def stream(mask: np.ndarray) -> Tuple[List[float], List[float], List[int]]:
            idx = np.flatnonzero(mask & positive)
            return starts[idx].tolist(), ends[idx].tolist(), idx.tolist()

        comp_starts, comp_ends, comp_idx = stream(~is_comm)
        comm_starts, comm_ends, comm_idx = stream(is_comm)
        all_starts = starts.tolist()

        boundaries = np.unique(
            np.concatenate((np.array([0.0, horizon]), starts, ends))
        ).tolist()
        for a, b in zip(boundaries, boundaries[1:]):
            if b > horizon:
                break
            segment = b - a
            if segment <= 0:
                continue
            label = None
            for s_starts, s_ends, s_idx in (
                (comp_starts, comp_ends, comp_idx),
                (comm_starts, comm_ends, comm_idx),
            ):
                pos = bisect_right(s_starts, a) - 1
                if pos >= 0 and s_ends[pos] >= b:
                    label = labels[s_idx[pos]]
                    break
            if label is None:
                pos = bisect_left(all_starts, a)
                label = labels[pos] if pos < len(all_starts) else Phase.OTHER.value
            seconds[label] = seconds.get(label, 0.0) + segment
        return Breakdown(rank=rank, total=horizon, seconds=seconds)

    def breakdown(self, rank: Optional[int] = None) -> Breakdown:
        """Stacked breakdown on ``rank`` (default: the critical rank).

        Attribution rules per elementary time segment of [0, rank end]:

        1. covered by a compute task  -> that task's phase;
        2. else covered by a comm task -> that task's phase (this is the
           *non-overlapped* communication time);
        3. else (idle, waiting)       -> the phase of the next task to
           start on this rank, i.e. what the rank is blocked on.
        """
        if rank is None:
            rank = self.critical_rank()
        if self._columnar() is not None:
            return self._fast_breakdown(rank)
        entries = self.rank_entries(rank)
        horizon = self.rank_end(rank)
        seconds: Dict[str, float] = {}
        if horizon <= 0.0:
            return Breakdown(rank=rank, total=0.0, seconds=seconds)

        boundaries = sorted({0.0, horizon}
                            | {e.start for e in entries}
                            | {e.end for e in entries})
        compute = [e for e in entries if e.task.kind == COMPUTE and e.duration > 0]
        comm = [e for e in entries if e.task.kind == COMM and e.duration > 0]
        starts = sorted(entries, key=lambda e: e.start)

        def covering(pool: List[TimelineEntry], a: float, b: float) -> Optional[TimelineEntry]:
            for e in pool:
                if e.start <= a and e.end >= b:
                    return e
            return None

        def next_starting(b: float) -> Optional[TimelineEntry]:
            for e in starts:
                if e.start >= b:
                    return e
            return None

        for a, b in zip(boundaries, boundaries[1:]):
            if b > horizon:
                break
            segment = b - a
            if segment <= 0:
                continue
            entry = covering(compute, a, b) or covering(comm, a, b)
            if entry is None:
                entry = next_starting(a)
            label = entry.task.phase.value if entry is not None else Phase.OTHER.value
            seconds[label] = seconds.get(label, 0.0) + segment
        return Breakdown(rank=rank, total=horizon, seconds=seconds)

    def to_chrome_trace(self) -> List[dict]:
        """Chrome ``chrome://tracing`` events (one pid per rank, tid per stream).

        Engine schedules take a columnar fast path over the task-graph
        arrays (no :class:`TimelineEntry` materialization); the event
        list is identical to the object path's.  For the full Perfetto
        export — flow events, counter tracks, stream metadata, the
        critical-path track — see :func:`repro.sim.trace.perfetto_trace`.
        """
        state = self._columnar()
        if state is not None:
            graph, start, end = state
            cols = graph.columns()
            n = end.size  # tasks appended after simulate() have no schedule
            names = graph.task_names()
            cats = [phase.value for phase in graph.task_phases()]
            counts = np.diff(cols.ranks_indptr[: n + 1])
            occ_tid = np.repeat(np.arange(n, dtype=np.int64), counts)
            ts = (start[occ_tid] * 1e6).tolist()
            dur = ((end[occ_tid] - start[occ_tid]) * 1e6).tolist()
            stream = cols.is_comm[occ_tid].astype(np.int64).tolist()
            pids = cols.ranks_flat[: cols.ranks_indptr[n]].tolist()
            return [
                {
                    "name": names[t],
                    "cat": cats[t],
                    "ph": "X",
                    "ts": ts[i],
                    "dur": dur[i],
                    "pid": pids[i],
                    "tid": stream[i],
                }
                for i, t in enumerate(occ_tid.tolist())
            ]
        events = []
        for entry in self.entries:
            for rank in entry.task.ranks:
                events.append(
                    {
                        "name": entry.task.name,
                        "cat": entry.task.phase.value,
                        "ph": "X",
                        "ts": entry.start * 1e6,
                        "dur": entry.duration * 1e6,
                        "pid": rank,
                        "tid": 0 if entry.task.kind == COMPUTE else 1,
                    }
                )
        return events

    def save_chrome_trace(self, path: Union[str, os.PathLike]) -> None:
        """Write the Chrome trace JSON to ``path`` (str or ``os.PathLike``)
        with deterministic (sorted) key order."""
        with open(os.fspath(path), "w") as f:
            json.dump({"traceEvents": self.to_chrome_trace()}, f, sort_keys=True)
