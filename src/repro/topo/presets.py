"""Named cluster-topology presets for CLIs and sweeps.

The autotuner and the ``autotune`` CLI subcommand need cluster shapes
addressable by name (``--topology multi-rack``); these presets are the
64-GPU scenario set the topology experiments sweep — same GPU count
everywhere, so differences are purely topological.

Examples
--------
>>> topology_preset_names()
('flat', 'multi-node', 'pcie-eth', 'multi-rack', 'heterogeneous')
>>> named_topology("multi_rack").world_size     # spelling-insensitive
64
>>> print(describe_topology_preset("flat"))
the paper's testbed fabric: 64 GPUs on one full-bandwidth IB switch
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.topo.graph import ClusterTopology, flat, heterogeneous, multi_node, multi_rack

#: Name -> builder for the standard 64-GPU scenario shapes.
TOPOLOGY_PRESETS: Dict[str, Callable[[], ClusterTopology]] = {
    "flat": lambda: flat(64, name="flat-64 (paper fabric)"),
    "multi-node": lambda: multi_node(
        8, 8, intra="nvlink", inter="ib", name="8 nodes x 8 nvlink / ib"
    ),
    "pcie-eth": lambda: multi_node(
        16, 4, intra="pcie", inter="ethernet", name="16 nodes x 4 pcie / eth"
    ),
    "multi-rack": lambda: multi_rack(
        4, 4, 4, intra="nvlink", inter="ib", spine="ethernet",
        name="4 racks x 4 x 4 / eth spine",
    ),
    "heterogeneous": lambda: heterogeneous(
        ((7, 8, "nvlink"), (1, 8, "pcie")), inter="ib",
        name="7 nvlink + 1 pcie node",
    ),
}

#: One-line human description per preset (same keys as the builders;
#: what ``autotune --list-topologies`` prints).
TOPOLOGY_PRESET_DESCRIPTIONS: Dict[str, str] = {
    "flat": "the paper's testbed fabric: 64 GPUs on one full-bandwidth IB switch",
    "multi-node": "8 nodes of 8 NVLink-connected GPUs, InfiniBand between nodes",
    "pcie-eth": "16 nodes of 4 PCIe GPUs on commodity ethernet — the slow-fabric case",
    "multi-rack": "4 racks of 4x4 NVLink nodes, IB in-rack, ethernet spine across racks",
    "heterogeneous": "7 NVLink nodes plus 1 straggler PCIe node behind InfiniBand",
}


def _normalize(name: str) -> str:
    return name.strip().lower().replace("_", "-").replace(" ", "-")


def topology_preset_names() -> Tuple[str, ...]:
    """Preset names in registration order.

    Returns
    -------
    tuple of str
        The names :func:`named_topology` accepts.
    """
    return tuple(TOPOLOGY_PRESETS)


def named_topology(name: str) -> ClusterTopology:
    """Build the preset topology called ``name`` (case-insensitive).

    Parameters
    ----------
    name : str
        A preset name; underscores/spaces/case are normalized, so
        ``"Multi Rack"`` and ``"multi_rack"`` both resolve.

    Returns
    -------
    ClusterTopology
        A freshly built topology (presets are builders, not singletons).
    """
    key = _normalize(name)
    if key not in TOPOLOGY_PRESETS:
        raise KeyError(
            f"unknown topology preset {name!r}; options: {topology_preset_names()}"
        )
    return TOPOLOGY_PRESETS[key]()


def describe_topology_preset(name: str) -> str:
    """One-line human description of a preset (what ``--list-topologies`` prints)."""
    key = _normalize(name)
    if key not in TOPOLOGY_PRESET_DESCRIPTIONS:
        raise KeyError(
            f"unknown topology preset {name!r}; options: {topology_preset_names()}"
        )
    return TOPOLOGY_PRESET_DESCRIPTIONS[key]
