"""Named cluster-topology presets for CLIs and sweeps.

The autotuner and the ``autotune`` CLI subcommand need cluster shapes
addressable by name (``--topology multi-rack``); these presets are the
64-GPU scenario set the topology experiments sweep — same GPU count
everywhere, so differences are purely topological.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.topo.graph import ClusterTopology, flat, heterogeneous, multi_node, multi_rack

#: Name -> builder for the standard 64-GPU scenario shapes.
TOPOLOGY_PRESETS: Dict[str, Callable[[], ClusterTopology]] = {
    "flat": lambda: flat(64, name="flat-64 (paper fabric)"),
    "multi-node": lambda: multi_node(
        8, 8, intra="nvlink", inter="ib", name="8 nodes x 8 nvlink / ib"
    ),
    "pcie-eth": lambda: multi_node(
        16, 4, intra="pcie", inter="ethernet", name="16 nodes x 4 pcie / eth"
    ),
    "multi-rack": lambda: multi_rack(
        4, 4, 4, intra="nvlink", inter="ib", spine="ethernet",
        name="4 racks x 4 x 4 / eth spine",
    ),
    "heterogeneous": lambda: heterogeneous(
        ((7, 8, "nvlink"), (1, 8, "pcie")), inter="ib",
        name="7 nvlink + 1 pcie node",
    ),
}


def topology_preset_names() -> Tuple[str, ...]:
    """Preset names in registration order."""
    return tuple(TOPOLOGY_PRESETS)


def named_topology(name: str) -> ClusterTopology:
    """Build the preset topology called ``name`` (case-insensitive)."""
    key = name.strip().lower().replace("_", "-").replace(" ", "-")
    if key not in TOPOLOGY_PRESETS:
        raise KeyError(
            f"unknown topology preset {name!r}; options: {topology_preset_names()}"
        )
    return TOPOLOGY_PRESETS[key]()
