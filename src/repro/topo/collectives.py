"""Collective-algorithm cost models over a :class:`ClusterTopology`.

Each model prices one collective algorithm on one topology as an affine
function of the message size, ``t(m) = alpha + beta * m`` — the same
family as the paper's Eq. 14/27 fits — but with ``alpha`` and ``beta``
*derived* from the topology's link latencies and bandwidths instead of
measured on a testbed:

* :class:`RingAllReduce` — the flat ring (what NCCL runs when it ignores
  the hierarchy): ``2 (P-1)`` pipeline hops, each element moves
  ``2 (P-1)/P`` times over the *bottleneck* link.
* :class:`TreeAllReduce` — double-binary-tree reduce+broadcast:
  logarithmic latency, but a bandwidth term discounted by
  :data:`TREE_BANDWIDTH_EFFICIENCY` (trees keep interior links busier
  than a ring does).
* :class:`HierarchicalAllReduce` — reduce-scatter inside each level,
  ring across the next, all-gather back down.  Level ``i`` only moves
  ``1 / prod(inner group sizes)`` of the message across its (slower)
  link — the reason hierarchical wins on multi-rack fabrics.
* :class:`RingBroadcast` / :class:`TreeBroadcast` /
  :class:`HierarchicalBroadcast` — the matching one-to-all variants.

All models satisfy the :class:`repro.perf.models.CommModelLike` protocol
(``time_symmetric``) plus the richer :class:`LinearCommModel` surface
(``time``, ``alpha``, ``beta``, ``saturating_size``), so planners,
schedule builders, and the simulator consume them unchanged;
``as_linear()`` converts to a plain (hashable, comparable)
:class:`LinearCommModel` for embedding in a
:class:`repro.perf.ClusterPerfProfile`.

``launch`` is the topology-independent software startup of one
collective (kernel launches, rendezvous); the paper's measured alphas
are dominated by it.  :mod:`repro.perf.topology` calibrates the launch
constants so the flat 64-GPU topology reproduces the paper's fits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Tuple, Type

from repro.perf.models import LinearCommModel, symmetric_elements
from repro.topo.graph import (
    DEFAULT_ELEMENT_BYTES,
    ClusterTopology,
    Link,
    log2_ceil,
)
from repro.utils.validation import check_non_negative

#: Fraction of ring bus bandwidth a double binary tree sustains at large
#: message sizes (NCCL's trees trade bandwidth for latency).
TREE_BANDWIDTH_EFFICIENCY = 0.7


@dataclass(frozen=True)
class CollectiveCostModel:
    """Base: affine cost derived from a topology; subclasses fill alpha/beta."""

    topology: ClusterTopology
    launch: float = 0.0
    element_bytes: int = DEFAULT_ELEMENT_BYTES
    #: Derived coefficients, computed once in __post_init__.
    alpha: float = field(init=False, default=0.0)
    beta: float = field(init=False, default=0.0)

    def __post_init__(self) -> None:
        check_non_negative("launch", self.launch)
        if self.element_bytes < 1:
            raise ValueError(f"element_bytes must be >= 1, got {self.element_bytes}")
        if self.topology.world_size == 1:
            # Nothing to communicate with: collectives are free, matching
            # scaled_cluster_profile(1).
            return
        hop_alpha, beta = self._derive()
        object.__setattr__(self, "alpha", self.launch + hop_alpha)
        object.__setattr__(self, "beta", beta)

    def _derive(self) -> Tuple[float, float]:
        """Return (latency seconds, per-element seconds) for this algorithm."""
        raise NotImplementedError

    # -- LinearCommModel-compatible surface ---------------------------------

    def time(self, num_elements: float) -> float:
        """Predicted time to run this collective on ``num_elements`` elements."""
        check_non_negative("num_elements", num_elements)
        return self.alpha + self.beta * num_elements

    def time_symmetric(self, d: int) -> float:
        """Predicted time for a packed symmetric ``d x d`` matrix (CommModelLike)."""
        return self.time(symmetric_elements(d))

    def time_bytes(self, num_bytes: float) -> float:
        """Predicted time to move ``num_bytes`` bytes with this collective.

        Reduced-precision / compressed transfers are priced by byte
        volume: ``beta`` is per element of ``element_bytes`` bytes, so
        the equivalent element count is ``num_bytes / element_bytes``.
        """
        return self.time(num_bytes / self.element_bytes)

    def saturating_size(self) -> float:
        """Message size where transfer time equals startup time."""
        if self.beta == 0:
            return math.inf
        return self.alpha / self.beta

    def as_linear(self) -> LinearCommModel:
        """Collapse to the paper's plain alpha-beta model (hashable)."""
        return LinearCommModel(alpha=self.alpha, beta=self.beta)

    # -- shared helpers -----------------------------------------------------

    def _per_element(self, link: Link) -> float:
        return link.element_time(self.element_bytes)


# --- all-reduce ------------------------------------------------------------


@dataclass(frozen=True)
class RingAllReduce(CollectiveCostModel):
    """Flat ring over all P GPUs: reduce-scatter + all-gather.

    ``2 (P-1)`` latency hops; every element crosses the bottleneck link
    ``2 (P-1)/P`` times.  Topology-oblivious: a multi-rack ring pays the
    spine's bandwidth for the *whole* message.
    """

    def _derive(self) -> Tuple[float, float]:
        p = self.topology.world_size
        if p == 1:
            return 0.0, 0.0
        link = self.topology.bottleneck_link()
        hops = 2.0 * (p - 1)
        return hops * link.latency, 2.0 * (p - 1) / p * self._per_element(link)


@dataclass(frozen=True)
class TreeAllReduce(CollectiveCostModel):
    """Double binary tree: reduce up one tree, broadcast down its mirror.

    ``2 ceil(log2 P)`` latency hops — far fewer than the ring for small
    messages — but each element moves twice over interior links that a
    tree keeps only ~:data:`TREE_BANDWIDTH_EFFICIENCY` as busy as a ring.
    """

    def _derive(self) -> Tuple[float, float]:
        p = self.topology.world_size
        if p == 1:
            return 0.0, 0.0
        link = self.topology.bottleneck_link()
        hops = 2.0 * log2_ceil(p)
        beta = 2.0 * self._per_element(link) / TREE_BANDWIDTH_EFFICIENCY
        return hops * link.latency, beta


@dataclass(frozen=True)
class HierarchicalAllReduce(CollectiveCostModel):
    """Reduce-scatter within each level, ring at the top, all-gather down.

    Equivalent to running a ring all-reduce *per level* on that level's
    share of the message: level ``i`` with group size ``g`` pays
    ``2 (g-1)`` hops and moves ``2 (g-1)/g * m / prod(inner sizes)``
    elements over its own link.  Slow outer links (IB, spine ethernet)
    therefore see the message shrunk by the product of the inner fan-outs
    — the hierarchy dividend.  With uneven groups the hop count follows
    the largest group but the surviving share follows the *smallest*
    (its members carry the biggest leftover chunk upward), both pessimal.
    """

    def _derive(self) -> Tuple[float, float]:
        alpha, beta = 0.0, 0.0
        share = 1.0
        levels = self.topology.levels()
        divisors = self.topology.level_share_divisors()
        for (group_size, link), divisor in zip(levels, divisors):
            if group_size == 1:
                continue
            alpha += 2.0 * (group_size - 1) * link.latency
            beta += 2.0 * (group_size - 1) / group_size * self._per_element(link) * share
            share /= divisor
        return alpha, beta


# --- broadcast -------------------------------------------------------------


@dataclass(frozen=True)
class RingBroadcast(CollectiveCostModel):
    """Pipelined ring broadcast: ``P-1`` store-and-forward hops, chunked."""

    def _derive(self) -> Tuple[float, float]:
        p = self.topology.world_size
        if p == 1:
            return 0.0, 0.0
        link = self.topology.bottleneck_link()
        return (p - 1) * link.latency, self._per_element(link)


@dataclass(frozen=True)
class TreeBroadcast(CollectiveCostModel):
    """Pipelined binomial-tree broadcast: ``ceil(log2 P)`` stages."""

    def _derive(self) -> Tuple[float, float]:
        p = self.topology.world_size
        if p == 1:
            return 0.0, 0.0
        link = self.topology.bottleneck_link()
        return log2_ceil(p) * link.latency, self._per_element(link)


@dataclass(frozen=True)
class HierarchicalBroadcast(CollectiveCostModel):
    """Tree to the level leaders, then broadcast within each level.

    Chunk pipelining overlaps the levels, so the bandwidth term is the
    *slowest* level's (max), while every level contributes its
    logarithmic latency.
    """

    def _derive(self) -> Tuple[float, float]:
        alpha, beta = 0.0, 0.0
        for group_size, link in self.topology.levels():
            if group_size == 1:
                continue
            alpha += log2_ceil(group_size) * link.latency
            beta = max(beta, self._per_element(link))
        return alpha, beta


#: algorithm name -> (all-reduce model, broadcast model)
ALGORITHMS: Dict[str, Tuple[Type[CollectiveCostModel], Type[CollectiveCostModel]]] = {
    "ring": (RingAllReduce, RingBroadcast),
    "tree": (TreeAllReduce, TreeBroadcast),
    "hierarchical": (HierarchicalAllReduce, HierarchicalBroadcast),
}


def allreduce_model(
    topology: ClusterTopology, algorithm: str, launch: float = 0.0, element_bytes: int = DEFAULT_ELEMENT_BYTES
) -> CollectiveCostModel:
    """Instantiate the named all-reduce algorithm on ``topology``."""
    if algorithm not in ALGORITHMS:
        raise KeyError(f"unknown algorithm {algorithm!r}; options: {sorted(ALGORITHMS)}")
    return ALGORITHMS[algorithm][0](topology, launch=launch, element_bytes=element_bytes)


def broadcast_model(
    topology: ClusterTopology, algorithm: str, launch: float = 0.0, element_bytes: int = DEFAULT_ELEMENT_BYTES
) -> CollectiveCostModel:
    """Instantiate the named broadcast algorithm on ``topology``."""
    if algorithm not in ALGORITHMS:
        raise KeyError(f"unknown algorithm {algorithm!r}; options: {sorted(ALGORITHMS)}")
    return ALGORITHMS[algorithm][1](topology, launch=launch, element_bytes=element_bytes)
