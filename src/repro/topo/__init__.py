"""Topology-aware cluster modeling.

The paper prices every collective with one flat alpha-beta fit from one
64-GPU InfiniBand testbed; this package replaces that single cost
surface with a *model of the cluster itself*:

* :mod:`repro.topo.graph` — a hierarchical topology graph
  (:class:`Link`, :class:`NodeSpec`, :class:`Switch`,
  :class:`ClusterTopology`) with builders for the common shapes
  (:func:`flat`, :func:`multi_node`, :func:`multi_rack`,
  :func:`heterogeneous`) and link presets (NVLink, PCIe, 100G IB,
  ethernet, plus ``PAPER_IB`` fitted to the paper's constants).
* :mod:`repro.topo.collectives` — per-algorithm collective cost models
  (ring / double binary tree / hierarchical, all-reduce and broadcast)
  that derive the paper's ``alpha``/``beta`` from link latencies and
  bandwidths and satisfy :class:`repro.perf.models.CommModelLike`.

The bridge back into the planner/simulator stack is
:func:`repro.perf.topology_profile`, which packages these models as a
standard :class:`repro.perf.ClusterPerfProfile`.
"""

from repro.topo.graph import (
    DEFAULT_ELEMENT_BYTES,
    ETHERNET_10G,
    ETHERNET_25G,
    IB_100G,
    LINK_PRESETS,
    NVLINK,
    PAPER_IB,
    PCIE3,
    ClusterTopology,
    Link,
    NodeSpec,
    Switch,
    flat,
    heterogeneous,
    multi_node,
    multi_rack,
    resolve_link,
)
from repro.topo.presets import (
    TOPOLOGY_PRESETS,
    describe_topology_preset,
    named_topology,
    topology_preset_names,
)
from repro.topo.collectives import (
    ALGORITHMS,
    TREE_BANDWIDTH_EFFICIENCY,
    CollectiveCostModel,
    HierarchicalAllReduce,
    HierarchicalBroadcast,
    RingAllReduce,
    RingBroadcast,
    TreeAllReduce,
    TreeBroadcast,
    allreduce_model,
    broadcast_model,
)

__all__ = [
    "Link",
    "NodeSpec",
    "Switch",
    "ClusterTopology",
    "flat",
    "multi_node",
    "multi_rack",
    "heterogeneous",
    "resolve_link",
    "LINK_PRESETS",
    "DEFAULT_ELEMENT_BYTES",
    "PAPER_IB",
    "NVLINK",
    "PCIE3",
    "IB_100G",
    "ETHERNET_25G",
    "ETHERNET_10G",
    "CollectiveCostModel",
    "RingAllReduce",
    "TreeAllReduce",
    "HierarchicalAllReduce",
    "RingBroadcast",
    "TreeBroadcast",
    "HierarchicalBroadcast",
    "ALGORITHMS",
    "TREE_BANDWIDTH_EFFICIENCY",
    "allreduce_model",
    "broadcast_model",
    "TOPOLOGY_PRESETS",
    "describe_topology_preset",
    "named_topology",
    "topology_preset_names",
]
