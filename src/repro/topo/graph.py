"""Hierarchical cluster-topology graph.

The paper calibrates one flat alpha-beta cost surface to one 64-GPU
InfiniBand testbed; this module describes *clusters* instead, so the
same planners and simulator can be pointed at hardware we do not have.
A :class:`ClusterTopology` is a three-level tree:

    spine link  --  rack switches  --  nodes  --  GPUs

Every edge is a :class:`Link` (latency in seconds per hop, bandwidth in
bytes per second).  GPUs inside a node talk over the node's intra link
(NVLink, PCIe); nodes inside a rack talk through the rack's
:class:`Switch`; racks talk over the spine link.  Nodes may be
heterogeneous — a single PCIe node in an NVLink cluster drags every
synchronous collective down to its speed, which is exactly the effect
the bottleneck accessors below expose to the cost models in
:mod:`repro.topo.collectives`.

All classes are frozen (hashable), so topology-derived profiles flow
through the memoized planner caches in :mod:`repro.core.schedule`
unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.perf.models import WIRE_ELEMENT_BYTES
from repro.utils.validation import check_positive

#: Default wire dtype of every collective, the paper's fp32 format
#: (shared with the runtime's TrafficCounter byte accounting).
DEFAULT_ELEMENT_BYTES = WIRE_ELEMENT_BYTES


@dataclass(frozen=True)
class Link:
    """One interconnect edge: per-hop latency (s) and bandwidth (bytes/s)."""

    name: str
    latency: float
    bandwidth: float

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError(f"link {self.name!r} has negative latency {self.latency}")
        check_positive(f"bandwidth of link {self.name!r}", self.bandwidth)

    def element_time(self, element_bytes: int = DEFAULT_ELEMENT_BYTES) -> float:
        """Seconds to move one element across this link."""
        return element_bytes / self.bandwidth


# --- link presets ----------------------------------------------------------
#
# Effective (not peak) figures for common fabrics.  ``PAPER_IB`` is special:
# its bandwidth is *fitted* so that a flat 64-GPU ring all-reduce over it
# reproduces the paper's published beta_ar = 1.45e-9 s/element exactly
# (2 * 63/64 * 4 bytes / beta_ar ~= 5.43 GB/s of effective per-ring
# bandwidth — the four GPUs of each testbed node share one 100Gb/s NIC).

PAPER_IB = Link("paper-ib", latency=5.0e-6, bandwidth=2.0 * (63.0 / 64.0) * 4.0 / 1.45e-9)
NVLINK = Link("nvlink", latency=1.0e-6, bandwidth=130.0e9)
PCIE3 = Link("pcie3", latency=3.0e-6, bandwidth=12.0e9)
IB_100G = Link("ib-100g", latency=2.0e-6, bandwidth=10.0e9)
ETHERNET_25G = Link("eth-25g", latency=15.0e-6, bandwidth=2.8e9)
ETHERNET_10G = Link("eth-10g", latency=25.0e-6, bandwidth=1.1e9)

LINK_PRESETS: Dict[str, Link] = {
    "paper_ib": PAPER_IB,
    "nvlink": NVLINK,
    "pcie": PCIE3,
    "ib": IB_100G,
    "ethernet": ETHERNET_25G,
    "ethernet_10g": ETHERNET_10G,
}


def resolve_link(link: "Link | str") -> Link:
    """Accept a :class:`Link` or a preset name from :data:`LINK_PRESETS`."""
    if isinstance(link, Link):
        return link
    if link in LINK_PRESETS:
        return LINK_PRESETS[link]
    raise KeyError(f"unknown link preset {link!r}; options: {sorted(LINK_PRESETS)}")


def composite_link(name: str, links: Sequence[Link]) -> Link:
    """The pessimal composite of ``links``: slowest bandwidth, worst latency.

    Synchronous phases spanning several links finish with the slowest
    one.  A homogeneous set keeps its real link (name included).
    """
    if not links:
        raise ValueError("need at least one link")
    if len(set(links)) == 1:
        return links[0]
    return Link(
        name=name,
        latency=max(link.latency for link in links),
        bandwidth=min(link.bandwidth for link in links),
    )


@dataclass(frozen=True)
class NodeSpec:
    """One machine: ``gpus`` devices joined by ``intra_link``.

    ``compute_scale`` rescales the per-GPU compute throughput relative to
    the paper's RTX2080Ti (2.0 ~= a GPU twice as fast); synchronous
    training runs at the pace of the slowest node, which
    :meth:`ClusterTopology.compute_scale` reflects.
    """

    name: str
    gpus: int
    intra_link: Link
    compute_scale: float = 1.0

    def __post_init__(self) -> None:
        check_positive(f"gpus of node {self.name!r}", self.gpus)
        check_positive(f"compute_scale of node {self.name!r}", self.compute_scale)


@dataclass(frozen=True)
class Switch:
    """One rack: a top-of-rack switch whose ``link`` joins its ``nodes``."""

    name: str
    link: Link
    nodes: Tuple[NodeSpec, ...]

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError(f"switch {self.name!r} has no nodes")

    @property
    def gpus(self) -> int:
        return sum(node.gpus for node in self.nodes)


@dataclass(frozen=True)
class ClusterTopology:
    """A cluster as a tree of racks -> nodes -> GPUs.

    ``spine`` is the rack-to-rack link; it is required exactly when the
    cluster has more than one rack.
    """

    name: str
    switches: Tuple[Switch, ...]
    spine: Optional[Link] = None

    def __post_init__(self) -> None:
        if not self.switches:
            raise ValueError(f"topology {self.name!r} has no racks")
        if len(self.switches) > 1 and self.spine is None:
            raise ValueError(
                f"topology {self.name!r} has {len(self.switches)} racks but no spine link"
            )

    # -- structure ----------------------------------------------------------

    @property
    def world_size(self) -> int:
        return sum(switch.gpus for switch in self.switches)

    @property
    def num_racks(self) -> int:
        return len(self.switches)

    @property
    def num_nodes(self) -> int:
        return sum(len(switch.nodes) for switch in self.switches)

    def all_nodes(self) -> Tuple[NodeSpec, ...]:
        """Every node of the cluster, in switch order."""
        return tuple(node for switch in self.switches for node in switch.nodes)

    def compute_scale(self) -> float:
        """Throughput scale of the *slowest* node (gates synchronous steps)."""
        return min(node.compute_scale for node in self.all_nodes())

    # -- link accessors for the cost models ---------------------------------

    def active_links(self) -> Tuple[Link, ...]:
        """Every link a world-spanning collective must traverse."""
        links = [node.intra_link for node in self.all_nodes() if node.gpus > 1]
        for switch in self.switches:
            # A rack's ToR uplink is traversed whenever traffic crosses
            # node boundaries inside it *or* leaves it for another rack.
            if len(switch.nodes) > 1 or self.num_racks > 1:
                links.append(switch.link)
        if self.num_racks > 1:
            assert self.spine is not None
            links.append(self.spine)
        if not links:  # single-GPU "cluster": communication is intra-device
            links = [self.all_nodes()[0].intra_link]
        return tuple(links)

    def bottleneck_link(self) -> Link:
        """The pessimal composite link: slowest bandwidth, worst latency.

        Flat (topology-oblivious) algorithms pipeline every hop, so their
        throughput is set by the slowest traversed link and each pipeline
        stage waits for the laziest hop.
        """
        return composite_link(f"{self.name}-bottleneck", self.active_links())

    def levels(self) -> Tuple[Tuple[int, Link], ...]:
        """The hierarchy as ``(group_size, link)`` pairs, innermost first.

        Level 0 groups GPUs within a node, level 1 nodes within a rack,
        level 2 racks across the spine.  Levels of size 1 vanish (there
        is nothing to communicate across them); with heterogeneous nodes
        a level takes its bottleneck (max size, min bandwidth, max
        latency), since synchronous phases finish with their slowest
        group.  A single-GPU world degenerates to one trivial level.
        """
        out = []
        nodes = self.all_nodes()
        if any(node.gpus > 1 for node in nodes):
            busy = [node for node in nodes if node.gpus > 1]
            out.append(
                (
                    max(node.gpus for node in busy),
                    composite_link("level-intra", [node.intra_link for node in busy]),
                )
            )
        if any(len(switch.nodes) > 1 for switch in self.switches):
            busy_switches = [s for s in self.switches if len(s.nodes) > 1]
            out.append(
                (
                    max(len(s.nodes) for s in busy_switches),
                    composite_link("level-rack", [s.link for s in busy_switches]),
                )
            )
        if self.num_racks > 1:
            assert self.spine is not None
            # The cross-rack ring exits every rack through its ToR uplink,
            # so the spine level is bottlenecked by the slowest of those too.
            out.append(
                (
                    self.num_racks,
                    composite_link(
                        "level-spine", [self.spine] + [s.link for s in self.switches]
                    ),
                )
            )
        if not out:
            out.append((1, nodes[0].intra_link))
        return tuple(out)

    def level_share_divisors(self) -> Tuple[int, ...]:
        """Pessimal message-share divisors, aligned with :meth:`levels`.

        After a level's reduce-scatter, the chunk a participant carries
        into the next level is its *own* group's ``1/size`` share — so
        with uneven groups the slowest (largest) remaining chunk comes
        from the *smallest* group.  Each entry is therefore the minimum
        group size at that level over **all** participants (a 1-GPU node
        carries the whole message up, divisor 1), where :meth:`levels`
        reports the maximum (worst hop count).  Homogeneous levels give
        identical values.
        """
        nodes = self.all_nodes()
        out = []
        if any(node.gpus > 1 for node in nodes):
            out.append(min(node.gpus for node in nodes))
        if any(len(switch.nodes) > 1 for switch in self.switches):
            out.append(min(len(switch.nodes) for switch in self.switches))
        if self.num_racks > 1:
            out.append(self.num_racks)
        if not out:
            out.append(1)
        return tuple(out)

    def describe(self) -> str:
        """One-line human summary (used by experiments and examples)."""
        parts = [f"{self.name}: {self.world_size} GPUs"]
        parts.append(f"{self.num_racks} rack(s), {self.num_nodes} node(s)")
        links = ", ".join(sorted({link.name for link in self.active_links()}))
        parts.append(f"links [{links}]")
        return " | ".join(parts)


# --- builders --------------------------------------------------------------


def flat(world_size: int, link: "Link | str" = PAPER_IB, name: Optional[str] = None) -> ClusterTopology:
    """All GPUs equidistant on one fabric — the paper's testbed abstraction.

    Examples
    --------
    >>> flat(64).world_size
    64
    >>> flat(8, link="ethernet").name
    'flat8-eth-25g'
    """
    check_positive("world_size", world_size)
    fabric = resolve_link(link)
    label = name or f"flat{world_size}-{fabric.name}"
    node = NodeSpec(name="n0", gpus=world_size, intra_link=fabric)
    return ClusterTopology(name=label, switches=(Switch("s0", fabric, (node,)),))


def multi_node(
    num_nodes: int,
    gpus_per_node: int,
    intra: "Link | str" = "nvlink",
    inter: "Link | str" = "ib",
    name: Optional[str] = None,
    compute_scale: float = 1.0,
) -> ClusterTopology:
    """One rack of ``num_nodes`` identical nodes (e.g. ``nvlink`` + ``ib``)."""
    check_positive("num_nodes", num_nodes)
    check_positive("gpus_per_node", gpus_per_node)
    intra_link, inter_link = resolve_link(intra), resolve_link(inter)
    label = name or f"{num_nodes}x{gpus_per_node}-{intra_link.name}-{inter_link.name}"
    nodes = tuple(
        NodeSpec(f"n{i}", gpus_per_node, intra_link, compute_scale) for i in range(num_nodes)
    )
    return ClusterTopology(name=label, switches=(Switch("s0", inter_link, nodes),))


def multi_rack(
    num_racks: int,
    nodes_per_rack: int,
    gpus_per_node: int,
    intra: "Link | str" = "nvlink",
    inter: "Link | str" = "ib",
    spine: "Link | str" = "ethernet",
    name: Optional[str] = None,
) -> ClusterTopology:
    """``num_racks`` identical racks joined by a (typically slower) spine.

    Examples
    --------
    >>> topo = multi_rack(4, 4, 4)
    >>> topo.world_size, len(topo.switches)
    (64, 4)
    """
    check_positive("num_racks", num_racks)
    check_positive("nodes_per_rack", nodes_per_rack)
    check_positive("gpus_per_node", gpus_per_node)
    intra_link, inter_link = resolve_link(intra), resolve_link(inter)
    spine_link = resolve_link(spine) if num_racks > 1 else None
    label = name or (
        f"{num_racks}x{nodes_per_rack}x{gpus_per_node}-"
        f"{intra_link.name}-{inter_link.name}" + (f"-{spine_link.name}" if spine_link else "")
    )
    switches = tuple(
        Switch(
            f"s{r}",
            inter_link,
            tuple(
                NodeSpec(f"r{r}n{i}", gpus_per_node, intra_link) for i in range(nodes_per_rack)
            ),
        )
        for r in range(num_racks)
    )
    return ClusterTopology(name=label, switches=switches, spine=spine_link)


def heterogeneous(
    node_groups: Sequence[Tuple[int, int, "Link | str"]],
    inter: "Link | str" = "ib",
    name: str = "heterogeneous",
) -> ClusterTopology:
    """One rack mixing node kinds: ``[(count, gpus_per_node, intra_link), ...]``."""
    if not node_groups:
        raise ValueError("need at least one node group")
    nodes = []
    for g, (count, gpus, intra) in enumerate(node_groups):
        check_positive("count", count)
        check_positive("gpus_per_node", gpus)
        intra_link = resolve_link(intra)
        nodes.extend(
            NodeSpec(f"g{g}n{i}", gpus, intra_link) for i in range(count)
        )
    return ClusterTopology(name=name, switches=(Switch("s0", resolve_link(inter), tuple(nodes)),))


def log2_ceil(n: int) -> int:
    """``ceil(log2 n)`` with the convention that one participant needs 0 steps."""
    check_positive("n", n)
    return max(int(math.ceil(math.log2(n))), 0)
