"""Numerically exact distributed K-FAC over the in-process runtime (Eq. 13).

One :class:`DistKFACOptimizer` instance runs on each rank (thread) with a
:class:`repro.comm.Communicator`.  A step performs, in order:

1. fold locally captured batch factors into running averages;
2. **all-reduce the Kronecker factors** (mean over ranks, upper-triangle
   packed, fused into buckets by a :class:`FusionPlan` — A factors in
   forward order, G factors in backward order, mirroring the pipeline);
3. **all-reduce the gradients** (mean);
4. compute damped inverses according to the **inverse placement**
   (local-everywhere for D-KFAC, round-robin for MPD-KFAC, Algorithm 1
   LBP for SPD-KFAC) and **broadcast** CT results from their owners;
5. precondition and apply the update.

Because collectives are deterministic, all variants produce *identical*
parameter updates on every rank — the paper's claim that SPD-KFAC "should
generate identical numerical results ... as D-KFAC" (Section VI), which
the integration tests assert.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.comm import Communicator, pack_symmetric, packed_size, unpack_symmetric
from repro.core.factors import KFACLayer
from repro.core.fusion import FusionPlan, TensorFusionController, plan_bulk, plan_threshold_fusion
from repro.core.kfac import (
    KFACPreconditioner,
    batched_inverse_groups,
    eig_inverse_from_decomposition,
    refresh_eig_caches,
)
from repro.core.placement import (
    Placement,
    balanced_placement,
    lbp_placement,
    non_dist_placement,
    seq_dist_placement,
)
from repro.nn import Conv2d, Linear, Module, SGD
from repro.perf.calibration import ClusterPerfProfile, paper_cluster_profile


class InverseStrategy(enum.Enum):
    """Who inverts which factor (Section IV-B)."""

    LOCAL = "non_dist"  # D-KFAC: every rank inverts everything
    SEQ_DIST = "seq_dist"  # MPD-KFAC: round-robin, all broadcast
    BALANCED = "balanced"  # load-balanced by d^2, all broadcast
    LBP = "lbp"  # SPD-KFAC: Algorithm 1 with CT/NCT decision


def layer_kfac_dims(layer: KFACLayer) -> Tuple[int, int]:
    """(a_dim, g_dim) of a Linear/Conv2d module, bias included."""
    if isinstance(layer, Linear):
        a = layer.in_features + (1 if layer.bias is not None else 0)
        return a, layer.out_features
    if isinstance(layer, Conv2d):
        a = layer.in_channels * layer.kernel_size * layer.kernel_size
        a += 1 if layer.bias is not None else 0
        return a, layer.out_channels
    raise TypeError(f"unsupported layer type {type(layer).__name__}")


class DistKFACOptimizer:
    """Distributed K-FAC optimizer for one rank.

    Parameters mirror :class:`repro.core.kfac.KFACOptimizer`, plus:

    comm:
        This rank's communicator.
    inverse_strategy:
        Placement of the inverse workloads (selects the D-KFAC /
        MPD-KFAC / SPD-KFAC behaviour).
    factor_fusion:
        ``"bulk"`` (one all-reduce per pass), ``"threshold"`` (Horovod
        style buckets), or an explicit :class:`FusionPlan` applied to
        both passes' factor sequences.
    perf_profile:
        Cost models for the LBP decision (defaults to the paper's
        64-GPU calibration, re-scaled broadcast for the actual world
        size is *not* needed for correctness — only placement choices).
    """

    def __init__(
        self,
        model: Module,
        comm: Communicator,
        lr: float,
        damping: float = 1e-2,
        stat_decay: float = 0.95,
        inverse_update_freq: int = 1,
        factor_update_freq: int = 1,
        inverse_method: str = "cholesky",
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        inverse_strategy: InverseStrategy = InverseStrategy.LBP,
        factor_fusion: object = "bulk",
        fusion_threshold_elements: int = 2**16,
        perf_profile: Optional[ClusterPerfProfile] = None,
    ):
        self.comm = comm
        self.preconditioner = KFACPreconditioner(
            model,
            damping=damping,
            stat_decay=stat_decay,
            inverse_update_freq=inverse_update_freq,
            factor_update_freq=factor_update_freq,
            inverse_method=inverse_method,
        )
        self.sgd = SGD(model.parameters(), lr=lr, momentum=momentum, weight_decay=weight_decay)
        self.model = model
        self.inverse_strategy = inverse_strategy
        self.profile = perf_profile if perf_profile is not None else paper_cluster_profile()

        layers = self.preconditioner.layers
        self._dims: List[int] = []
        for layer in layers:
            a_dim, g_dim = layer_kfac_dims(layer)
            self._dims.extend([a_dim, g_dim])
        self.placement = self._compute_placement()

        a_sizes = [self._dims[2 * i] * (self._dims[2 * i] + 1) // 2 for i in range(len(layers))]
        g_sizes = [self._dims[2 * i + 1] * (self._dims[2 * i + 1] + 1) // 2 for i in range(len(layers))]
        self.a_fusion_plan = self._resolve_fusion(factor_fusion, a_sizes, fusion_threshold_elements)
        self.g_fusion_plan = self._resolve_fusion(
            factor_fusion, list(reversed(g_sizes)), fusion_threshold_elements
        )

    # -- setup helpers ---------------------------------------------------------

    def _resolve_fusion(
        self, factor_fusion: object, sizes: Sequence[int], threshold: int
    ) -> FusionPlan:
        if isinstance(factor_fusion, FusionPlan):
            return factor_fusion
        if factor_fusion == "bulk":
            return plan_bulk(len(sizes))
        if factor_fusion == "threshold":
            return plan_threshold_fusion(sizes, threshold)
        raise ValueError(f"factor_fusion must be 'bulk', 'threshold' or a FusionPlan, got {factor_fusion!r}")

    def _compute_placement(self) -> Placement:
        """Run once at construction, like Algorithm 1 ("executed once ...
        at the beginning of training")."""
        world = self.comm.world_size
        if self.inverse_strategy == InverseStrategy.LOCAL:
            return non_dist_placement(self._dims, world)
        if self.inverse_strategy == InverseStrategy.SEQ_DIST:
            return seq_dist_placement(self._dims, world)
        if self.inverse_strategy == InverseStrategy.BALANCED:
            return balanced_placement(self._dims, world)
        if self.inverse_strategy == InverseStrategy.LBP:
            return lbp_placement(
                self._dims, world, self.profile.inverse_actual, self.profile.broadcast_streamed
            )
        raise ValueError(f"unknown inverse strategy {self.inverse_strategy!r}")

    # -- step ------------------------------------------------------------------

    def zero_grad(self) -> None:
        self.sgd.zero_grad()

    def _allreduce_factor_pass(
        self, states: List, attr: str, plan: FusionPlan, dims: List[int]
    ) -> None:
        """All-reduce one pass's factors (A or G) under a fusion plan.

        ``states`` are the layer states in *communication order* (forward
        order for A, backward order for G); ``attr`` is ``"factor_a"`` or
        ``"factor_g"``; ``dims`` are the matching matrix sides.

        Each completed bucket is packed member-by-member straight into one
        preallocated fused buffer (no per-member triangle arrays, no
        ``concatenate``), mirroring how Horovod's fusion buffer works.
        """
        controller = TensorFusionController(plan)
        sizes = [packed_size(d) for d in dims]
        for idx, state in enumerate(states):
            bucket = controller.submit(idx, state)
            if bucket is None:
                continue
            buffer = np.empty(sum(sizes[member_idx] for member_idx, _ in bucket))
            offset = 0
            for member_idx, member_state in bucket:
                size = sizes[member_idx]
                pack_symmetric(
                    getattr(member_state, attr), out=buffer[offset : offset + size]
                )
                offset += size
            reduced = self.comm.allreduce(buffer, op="mean")
            offset = 0
            for member_idx, member_state in bucket:
                size = sizes[member_idx]
                member_state.set_factor(
                    attr, unpack_symmetric(reduced[offset : offset + size], dims[member_idx])
                )
                offset += size

    def _allreduce_factors(self) -> None:
        states = self.preconditioner.ordered_states()
        a_dims = [self._dims[2 * i] for i in range(len(states))]
        g_dims = [self._dims[2 * i + 1] for i in range(len(states))]
        self._allreduce_factor_pass(states, "factor_a", self.a_fusion_plan, a_dims)
        self._allreduce_factor_pass(
            list(reversed(states)), "factor_g", self.g_fusion_plan, list(reversed(g_dims))
        )

    def _allreduce_gradients(self) -> None:
        params = [p for p in self.model.parameters()]
        flat = np.concatenate([p.grad.ravel() for p in params])
        reduced = self.comm.allreduce(flat, op="mean")
        offset = 0
        for p in params:
            p.grad = reduced[offset : offset + p.size].reshape(p.shape).copy()
            offset += p.size

    def _distributed_inverses(self) -> None:
        """Compute/broadcast inverses according to the placement.

        This rank's assigned tensors are inverted first, grouped by
        dimension into batched LAPACK calls (same-size factors abound in
        ResNet/DenseNet); the CT broadcasts then run in the usual
        deterministic descending-dimension order, so every variant still
        produces bit-identical results on every rank.
        """
        states = self.preconditioner.ordered_states()
        damping = self.preconditioner.damping
        method = self.preconditioner.inverse_method
        rank = self.comm.rank
        dims = self._dims
        order = sorted(range(len(dims)), key=lambda i: -dims[i])
        mine = [i for i in order if rank in self.placement.assignments[i]]

        def factor_attr(i: int) -> str:
            return "factor_a" if i % 2 == 0 else "factor_g"

        local: Dict[int, np.ndarray] = {}
        if mine and method == "eig":
            # Batch-decompose only tensors whose cached eigendecomposition
            # is stale, then re-damp everything from the caches.
            refresh_eig_caches([(states[i // 2], factor_attr(i)) for i in mine])
            for i in mine:
                local[i] = eig_inverse_from_decomposition(
                    *states[i // 2].eig_decomposition(factor_attr(i)), damping
                )
        elif mine:
            factors = [getattr(states[i // 2], factor_attr(i)) for i in mine]
            local = dict(zip(mine, batched_inverse_groups(factors, damping, method)))

        for i in order:
            state = states[i // 2]
            attr_inv = "inv_a" if i % 2 == 0 else "inv_g"
            inverse: Optional[np.ndarray] = local.get(i)
            if self.comm.world_size > 1 and not self.placement.is_nct(i):
                root = self.placement.owner(i)
                packed = pack_symmetric(inverse) if rank == root else None
                received = self.comm.broadcast(packed, root=root)
                inverse = unpack_symmetric(received, dims[i])
            assert inverse is not None
            setattr(state, attr_inv, inverse)

    def broadcast_parameters(self, root: int = 0) -> None:
        """Synchronize all model parameters from ``root`` (what Horovod's
        ``broadcast_parameters`` does at training start, so differently
        initialized ranks converge on one model)."""
        params = list(self.model.parameters())
        flat = np.concatenate([p.data.ravel() for p in params])
        synced = self.comm.broadcast(flat if self.comm.rank == root else None, root=root)
        offset = 0
        for p in params:
            p.data = synced[offset : offset + p.size].reshape(p.shape).copy()
            offset += p.size

    def step(self) -> None:
        """One distributed K-FAC update (factors must be freshly captured)."""
        prec = self.preconditioner
        if prec.should_update_factors():
            prec.update_factors()
            self._allreduce_factors()
        self._allreduce_gradients()
        if prec.should_update_inverses():
            self._distributed_inverses()
        for state in prec.ordered_states():
            state.precondition()
        prec.steps += 1
        self.sgd.step()
