"""Factor-communication pipelining strategies (Section VI-D, Fig. 10).

The four strategies the paper compares differ in *when* factor
all-reduces may launch and *how* factors are fused:

=============== ============================================================
``BULK``        everything (all A and all G) in one all-reduce after the
                backward pass — the non-pipelined D-KFAC baseline [22]
``NAIVE``       all A fused into one all-reduce launched when the forward
                pass ends (overlapping the backward pass, as in [20]);
                all G in one all-reduce after backward
``LW_NO_TF``    layer-wise: every factor all-reduced the moment it is
                computed, no fusion (startup-dominated)
``LW_TTF``      layer-wise with Horovod's threshold tensor fusion
``SP_OTF``      the paper's smart parallelism: layer-wise with the
                optimal fusion plan (Eq. 15 / MG-WFBP)
=============== ============================================================

The OTF planner here is *channel-aware*: the A-pass plan is computed
first, its finish time seeds the channel state of the backward pass, and
the G-pass plan is computed around the (fixed) WFBP gradient buckets that
share the same FIFO communication channel.  Ignoring either coupling
makes the "optimal" plan measurably worse than threshold fusion on deep
models — the same consideration that makes MG-WFBP model the channel as
a single FIFO resource.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import lru_cache
from typing import List, Optional, Sequence, Tuple

from repro.core.fusion import (
    FusionPlan,
    fusion_completion_time,
    plan_bulk,
    plan_no_fusion,
    plan_optimal_fusion,
    plan_threshold_fusion,
)
from repro.models.spec import ModelSpec
from repro.perf.calibration import ClusterPerfProfile
from repro.perf.models import LinearCommModel


class FactorCommStrategy(enum.Enum):
    """How Kronecker-factor aggregation is scheduled."""

    BULK = "bulk"
    NAIVE = "naive"
    LW_NO_TF = "lw_no_tf"
    LW_TTF = "lw_ttf"
    SP_OTF = "sp_otf"


@dataclass(frozen=True)
class FactorCommPlan:
    """Fusion plans for the two factor passes.

    ``a_plan`` partitions factors ``A_0..A_{L-1}`` (forward order);
    ``g_plan`` partitions factors ``G_L..G_1`` (backward order).
    ``launch_after_pass`` delays every bucket's launch until its pass's
    computation has fully finished (True for BULK/NAIVE) instead of
    launching each bucket when its last member is ready.
    ``combine_passes`` merges both passes into a single all-reduce
    (True only for BULK).
    """

    strategy: FactorCommStrategy
    a_plan: FusionPlan
    g_plan: FusionPlan
    launch_after_pass: bool
    combine_passes: bool


@lru_cache(maxsize=256)
def _layer_compute_times_cached(
    spec: ModelSpec, train_compute: object, factor_compute: object
) -> Tuple[Tuple[float, ...], Tuple[float, ...], Tuple[float, ...], Tuple[float, ...]]:
    bs = spec.batch_size
    t_fwd = tuple(train_compute.time(layer.forward_flops * bs) for layer in spec.layers)
    t_bwd = tuple(train_compute.time(layer.backward_flops * bs) for layer in spec.layers)
    t_fa = tuple(factor_compute.time(layer.factor_a_flops(bs)) for layer in spec.layers)
    t_fg = tuple(factor_compute.time(layer.factor_g_flops(bs)) for layer in spec.layers)
    return t_fwd, t_bwd, t_fa, t_fg


def layer_compute_times(
    spec: ModelSpec, profile: ClusterPerfProfile
) -> Tuple[Tuple[float, ...], Tuple[float, ...], Tuple[float, ...], Tuple[float, ...]]:
    """Per-layer (t_fwd, t_bwd, t_factor_A, t_factor_G) from the cost models.

    Memoized on (spec, compute models) rather than the whole profile:
    :func:`repro.perf.scaled_cluster_profile` varies only the *collective*
    models across world sizes, so a (model, world-size) sweep reuses one
    computation per model instead of recomputing every cell.
    """
    return _layer_compute_times_cached(spec, profile.train_compute, profile.factor_compute)


@lru_cache(maxsize=256)
def precondition_times(spec: ModelSpec, factor_compute: object) -> Tuple[float, ...]:
    """Per-layer preconditioning (Eq. 11 GEMM pair) durations, memoized."""
    return tuple(factor_compute.time(layer.precondition_flops()) for layer in spec.layers)


@lru_cache(maxsize=256)
def preconditioned_gradient_sizes(spec: ModelSpec) -> Tuple[int, ...]:
    """Per-layer element counts of the preconditioned gradients (layer order).

    MEM_OPT ships exactly one of these per layer per iteration — the same
    shape as the layer's parameter gradient, independent of batch size and
    much smaller than the packed ``d(d+1)/2`` inverse pair it replaces.
    """
    return tuple(layer.num_params for layer in spec.layers)


@lru_cache(maxsize=256)
def factor_availability(
    spec: ModelSpec, profile: ClusterPerfProfile
) -> Tuple[Tuple[float, ...], Tuple[float, ...]]:
    """Analytic availability times of each ``A_l`` (forward order) and each
    ``G_l`` (backward order), assuming communication never stalls compute.

    This is the planning input of Eq. 15 — the paper measures these times
    over a few warm-up iterations; we derive them from the same cost
    models the simulator executes with.
    """
    t_fwd, t_bwd, t_fa, t_fg = layer_compute_times(spec, profile)
    num_layers = len(spec.layers)
    a_avail: List[float] = []
    clock = 0.0
    for l in range(num_layers):
        clock += t_fa[l]  # A_l computed in the forward *pre*-hook of layer l
        a_avail.append(clock)
        clock += t_fwd[l]
    g_avail: List[float] = []
    for l in reversed(range(num_layers)):
        clock += t_bwd[l]
        clock += t_fg[l]  # G_l computed in the backward hook of layer l
        g_avail.append(clock)
    return tuple(a_avail), tuple(g_avail)


@lru_cache(maxsize=256)
def backward_step_end_times(
    spec: ModelSpec, profile: ClusterPerfProfile
) -> Tuple[float, ...]:
    """Completion time of each backward step's B kernel (backward order)."""
    t_fwd, t_bwd, t_fa, t_fg = layer_compute_times(spec, profile)
    clock = sum(t_fa) + sum(t_fwd)
    ends: List[float] = []
    for l in reversed(range(len(spec.layers))):
        clock += t_bwd[l]
        ends.append(clock)
        clock += t_fg[l]
    return tuple(ends)


@lru_cache(maxsize=256)
def _gradient_fusion_plan_cached(spec: ModelSpec, threshold_elements: int) -> FusionPlan:
    sizes = [layer.num_params for layer in reversed(spec.layers)]
    return plan_threshold_fusion(sizes, threshold_elements)


def gradient_fusion_plan(spec: ModelSpec, profile: ClusterPerfProfile) -> FusionPlan:
    """WFBP gradient buckets: threshold fusion over backward-order params.

    Memoized on (spec, threshold) — the buckets are independent of the
    cluster's collective constants, so every world size of a sweep shares
    one plan per model.
    """
    return _gradient_fusion_plan_cached(spec, profile.fusion_threshold_elements)


def _plan_g_pass_around_gradients(
    g_sizes: Sequence[int],
    g_avail: Sequence[float],
    spec: ModelSpec,
    profile: ClusterPerfProfile,
    comm: LinearCommModel,
    channel_free: float,
    grad_plan: Optional[FusionPlan] = None,
) -> FusionPlan:
    """Optimal G-pass fusion sharing the channel with WFBP grad buckets.

    The gradient buckets are fixed (Horovod's threshold plan, unless an
    explicit ``grad_plan`` is given) and are enqueued *before* the G
    factor of the same backward step, so the channel alternates:
    ... [G run] [grad bucket] [G run] ...  Each G run between consecutive
    grad buckets is partitioned by the optimal DP with the running
    channel-free time; each grad bucket then advances the channel state.
    G buckets never span a grad-bucket boundary — a mild restriction that
    keeps the FIFO order analyzable.
    """
    if grad_plan is None:
        grad_plan = gradient_fusion_plan(spec, profile)
    grad_sizes = [layer.num_params for layer in reversed(spec.layers)]
    b_ends = backward_step_end_times(spec, profile)
    num_layers = len(g_sizes)

    buckets: List[Tuple[int, ...]] = []
    run_start = 0
    for bucket in grad_plan.buckets:
        boundary = bucket[-1]  # grad bucket closes at this backward step
        # Plan the G run covering steps run_start..boundary (inclusive):
        # the grad bucket is enqueued before G_{boundary}, so G factors up
        # to boundary-1 are planned first, then the grad bucket ships.
        run = list(range(run_start, boundary))
        if run:
            sub = plan_optimal_fusion(
                [g_sizes[i] for i in run],
                [g_avail[i] for i in run],
                comm,
                initial_channel_free=channel_free,
            )
            for sub_bucket in sub.buckets:
                buckets.append(tuple(run[i] for i in sub_bucket))
            channel_free = fusion_completion_time(
                sub,
                [g_sizes[i] for i in run],
                [g_avail[i] for i in run],
                comm,
                initial_channel_free=channel_free,
            )
        grad_elements = sum(grad_sizes[i] for i in bucket)
        channel_free = max(b_ends[boundary], channel_free) + comm.time(grad_elements)
        run_start = boundary
    tail = list(range(run_start, num_layers))
    if tail:
        sub = plan_optimal_fusion(
            [g_sizes[i] for i in tail],
            [g_avail[i] for i in tail],
            comm,
            initial_channel_free=channel_free,
        )
        for sub_bucket in sub.buckets:
            buckets.append(tuple(tail[i] for i in sub_bucket))
    return FusionPlan(tuple(buckets))


@lru_cache(maxsize=256)
def factor_comm_plans(
    strategy: FactorCommStrategy,
    spec: ModelSpec,
    profile: ClusterPerfProfile,
) -> FactorCommPlan:
    """Build the fusion plans a strategy would use for ``spec``.

    Memoized: figure sweeps build the same (strategy, model, profile)
    plan for every sweep point, and the OTF dynamic program is the
    costliest part of graph construction.
    """
    a_sizes = [layer.a_elements for layer in spec.layers]
    g_sizes = [layer.g_elements for layer in reversed(spec.layers)]
    num_layers = len(spec.layers)

    if strategy == FactorCommStrategy.BULK:
        return FactorCommPlan(
            strategy, plan_bulk(num_layers), plan_bulk(num_layers),
            launch_after_pass=True, combine_passes=True,
        )
    if strategy == FactorCommStrategy.NAIVE:
        return FactorCommPlan(
            strategy, plan_bulk(num_layers), plan_bulk(num_layers),
            launch_after_pass=True, combine_passes=False,
        )
    if strategy == FactorCommStrategy.LW_NO_TF:
        return FactorCommPlan(
            strategy, plan_no_fusion(num_layers), plan_no_fusion(num_layers),
            launch_after_pass=False, combine_passes=False,
        )
    if strategy == FactorCommStrategy.LW_TTF:
        threshold = profile.fusion_threshold_elements
        return FactorCommPlan(
            strategy,
            plan_threshold_fusion(a_sizes, threshold),
            plan_threshold_fusion(g_sizes, threshold),
            launch_after_pass=False, combine_passes=False,
        )
    if strategy == FactorCommStrategy.SP_OTF:
        a_avail, g_avail = factor_availability(spec, profile)
        # Plan with the streamed model the simulator executes with, so the
        # fusion decisions are consistent with actual collective costs
        # (the paper's planner measured its alpha on the same fabric it
        # ran on).
        comm = profile.allreduce_streamed
        a_plan = plan_optimal_fusion(a_sizes, a_avail, comm)
        a_finish = fusion_completion_time(a_plan, a_sizes, a_avail, comm)
        g_plan = _plan_g_pass_around_gradients(
            g_sizes, g_avail, spec, profile, comm, channel_free=a_finish
        )
        return FactorCommPlan(
            strategy, a_plan, g_plan, launch_after_pass=False, combine_passes=False
        )
    raise ValueError(f"unknown strategy {strategy!r}")


# ---------------------------------------------------------------------------
# axis-based plans (the Strategy API's factor-communication surface)
# ---------------------------------------------------------------------------

#: Bucket-partition policies a :class:`TrainingStrategy` can name.
FACTOR_FUSION_POLICIES = ("bulk", "none", "threshold", "optimal")

#: (fusion, pipelined, combine_passes) combinations that coincide with one
#: of the paper's five named strategies; these delegate to
#: :func:`factor_comm_plans` so they share its cache and produce plans
#: identical to the historical builders.
_CANONICAL_AXES = {
    ("bulk", False, True): FactorCommStrategy.BULK,
    ("bulk", False, False): FactorCommStrategy.NAIVE,
    ("none", True, False): FactorCommStrategy.LW_NO_TF,
    ("threshold", True, False): FactorCommStrategy.LW_TTF,
    ("optimal", True, False): FactorCommStrategy.SP_OTF,
}

#: Nearest named strategy per fusion policy, recorded on custom plans so
#: traces stay labelled even for combinations the paper never ran.
_REPRESENTATIVE = {
    "bulk": FactorCommStrategy.NAIVE,
    "none": FactorCommStrategy.LW_NO_TF,
    "threshold": FactorCommStrategy.LW_TTF,
    "optimal": FactorCommStrategy.SP_OTF,
}


@lru_cache(maxsize=256)
def factor_comm_plan_for(
    spec: ModelSpec,
    profile: ClusterPerfProfile,
    fusion: str = "optimal",
    pipelined: bool = True,
    combine_passes: bool = False,
    grad_plan: Optional[FusionPlan] = None,
) -> FactorCommPlan:
    """Factor-communication plan for an arbitrary (fusion, launch) choice.

    ``fusion`` picks the bucket partition (one of
    :data:`FACTOR_FUSION_POLICIES`); ``pipelined`` launches each bucket
    the moment its last factor is computed instead of after the whole
    pass; ``combine_passes`` merges both passes into one all-reduce
    (D-KFAC's bulk mode, only valid for non-pipelined bulk fusion).
    ``grad_plan`` overrides the WFBP gradient buckets the optimal G-pass
    planner shares the channel with (``None`` = the profile's threshold
    plan).  The five combinations the paper names resolve to the exact
    plans of :func:`factor_comm_plans`; everything else — e.g. the
    optimal Eq. 15 partition launched eagerly after each pass — is new
    surface the old per-algorithm builders could not express.
    """
    if fusion not in FACTOR_FUSION_POLICIES:
        raise ValueError(
            f"unknown factor fusion {fusion!r}; options: {FACTOR_FUSION_POLICIES}"
        )
    if combine_passes and (fusion != "bulk" or pipelined):
        raise ValueError(
            "combine_passes merges both passes into one post-backward "
            "all-reduce; it requires fusion='bulk' and pipelined=False"
        )
    canonical = _CANONICAL_AXES.get((fusion, pipelined, combine_passes))
    if canonical is not None and (grad_plan is None or fusion != "optimal"):
        return factor_comm_plans(canonical, spec, profile)

    a_sizes = [layer.a_elements for layer in spec.layers]
    g_sizes = [layer.g_elements for layer in reversed(spec.layers)]
    num_layers = len(spec.layers)
    if fusion == "bulk":
        a_plan, g_plan = plan_bulk(num_layers), plan_bulk(num_layers)
    elif fusion == "none":
        a_plan, g_plan = plan_no_fusion(num_layers), plan_no_fusion(num_layers)
    elif fusion == "threshold":
        threshold = profile.fusion_threshold_elements
        a_plan = plan_threshold_fusion(a_sizes, threshold)
        g_plan = plan_threshold_fusion(g_sizes, threshold)
    else:  # optimal — the Eq. 15 partition, whatever the launch mode
        a_avail, g_avail = factor_availability(spec, profile)
        comm = profile.allreduce_streamed
        a_plan = plan_optimal_fusion(a_sizes, a_avail, comm)
        a_finish = fusion_completion_time(a_plan, a_sizes, a_avail, comm)
        g_plan = _plan_g_pass_around_gradients(
            g_sizes, g_avail, spec, profile, comm,
            channel_free=a_finish, grad_plan=grad_plan,
        )
    return FactorCommPlan(
        _REPRESENTATIVE[fusion],
        a_plan,
        g_plan,
        launch_after_pass=not pipelined,
        combine_passes=combine_passes,
    )
