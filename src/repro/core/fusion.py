"""Tensor-fusion planning for Kronecker-factor communication (Section IV-A).

Small all-reduces are dominated by the startup term ``alpha_ar`` of
Eq. 14, so consecutive factors are merged ("fused") into one buffer.  The
paper compares four policies (Fig. 10); the planners here produce the
bucket partitions each policy would choose:

* ``plan_no_fusion``       — every factor its own all-reduce (LW w/o TF);
* ``plan_bulk``            — one giant all-reduce (the non-pipelined
  baselines aggregate everything at once);
* ``plan_threshold_fusion``— Horovod's default: close a bucket once it
  reaches a byte threshold (LW w/ TTF);
* ``plan_optimal_fusion``  — the paper's optimal tensor fusion (SP w/
  OTF, after MG-WFBP [23]): the contiguous partition minimizing when the
  *last* factor finishes aggregating, found by dynamic programming over
  the Eq. 14 cost model and the measured factor availability times
  (Eq. 15 is the local optimality condition of this program);
* ``plan_eq15_greedy``     — the single-pass greedy reading of Eq. 15,
  kept for the ablation benchmarks (merge the next factor iff it arrives
  within ``alpha_ar`` of the open bucket's start estimate).

All planners preserve arrival order and produce contiguous buckets, which
is required for overlap-friendly communication (a bucket can start as
soon as its *last* member is ready).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.perf.models import LinearCommModel
from repro.utils.validation import check_non_negative


@dataclass(frozen=True)
class FusionPlan:
    """A partition of ``n`` ordered tensors into contiguous buckets.

    A tensor-index -> bucket-id lookup table is precomputed at
    construction so :meth:`bucket_of` is O(1); the schedule builders call
    it once per (layer, rank) pair on ~25k-task graphs.
    """

    buckets: Tuple[Tuple[int, ...], ...]

    def __post_init__(self) -> None:
        flat = [i for bucket in self.buckets for i in bucket]
        if flat != list(range(len(flat))):
            raise ValueError(
                "buckets must be contiguous, ordered, and cover 0..n-1; "
                f"got {self.buckets}"
            )
        if any(len(bucket) == 0 for bucket in self.buckets):
            raise ValueError("empty fusion bucket")
        lookup = tuple(b for b, bucket in enumerate(self.buckets) for _ in bucket)
        object.__setattr__(self, "_bucket_lookup", lookup)

    @property
    def num_tensors(self) -> int:
        return sum(len(bucket) for bucket in self.buckets)

    @property
    def num_buckets(self) -> int:
        return len(self.buckets)

    def bucket_of(self, index: int) -> int:
        """Bucket id containing tensor ``index``."""
        lookup: Tuple[int, ...] = self._bucket_lookup  # type: ignore[attr-defined]
        if not 0 <= index < len(lookup):
            raise IndexError(f"tensor index {index} not in plan of {self.num_tensors}")
        return lookup[index]

    def bucket_elements(self, sizes: Sequence[int]) -> List[int]:
        """Total element count per bucket given per-tensor sizes."""
        if len(sizes) != self.num_tensors:
            raise ValueError(f"expected {self.num_tensors} sizes, got {len(sizes)}")
        prefix = _prefix_sums(sizes)
        return [prefix[bucket[-1] + 1] - prefix[bucket[0]] for bucket in self.buckets]


def _prefix_sums(sizes: Sequence[int]) -> List[int]:
    """``prefix[j] = sizes[0] + ... + sizes[j-1]`` with ``prefix[0] = 0``."""
    prefix = [0] * (len(sizes) + 1)
    for i, s in enumerate(sizes):
        prefix[i + 1] = prefix[i] + s
    return prefix


def plan_no_fusion(num_tensors: int) -> FusionPlan:
    """One bucket per tensor (the LW w/o TF baseline)."""
    if num_tensors < 1:
        raise ValueError("need at least one tensor")
    return FusionPlan(tuple((i,) for i in range(num_tensors)))


def plan_bulk(num_tensors: int) -> FusionPlan:
    """A single bucket containing every tensor."""
    if num_tensors < 1:
        raise ValueError("need at least one tensor")
    return FusionPlan((tuple(range(num_tensors)),))


def plan_threshold_fusion(sizes: Sequence[int], threshold_elements: int) -> FusionPlan:
    """Horovod-style fusion: close a bucket once it reaches the threshold.

    ``threshold_elements`` is the fusion-buffer capacity in elements
    (Horovod's default 64 MiB of fp32 = 16.7M elements; Section VI-D
    footnote 6).
    """
    if not sizes:
        raise ValueError("need at least one tensor")
    if threshold_elements < 1:
        raise ValueError("threshold_elements must be >= 1")
    buckets: List[Tuple[int, ...]] = []
    current: List[int] = []
    filled = 0
    for i, size in enumerate(sizes):
        current.append(i)
        filled += size
        if filled >= threshold_elements:
            buckets.append(tuple(current))
            current, filled = [], 0
    if current:
        buckets.append(tuple(current))
    return FusionPlan(tuple(buckets))


def _validate_arrivals(sizes: Sequence[int], avail_times: Sequence[float]) -> None:
    if not sizes:
        raise ValueError("need at least one tensor")
    if len(sizes) != len(avail_times):
        raise ValueError("sizes and avail_times must have equal length")
    for t in avail_times:
        check_non_negative("avail_time", t)
    if any(b > a for a, b in zip(avail_times[1:], avail_times[:-1])):
        # Arrival order must be the communication order for contiguous
        # fusion to be meaningful; enforce monotone non-decreasing.
        raise ValueError("avail_times must be non-decreasing (arrival order)")


def fusion_completion_time(
    plan: FusionPlan,
    sizes: Sequence[int],
    avail_times: Sequence[float],
    comm: LinearCommModel,
    initial_channel_free: float = 0.0,
) -> float:
    """Predicted finish time of the last bucket's all-reduce.

    Buckets go out on a FIFO channel (free from ``initial_channel_free``
    on): each starts at the max of its last member's availability and the
    previous bucket's completion.  This is the objective the optimal
    planner minimizes, and a useful metric for comparing any two plans
    under the same cost model.
    """
    _validate_arrivals(sizes, avail_times)
    prefix = _prefix_sums(sizes)
    channel_free = initial_channel_free
    for bucket in plan.buckets:
        start = max(avail_times[bucket[-1]], channel_free)
        channel_free = start + comm.time(prefix[bucket[-1] + 1] - prefix[bucket[0]])
    return channel_free


def plan_optimal_fusion(
    sizes: Sequence[int],
    avail_times: Sequence[float],
    comm: LinearCommModel,
    initial_channel_free: float = 0.0,
) -> FusionPlan:
    """Optimal tensor fusion (SP w/ OTF): minimize last-aggregation finish.

    Dynamic program over contiguous partitions: ``F[j]`` is the earliest
    time at which tensors ``0..j-1`` can all be aggregated, with the last
    bucket being ``i..j-1``::

        F[j] = min over i of  max(avail[j-1], F[i]) + alpha + beta * S(i, j)

    where ``S(i, j)`` sums the bucket's elements and ``F[0]`` is
    ``initial_channel_free`` (the channel may still be draining earlier
    traffic).  The Eq. 15 merge condition of the paper is exactly the
    first-order optimality test of this program (splitting a bucket only
    helps when the split-off prefix can finish before the remainder
    becomes available plus startup).  Ties prefer fewer buckets (less
    startup load on the channel, which also benefits anything queued
    behind these buckets).
    """
    _validate_arrivals(sizes, avail_times)
    n = len(sizes)
    prefix = _prefix_sums(sizes)

    best = [0.0] * (n + 1)  # F
    best[0] = initial_channel_free
    buckets_used = [0] * (n + 1)
    split = [0] * (n + 1)  # argmin i for F[j]
    for j in range(1, n + 1):
        best_time = None
        best_cost = None
        for i in range(j):
            start = max(avail_times[j - 1], best[i])
            finish = start + comm.time(prefix[j] - prefix[i])
            cost = (finish, buckets_used[i] + 1)
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_time = finish
                split[j] = i
        assert best_time is not None and best_cost is not None
        best[j] = best_time
        buckets_used[j] = best_cost[1]

    bounds: List[int] = []
    j = n
    while j > 0:
        bounds.append(j)
        j = split[j]
    bounds.append(0)
    bounds.reverse()
    buckets = tuple(
        tuple(range(lo, hi)) for lo, hi in zip(bounds, bounds[1:])
    )
    return FusionPlan(buckets)


def plan_eq15_greedy(
    sizes: Sequence[int],
    avail_times: Sequence[float],
    comm: LinearCommModel,
) -> FusionPlan:
    """Single-pass greedy reading of Eq. 15 (for the planner ablation).

    Let ``tau`` be the estimated communication start of the open bucket
    (max of its first member's availability and the channel-free time);
    merge the next tensor iff it arrives before ``tau + alpha``.
    Cheaper (O(n)) than the DP but can over- or under-merge; the ablation
    bench quantifies the gap.
    """
    _validate_arrivals(sizes, avail_times)
    prefix = _prefix_sums(sizes)
    buckets: List[Tuple[int, ...]] = []
    channel_free = 0.0
    i = 0
    n = len(sizes)
    while i < n:
        tau = max(avail_times[i], channel_free)
        j = i + 1
        while j < n and avail_times[j] < tau + comm.alpha:
            j += 1
        buckets.append(tuple(range(i, j)))
        start = max(tau, avail_times[j - 1])
        channel_free = start + comm.time(prefix[j] - prefix[i])
        i = j
    return FusionPlan(tuple(buckets))


class TensorFusionController:
    """Runtime counterpart of a :class:`FusionPlan` (Fig. 6's controller).

    Tensors are submitted in order as they become ready; once the last
    member of a bucket arrives, the whole bucket is released for
    communication.  The distributed optimizers use this to group factor
    all-reduces into fused buffers on the real data path.
    """

    def __init__(self, plan: FusionPlan):
        self.plan = plan
        self._pending: Dict[int, List[Tuple[int, object]]] = {}
        self._next_expected = 0

    def submit(self, index: int, payload: object) -> Optional[List[Tuple[int, object]]]:
        """Submit tensor ``index``; returns the completed bucket or None.

        Tensors must arrive in index order (the plan's arrival order).
        """
        if index != self._next_expected:
            raise ValueError(
                f"tensors must be submitted in order; expected {self._next_expected}, got {index}"
            )
        self._next_expected += 1
        bucket_id = self.plan.bucket_of(index)
        self._pending.setdefault(bucket_id, []).append((index, payload))
        bucket = self.plan.buckets[bucket_id]
        if index == bucket[-1]:
            return self._pending.pop(bucket_id)
        return None

    def reset(self) -> None:
        """Prepare for the next pass (iteration)."""
        if self._pending:
            raise RuntimeError("cannot reset with incomplete buckets pending")
        self._next_expected = 0
