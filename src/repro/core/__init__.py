"""The paper's contribution: K-FAC preconditioning and SPD-KFAC scheduling.

Numerical side (exact, runs on :mod:`repro.nn` models):

* :mod:`repro.core.factors` — Kronecker factor construction (Eqs. 7-8,
  KFC expansion for convolutions);
* :mod:`repro.core.kfac` — single-process K-FAC preconditioner/optimizer
  (Eq. 12);
* :mod:`repro.core.distributed` — D-KFAC / MPD-KFAC / SPD-KFAC over the
  :mod:`repro.comm` runtime (Eq. 13), numerically identical by design.

Scheduling side (drives :mod:`repro.sim`):

* :mod:`repro.core.fusion` — tensor-fusion planners incl. the optimal
  Eq. 15 rule;
* :mod:`repro.core.placement` — inverse placement incl. Algorithm 1 (LBP);
* :mod:`repro.core.pipeline` — the four factor-communication pipelining
  strategies of Fig. 10;
* :mod:`repro.core.schedule` — the per-iteration task-graph core
  (:func:`~repro.core.schedule.build_graph_from_parts`), driven by
  declarative :mod:`repro.plan` strategies; the historical
  ``build_*_graph`` entry points survive as deprecation shims.
"""

from repro.core.factors import (
    conv_factor_A,
    conv_factor_G,
    kfac_layers,
    layer_factor_A,
    layer_factor_G,
    linear_factor_A,
    linear_factor_G,
)
from repro.core.kfac import (
    KFACOptimizer,
    KFACPreconditioner,
    batched_inverse_groups,
    damped_inverse,
    damped_inverse_batched,
    eig_damped_inverse,
    eig_damped_inverse_batched,
)
from repro.core.fusion import (
    FusionPlan,
    TensorFusionController,
    fusion_completion_time,
    plan_bulk,
    plan_eq15_greedy,
    plan_no_fusion,
    plan_optimal_fusion,
    plan_threshold_fusion,
)
from repro.core.placement import (
    Placement,
    lbp_placement,
    balanced_placement,
    non_dist_placement,
    seq_dist_placement,
)
from repro.core.schedule import (
    IterationResult,
    build_dkfac_graph,
    build_graph_from_parts,
    build_kfac_graph,
    build_mpd_kfac_graph,
    build_sgd_graph,
    build_spd_kfac_graph,
    build_ssgd_graph,
    run_iteration,
)
from repro.core.distributed import DistKFACOptimizer, InverseStrategy
from repro.core.trainer import Trainer

__all__ = [
    "linear_factor_A",
    "linear_factor_G",
    "conv_factor_A",
    "conv_factor_G",
    "layer_factor_A",
    "layer_factor_G",
    "kfac_layers",
    "KFACPreconditioner",
    "KFACOptimizer",
    "batched_inverse_groups",
    "damped_inverse",
    "damped_inverse_batched",
    "eig_damped_inverse",
    "eig_damped_inverse_batched",
    "FusionPlan",
    "TensorFusionController",
    "plan_no_fusion",
    "plan_bulk",
    "plan_threshold_fusion",
    "plan_optimal_fusion",
    "plan_eq15_greedy",
    "fusion_completion_time",
    "Placement",
    "non_dist_placement",
    "seq_dist_placement",
    "balanced_placement",
    "lbp_placement",
    "build_graph_from_parts",
    "build_sgd_graph",
    "build_ssgd_graph",
    "build_kfac_graph",
    "build_dkfac_graph",
    "build_mpd_kfac_graph",
    "build_spd_kfac_graph",
    "run_iteration",
    "IterationResult",
    "DistKFACOptimizer",
    "InverseStrategy",
    "Trainer",
]
