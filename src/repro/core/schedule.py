"""The task-graph builder for one training iteration.

:func:`build_graph_from_parts` turns a *resolved* set of planning
artifacts — a factor-communication plan, a gradient fusion plan, an
inverse placement — into the executable schedule of Fig. 1.  The
artifacts themselves are resolved from a declarative
:class:`repro.plan.TrainingStrategy` by :mod:`repro.plan` (the Strategy /
Plan / Session API); the historical per-algorithm ``build_*_graph``
entry points remain as thin deprecation shims:

* **SGD / KFAC** — single-GPU baselines (no communication);
* **S-SGD** — WFBP gradient aggregation with threshold tensor fusion;
* **D-KFAC** — factors all-reduced in bulk after backward, every rank
  inverts everything locally (non-dist placement);
* **MPD-KFAC** — bulk factor aggregation, inverses round-robin
  distributed (seq-dist) and broadcast to all ranks;
* **SPD-KFAC** — the paper's contribution: factor communication
  pipelined with computation under the optimal Eq. 15 fusion plan, and
  inverse workloads placed by LBP (Algorithm 1).

Stream discipline: each rank's compute kernels go to its compute stream
in program order (A_l before F_l in the forward pre-hook; G_l after B_l
in the backward hook); collectives go to every rank's communication
stream in a single global order, as NCCL requires.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from repro.comm.wire import fp32_equivalent_elements, wire_bytes
from repro.core.fusion import FusionPlan
from repro.core.pipeline import (
    FactorCommPlan,
    FactorCommStrategy,
    factor_comm_plans,
    gradient_fusion_plan,
    layer_compute_times,
    precondition_times,
    preconditioned_gradient_sizes,
)
from repro.perf.models import LinearCommModel, symmetric_elements
from repro.utils.deprecation import warn_deprecated
from repro.core.placement import (
    Placement,
    _greedy_least_loaded,
    balanced_placement,
    lbp_placement,
    non_dist_placement,
    seq_dist_placement,
)
from repro.models.spec import ModelSpec
from repro.perf.calibration import ClusterPerfProfile
from repro.sim import Breakdown, Phase, TaskGraph, Timeline, interval_weights, simulate
from repro.sim.analysis import FACTOR_REFRESH, REFRESH, STEADY

PLACEMENT_STRATEGIES = ("non_dist", "seq_dist", "balanced", "lbp")


@dataclass(frozen=True)
class IterationResult:
    """Outcome of simulating one iteration."""

    algorithm: str
    model: str
    timeline: Timeline
    breakdown: Breakdown

    @property
    def iteration_time(self) -> float:
        return self.timeline.makespan

    def categories(self) -> Dict[str, float]:
        """The six stacked categories of Figs. 2 and 9."""
        return self.breakdown.paper_categories()


def run_iteration(graph: TaskGraph, algorithm: str, model: str) -> IterationResult:
    """Simulate ``graph`` and package the paper-style report."""
    timeline = simulate(graph)
    return IterationResult(
        algorithm=algorithm,
        model=model,
        timeline=timeline,
        breakdown=timeline.breakdown(),
    )


@dataclass(frozen=True)
class AmortizedIterationResult:
    """Amortized outcome of a multi-interval (stale-refresh) strategy.

    With factor/inverse update intervals ``(K_f, K_inv)`` an iteration
    cycle of length ``K_inv`` mixes up to three distinct iteration
    shapes, each simulated exactly:

    * ``refresh`` — factors recomputed + all-reduced *and* inverses
      recomputed + broadcast (the paper's every-iteration shape);
    * ``factor_refresh`` — factors refreshed, inverses reused stale
      (present only when ``K_inv > K_f``);
    * ``steady`` — neither refreshed: forward/backward, gradient
      reduction, preconditioning with resident inverses, update.

    :attr:`iteration_time` is the cycle's exact per-iteration average —
    factor/inverse work contributes ``1/K`` of its cost, but through the
    true two-phase (or three-phase) timelines rather than by scaling a
    single makespan.  Duck-types :class:`IterationResult`'s reporting
    surface (``iteration_time``, ``categories``, ``timeline``,
    ``breakdown`` — the latter two are the refresh iteration's).
    """

    algorithm: str
    model: str
    refresh: IterationResult
    factor_refresh: Optional[IterationResult]
    steady: Optional[IterationResult]
    weights: Tuple[Tuple[str, int], ...]  #: (phase, iterations per cycle)

    def phase_results(self) -> Dict[str, IterationResult]:
        """The distinct per-phase simulations, keyed by phase name."""
        out = {"refresh": self.refresh}
        if self.factor_refresh is not None:
            out["factor_refresh"] = self.factor_refresh
        if self.steady is not None:
            out["steady"] = self.steady
        return out

    def phase_times(self) -> Dict[str, float]:
        """Simulated makespan of each distinct iteration shape."""
        return {k: r.iteration_time for k, r in self.phase_results().items()}

    @property
    def cycle_iterations(self) -> int:
        """Iterations per refresh cycle (= the inverse update interval)."""
        return sum(count for _, count in self.weights)

    @property
    def iteration_time(self) -> float:
        """Exact per-iteration average over one refresh cycle."""
        results = self.phase_results()
        total = sum(
            results[phase].iteration_time * count for phase, count in self.weights
        )
        return total / self.cycle_iterations

    @property
    def timeline(self) -> Timeline:
        """The refresh iteration's timeline (the most complete shape)."""
        return self.refresh.timeline

    @property
    def breakdown(self) -> Breakdown:
        """The refresh iteration's breakdown."""
        return self.refresh.breakdown

    def categories(self) -> Dict[str, float]:
        """Cycle-averaged paper categories; sums to :attr:`iteration_time`."""
        results = self.phase_results()
        cycle = self.cycle_iterations
        out: Dict[str, float] = {}
        for phase, count in self.weights:
            for key, value in results[phase].categories().items():
                out[key] = out.get(key, 0.0) + value * count / cycle
        return out


def result_from_timeline(
    timeline: Timeline, algorithm: str, model: str
) -> IterationResult:
    """Package an already-simulated timeline as an :class:`IterationResult`.

    The assembly half of :func:`run_iteration`, for callers that priced
    the graph through a batched scheduling pass
    (:func:`repro.sim.simulate_plans`) instead of a per-graph
    ``simulate`` call.
    """
    return IterationResult(
        algorithm=algorithm,
        model=model,
        timeline=timeline,
        breakdown=timeline.breakdown(),
    )


def phase_results_from_timelines(
    timelines: Dict[str, Timeline],
    algorithm: str,
    model: str,
    factor_interval: int = 1,
    inverse_interval: int = 1,
) -> "IterationResult | AmortizedIterationResult":
    """Assemble the result of a refresh cycle from pre-simulated timelines.

    The batched counterpart of :func:`run_phase_iterations`: given one
    timeline per phase of the interval mix, it packages exactly the same
    (amortized) result objects — bit-identical when the timelines came
    from the same graphs the sequential path would have simulated.
    """
    weights = interval_weights(factor_interval, inverse_interval)
    if len(weights) == 1:
        return result_from_timeline(timelines[REFRESH], algorithm, model)
    results = {
        phase: result_from_timeline(timelines[phase], algorithm, model)
        for phase, _ in weights
    }
    return AmortizedIterationResult(
        algorithm=algorithm,
        model=model,
        refresh=results[REFRESH],
        factor_refresh=results.get(FACTOR_REFRESH),
        steady=results.get(STEADY),
        weights=weights,
    )


def run_phase_iterations(
    graphs: Dict[str, TaskGraph],
    algorithm: str,
    model: str,
    factor_interval: int = 1,
    inverse_interval: int = 1,
) -> "IterationResult | AmortizedIterationResult":
    """Simulate the distinct iteration shapes of a refresh cycle.

    ``graphs`` maps phase names (:data:`repro.sim.analysis.REFRESH`,
    ``factor_refresh``, ``steady``) to their task graphs; only the
    phases the interval mix contains are simulated.  The every-iteration
    defaults collapse to a plain :func:`run_iteration` of the refresh
    graph, so non-stale strategies return exactly what they always did.
    """
    weights = interval_weights(factor_interval, inverse_interval)
    if len(weights) == 1:
        return run_iteration(graphs[REFRESH], algorithm, model)
    results = {
        phase: run_iteration(graphs[phase], algorithm, model) for phase, _ in weights
    }
    return AmortizedIterationResult(
        algorithm=algorithm,
        model=model,
        refresh=results[REFRESH],
        factor_refresh=results.get(FACTOR_REFRESH),
        steady=results.get(STEADY),
        weights=weights,
    )


# ---------------------------------------------------------------------------
# placement resolution
# ---------------------------------------------------------------------------


def interleaved_factor_dims(spec: ModelSpec) -> List[int]:
    """The 2L inverse-workload dimensions in layer order: [a_0, g_0, a_1, ...]."""
    return spec.factor_dims()


@lru_cache(maxsize=256)
def resolve_placement(
    name: str, spec: ModelSpec, profile: ClusterPerfProfile, num_ranks: int
) -> Placement:
    """Instantiate one of the paper's placement strategies for ``spec``.

    Memoized — :class:`Placement` is immutable and sweeps re-request the
    same (strategy, model, profile, world-size) placement per cell.
    """
    dims = tuple(interleaved_factor_dims(spec))
    if name == "non_dist":
        return non_dist_placement(dims, num_ranks)
    if name == "seq_dist":
        return seq_dist_placement(dims, num_ranks)
    if name == "balanced":
        return balanced_placement(dims, num_ranks)
    if name == "lbp":
        # The in-simulator planner estimates with the execution-calibrated
        # models so its CT/NCT decisions are consistent with what execution
        # actually costs here — as the paper's planner was with its testbed.
        return lbp_placement(dims, num_ranks, profile.inverse_actual, profile.broadcast_streamed)
    raise ValueError(f"unknown placement {name!r}; options: {PLACEMENT_STRATEGIES}")


@lru_cache(maxsize=256)
def mem_opt_placement(
    name: str, spec: ModelSpec, profile: ClusterPerfProfile, num_ranks: int
) -> Placement:
    """Per-layer single-owner placement for the MEM_OPT scheme.

    MEM_OPT assigns a layer's *pair* of inverses (A and G) plus its
    preconditioning GEMMs to one owner rank, which then broadcasts only
    the preconditioned gradient.  Both of a layer's tensors are therefore
    CTs with the same owner; the named policies pick the owners:

    =============== =====================================================
    ``seq_dist``    round-robin layers over ranks
    ``balanced``    LPT over layers by ``a^2 + g^2`` (inversion work)
    ``lbp``         LPT over layers by the calibrated per-layer load
                    (both inversions + the preconditioning GEMM pair)
    =============== =====================================================

    ``non_dist`` is rejected at strategy validation — replicated
    inversion contradicts the single-owner broadcast scheme.
    """
    dims = tuple(interleaved_factor_dims(spec))
    num_layers = len(spec.layers)
    if name == "seq_dist":
        owners = [l % num_ranks for l in range(num_layers)]
    elif name in ("balanced", "lbp"):
        if name == "balanced":
            weights = [
                float(dims[2 * l]) ** 2 + float(dims[2 * l + 1]) ** 2
                for l in range(num_layers)
            ]
        else:
            t_precond = precondition_times(spec, profile.factor_compute)
            weights = [
                profile.inverse_actual.time(dims[2 * l])
                + profile.inverse_actual.time(dims[2 * l + 1])
                + t_precond[l]
                for l in range(num_layers)
            ]
        order = sorted(range(num_layers), key=lambda l: -weights[l])
        owners = _greedy_least_loaded(order, weights, num_ranks)
    else:
        raise ValueError(
            f"placement {name!r} is incompatible with comm_scheme='mem_opt'; "
            "options: ('seq_dist', 'balanced', 'lbp')"
        )
    assignments: List[Tuple[int, ...]] = []
    for l in range(num_layers):
        assignments.extend([(owners[l],), (owners[l],)])
    return Placement(num_ranks, dims, tuple(assignments))


# ---------------------------------------------------------------------------
# the core builder
# ---------------------------------------------------------------------------


def collective_time(
    model: LinearCommModel,
    num_elements: int,
    dtype: str = "fp32",
    compression: float = 1.0,
) -> float:
    """Duration of a collective under a wire dtype and top-k ratio.

    The paper's default axes (fp32, no compression) take the exact
    ``model.time(num_elements)`` path so legacy schedules stay
    bit-identical; anything else is priced by its wire bytes expressed
    in equivalent fp32 elements
    (:func:`repro.comm.wire.fp32_equivalent_elements`).
    """
    return model.time(fp32_equivalent_elements(num_elements, dtype, compression))


def broadcast_symmetric_time(
    model: LinearCommModel, d: int, dtype: str = "fp32"
) -> float:
    """Duration of a packed symmetric ``d x d`` broadcast at ``dtype``."""
    if dtype == "fp32":
        return model.time_symmetric(d)
    return model.time_bytes(wire_bytes(symmetric_elements(d), dtype))


def build_graph_from_parts(
    spec: ModelSpec,
    profile: ClusterPerfProfile,
    *,
    num_ranks: int,
    kfac: bool,
    fplan: Optional[FactorCommPlan],
    grad_plan: Optional[FusionPlan],
    placement: Optional[Placement],
    include_solve: bool = True,
    grad_dtype: str = "fp32",
    factor_dtype: str = "fp32",
    inverse_dtype: str = "fp32",
    grad_compression: float = 1.0,
    with_factors: bool = True,
    with_inverses: bool = True,
    comm_scheme: str = "paper",
) -> TaskGraph:
    """Assemble one iteration's task graph from resolved planning parts.

    This is the single execution-model core every algorithm flows
    through: ``fplan`` schedules factor aggregation (``None`` for
    first-order or single-rank runs), ``grad_plan`` buckets the WFBP
    gradient all-reduces (``None`` disables gradient reduction), and
    ``placement`` assigns the ``2L`` inverse workloads (``None`` with
    ``include_solve=False`` isolates the factor pipeline, as in
    Fig. 10).  :mod:`repro.plan` resolves these parts from a declarative
    :class:`~repro.plan.TrainingStrategy`.

    The wire axes (``grad_dtype`` / ``factor_dtype`` / ``inverse_dtype``
    / ``grad_compression``) reprice the matching collectives by their
    wire bytes; defaults reproduce the paper's fp32 uncompressed
    schedule bit-identically.  ``with_factors=False`` drops the factor
    computation/aggregation stage and ``with_inverses=False`` the
    inverse computation/broadcast stage — the steady-state and
    factor-only-refresh iteration shapes of a stale-update
    (``K_f``/``K_inv`` interval) strategy, in which preconditioning
    reuses resident inverses.

    ``comm_scheme`` reorganizes the solve stage (arXiv:2007.00784):

    * ``"paper"`` — SPD-KFAC's scheme: inverses broadcast packed, every
      rank preconditions every layer (the historical code path, kept
      bit-identical);
    * ``"comm_opt"`` — preconditioning uses the *resident* (stale)
      inverses even in refresh iterations, so ``P``/``U`` depend only on
      gradients and the inverse refresh is appended after the update
      (decoupled, FIFO-serialized behind it on each compute stream);
    * ``"mem_opt"`` — one owner rank per layer computes both inverses
      *and* the preconditioned gradient, broadcasting only the
      ``num_params``-sized gradient (``CPG{l}``) every iteration; packed
      inverse broadcasts disappear entirely.
    """
    layers = spec.layers
    num_layers = len(layers)
    distributed = num_ranks > 1
    all_ranks = list(range(num_ranks))
    graph = TaskGraph(num_ranks)
    factors = kfac and with_factors
    if not factors:
        fplan = None

    t_fwd, t_bwd, t_fa, t_fg = layer_compute_times(spec, profile)
    t_precond = precondition_times(spec, profile.factor_compute)

    if factors and distributed and fplan is None:
        raise ValueError("distributed K-FAC requires a factor communication strategy")

    # ---- forward pass -------------------------------------------------------
    fa_tasks: List[List[int]] = [[] for _ in range(num_layers)]
    fwd_tasks: List[List[int]] = [[] for _ in range(num_layers)]
    a_bucket_task: Dict[int, int] = {}  # bucket id -> collective task id
    a_sizes = [layer.a_elements for layer in layers]

    for l in range(num_layers):
        # One kernel per rank, appended as a batch; each rank's compute
        # stream still sees A_l before F_l, so the FIFO order (and hence
        # the schedule) is identical to per-rank interleaved appends.
        if factors:
            fa_tasks[l] = graph.add_compute_batch(
                f"A{l}", Phase.FACTOR_COMP, all_ranks, t_fa[l]
            )
        fwd_tasks[l] = graph.add_compute_batch(f"F{l}", Phase.FORWARD, all_ranks, t_fwd[l])
        if fplan is not None and not fplan.launch_after_pass:
            bucket_id = fplan.a_plan.bucket_of(l)
            if fplan.a_plan.buckets[bucket_id][-1] == l:
                elements = sum(a_sizes[i] for i in fplan.a_plan.buckets[bucket_id])
                a_bucket_task[bucket_id] = graph.add_collective(
                    f"CA[{bucket_id}]",
                    Phase.FACTOR_COMM,
                    all_ranks,
                    collective_time(profile.allreduce_streamed, elements, factor_dtype),
                    deps=fa_tasks[l],
                )

    if fplan is not None and fplan.launch_after_pass and not fplan.combine_passes:
        # Post-pass launch: every A bucket ships once the forward pass has
        # produced the last A (overlapping backward compute).  NAIVE's
        # bulk plan is the single-bucket case.
        single = fplan.a_plan.num_buckets == 1
        for bucket_id, bucket in enumerate(fplan.a_plan.buckets):
            elements = sum(a_sizes[i] for i in bucket)
            a_bucket_task[bucket_id] = graph.add_collective(
                "CA[all]" if single else f"CA[{bucket_id}]",
                Phase.FACTOR_COMM,
                all_ranks,
                collective_time(profile.allreduce_streamed, elements, factor_dtype),
                deps=fa_tasks[num_layers - 1],
            )

    # ---- backward pass ------------------------------------------------------
    bwd_tasks: List[List[int]] = [[] for _ in range(num_layers)]
    fg_tasks: List[List[int]] = [[] for _ in range(num_layers)]
    grad_bucket_task: Dict[int, int] = {}
    g_bucket_task: Dict[int, int] = {}
    g_sizes_backward = [layer.g_elements for layer in reversed(layers)]
    grad_sizes_backward = [layer.num_params for layer in reversed(layers)]

    for j in range(num_layers):  # j-th layer of the backward pass
        l = num_layers - 1 - j
        bwd_deps = [[fwd_tasks[num_layers - 1][r]] for r in all_ranks] if j == 0 else None
        bwd_tasks[l] = graph.add_compute_batch(
            f"B{l}", Phase.BACKWARD, all_ranks, t_bwd[l], deps_per_rank=bwd_deps
        )
        if factors:
            fg_tasks[l] = graph.add_compute_batch(
                f"G{l}", Phase.FACTOR_COMP, all_ranks, t_fg[l]
            )
        if grad_plan is not None:
            bucket_id = grad_plan.bucket_of(j)
            if grad_plan.buckets[bucket_id][-1] == j:
                elements = sum(grad_sizes_backward[i] for i in grad_plan.buckets[bucket_id])
                grad_bucket_task[bucket_id] = graph.add_collective(
                    f"CG[{bucket_id}]",
                    Phase.GRAD_COMM,
                    all_ranks,
                    collective_time(
                        profile.allreduce_streamed, elements, grad_dtype, grad_compression
                    ),
                    deps=bwd_tasks[l],
                )
        if fplan is not None and not fplan.launch_after_pass:
            bucket_id = fplan.g_plan.bucket_of(j)
            if fplan.g_plan.buckets[bucket_id][-1] == j:
                elements = sum(g_sizes_backward[i] for i in fplan.g_plan.buckets[bucket_id])
                g_bucket_task[bucket_id] = graph.add_collective(
                    f"CF_G[{bucket_id}]",
                    Phase.FACTOR_COMM,
                    all_ranks,
                    collective_time(profile.allreduce_streamed, elements, factor_dtype),
                    deps=fg_tasks[l],
                )

    if fplan is not None and fplan.launch_after_pass:
        if fplan.combine_passes:
            # BULK (D-KFAC baseline): one all-reduce for all A and all G.
            elements = sum(a_sizes) + sum(g_sizes_backward)
            task = graph.add_collective(
                "CF[all]",
                Phase.FACTOR_COMM,
                all_ranks,
                collective_time(profile.allreduce_streamed, elements, factor_dtype),
                deps=fg_tasks[0],
            )
            a_bucket_task[0] = task
            g_bucket_task[0] = task
        else:
            single = fplan.g_plan.num_buckets == 1
            for bucket_id, bucket in enumerate(fplan.g_plan.buckets):
                elements = sum(g_sizes_backward[i] for i in bucket)
                g_bucket_task[bucket_id] = graph.add_collective(
                    "CG_fac[all]" if single else f"CG_fac[{bucket_id}]",
                    Phase.FACTOR_COMM,
                    all_ranks,
                    collective_time(profile.allreduce_streamed, elements, factor_dtype),
                    deps=fg_tasks[0],
                )

    # ---- factor readiness lookup ---------------------------------------------
    def factor_ready_global(tensor_index: int) -> Optional[int]:
        """Task after which the global (aggregated) factor exists everywhere."""
        layer = tensor_index // 2
        is_a = tensor_index % 2 == 0
        if fplan is None:
            return None  # single rank: use per-rank compute deps instead
        if fplan.combine_passes:
            return a_bucket_task[0]
        if is_a:
            return a_bucket_task[fplan.a_plan.bucket_of(layer)]
        backward_pos = num_layers - 1 - layer
        return g_bucket_task[fplan.g_plan.bucket_of(backward_pos)]

    def factor_ready_local(tensor_index: int, rank: int) -> int:
        layer = tensor_index // 2
        if tensor_index % 2 == 0:
            return fa_tasks[layer][rank]
        return fg_tasks[layer][rank]

    # ---- inverses, broadcasts, preconditioning, update ------------------------
    solve = kfac and include_solve

    def emit_inverse_refresh():
        """Emit the I{i} batches (+ packed CI{i} broadcasts outside
        MEM_OPT); returns the (tensor, rank) -> gating-task lookup."""
        if placement is None:
            raise ValueError("K-FAC schedules need an inverse placement strategy")
        dims = placement.dims
        inv_task: Dict[Tuple[int, int], int] = {}  # (tensor, rank) -> task
        bcast_task: Dict[int, int] = {}
        order = sorted(range(len(dims)), key=lambda i: -dims[i])
        for i in order:
            ready = factor_ready_global(i)
            assigned = placement.assignments[i]
            if ready is not None:
                deps_per_rank: Optional[List[List[int]]] = [[ready]] * len(assigned)
            elif factors:
                deps_per_rank = [[factor_ready_local(i, r)] for r in assigned]
            else:
                # Inverse-only refresh from factors resident since an
                # earlier iteration: nothing this iteration gates them.
                deps_per_rank = None
            tids = graph.add_compute_batch(
                f"I{i}",
                Phase.INVERSE_COMP,
                assigned,
                profile.inverse_actual.time(dims[i]),
                deps_per_rank=deps_per_rank,
            )
            for r, tid in zip(assigned, tids):
                inv_task[(i, r)] = tid
            if distributed and not placement.is_nct(i) and comm_scheme != "mem_opt":
                root = placement.owner(i)
                bcast_task[i] = graph.add_collective(
                    f"CI{i}",
                    Phase.INVERSE_COMM,
                    all_ranks,
                    broadcast_symmetric_time(
                        profile.broadcast_streamed, dims[i], inverse_dtype
                    ),
                    deps=[inv_task[(i, root)]],
                )

        def available(tensor_index: int, rank: int) -> int:
            if (tensor_index, rank) in inv_task:
                return inv_task[(tensor_index, rank)]
            return bcast_task[tensor_index]

        return available

    cpg_tasks: List[int] = []
    if solve and comm_scheme == "mem_opt":
        # MEM_OPT: each layer's owner computes its inverses (refresh
        # iterations only) and its preconditioned gradient, then
        # broadcasts that small gradient; packed inverse broadcasts
        # disappear entirely and the broadcast ships every iteration.
        if placement is None:
            raise ValueError("K-FAC schedules need an inverse placement strategy")
        inverse_available = emit_inverse_refresh() if with_inverses else None
        cpg_sizes = preconditioned_gradient_sizes(spec)
        for l in range(num_layers):
            owner = placement.assignments[2 * l][0]
            deps: List[int] = []
            if inverse_available is not None:
                deps = [
                    inverse_available(2 * l, owner),
                    inverse_available(2 * l + 1, owner),
                ]
            if grad_plan is not None:
                backward_pos = num_layers - 1 - l
                deps.append(grad_bucket_task[grad_plan.bucket_of(backward_pos)])
            else:
                deps.append(bwd_tasks[l][owner])
            p_tids = graph.add_compute_batch(
                f"P{l}", Phase.PRECONDITION, [owner], t_precond[l],
                deps_per_rank=[deps],
            )
            if distributed:
                cpg_tasks.append(
                    graph.add_collective(
                        f"CPG{l}",
                        Phase.INVERSE_COMM,
                        all_ranks,
                        collective_time(
                            profile.broadcast_streamed, cpg_sizes[l], inverse_dtype
                        ),
                        deps=[p_tids[0]],
                    )
                )
    elif solve:
        # COMM_OPT refresh iterations precondition with the *resident*
        # (stale) inverses, so the fresh ones are emitted after the
        # update; every other shape is the paper's.
        decoupled_refresh = with_inverses and comm_scheme == "comm_opt"
        inverse_available = (
            emit_inverse_refresh() if with_inverses and not decoupled_refresh else None
        )

        for l in range(num_layers):
            precond_deps: List[List[int]] = []
            for r in all_ranks:
                # Steady-state iterations precondition with the inverses
                # already resident from the last refresh, so only the
                # gradient gates them.
                deps = (
                    [inverse_available(2 * l, r), inverse_available(2 * l + 1, r)]
                    if inverse_available is not None
                    else []
                )
                if grad_plan is not None:
                    backward_pos = num_layers - 1 - l
                    deps.append(grad_bucket_task[grad_plan.bucket_of(backward_pos)])
                else:
                    deps.append(bwd_tasks[l][r])
                precond_deps.append(deps)
            graph.add_compute_batch(
                f"P{l}", Phase.PRECONDITION, all_ranks, t_precond[l],
                deps_per_rank=precond_deps,
            )

    update_time = profile.train_compute.time(2.0 * spec.num_params)
    if not solve:
        if grad_plan is not None:
            shared = list(grad_bucket_task.values())
            update_deps: Optional[List[List[int]]] = [shared] * num_ranks
        else:
            update_deps = [[bwd_tasks[0][r]] for r in all_ranks]
    elif cpg_tasks:
        # MEM_OPT: every rank applies the broadcast preconditioned
        # gradients, so the update waits on every CPG collective.
        update_deps = [list(cpg_tasks)] * num_ranks
    else:
        update_deps = None
    graph.add_compute_batch(
        "U", Phase.UPDATE, all_ranks, update_time, deps_per_rank=update_deps
    )

    if solve and comm_scheme == "comm_opt" and with_inverses:
        # The decoupled refresh: I{i}/CI{i} appended after the update on
        # each compute stream (FIFO serializes them behind it), priced
        # into the refresh iteration without gating P or U.
        emit_inverse_refresh()

    return graph


def _build_graph(
    spec: ModelSpec,
    profile: ClusterPerfProfile,
    *,
    num_ranks: int,
    kfac: bool,
    factor_strategy: Optional[FactorCommStrategy],
    placement_name: Optional[str],
    include_solve: bool = True,
) -> TaskGraph:
    """Resolve the historical per-algorithm axes into parts and build.

    Kept as the single delegation target of the deprecated
    ``build_*_graph`` shims; new code should go through
    :mod:`repro.plan`, which resolves richer strategies onto
    :func:`build_graph_from_parts` directly.
    """
    distributed = num_ranks > 1
    fplan: Optional[FactorCommPlan] = None
    if kfac and distributed:
        if factor_strategy is None:
            raise ValueError("distributed K-FAC requires a factor communication strategy")
        fplan = factor_comm_plans(factor_strategy, spec, profile)
    grad_plan = gradient_fusion_plan(spec, profile) if distributed else None
    placement: Optional[Placement] = None
    if kfac and include_solve and placement_name is not None:
        placement = resolve_placement(placement_name, spec, profile, num_ranks)
    return build_graph_from_parts(
        spec,
        profile,
        num_ranks=num_ranks,
        kfac=kfac,
        fplan=fplan,
        grad_plan=grad_plan,
        placement=placement,
        include_solve=include_solve,
    )


# ---------------------------------------------------------------------------
# deprecated builders (one per algorithm) — use repro.plan instead
# ---------------------------------------------------------------------------


def build_sgd_graph(spec: ModelSpec, profile: ClusterPerfProfile) -> TaskGraph:
    """Deprecated. Single-GPU first-order SGD (Fig. 2's SGD bar)."""
    warn_deprecated("build_sgd_graph", 'Session(model, profile).plan("SGD")')
    return _build_graph(
        spec, profile, num_ranks=1, kfac=False, factor_strategy=None, placement_name=None
    )


def build_ssgd_graph(spec: ModelSpec, profile: ClusterPerfProfile) -> TaskGraph:
    """Deprecated. Distributed S-SGD with WFBP + tensor fusion (Eq. 5)."""
    warn_deprecated("build_ssgd_graph", 'Session(model, profile).plan("S-SGD")')
    return _build_graph(
        spec,
        profile,
        num_ranks=profile.num_workers,
        kfac=False,
        factor_strategy=None,
        placement_name=None,
    )


def build_kfac_graph(spec: ModelSpec, profile: ClusterPerfProfile) -> TaskGraph:
    """Deprecated. Single-GPU K-FAC: factors and inverses all local."""
    warn_deprecated("build_kfac_graph", 'Session(model, profile).plan("KFAC")')
    return _build_graph(
        spec, profile, num_ranks=1, kfac=True, factor_strategy=None, placement_name="non_dist"
    )


def build_dkfac_graph(spec: ModelSpec, profile: ClusterPerfProfile) -> TaskGraph:
    """Deprecated. D-KFAC baseline: bulk aggregation, all inverses local."""
    warn_deprecated("build_dkfac_graph", 'Session(model, profile).plan("D-KFAC")')
    return _build_graph(
        spec,
        profile,
        num_ranks=profile.num_workers,
        kfac=True,
        factor_strategy=FactorCommStrategy.BULK,
        placement_name="non_dist",
    )


def build_mpd_kfac_graph(spec: ModelSpec, profile: ClusterPerfProfile) -> TaskGraph:
    """Deprecated. MPD-KFAC: bulk aggregation, round-robin inverses."""
    warn_deprecated("build_mpd_kfac_graph", 'Session(model, profile).plan("MPD-KFAC")')
    return _build_graph(
        spec,
        profile,
        num_ranks=profile.num_workers,
        kfac=True,
        factor_strategy=FactorCommStrategy.BULK,
        placement_name="seq_dist",
    )


def build_spd_kfac_graph(
    spec: ModelSpec,
    profile: ClusterPerfProfile,
    pipelining: bool = True,
    lbp: bool = True,
) -> TaskGraph:
    """Deprecated. SPD-KFAC (the paper), with ablation switches (Table IV).

    ``pipelining=False`` falls back to bulk factor aggregation
    (-Pipe...); ``lbp=False`` falls back to sequential inverse placement
    (...-LBP).  Defaults give +Pipe+LBP.
    """
    warn_deprecated(
        "build_spd_kfac_graph",
        'Session(model, profile).plan("SPD-KFAC") '
        "(ablate with strategy.but(factor_fusion=..., placement=...))",
    )
    return _build_graph(
        spec,
        profile,
        num_ranks=profile.num_workers,
        kfac=True,
        factor_strategy=FactorCommStrategy.SP_OTF if pipelining else FactorCommStrategy.BULK,
        placement_name="lbp" if lbp else "seq_dist",
    )


def build_factor_pipeline_graph(
    spec: ModelSpec, profile: ClusterPerfProfile, strategy: FactorCommStrategy
) -> TaskGraph:
    """Deprecated. Fig. 10 comparison graph: full iteration minus the
    inverse stage, so FactorComp/FactorComm are isolated from placement
    effects.  Express as a strategy with ``include_solve=False``."""
    warn_deprecated(
        "build_factor_pipeline_graph",
        "Session(model, profile).plan(strategy.but(include_solve=False))",
    )
    return _build_graph(
        spec,
        profile,
        num_ranks=profile.num_workers,
        kfac=True,
        factor_strategy=strategy,
        placement_name=None,
        include_solve=False,
    )


def build_inverse_graph(
    spec: ModelSpec, profile: ClusterPerfProfile, placement: Placement
) -> TaskGraph:
    """Graph for the Fig. 12 comparison: the inverse stage in isolation.

    All global factors are assumed available at t=0 (the paper measures
    the elapsed time of "inverting Kronecker factors" alone).
    """
    num_ranks = placement.num_ranks
    graph = TaskGraph(num_ranks)
    dims = placement.dims
    inv_task: Dict[Tuple[int, int], int] = {}
    order = sorted(range(len(dims)), key=lambda i: -dims[i])
    for i in order:
        assigned = placement.assignments[i]
        tids = graph.add_compute_batch(
            f"I{i}", Phase.INVERSE_COMP, assigned, profile.inverse_actual.time(dims[i])
        )
        for r, tid in zip(assigned, tids):
            inv_task[(i, r)] = tid
        if num_ranks > 1 and not placement.is_nct(i):
            graph.add_collective(
                f"CI{i}",
                Phase.INVERSE_COMM,
                list(range(num_ranks)),
                profile.broadcast_streamed.time_symmetric(dims[i]),
                deps=[inv_task[(i, placement.owner(i))]],
            )
    return graph
