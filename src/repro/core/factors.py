"""Kronecker factor construction (Eqs. 6-9 of the paper).

Conventions
-----------
The loss is **mean-reduced** over the batch (as in
:class:`repro.nn.CrossEntropyLoss`), so the per-sample sum-loss gradient
is ``N`` times the backpropagated one.  With that correction:

* Linear layer, input ``x`` of shape ``(N, d_in)`` (bias-augmented when
  present) and output gradient ``g`` of shape ``(N, d_out)``::

      A = x^T x / N                 (Eq. 7, batch expectation)
      G = (N g)^T (N g) / N = N g^T g   (Eq. 8)

* Conv layer (the KFC expansion of Grosse & Martens): the input expands
  into one row per output location via im2col, giving ``Omega`` of shape
  ``(N*S, C_in*kh*kw)`` where ``S = H_out*W_out``::

      A = Omega^T Omega / (N*S)
      G = (N/S) ghat^T ghat,   ghat of shape (N*S, C_out)

With batch size 1 (and a single spatial location), ``A (x) G`` equals the
exact empirical Fisher block — the property the unit tests assert.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

from repro.nn import Conv2d, Linear, Module
from repro.nn.functional import im2col

KFACLayer = Union[Linear, Conv2d]


def kfac_layers(model: Module) -> List[KFACLayer]:
    """All Linear/Conv2d modules of ``model`` in forward traversal order.

    This is the layer list K-FAC preconditions — the paper's
    ``l = 1..L`` (Table II "# Layers").
    """
    return [m for m in model.modules() if isinstance(m, (Linear, Conv2d))]


def _augment_bias(rows: np.ndarray) -> np.ndarray:
    ones = np.ones((rows.shape[0], 1), dtype=rows.dtype)
    return np.concatenate([rows, ones], axis=1)


def linear_factor_A(x: np.ndarray, has_bias: bool) -> np.ndarray:
    """Factor ``A`` for a linear layer from its input batch ``(N, d_in)``."""
    if x.ndim != 2:
        raise ValueError(f"expected (N, d_in) input, got {x.shape}")
    rows = _augment_bias(x) if has_bias else x
    return rows.T @ rows / rows.shape[0]


def linear_factor_G(grad_output: np.ndarray, batch_size: int) -> np.ndarray:
    """Factor ``G`` for a linear layer from the mean-loss output gradient."""
    if grad_output.ndim != 2:
        raise ValueError(f"expected (N, d_out) gradient, got {grad_output.shape}")
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    return grad_output.T @ grad_output * batch_size


def conv_factor_A(x: np.ndarray, layer: Conv2d) -> np.ndarray:
    """Factor ``A`` for a conv layer from its input batch ``(N, C, H, W)``."""
    cols = im2col(x, layer.kernel, layer.stride, layer.padding)
    rows = _augment_bias(cols) if layer.bias is not None else cols
    return rows.T @ rows / rows.shape[0]


def conv_factor_G(grad_output: np.ndarray, batch_size: int) -> np.ndarray:
    """Factor ``G`` for a conv layer from the mean-loss output gradient."""
    if grad_output.ndim != 4:
        raise ValueError(f"expected (N, C, H', W') gradient, got {grad_output.shape}")
    n, c_out, h, w = grad_output.shape
    spatial = h * w
    gmat = grad_output.transpose(0, 2, 3, 1).reshape(n * spatial, c_out)
    return gmat.T @ gmat * (batch_size / spatial)


def layer_factor_A(layer: KFACLayer, x: np.ndarray) -> np.ndarray:
    """Dispatch :func:`linear_factor_A` / :func:`conv_factor_A` by layer type."""
    if isinstance(layer, Linear):
        return linear_factor_A(x, has_bias=layer.bias is not None)
    if isinstance(layer, Conv2d):
        return conv_factor_A(x, layer)
    raise TypeError(f"K-FAC does not support layer type {type(layer).__name__}")


def layer_factor_G(layer: KFACLayer, grad_output: np.ndarray, batch_size: int) -> np.ndarray:
    """Dispatch :func:`linear_factor_G` / :func:`conv_factor_G` by layer type."""
    if isinstance(layer, Linear):
        return linear_factor_G(grad_output, batch_size)
    if isinstance(layer, Conv2d):
        return conv_factor_G(grad_output, batch_size)
    raise TypeError(f"K-FAC does not support layer type {type(layer).__name__}")
