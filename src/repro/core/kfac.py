"""Single-process K-FAC preconditioner and optimizer (Eqs. 11-12).

Architecture mirrors the paper's implementation (Section V): the
preconditioner registers ``forward_pre_hook`` / ``backward_hook`` on every
Linear/Conv2d layer, constructing ``A_{l-1}`` just before each forward and
``G_l`` just after each backward, then ``step()`` damps, inverts and
applies ``w <- w - lr * G^{-1} grad A^{-1}``.

:class:`KFACPreconditioner` exposes the factor/inverse machinery on its
own (the distributed variants in :mod:`repro.core.distributed` reuse it
and interpose communication); :class:`KFACOptimizer` adds the SGD-style
update loop with momentum and weight decay.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np
import scipy.linalg

from repro.core.factors import KFACLayer, kfac_layers, layer_factor_A, layer_factor_G
from repro.nn import Conv2d, Linear, Module, SGD
from repro.utils.validation import check_non_negative, check_positive, check_probability


def eig_damped_inverse(factor: np.ndarray, damping: float) -> np.ndarray:
    """Damped inverse via symmetric eigendecomposition.

    ``(Q diag(w) Q^T + damping I)^{-1} = Q diag(1/(w + damping)) Q^T``.
    This is the scheme of KAISA / Pauloski et al. [22]: the
    eigendecomposition is computed once per factor refresh and the
    damping applied to the eigenvalues, which lets implementations reuse
    the decomposition across damping schedules.  Slightly more expensive
    than Cholesky but tolerant of factors that are only positive
    *semi*-definite (eigenvalues clamped at zero before damping).
    """
    check_non_negative("damping", damping)
    eigvals, eigvecs = np.linalg.eigh(factor)
    eigvals = np.clip(eigvals, 0.0, None)
    inverse = (eigvecs / (eigvals + damping)) @ eigvecs.T
    return (inverse + inverse.T) / 2.0


def damped_inverse(factor: np.ndarray, damping: float) -> np.ndarray:
    """Cholesky inverse of ``factor + damping * I`` (Eq. 12's Tikhonov term).

    Matches the paper's cuSolver path, which "exploits the Cholesky
    decomposition to compute the inverse" (Section V-B).  Raises
    ``numpy.linalg.LinAlgError`` if the damped factor is not positive
    definite (e.g. damping too small for a rank-deficient factor).
    """
    check_non_negative("damping", damping)
    d = factor.shape[0]
    damped = factor + damping * np.eye(d)
    try:
        cho = scipy.linalg.cho_factor(damped, lower=True, check_finite=False)
    except scipy.linalg.LinAlgError as exc:
        raise np.linalg.LinAlgError(
            f"damped factor (d={d}, damping={damping}) is not positive definite: {exc}"
        ) from exc
    inverse = scipy.linalg.cho_solve(cho, np.eye(d), check_finite=False)
    # Cho-solve output is symmetric up to rounding; symmetrize so packed
    # upper-triangle communication is lossless.
    return (inverse + inverse.T) / 2.0


@dataclass
class LayerKFACState:
    """Running factors and inverses for one layer."""

    layer: KFACLayer
    factor_a: Optional[np.ndarray] = None
    factor_g: Optional[np.ndarray] = None
    inv_a: Optional[np.ndarray] = None
    inv_g: Optional[np.ndarray] = None
    batch_a: Optional[np.ndarray] = None
    batch_g: Optional[np.ndarray] = None

    def update_running(self, decay: float) -> None:
        """Fold the latest per-batch factors into the running averages."""
        if self.batch_a is None or self.batch_g is None:
            raise RuntimeError("no batch factors captured; run forward+backward first")
        if self.factor_a is None:
            self.factor_a = self.batch_a.copy()
            self.factor_g = self.batch_g.copy()
        else:
            self.factor_a = decay * self.factor_a + (1.0 - decay) * self.batch_a
            self.factor_g = decay * self.factor_g + (1.0 - decay) * self.batch_g

    def compute_inverses(self, damping: float, method: str = "cholesky") -> None:
        """Invert the damped running factors (the paper's I tasks).

        ``method``: ``"cholesky"`` (the paper's cuSolver path) or
        ``"eig"`` (the KAISA-style eigendecomposition, [22]).
        """
        if self.factor_a is None or self.factor_g is None:
            raise RuntimeError("factors not yet initialized")
        if method == "cholesky":
            invert = damped_inverse
        elif method == "eig":
            invert = eig_damped_inverse
        else:
            raise ValueError(f"method must be 'cholesky' or 'eig', got {method!r}")
        self.inv_a = invert(self.factor_a, damping)
        self.inv_g = invert(self.factor_g, damping)

    def grad_matrix(self) -> np.ndarray:
        """Layer gradient as a 2-D matrix ``(g_dim, a_dim)``, bias appended."""
        layer = self.layer
        if layer.weight.grad is None:
            raise RuntimeError("layer has no gradient")
        if isinstance(layer, Linear):
            grad = layer.weight.grad
        else:
            grad = layer.weight.grad.reshape(layer.out_channels, -1)
        if layer.bias is not None:
            if layer.bias.grad is None:
                raise RuntimeError("layer bias has no gradient")
            grad = np.concatenate([grad, layer.bias.grad[:, None]], axis=1)
        return grad

    def apply_preconditioned(self, matrix: np.ndarray) -> None:
        """Write a preconditioned gradient matrix back into ``param.grad``."""
        layer = self.layer
        if layer.bias is not None:
            weight_part, bias_part = matrix[:, :-1], matrix[:, -1]
            layer.bias.grad = np.ascontiguousarray(bias_part)
        else:
            weight_part = matrix
        layer.weight.grad = np.ascontiguousarray(weight_part.reshape(layer.weight.data.shape))

    def precondition(self) -> None:
        """Replace the layer gradient with ``G^{-1} grad A^{-1}`` (Eq. 11)."""
        if self.inv_a is None or self.inv_g is None:
            raise RuntimeError("inverses not yet computed")
        preconditioned = self.inv_g @ self.grad_matrix() @ self.inv_a
        self.apply_preconditioned(preconditioned)


class KFACPreconditioner:
    """Hook-driven K-FAC state manager for a model.

    Parameters
    ----------
    model:
        Any :class:`repro.nn.Module` tree; all Linear/Conv2d descendants
        are preconditioned.
    damping:
        Tikhonov ``gamma`` of Eq. 12.
    stat_decay:
        Exponential moving-average decay for the running factors
        (0 keeps only the latest batch).
    inverse_update_freq:
        Recompute inverses every this many ``step()`` calls; stale
        inverses are reused in between (standard K-FAC practice, also
        used by the paper's baselines [13, 22]).
    factor_update_freq:
        Fold freshly captured batch factors into the running averages
        only every this many steps (between refreshes the hooks' captures
        are simply ignored) — the "infrequent statistics" knob of [13].
    inverse_method:
        ``"cholesky"`` (paper) or ``"eig"`` (KAISA [22]).
    """

    def __init__(
        self,
        model: Module,
        damping: float = 1e-2,
        stat_decay: float = 0.95,
        inverse_update_freq: int = 1,
        factor_update_freq: int = 1,
        inverse_method: str = "cholesky",
    ):
        self.model = model
        self.damping = check_positive("damping", damping)
        self.stat_decay = check_probability("stat_decay", stat_decay)
        if inverse_update_freq < 1:
            raise ValueError("inverse_update_freq must be >= 1")
        if factor_update_freq < 1:
            raise ValueError("factor_update_freq must be >= 1")
        if inverse_method not in ("cholesky", "eig"):
            raise ValueError(f"inverse_method must be 'cholesky' or 'eig', got {inverse_method!r}")
        self.inverse_update_freq = inverse_update_freq
        self.factor_update_freq = factor_update_freq
        self.inverse_method = inverse_method
        self.steps = 0
        self.layers: List[KFACLayer] = kfac_layers(model)
        if not self.layers:
            raise ValueError("model has no Linear/Conv2d layers to precondition")
        self.states: Dict[int, LayerKFACState] = {
            id(layer): LayerKFACState(layer) for layer in self.layers
        }
        self._batch_size: Optional[int] = None
        self._register_hooks()

    # -- hook plumbing (Section V-A of the paper) -----------------------------

    def _register_hooks(self) -> None:
        for layer in self.layers:
            layer.register_forward_pre_hook(self._capture_factor_a)
            layer.register_backward_hook(self._capture_factor_g)

    def _capture_factor_a(self, module: Module, x: np.ndarray) -> None:
        if not module.training:
            return
        state = self.states[id(module)]
        state.batch_a = layer_factor_A(module, x)  # type: ignore[arg-type]
        self._batch_size = x.shape[0]

    def _capture_factor_g(
        self, module: Module, grad_input: Optional[np.ndarray], grad_output: np.ndarray
    ) -> None:
        del grad_input
        if not module.training or self._batch_size is None:
            return
        state = self.states[id(module)]
        state.batch_g = layer_factor_G(module, grad_output, self._batch_size)  # type: ignore[arg-type]

    # -- stepping --------------------------------------------------------------

    def ordered_states(self) -> List[LayerKFACState]:
        """Layer states in forward order (the paper's ``l = 1..L``)."""
        return [self.states[id(layer)] for layer in self.layers]

    def update_factors(self) -> None:
        """Fold captured batch factors into running averages (all layers)."""
        for state in self.ordered_states():
            state.update_running(self.stat_decay)

    def should_update_inverses(self) -> bool:
        return self.steps % self.inverse_update_freq == 0

    def should_update_factors(self) -> bool:
        return self.steps % self.factor_update_freq == 0

    def step(self) -> None:
        """Update factors, (maybe) refresh inverses, precondition gradients."""
        if self.should_update_factors():
            self.update_factors()
        if self.should_update_inverses():
            for state in self.ordered_states():
                state.compute_inverses(self.damping, method=self.inverse_method)
        for state in self.ordered_states():
            state.precondition()
        self.steps += 1


class KFACOptimizer:
    """K-FAC preconditioning + SGD update in one object (the paper's KFAC).

    Non-K-FAC parameters (e.g. BatchNorm) are updated with plain SGD,
    as in the paper's setup.

    ``kl_clip`` enables the standard trust-region rescaling used by
    large-scale K-FAC systems ([13, 22]): after preconditioning, the
    update is scaled by ``min(1, sqrt(kl_clip / sum(v . g) lr^2))`` so a
    step's estimated KL divergence stays bounded — without it the raw
    natural-gradient step easily overshoots on well-separated data.
    """

    def __init__(
        self,
        model: Module,
        lr: float,
        damping: float = 1e-2,
        stat_decay: float = 0.95,
        inverse_update_freq: int = 1,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        kl_clip: Optional[float] = None,
    ):
        self.model = model
        self.preconditioner = KFACPreconditioner(
            model,
            damping=damping,
            stat_decay=stat_decay,
            inverse_update_freq=inverse_update_freq,
        )
        if kl_clip is not None:
            check_positive("kl_clip", kl_clip)
        self.kl_clip = kl_clip
        self.lr = lr
        self.sgd = SGD(model.parameters(), lr=lr, momentum=momentum, weight_decay=weight_decay)

    def zero_grad(self) -> None:
        self.sgd.zero_grad()

    def step(self) -> None:
        """Precondition all K-FAC layer gradients, then apply the update."""
        prec = self.preconditioner
        raw_grads = None
        if self.kl_clip is not None:
            raw_grads = {
                id(state): state.grad_matrix().copy() for state in prec.ordered_states()
            }
        prec.step()
        if self.kl_clip is not None and raw_grads is not None:
            vg_sum = 0.0
            for state in prec.ordered_states():
                vg_sum += float(
                    (state.grad_matrix() * raw_grads[id(state)]).sum() * self.lr**2
                )
            if vg_sum > 0.0:
                nu = min(1.0, math.sqrt(self.kl_clip / vg_sum))
                for state in prec.ordered_states():
                    state.apply_preconditioned(state.grad_matrix() * nu)
        self.sgd.step()
