"""Single-process K-FAC preconditioner and optimizer (Eqs. 11-12).

Architecture mirrors the paper's implementation (Section V): the
preconditioner registers ``forward_pre_hook`` / ``backward_hook`` on every
Linear/Conv2d layer, constructing ``A_{l-1}`` just before each forward and
``G_l`` just after each backward, then ``step()`` damps, inverts and
applies ``w <- w - lr * G^{-1} grad A^{-1}``.

:class:`KFACPreconditioner` exposes the factor/inverse machinery on its
own (the distributed variants in :mod:`repro.core.distributed` reuse it
and interpose communication); :class:`KFACOptimizer` adds the SGD-style
update loop with momentum and weight decay.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
import scipy.linalg

from repro.core.factors import KFACLayer, kfac_layers, layer_factor_A, layer_factor_G
from repro.nn import Conv2d, Linear, Module, SGD
from repro.utils.validation import check_non_negative, check_positive, check_probability


@lru_cache(maxsize=128)
def _identity(d: int) -> np.ndarray:
    """Shared read-only ``d x d`` identity (one per dimension, ever)."""
    eye = np.eye(d)
    eye.setflags(write=False)
    return eye


def eig_damped_inverse(factor: np.ndarray, damping: float) -> np.ndarray:
    """Damped inverse via symmetric eigendecomposition.

    ``(Q diag(w) Q^T + damping I)^{-1} = Q diag(1/(w + damping)) Q^T``.
    This is the scheme of KAISA / Pauloski et al. [22]: the
    eigendecomposition is computed once per factor refresh and the
    damping applied to the eigenvalues, which lets implementations reuse
    the decomposition across damping schedules (see
    :meth:`LayerKFACState.eig_decomposition` for the cache).  Slightly
    more expensive than Cholesky but tolerant of factors that are only
    positive *semi*-definite (eigenvalues clamped at zero before damping).
    """
    check_non_negative("damping", damping)
    eigvals, eigvecs = np.linalg.eigh(factor)
    return eig_inverse_from_decomposition(eigvals, eigvecs, damping)


def eig_inverse_from_decomposition(
    eigvals: np.ndarray, eigvecs: np.ndarray, damping: float
) -> np.ndarray:
    """Re-damp a cached eigendecomposition into an inverse (cheap part)."""
    eigvals = np.clip(eigvals, 0.0, None)
    inverse = (eigvecs / (eigvals + damping)) @ eigvecs.T
    return (inverse + inverse.T) / 2.0


def eig_damped_inverse_batched(factors: np.ndarray, damping: float) -> np.ndarray:
    """Vectorized :func:`eig_damped_inverse` over a ``(k, d, d)`` stack.

    One batched ``eigh`` call replaces ``k`` Python-level round trips;
    LAPACK still decomposes each matrix independently, so entry ``j``
    matches ``eig_damped_inverse(factors[j], damping)`` to rounding.
    """
    check_non_negative("damping", damping)
    eigvals, eigvecs = np.linalg.eigh(factors)
    eigvals = np.clip(eigvals, 0.0, None)
    inverse = (eigvecs / (eigvals + damping)[:, None, :]) @ eigvecs.transpose(0, 2, 1)
    return (inverse + inverse.transpose(0, 2, 1)) / 2.0


def damped_inverse(factor: np.ndarray, damping: float) -> np.ndarray:
    """Cholesky inverse of ``factor + damping * I`` (Eq. 12's Tikhonov term).

    Matches the paper's cuSolver path, which "exploits the Cholesky
    decomposition to compute the inverse" (Section V-B).  Raises
    ``numpy.linalg.LinAlgError`` if the damped factor is not positive
    definite (e.g. damping too small for a rank-deficient factor).
    """
    check_non_negative("damping", damping)
    d = factor.shape[0]
    damped = factor.copy()
    damped.flat[:: d + 1] += damping  # in place: no eye() temporaries
    try:
        cho = scipy.linalg.cho_factor(damped, lower=True, check_finite=False)
    except scipy.linalg.LinAlgError as exc:
        raise np.linalg.LinAlgError(
            f"damped factor (d={d}, damping={damping}) is not positive definite: {exc}"
        ) from exc
    inverse = scipy.linalg.cho_solve(cho, _identity(d), check_finite=False)
    # Cho-solve output is symmetric up to rounding; symmetrize so packed
    # upper-triangle communication is lossless.
    return (inverse + inverse.T) / 2.0


def damped_inverse_batched(factors: np.ndarray, damping: float) -> np.ndarray:
    """:func:`damped_inverse` over a ``(k, d, d)`` stack of same-size factors.

    ResNet/DenseNet layers share factor dimensions, so grouping the 2L
    inverses by ``d`` turns L-ish Python-level solver calls into a few
    batched LAPACK sweeps (the batching insight KAISA exploits on GPUs).
    Raises ``numpy.linalg.LinAlgError`` when any damped factor is not
    positive definite, like the scalar path.
    """
    check_non_negative("damping", damping)
    if factors.ndim != 3 or factors.shape[1] != factors.shape[2]:
        raise ValueError(f"expected a (k, d, d) stack, got shape {factors.shape}")
    d = factors.shape[1]
    damped = np.ascontiguousarray(factors, dtype=np.float64).copy()
    damped.reshape(len(damped), -1)[:, :: d + 1] += damping  # in-place Tikhonov
    chol = np.linalg.cholesky(damped)  # LinAlgError if not PD, as scalar path
    # (L L^T)^{-1} = L^{-T} L^{-1}; the triangular inverses are batched.
    chol_inv = np.linalg.inv(chol)
    inverse = chol_inv.transpose(0, 2, 1) @ chol_inv
    return (inverse + inverse.transpose(0, 2, 1)) / 2.0


def refresh_eig_caches(jobs: Sequence[Tuple["LayerKFACState", str]]) -> None:
    """Batch-decompose every stale factor in ``jobs`` and cache the results.

    ``jobs`` are (state, factor attribute) pairs; entries whose cached
    eigendecomposition still matches the factor version are skipped, the
    rest are grouped by dimension and sent through one batched ``eigh``
    per group.  Shared by the single-process preconditioner refresh and
    the distributed per-rank inverse stage.
    """
    groups: Dict[int, List[Tuple["LayerKFACState", str]]] = {}
    for state, attr in jobs:
        if state.has_fresh_eig(attr):
            continue
        groups.setdefault(getattr(state, attr).shape[0], []).append((state, attr))
    for members in groups.values():
        stacked = np.stack([getattr(state, attr) for state, attr in members])
        eigvals, eigvecs = np.linalg.eigh(stacked)
        for j, (state, attr) in enumerate(members):
            state.cache_eig_decomposition(attr, eigvals[j], eigvecs[j])


def batched_inverse_groups(
    factors: Sequence[np.ndarray], damping: float, method: str = "cholesky"
) -> List[np.ndarray]:
    """Invert a heterogeneous list of symmetric factors, batched by size.

    Factors are grouped by dimension, each group inverted with one
    batched call, and the results returned in input order.  This is the
    shared engine behind the single-process preconditioner refresh and
    the distributed per-rank inverse stage.
    """
    if method == "cholesky":
        invert = damped_inverse_batched
    elif method == "eig":
        invert = eig_damped_inverse_batched
    else:
        raise ValueError(f"method must be 'cholesky' or 'eig', got {method!r}")
    groups: Dict[int, List[int]] = {}
    for idx, factor in enumerate(factors):
        groups.setdefault(factor.shape[0], []).append(idx)
    out: List[Optional[np.ndarray]] = [None] * len(factors)
    for members in groups.values():
        stacked = np.stack([factors[idx] for idx in members])
        inverses = invert(stacked, damping)
        for j, idx in enumerate(members):
            out[idx] = inverses[j]
    return out  # type: ignore[return-value]


@dataclass
class LayerKFACState:
    """Running factors and inverses for one layer.

    ``factor_version`` counts factor rewrites (running-average folds and
    all-reduce replacements); the per-factor eigendecomposition cache is
    keyed on it so the ``"eig"`` method can re-damp a stale-damping
    inverse without re-decomposing an unchanged factor.
    """

    layer: KFACLayer
    factor_a: Optional[np.ndarray] = None
    factor_g: Optional[np.ndarray] = None
    inv_a: Optional[np.ndarray] = None
    inv_g: Optional[np.ndarray] = None
    batch_a: Optional[np.ndarray] = None
    batch_g: Optional[np.ndarray] = None
    factor_version: int = 0
    _eig_cache: Dict[str, Tuple[int, np.ndarray, np.ndarray]] = field(
        default_factory=dict, repr=False
    )

    def __setattr__(self, name: str, value: object) -> None:
        # Any rewrite of a factor — running-average fold, all-reduce
        # replacement, or a caller assigning the attribute directly —
        # must invalidate cached decompositions of it; hooking assignment
        # keeps that invariant in the state object instead of in caller
        # discipline.  (The __dict__ guard skips dataclass __init__, which
        # assigns fields before factor_version exists.)
        super().__setattr__(name, value)
        if name in ("factor_a", "factor_g") and "factor_version" in self.__dict__:
            super().__setattr__("factor_version", self.factor_version + 1)

    def update_running(self, decay: float) -> None:
        """Fold the latest per-batch factors into the running averages."""
        if self.batch_a is None or self.batch_g is None:
            raise RuntimeError("no batch factors captured; run forward+backward first")
        if self.factor_a is None:
            self.factor_a = self.batch_a.copy()
            self.factor_g = self.batch_g.copy()
        else:
            self.factor_a = decay * self.factor_a + (1.0 - decay) * self.batch_a
            self.factor_g = decay * self.factor_g + (1.0 - decay) * self.batch_g

    def set_factor(self, attr: str, value: np.ndarray) -> None:
        """Replace ``factor_a``/``factor_g`` (e.g. with an all-reduced global
        factor); cached decompositions of it are invalidated by the
        assignment hook."""
        setattr(self, attr, value)

    def eig_decomposition(self, attr: str) -> Tuple[np.ndarray, np.ndarray]:
        """(eigvals, eigvecs) of the current ``attr`` factor, cached per
        :attr:`factor_version` — the decomposition reuse promised by
        :func:`eig_damped_inverse`'s damping-schedule note."""
        factor = getattr(self, attr)
        if factor is None:
            raise RuntimeError("factors not yet initialized")
        cached = self._eig_cache.get(attr)
        if cached is not None and cached[0] == self.factor_version:
            return cached[1], cached[2]
        eigvals, eigvecs = np.linalg.eigh(factor)
        self._eig_cache[attr] = (self.factor_version, eigvals, eigvecs)
        return eigvals, eigvecs

    def cache_eig_decomposition(
        self, attr: str, eigvals: np.ndarray, eigvecs: np.ndarray
    ) -> None:
        """Store an externally (batch-)computed decomposition of ``attr``."""
        self._eig_cache[attr] = (self.factor_version, eigvals, eigvecs)

    def has_fresh_eig(self, attr: str) -> bool:
        """Whether a decomposition of the *current* ``attr`` factor is cached."""
        cached = self._eig_cache.get(attr)
        return cached is not None and cached[0] == self.factor_version

    def compute_inverses(self, damping: float, method: str = "cholesky") -> None:
        """Invert the damped running factors (the paper's I tasks).

        ``method``: ``"cholesky"`` (the paper's cuSolver path) or
        ``"eig"`` (the KAISA-style eigendecomposition, [22]).  The eig
        path reuses the cached decomposition when the factor is
        unchanged, so a damping-schedule change re-damps eigenvalues
        instead of re-running ``eigh``.
        """
        if self.factor_a is None or self.factor_g is None:
            raise RuntimeError("factors not yet initialized")
        if method == "cholesky":
            self.inv_a = damped_inverse(self.factor_a, damping)
            self.inv_g = damped_inverse(self.factor_g, damping)
        elif method == "eig":
            self.inv_a = eig_inverse_from_decomposition(
                *self.eig_decomposition("factor_a"), damping
            )
            self.inv_g = eig_inverse_from_decomposition(
                *self.eig_decomposition("factor_g"), damping
            )
        else:
            raise ValueError(f"method must be 'cholesky' or 'eig', got {method!r}")

    def grad_matrix(self) -> np.ndarray:
        """Layer gradient as a 2-D matrix ``(g_dim, a_dim)``, bias appended."""
        layer = self.layer
        if layer.weight.grad is None:
            raise RuntimeError("layer has no gradient")
        if isinstance(layer, Linear):
            grad = layer.weight.grad
        else:
            grad = layer.weight.grad.reshape(layer.out_channels, -1)
        if layer.bias is not None:
            if layer.bias.grad is None:
                raise RuntimeError("layer bias has no gradient")
            grad = np.concatenate([grad, layer.bias.grad[:, None]], axis=1)
        return grad

    def apply_preconditioned(self, matrix: np.ndarray) -> None:
        """Write a preconditioned gradient matrix back into ``param.grad``."""
        layer = self.layer
        if layer.bias is not None:
            weight_part, bias_part = matrix[:, :-1], matrix[:, -1]
            layer.bias.grad = np.ascontiguousarray(bias_part)
        else:
            weight_part = matrix
        layer.weight.grad = np.ascontiguousarray(weight_part.reshape(layer.weight.data.shape))

    def precondition(self) -> None:
        """Replace the layer gradient with ``G^{-1} grad A^{-1}`` (Eq. 11)."""
        if self.inv_a is None or self.inv_g is None:
            raise RuntimeError("inverses not yet computed")
        preconditioned = self.inv_g @ self.grad_matrix() @ self.inv_a
        self.apply_preconditioned(preconditioned)


class KFACPreconditioner:
    """Hook-driven K-FAC state manager for a model.

    Parameters
    ----------
    model:
        Any :class:`repro.nn.Module` tree; all Linear/Conv2d descendants
        are preconditioned.
    damping:
        Tikhonov ``gamma`` of Eq. 12.
    stat_decay:
        Exponential moving-average decay for the running factors
        (0 keeps only the latest batch).
    inverse_update_freq:
        Recompute inverses every this many ``step()`` calls; stale
        inverses are reused in between (standard K-FAC practice, also
        used by the paper's baselines [13, 22]).
    factor_update_freq:
        Fold freshly captured batch factors into the running averages
        only every this many steps (between refreshes the hooks' captures
        are simply ignored) — the "infrequent statistics" knob of [13].
    inverse_method:
        ``"cholesky"`` (paper) or ``"eig"`` (KAISA [22]).
    """

    def __init__(
        self,
        model: Module,
        damping: float = 1e-2,
        stat_decay: float = 0.95,
        inverse_update_freq: int = 1,
        factor_update_freq: int = 1,
        inverse_method: str = "cholesky",
    ):
        self.model = model
        self.damping = check_positive("damping", damping)
        self.stat_decay = check_probability("stat_decay", stat_decay)
        if inverse_update_freq < 1:
            raise ValueError("inverse_update_freq must be >= 1")
        if factor_update_freq < 1:
            raise ValueError("factor_update_freq must be >= 1")
        if inverse_method not in ("cholesky", "eig"):
            raise ValueError(f"inverse_method must be 'cholesky' or 'eig', got {inverse_method!r}")
        self.inverse_update_freq = inverse_update_freq
        self.factor_update_freq = factor_update_freq
        self.inverse_method = inverse_method
        self.steps = 0
        self.layers: List[KFACLayer] = kfac_layers(model)
        if not self.layers:
            raise ValueError("model has no Linear/Conv2d layers to precondition")
        self.states: Dict[int, LayerKFACState] = {
            id(layer): LayerKFACState(layer) for layer in self.layers
        }
        self._batch_size: Optional[int] = None
        self._register_hooks()

    # -- hook plumbing (Section V-A of the paper) -----------------------------

    def _register_hooks(self) -> None:
        for layer in self.layers:
            layer.register_forward_pre_hook(self._capture_factor_a)
            layer.register_backward_hook(self._capture_factor_g)

    def _capture_factor_a(self, module: Module, x: np.ndarray) -> None:
        if not module.training:
            return
        state = self.states[id(module)]
        state.batch_a = layer_factor_A(module, x)  # type: ignore[arg-type]
        self._batch_size = x.shape[0]

    def _capture_factor_g(
        self, module: Module, grad_input: Optional[np.ndarray], grad_output: np.ndarray
    ) -> None:
        del grad_input
        if not module.training or self._batch_size is None:
            return
        state = self.states[id(module)]
        state.batch_g = layer_factor_G(module, grad_output, self._batch_size)  # type: ignore[arg-type]

    # -- stepping --------------------------------------------------------------

    def ordered_states(self) -> List[LayerKFACState]:
        """Layer states in forward order (the paper's ``l = 1..L``)."""
        return [self.states[id(layer)] for layer in self.layers]

    def update_factors(self) -> None:
        """Fold captured batch factors into running averages (all layers)."""
        for state in self.ordered_states():
            state.update_running(self.stat_decay)

    def should_update_inverses(self) -> bool:
        return self.steps % self.inverse_update_freq == 0

    def should_update_factors(self) -> bool:
        return self.steps % self.factor_update_freq == 0

    def refresh_inverses(self) -> None:
        """Recompute every layer's damped inverses, batched by dimension.

        The 2L factors are grouped by matrix side and each group inverted
        with one batched LAPACK call (ResNet/DenseNet blocks share
        dimensions, so the groups are large).  With ``inverse_method ==
        "eig"``, factors whose cached eigendecomposition is still fresh
        are merely re-damped; only stale ones enter the batched ``eigh``.
        """
        states = self.ordered_states()
        jobs: List[Tuple[LayerKFACState, str, str]] = []
        for state in states:
            if state.factor_a is None or state.factor_g is None:
                raise RuntimeError("factors not yet initialized")
            jobs.append((state, "factor_a", "inv_a"))
            jobs.append((state, "factor_g", "inv_g"))
        if self.inverse_method == "eig":
            refresh_eig_caches([(state, attr) for state, attr, _ in jobs])
            for state, attr, inv_attr in jobs:
                inverse = eig_inverse_from_decomposition(
                    *state.eig_decomposition(attr), self.damping
                )
                setattr(state, inv_attr, inverse)
        else:
            factors = [getattr(state, attr) for state, attr, _ in jobs]
            inverses = batched_inverse_groups(factors, self.damping, self.inverse_method)
            for (state, _, inv_attr), inverse in zip(jobs, inverses):
                setattr(state, inv_attr, inverse)

    def step(self) -> None:
        """Update factors, (maybe) refresh inverses, precondition gradients."""
        if self.should_update_factors():
            self.update_factors()
        if self.should_update_inverses():
            self.refresh_inverses()
        for state in self.ordered_states():
            state.precondition()
        self.steps += 1


class KFACOptimizer:
    """K-FAC preconditioning + SGD update in one object (the paper's KFAC).

    Non-K-FAC parameters (e.g. BatchNorm) are updated with plain SGD,
    as in the paper's setup.

    ``kl_clip`` enables the standard trust-region rescaling used by
    large-scale K-FAC systems ([13, 22]): after preconditioning, the
    update is scaled by ``min(1, sqrt(kl_clip / sum(v . g) lr^2))`` so a
    step's estimated KL divergence stays bounded — without it the raw
    natural-gradient step easily overshoots on well-separated data.
    """

    def __init__(
        self,
        model: Module,
        lr: float,
        damping: float = 1e-2,
        stat_decay: float = 0.95,
        inverse_update_freq: int = 1,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        kl_clip: Optional[float] = None,
    ):
        self.model = model
        self.preconditioner = KFACPreconditioner(
            model,
            damping=damping,
            stat_decay=stat_decay,
            inverse_update_freq=inverse_update_freq,
        )
        if kl_clip is not None:
            check_positive("kl_clip", kl_clip)
        self.kl_clip = kl_clip
        self.lr = lr
        self.sgd = SGD(model.parameters(), lr=lr, momentum=momentum, weight_decay=weight_decay)

    def zero_grad(self) -> None:
        self.sgd.zero_grad()

    def step(self) -> None:
        """Precondition all K-FAC layer gradients, then apply the update."""
        prec = self.preconditioner
        raw_grads = None
        if self.kl_clip is not None:
            raw_grads = {
                id(state): state.grad_matrix().copy() for state in prec.ordered_states()
            }
        prec.step()
        if self.kl_clip is not None and raw_grads is not None:
            vg_sum = 0.0
            for state in prec.ordered_states():
                vg_sum += float(
                    (state.grad_matrix() * raw_grads[id(state)]).sum() * self.lr**2
                )
            if vg_sum > 0.0:
                nu = min(1.0, math.sqrt(self.kl_clip / vg_sum))
                for state in prec.ordered_states():
                    state.apply_preconditioned(state.grad_matrix() * nu)
        self.sgd.step()
