"""Inverse-workload placement over GPUs (Section IV-B, Algorithm 1).

After factor aggregation all ranks hold identical global factors; the
``2L`` damped inverses can be computed redundantly everywhere (no
communication) or partitioned across ranks (each result then broadcast).
A :class:`Placement` records, for each tensor, the set of ranks that
compute it:

* **NCT** (non-communicated tensor) — computed by *all* ranks, never
  communicated;
* **CT** (communicated tensor) — computed by exactly one owner rank and
  broadcast to the rest.

Four strategies are implemented, matching the paper's comparisons
(Figs. 5 and 12):

=================== =====================================================
``non_dist``        every tensor NCT (the D-KFAC baseline)
``seq_dist``        round-robin CT placement (MPD-KFAC [13, 20, 22])
``balanced``        greedy longest-processing-time by d^2, all CT
                    (Fig. 5b — balanced w/o considering communication)
``lbp``             Algorithm 1: balanced placement + per-tensor CT/NCT
                    decision from the calibrated cost models (Fig. 5c)
=================== =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

# Cost models are duck-typed: ``comp`` needs ``.time(d)`` and ``comm``
# needs ``.time_symmetric(d)`` — any of the families in
# :mod:`repro.perf.models` qualifies, so the planner can run either with
# the paper's standalone fits (Eq. 26/27) or with execution-calibrated
# models.
from repro.perf.models import CompModelLike, CommModelLike


@dataclass(frozen=True)
class Placement:
    """Assignment of ``len(dims)`` tensors to ranks.

    ``assignments[i]`` is the tuple of ranks computing tensor ``i``:
    length 1 for a CT (its owner), length ``num_ranks`` for an NCT.
    """

    num_ranks: int
    dims: Tuple[int, ...]
    assignments: Tuple[Tuple[int, ...], ...]

    def __post_init__(self) -> None:
        if self.num_ranks < 1:
            raise ValueError("num_ranks must be >= 1")
        if len(self.assignments) != len(self.dims):
            raise ValueError("one assignment required per tensor")
        for i, ranks in enumerate(self.assignments):
            if len(ranks) not in (1, self.num_ranks):
                raise ValueError(
                    f"tensor {i} assigned to {len(ranks)} ranks; must be 1 (CT) "
                    f"or {self.num_ranks} (NCT) per Eq. 17-19"
                )
            if sorted(set(ranks)) != sorted(ranks):
                raise ValueError(f"duplicate ranks for tensor {i}")
            if any(not 0 <= r < self.num_ranks for r in ranks):
                raise ValueError(f"rank out of range for tensor {i}")

    def is_nct(self, index: int) -> bool:
        """True if tensor ``index`` is computed everywhere (never sent)."""
        return len(self.assignments[index]) == self.num_ranks

    def owner(self, index: int) -> int:
        """Owner rank of a CT (raises for NCTs)."""
        if self.is_nct(index):
            raise ValueError(f"tensor {index} is an NCT; it has no single owner")
        return self.assignments[index][0]

    def tensors_on(self, rank: int) -> List[int]:
        """Indices of tensors computed on ``rank``."""
        return [i for i, ranks in enumerate(self.assignments) if rank in ranks]

    def num_cts(self) -> int:
        return sum(1 for i in range(len(self.dims)) if not self.is_nct(i))

    def estimated_completion(
        self, comp: CompModelLike, comm: CommModelLike
    ) -> float:
        """Eq. 21: max over ranks of (compute time + owned-CT broadcast time).

        This is the objective LBP minimizes, evaluated with the planner's
        own cost models.
        """
        totals = [0.0] * self.num_ranks
        for i, d in enumerate(self.dims):
            for rank in self.assignments[i]:
                totals[rank] += comp.time(d)
            if not self.is_nct(i):
                totals[self.owner(i)] += comm.time_symmetric(d)
        return max(totals)


def _check_inputs(dims: Sequence[int], num_ranks: int) -> Tuple[int, ...]:
    dims = tuple(int(d) for d in dims)
    if not dims:
        raise ValueError("need at least one tensor")
    if any(d < 1 for d in dims):
        raise ValueError("all dimensions must be >= 1")
    if num_ranks < 1:
        raise ValueError("num_ranks must be >= 1")
    return dims


def non_dist_placement(dims: Sequence[int], num_ranks: int) -> Placement:
    """Every tensor computed on every rank; zero inverse communication."""
    dims = _check_inputs(dims, num_ranks)
    everyone = tuple(range(num_ranks))
    return Placement(num_ranks, dims, tuple(everyone for _ in dims))


def seq_dist_placement(dims: Sequence[int], num_ranks: int) -> Placement:
    """Round-robin placement, all tensors CT (the MPD-KFAC baseline, Eq. 22)."""
    dims = _check_inputs(dims, num_ranks)
    return Placement(num_ranks, dims, tuple((i % num_ranks,) for i in range(len(dims))))


def _greedy_least_loaded(
    order: Sequence[int], weights: Sequence[float], num_ranks: int
) -> List[int]:
    """Assign items (in the given order) to the currently least-loaded rank."""
    load = np.zeros(num_ranks)
    owner = [0] * len(weights)
    for i in order:
        rank = int(np.argmin(load))
        owner[i] = rank
        load[rank] += weights[i]
    return owner


def balanced_placement(dims: Sequence[int], num_ranks: int) -> Placement:
    """LPT balance by ``d^2`` (Eq. 25), all tensors CT — Fig. 5(b).

    Balances computation but ignores broadcast cost; the ablation shows
    why the CT/NCT decision matters.
    """
    dims = _check_inputs(dims, num_ranks)
    weights = [float(d) ** 2 for d in dims]
    order = sorted(range(len(dims)), key=lambda i: -weights[i])
    owner = _greedy_least_loaded(order, weights, num_ranks)
    return Placement(num_ranks, dims, tuple((owner[i],) for i in range(len(dims))))


def lbp_placement(
    dims: Sequence[int],
    num_ranks: int,
    comp: CompModelLike,
    comm: CommModelLike,
    weight: str = "square",
) -> Placement:
    """Algorithm 1: Load-Balancing Placement with dynamic CT/NCT decision.

    Tensors are visited in descending dimension order.  A tensor whose
    estimated inverse time is *smaller* than its broadcast time is made
    NCT (cheaper for everyone to recompute than to wait for the wire);
    otherwise it is placed on the least-loaded rank.

    ``weight`` selects the load metric: ``"square"`` uses ``d^2``
    (Eq. 25's balance target; also proportional to both cost models'
    leading terms), ``"linear"`` uses ``d`` (the literal Line 10/13 of
    the paper's Algorithm 1 listing).  The default follows Eq. 25.
    """
    dims = _check_inputs(dims, num_ranks)
    if weight not in ("square", "linear"):
        raise ValueError(f"weight must be 'square' or 'linear', got {weight!r}")

    def load_of(d: int) -> float:
        return float(d) ** 2 if weight == "square" else float(d)

    order = sorted(range(len(dims)), key=lambda i: -dims[i])
    load = np.zeros(num_ranks)
    assignments: List[Tuple[int, ...]] = [()] * len(dims)
    everyone = tuple(range(num_ranks))
    for i in order:
        d = dims[i]
        t_comp = comp.time(d)
        t_comm = comm.time_symmetric(d) if num_ranks > 1 else float("inf")
        if t_comp < t_comm:
            assignments[i] = everyone  # NCT: computed by all, never sent
            load += load_of(d)
        else:
            rank = int(np.argmin(load))
            assignments[i] = (rank,)
            load[rank] += load_of(d)
    return Placement(num_ranks, dims, tuple(assignments))
