"""Convenience training loop shared by examples and integration tests.

Wraps any (model, optimizer, loss) triple behind ``fit``/``evaluate`` so
examples don't re-implement the forward/backward/step dance, and records
a loss history for convergence assertions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Protocol, Tuple

import numpy as np

from repro.nn import CrossEntropyLoss, Module


class SteppableOptimizer(Protocol):
    """Anything with ``zero_grad()`` and ``step()`` (SGD, KFAC, DistKFAC)."""

    def zero_grad(self) -> None: ...

    def step(self) -> None: ...


@dataclass
class Trainer:
    """Mini training harness for classification models."""

    model: Module
    optimizer: SteppableOptimizer
    loss_fn: CrossEntropyLoss = field(default_factory=CrossEntropyLoss)
    history: List[float] = field(default_factory=list)

    def train_step(self, x: np.ndarray, y: np.ndarray) -> float:
        """One optimization step on a batch; returns the pre-step loss."""
        self.optimizer.zero_grad()
        value = self.loss_fn(self.model(x), y)
        self.model.run_backward(self.loss_fn.backward())
        self.optimizer.step()
        self.history.append(value)
        return value

    def fit(self, batches: Iterable[Tuple[np.ndarray, np.ndarray]]) -> List[float]:
        """Run one step per batch; returns the loss history of this call."""
        start = len(self.history)
        for x, y in batches:
            self.train_step(x, y)
        return self.history[start:]

    def evaluate(self, x: np.ndarray, y: np.ndarray) -> Tuple[float, float]:
        """(mean loss, accuracy) on held-out data, in eval mode."""
        self.model.eval()
        try:
            logits = self.model(x)
            loss = self.loss_fn(logits, y)
            accuracy = float((logits.argmax(axis=1) == y).mean())
        finally:
            self.model.train()
        return loss, accuracy
