"""repro.obs — spans, metrics, and trace-friendly telemetry.

The paper's whole argument rests on observability: SPD-KFAC is motivated
by time-breakdown profiling of the D-KFAC pipeline (Figs. 2-3) showing
where iteration time goes before each optimization is applied.  This
package is the reproduction's own profiler: a process-wide
:class:`Recorder` that the planner (:mod:`repro.plan`), simulator
(:mod:`repro.sim`), autotuner (:mod:`repro.autotune`), and experiment
harness (:mod:`repro.experiments`) all report spans and metrics to.

Everything is **off by default** — the disabled path is one attribute
check — and purely observational: enabling the recorder never changes a
planned or simulated value (the frozen paper rows are asserted
bit-identical with it on).

Quickstart::

    from repro import Session
    from repro.obs import recording

    with recording() as rec:
        Session("ResNet-50", 64).simulate("SPD-KFAC")
    print(rec.summary()["spans"])        # where the wall-clock went

Three instrument kinds back the metric side (:mod:`repro.obs.metrics`):
counters (cache hits, candidates pruned), gauges (levels), and
histograms with fixed bucket boundaries (latencies, bound-tightness
ratios).  For the simulator's task-level view — Perfetto-grade traces
with flow events and counter tracks — see :mod:`repro.sim.trace`.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    RATIO_BUCKETS,
    Counter,
    Gauge,
    Histogram,
)
from repro.obs.recorder import Recorder, Span, SpanStats, recorder, recording

__all__ = [
    "Recorder",
    "Span",
    "SpanStats",
    "recorder",
    "recording",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS",
    "RATIO_BUCKETS",
]
