"""Metric primitives of the observability layer: counters, gauges, histograms.

These are deliberately minimal, dependency-free mirrors of the usual
telemetry vocabulary:

* :class:`Counter` — a monotonically increasing total (cache hits,
  candidates pruned);
* :class:`Gauge` — a last-write-wins level (current queue depth);
* :class:`Histogram` — observations bucketed against *fixed* boundaries
  chosen at creation time, so two histograms of the same metric are
  mergeable and snapshots are deterministic.

Instances are created and owned by :class:`repro.obs.Recorder`; user
code normally goes through ``recorder.count(...)`` /
``recorder.observe(...)`` rather than instantiating these directly.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS",
    "RATIO_BUCKETS",
]

#: Default histogram boundaries for wall-clock observations, in seconds.
#: Spans from microseconds (a cache hit) to minutes (a cold full-grid
#: robust autotune) in roughly-decade steps.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 300.0,
)

#: Boundaries for dimensionless 0..1-ish ratios (bound tightness, hit
#: rates): a fine-grained tail near 1.0 where the interesting mass is.
RATIO_BUCKETS: Tuple[float, ...] = (
    0.1, 0.25, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99, 1.0,
)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be >= 0) to the total."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        self.value += amount

    def to_dict(self) -> Dict[str, object]:
        """Snapshot as a plain dict (JSON-ready)."""
        return {"type": "counter", "value": self.value}

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A last-write-wins level."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = value

    def to_dict(self) -> Dict[str, object]:
        """Snapshot as a plain dict (JSON-ready)."""
        return {"type": "gauge", "value": self.value}

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value})"


class Histogram:
    """Observations bucketed against fixed, sorted boundaries.

    Bucket ``i`` counts observations ``v <= bounds[i]``; one overflow
    bucket counts everything beyond the last boundary.  ``sum`` and
    ``count`` track the exact total alongside the bucketed shape, so
    means stay exact no matter how coarse the boundaries are.
    """

    __slots__ = ("name", "bounds", "counts", "sum", "count")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket boundary")
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(
                f"histogram {name!r} boundaries must be strictly increasing, got {bounds}"
            )
        self.name = name
        self.bounds = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        """Exact mean of all observations (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def bucket_labels(self) -> List[str]:
        """Human-readable upper-bound label per bucket (``+Inf`` last)."""
        return [f"<={b:g}" for b in self.bounds] + ["+Inf"]

    def to_dict(self) -> Dict[str, object]:
        """Snapshot as a plain dict (JSON-ready, deterministic keys)."""
        return {
            "type": "histogram",
            "buckets": dict(zip(self.bucket_labels(), self.counts)),
            "count": self.count,
            "sum": self.sum,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count}, sum={self.sum:g})"
