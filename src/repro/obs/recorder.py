"""The process-wide span/metric recorder.

A :class:`Recorder` collects two kinds of telemetry:

* **spans** — named, attributed wall-clock intervals opened with
  ``recorder.span(name, **attrs)`` as a context manager;
* **metrics** — named :class:`~repro.obs.metrics.Counter` /
  :class:`~repro.obs.metrics.Gauge` /
  :class:`~repro.obs.metrics.Histogram` instruments mutated through
  ``count`` / ``gauge`` / ``observe``.

Recording is **off by default** and the disabled path is a single
attribute check: ``span()`` returns a shared no-op context manager and
every metric mutator returns immediately, so instrumented hot paths
(the simulator engine, the Session cache) pay effectively nothing when
nobody is looking.  ``repro``'s own instrumentation never changes any
computed value — enabling the recorder is observation only, asserted by
the frozen-row tests running with it on.

The module-level :func:`recorder` returns the process-wide default
instance that all of repro's built-in instrumentation reports to.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS, Counter, Gauge, Histogram

__all__ = ["Span", "Recorder", "recorder", "recording"]


@dataclass(frozen=True)
class Span:
    """One finished span: a named wall-clock interval with attributes.

    ``start``/``end`` are :func:`time.perf_counter` readings — they
    order and measure spans within this process but are not wall-clock
    timestamps.  ``thread`` is the recording thread's ``ident``.
    """

    name: str
    start: float
    end: float
    attrs: Tuple[Tuple[str, object], ...] = ()
    thread: int = 0

    @property
    def duration(self) -> float:
        """Elapsed seconds between enter and exit."""
        return self.end - self.start

    def get(self, key: str, default: object = None) -> object:
        """Attribute lookup (attrs are stored as a sorted tuple)."""
        for k, v in self.attrs:
            if k == key:
                return v
        return default

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready view of this span."""
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attrs": dict(self.attrs),
        }


class _NullSpan:
    """Shared no-op context manager returned by a disabled recorder."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def set(self, **attrs) -> None:
        """Discard attributes (recording is off)."""
        return None


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    """Context manager that records a :class:`Span` on exit."""

    __slots__ = ("_recorder", "_name", "_attrs", "_start")

    def __init__(self, recorder: "Recorder", name: str, attrs: Dict[str, object]):
        self._recorder = recorder
        self._name = name
        self._attrs = attrs
        self._start = 0.0

    def set(self, **attrs) -> None:
        """Attach or update attributes before the span closes."""
        self._attrs.update(attrs)

    def __enter__(self) -> "_LiveSpan":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        end = time.perf_counter()
        self._recorder._record(
            Span(
                name=self._name,
                start=self._start,
                end=end,
                attrs=tuple(sorted(self._attrs.items())),
                thread=threading.get_ident(),
            )
        )


@dataclass
class SpanStats:
    """Aggregate of all finished spans sharing one name."""

    count: int = 0
    total: float = 0.0
    max: float = 0.0

    def to_dict(self) -> Dict[str, float]:
        """JSON-ready view (count, total seconds, max seconds, mean)."""
        return {
            "count": self.count,
            "total_s": self.total,
            "max_s": self.max,
            "mean_s": self.total / self.count if self.count else 0.0,
        }


class Recorder:
    """Collects spans and metrics; off by default, near-free when off.

    Examples
    --------
    >>> rec = Recorder()
    >>> with rec.span("work"):          # disabled: no-op, nothing kept
    ...     pass
    >>> rec.spans
    []
    >>> rec.enable()
    >>> with rec.span("work", items=3):
    ...     rec.count("widgets", 2)
    >>> rec.spans[0].name, rec.spans[0].get("items")
    ('work', 3)
    >>> rec.counters["widgets"].value
    2
    """

    def __init__(self) -> None:
        self.enabled: bool = False
        self._spans: List[Span] = []
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    # -- lifecycle ----------------------------------------------------------

    def enable(self) -> None:
        """Start recording spans and metrics."""
        self.enabled = True

    def disable(self) -> None:
        """Stop recording (already-collected telemetry is kept)."""
        self.enabled = False

    def reset(self) -> None:
        """Drop every collected span and metric (enabled state unchanged)."""
        with self._lock:
            self._spans = []
            self._counters = {}
            self._gauges = {}
            self._histograms = {}

    # -- spans --------------------------------------------------------------

    def span(self, name: str, **attrs) -> Union[_NullSpan, _LiveSpan]:
        """A context manager timing ``name`` (no-op while disabled)."""
        if not self.enabled:  # the disabled fast path: one attribute check
            return _NULL_SPAN
        return _LiveSpan(self, name, attrs)

    def _record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    @property
    def spans(self) -> List[Span]:
        """All finished spans, in completion order (a copy)."""
        with self._lock:
            return list(self._spans)

    def span_stats(self) -> Dict[str, SpanStats]:
        """Per-name aggregates (count, total, max) over finished spans."""
        stats: Dict[str, SpanStats] = {}
        for span in self.spans:
            entry = stats.setdefault(span.name, SpanStats())
            entry.count += 1
            entry.total += span.duration
            entry.max = max(entry.max, span.duration)
        return stats

    # -- metrics ------------------------------------------------------------

    def count(self, name: str, amount: float = 1) -> None:
        """Increment counter ``name`` (created on first use)."""
        if not self.enabled:
            return
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter(name)
        counter.inc(amount)

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (created on first use)."""
        if not self.enabled:
            return
        with self._lock:
            gauge = self._gauges.get(name)
            if gauge is None:
                gauge = self._gauges[name] = Gauge(name)
        gauge.set(value)

    def observe(
        self,
        name: str,
        value: float,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        """Record ``value`` into histogram ``name``.

        ``buckets`` fixes the boundaries on first use; later calls with
        different boundaries are an error (mergeable histograms require
        one stable bucket layout per name).
        """
        if not self.enabled:
            return
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram(name, buckets)
            elif tuple(float(b) for b in buckets) != hist.bounds:
                raise ValueError(
                    f"histogram {name!r} already exists with boundaries "
                    f"{hist.bounds}; cannot observe with {tuple(buckets)}"
                )
        hist.observe(value)

    @property
    def counters(self) -> Dict[str, Counter]:
        """Live counter instruments by name (a copy of the registry)."""
        with self._lock:
            return dict(self._counters)

    @property
    def gauges(self) -> Dict[str, Gauge]:
        """Live gauge instruments by name (a copy of the registry)."""
        with self._lock:
            return dict(self._gauges)

    @property
    def histograms(self) -> Dict[str, Histogram]:
        """Live histogram instruments by name (a copy of the registry)."""
        with self._lock:
            return dict(self._histograms)

    # -- export -------------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        """Everything collected so far as one JSON-ready dict.

        ``spans`` holds per-name aggregates, not the raw span list —
        this is the shape the experiment run reports embed.
        """
        return {
            "spans": {
                name: stats.to_dict()
                for name, stats in sorted(self.span_stats().items())
            },
            "counters": {
                name: c.to_dict() for name, c in sorted(self.counters.items())
            },
            "gauges": {name: g.to_dict() for name, g in sorted(self.gauges.items())},
            "histograms": {
                name: h.to_dict() for name, h in sorted(self.histograms.items())
            },
        }

    def to_chrome_trace(self) -> List[dict]:
        """Finished spans as Chrome/Perfetto ``X`` events (one pid).

        Loadable in the same viewers as the simulator traces; span
        timestamps are perf-counter microseconds rebased to the first
        span, one tid per recording thread.
        """
        spans = self.spans
        if not spans:
            return []
        base = min(s.start for s in spans)
        threads = {s.thread for s in spans}
        tids = {ident: tid for tid, ident in enumerate(sorted(threads))}
        events: List[dict] = [
            {
                "ph": "M",
                "pid": 0,
                "tid": 0,
                "name": "process_name",
                "args": {"name": "repro.obs recorder"},
            }
        ]
        for span in spans:
            events.append(
                {
                    "name": span.name,
                    "cat": "obs",
                    "ph": "X",
                    "ts": (span.start - base) * 1e6,
                    "dur": span.duration * 1e6,
                    "pid": 0,
                    "tid": tids[span.thread],
                    "args": dict(span.attrs),
                }
            )
        return events

    def save_summary(self, path) -> None:
        """Write :meth:`summary` as deterministic JSON to ``path``."""
        import os

        with open(os.fspath(path), "w") as f:
            json.dump(self.summary(), f, indent=2, sort_keys=True)
            f.write("\n")

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return (
            f"Recorder({state}, spans={len(self._spans)}, "
            f"metrics={len(self._counters) + len(self._gauges) + len(self._histograms)})"
        )


#: The process-wide recorder all built-in instrumentation reports to.
_DEFAULT = Recorder()


def recorder() -> Recorder:
    """The process-wide default :class:`Recorder`."""
    return _DEFAULT


class recording:
    """Context manager: enable the default recorder, restore on exit.

    >>> from repro.obs import recording
    >>> with recording() as rec:
    ...     with rec.span("step"):
    ...         pass
    >>> rec.enabled
    False
    >>> [s.name for s in rec.spans]
    ['step']

    ``fresh=True`` (the default) resets previously collected telemetry
    on entry so the block observes only itself.
    """

    def __init__(self, rec: Optional[Recorder] = None, *, fresh: bool = True):
        self._recorder = rec if rec is not None else _DEFAULT
        self._fresh = fresh
        self._was_enabled = False

    def __enter__(self) -> Recorder:
        self._was_enabled = self._recorder.enabled
        if self._fresh:
            self._recorder.reset()
        self._recorder.enable()
        return self._recorder

    def __exit__(self, *exc) -> None:
        self._recorder.enabled = self._was_enabled
