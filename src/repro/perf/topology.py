"""Bridge from :mod:`repro.topo` topologies to :class:`ClusterPerfProfile`.

The rest of the stack — schedule builders, fusion planner, LBP, the
simulator, every experiment — consumes a :class:`ClusterPerfProfile` of
plain alpha-beta models.  :func:`topology_profile` manufactures such a
profile from a :class:`~repro.topo.ClusterTopology` and a collective
algorithm choice, so any cluster shape becomes a drop-in replacement for
the paper's calibrated testbed::

    from repro.topo import multi_rack
    from repro.perf import topology_profile

    profile = topology_profile(multi_rack(4, 4, 4), algorithm="hierarchical")
    plan = Session("ResNet-50", profile).plan("SPD-KFAC")

(or pass the topology itself as the Session's cluster, and let each
strategy's ``collective`` axis pick the algorithm).

Calibration
-----------
The paper's measured alphas (Eqs. 14/27) are dominated by software
startup (kernel launches, rendezvous), not wire latency.  We therefore
split every collective's alpha into ``launch + topology hops`` and fit
the launch constants once, against the paper's published 64-GPU
constants on the fitted flat topology (:func:`repro.topo.flat` with the
``PAPER_IB`` link): a flat 64-GPU *ring* all-reduce then reproduces
Eq. 14 exactly, and the broadcast variants land within a few percent of
Eq. 27 over the Fig. 7 message-size range (asserted by
``tests/test_perf_topology.py``).  The same split is applied to the
streamed (back-to-back) alphas used for in-iteration collectives.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.perf.calibration import (
    HOROVOD_FUSION_THRESHOLD_ELEMENTS,
    PAPER_ALLREDUCE_64GPU,
    PAPER_BROADCAST_64GPU,
    PAPER_FACTOR_THROUGHPUT,
    PAPER_INVERSE_ACTUAL,
    PAPER_INVERSE_RTX2080TI,
    PAPER_KERNEL_OVERHEAD,
    PAPER_TRAIN_THROUGHPUT,
    STREAMED_ALLREDUCE_ALPHA,
    STREAMED_BROADCAST_ALPHA,
    ClusterPerfProfile,
)
from repro.perf.models import (
    CubicComputeModel,
    ExpComputeModel,
    FlopsComputeModel,
)
from repro.topo.collectives import (
    ALGORITHMS,
    CollectiveCostModel,
    allreduce_model,
    broadcast_model,
)
from repro.topo.graph import ClusterTopology, flat

def paper_flat_topology() -> ClusterTopology:
    """The paper's testbed as a topology: 64 GPUs equidistant on the
    fitted ``PAPER_IB`` fabric, whose ring all-reduce matches Eq. 14."""
    return flat(64)


def _calibrate_launch() -> Dict[str, float]:
    """Launch constants fitted so flat(64) reproduces the paper's alphas.

    ``allreduce`` is fitted through the ring model (NCCL ran rings on the
    paper's testbed) and ``broadcast`` through the tree model (binomial
    broadcast); the streamed variants reuse the same hop structure with
    the residual alphas of back-to-back collectives.
    """
    reference = paper_flat_topology()
    # launch=0 models: alpha is pure topology hops.
    ring_hops = allreduce_model(reference, "ring").alpha
    tree_hops = broadcast_model(reference, "tree").alpha
    return {
        "allreduce": max(PAPER_ALLREDUCE_64GPU.alpha - ring_hops, 0.0),
        "broadcast": max(PAPER_BROADCAST_64GPU.alpha - tree_hops, 0.0),
        "allreduce_streamed": max(STREAMED_ALLREDUCE_ALPHA - ring_hops, 0.0),
        "broadcast_streamed": max(STREAMED_BROADCAST_ALPHA - tree_hops, 0.0),
    }


LAUNCH_CONSTANTS: Dict[str, float] = _calibrate_launch()

#: Representative message sizes used by ``algorithm="auto"`` to pick the
#: cheapest algorithm: a fusion-buffer-sized all-reduce and a mid-range
#: symmetric factor broadcast.
AUTO_ALLREDUCE_ELEMENTS = HOROVOD_FUSION_THRESHOLD_ELEMENTS
AUTO_BROADCAST_DIM = 2048


def select_algorithms(topology: ClusterTopology) -> Tuple[str, str]:
    """Cheapest (all-reduce, broadcast) algorithm names for ``topology``.

    Evaluated at the representative sizes above with the calibrated
    streamed launches (the in-iteration regime planners care about).
    """
    best_ar = min(
        ALGORITHMS,
        key=lambda name: allreduce_model(
            topology, name, launch=LAUNCH_CONSTANTS["allreduce_streamed"]
        ).time(AUTO_ALLREDUCE_ELEMENTS),
    )
    best_bc = min(
        ALGORITHMS,
        key=lambda name: broadcast_model(
            topology, name, launch=LAUNCH_CONSTANTS["broadcast_streamed"]
        ).time_symmetric(AUTO_BROADCAST_DIM),
    )
    return best_ar, best_bc


def topology_models(
    topology: ClusterTopology, algorithm: str = "auto"
) -> Dict[str, CollectiveCostModel]:
    """The four calibrated cost models for ``topology`` under ``algorithm``.

    Keys mirror the :class:`ClusterPerfProfile` fields: ``allreduce``,
    ``broadcast``, ``allreduce_streamed``, ``broadcast_streamed``.
    """
    if algorithm == "auto":
        ar_name, bc_name = select_algorithms(topology)
    else:
        if algorithm not in ALGORITHMS:
            raise KeyError(
                f"unknown algorithm {algorithm!r}; options: {sorted(ALGORITHMS)} or 'auto'"
            )
        ar_name = bc_name = algorithm
    return {
        "allreduce": allreduce_model(topology, ar_name, LAUNCH_CONSTANTS["allreduce"]),
        "broadcast": broadcast_model(topology, bc_name, LAUNCH_CONSTANTS["broadcast"]),
        "allreduce_streamed": allreduce_model(
            topology, ar_name, LAUNCH_CONSTANTS["allreduce_streamed"]
        ),
        "broadcast_streamed": broadcast_model(
            topology, bc_name, LAUNCH_CONSTANTS["broadcast_streamed"]
        ),
    }


def topology_profile(
    topology: ClusterTopology,
    algorithm: str = "auto",
    world_size: Optional[int] = None,
) -> ClusterPerfProfile:
    """Package ``topology`` + ``algorithm`` as a :class:`ClusterPerfProfile`.

    ``algorithm`` is ``"ring"``, ``"tree"``, ``"hierarchical"``, or
    ``"auto"`` (pick the cheapest per collective).  ``world_size``, when
    given, must equal ``topology.world_size`` — it exists so call sites
    that already carry a world size fail loudly on mismatch instead of
    silently simulating a different cluster.

    Compute models are the paper's RTX2080Ti calibrations rescaled by the
    slowest node's ``compute_scale`` (synchronous training paces on it).
    """
    if world_size is not None and world_size != topology.world_size:
        raise ValueError(
            f"world_size {world_size} does not match topology "
            f"{topology.name!r} with {topology.world_size} GPUs"
        )
    models = topology_models(topology, algorithm)
    scale = topology.compute_scale()
    inv = PAPER_INVERSE_ACTUAL
    return ClusterPerfProfile(
        num_workers=topology.world_size,
        allreduce=models["allreduce"].as_linear(),
        broadcast=models["broadcast"].as_linear(),
        allreduce_streamed=models["allreduce_streamed"].as_linear(),
        broadcast_streamed=models["broadcast_streamed"].as_linear(),
        inverse_estimator=ExpComputeModel(
            alpha=PAPER_INVERSE_RTX2080TI.alpha / scale, beta=PAPER_INVERSE_RTX2080TI.beta
        ),
        inverse_actual=CubicComputeModel(overhead=inv.overhead / scale, coeff=inv.coeff / scale),
        train_compute=FlopsComputeModel(PAPER_KERNEL_OVERHEAD, PAPER_TRAIN_THROUGHPUT * scale),
        factor_compute=FlopsComputeModel(PAPER_KERNEL_OVERHEAD, PAPER_FACTOR_THROUGHPUT * scale),
    )
