"""Calibrated performance constants for the paper's testbed.

Section VI-B of the paper publishes the fitted constants for its 64-GPU
cluster (16 nodes x 4 RTX2080Ti, 100Gb/s InfiniBand, NCCL-2.4.7):

* all-reduce (Fig. 7a):  alpha_ar    = 1.22e-2 s, beta_ar    = 1.45e-9 s/elem
* broadcast  (Fig. 7b):  alpha_bcast = 1.59e-2 s, beta_bcast = 7.85e-10 s/elem
* inverse    (Fig. 8):   alpha_inv   = 3.64e-3 s, beta_inv   = 4.77e-4 1/d

We adopt them verbatim, so every schedule our simulator produces is driven
by the same cost surface the paper's own planner saw.  For the dense
forward/backward/factor kernels (which the paper measures but does not
model analytically) we use a FLOPs-throughput model calibrated so that the
simulated ResNet-50 (batch 32) iteration matches the paper's Fig. 2
breakdown: FF&BP around 0.21 s and FactorComp around 0.1 s.
"""

from __future__ import annotations

import math
import dataclasses
from dataclasses import dataclass, field, replace

from repro.perf.models import (
    CubicComputeModel,
    ExpComputeModel,
    FlopsComputeModel,
    LinearCommModel,
)
from repro.utils.validation import check_positive

# --- constants published in the paper (Section VI-B) -----------------------

PAPER_ALLREDUCE_64GPU = LinearCommModel(alpha=1.22e-2, beta=1.45e-9)
PAPER_BROADCAST_64GPU = LinearCommModel(alpha=1.59e-2, beta=7.85e-10)
PAPER_INVERSE_RTX2080TI = ExpComputeModel(alpha=3.64e-3, beta=4.77e-4)

# The cubic model reproduces the Fig. 8 *measurements* across the whole
# range: it agrees with the exponential fit on d in [2048, 8192] (within a
# few percent) while not inheriting Eq. 26's ~3.6 ms floor at tiny d, which
# the raw measurements do not show.  coeff is pinned by t(8192) ~= 0.175 s.
PAPER_INVERSE_ACTUAL = CubicComputeModel(overhead=7.0e-4, coeff=0.175 / 8192.0**3)

# The alpha of Eqs. 14/27 is measured on *standalone* collectives (100
# runs with barriers in between).  Collectives issued back-to-back inside
# an iteration pipeline most of that startup (NCCL keeps the ring/tree
# established); only a launch/coordination residue remains per op.  These
# "streamed" variants carry the residue and the same bandwidth term; they
# are what execution actually costs, while the planners (Eq. 15 fusion,
# Algorithm 1 CT/NCT) keep the paper's standalone fits.  The broadcast
# residue is calibrated against the paper's measured MPD-KFAC ResNet-50
# InverseComm of ~134 ms for 108 back-to-back broadcasts.
STREAMED_ALLREDUCE_ALPHA = 3.0e-3
STREAMED_BROADCAST_ALPHA = 7.7e-4

# Models the in-simulator LBP planner estimates with.  Algorithm 1 only
# needs *relative* estimates ("according to the computation and
# communication time estimations"); estimating with the execution
# models keeps the planner consistent with what execution actually
# costs in the simulator, exactly as the paper's planner was consistent
# with its own testbed.  The standalone fits above still reproduce the
# paper's Fig. 8 and Fig. 11.

# Effective training-kernel throughput for an RTX2080Ti.  ResNet-50 at
# batch 32 is ~8.2 GFLOPs/image forward (counting 2 FLOPs per MAC),
# backward costs ~2x forward, so FF&BP ~= 787 GFLOPs; at 3.8 TFLOP/s
# effective this is ~0.21 s — the FF&BP bar in Fig. 2.
PAPER_TRAIN_THROUGHPUT = 3.8e12
PAPER_KERNEL_OVERHEAD = 7.5e-5

# Factor construction (A = a a^T / G = g g^T) runs as large batched GEMMs
# near peak (RTX2080Ti fp32 peak is 13.4 TFLOP/s); calibrated so the
# ResNet-50 FactorComp bar lands near the paper's ~0.1 s.
PAPER_FACTOR_THROUGHPUT = 1.2e13

# Horovod's default fusion-buffer threshold: 64 MiB of fp32 elements
# (Section VI-D, footnote 6).
HOROVOD_FUSION_THRESHOLD_ELEMENTS = 64 * 1024 * 1024 // 4


@dataclass(frozen=True)
class ClusterPerfProfile:
    """Bundle of cost models describing one cluster configuration.

    Schedule builders consume this profile to assign durations to every
    task in an iteration.  ``inverse_estimator`` is the model LBP plans
    with (the paper's Eq. 26 fit); ``inverse_actual`` is what execution
    actually costs in the simulator.
    """

    num_workers: int
    allreduce: LinearCommModel
    broadcast: LinearCommModel
    allreduce_streamed: LinearCommModel
    broadcast_streamed: LinearCommModel
    inverse_estimator: ExpComputeModel
    inverse_actual: CubicComputeModel
    train_compute: FlopsComputeModel = field(
        default_factory=lambda: FlopsComputeModel(PAPER_KERNEL_OVERHEAD, PAPER_TRAIN_THROUGHPUT)
    )
    factor_compute: FlopsComputeModel = field(
        default_factory=lambda: FlopsComputeModel(PAPER_KERNEL_OVERHEAD, PAPER_FACTOR_THROUGHPUT)
    )
    fusion_threshold_elements: int = HOROVOD_FUSION_THRESHOLD_ELEMENTS

    def __post_init__(self) -> None:
        check_positive("num_workers", self.num_workers)

    def digest(self) -> str:
        """Stable 16-hex-char content hash of the whole cost surface.

        Every cost-model family and fitted constant participates (tagged
        with its class name, so two model kinds sharing parameter values
        cannot collide), which makes the digest a sound cache-key
        component: equal digests imply identical task durations for any
        graph priced with this profile.  Stable across processes and
        Python versions (sorted-key canonical JSON + sha256).
        """
        from repro.utils.digest import content_digest

        payload = {"kind": "cluster_perf_profile"}
        for spec in dataclasses.fields(self):
            value = getattr(self, spec.name)
            if spec.name in ("num_workers", "fusion_threshold_elements"):
                payload[spec.name] = value
            else:
                payload[spec.name] = {
                    "model": type(value).__name__,
                    **{
                        f.name: getattr(value, f.name)
                        for f in dataclasses.fields(value)
                    },
                }
        return content_digest(payload)


def paper_cluster_profile() -> ClusterPerfProfile:
    """The 64-GPU testbed from the paper, with its published constants."""
    return ClusterPerfProfile(
        num_workers=64,
        allreduce=PAPER_ALLREDUCE_64GPU,
        broadcast=PAPER_BROADCAST_64GPU,
        allreduce_streamed=LinearCommModel(
            alpha=STREAMED_ALLREDUCE_ALPHA, beta=PAPER_ALLREDUCE_64GPU.beta
        ),
        broadcast_streamed=LinearCommModel(
            alpha=STREAMED_BROADCAST_ALPHA, beta=PAPER_BROADCAST_64GPU.beta
        ),
        inverse_estimator=PAPER_INVERSE_RTX2080TI,
        inverse_actual=PAPER_INVERSE_ACTUAL,
    )


def scaled_cluster_profile(num_workers: int) -> ClusterPerfProfile:
    """A profile for a ``num_workers``-GPU cluster on the same fabric.

    Scaling follows the standard collective cost analysis: a ring
    all-reduce moves ``2 (P-1)/P`` bytes per element with ``2 (P-1)``
    latency hops, and a (pipelined binomial) broadcast pays ``ceil(log2 P)``
    latency with near-P-independent bandwidth.  We scale the paper's 64-GPU
    constants by the corresponding ratios, so P=64 reproduces them exactly.
    """
    check_positive("num_workers", num_workers)
    base = paper_cluster_profile()
    p, p0 = num_workers, base.num_workers
    if p == p0:
        return base

    def ring_alpha(n: int) -> float:
        return 2.0 * (n - 1)

    def ring_beta(n: int) -> float:
        return 2.0 * (n - 1) / n

    def tree_alpha(n: int) -> float:
        return max(math.ceil(math.log2(n)), 1) if n > 1 else 1

    def scale_allreduce(model: LinearCommModel) -> LinearCommModel:
        if p == 1:
            return LinearCommModel(0.0, 0.0)
        return LinearCommModel(
            alpha=model.alpha * ring_alpha(p) / ring_alpha(p0),
            beta=model.beta * ring_beta(p) / ring_beta(p0),
        )

    def scale_broadcast(model: LinearCommModel) -> LinearCommModel:
        if p == 1:
            return LinearCommModel(0.0, 0.0)
        return LinearCommModel(
            alpha=model.alpha * tree_alpha(p) / tree_alpha(p0), beta=model.beta
        )

    return replace(
        base,
        num_workers=p,
        allreduce=scale_allreduce(base.allreduce),
        broadcast=scale_broadcast(base.broadcast),
        allreduce_streamed=scale_allreduce(base.allreduce_streamed),
        broadcast_streamed=scale_broadcast(base.broadcast_streamed),
    )
