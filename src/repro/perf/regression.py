"""Benchmark snapshots and PR-over-PR regression comparison.

The paper's contribution is wall-clock; so is this reproduction's own
quality bar.  A *snapshot* is a small JSON document mapping benchmark
names to their measured seconds (the median over rounds, the statistic
least disturbed by scheduler noise).  ``benchmarks/snapshot.py`` produces
one from the ``bench_kernels.py`` suite and this module diffs it against
the previously committed snapshot, so every PR sees exactly which hot
paths it sped up or regressed.

The schema is deliberately tiny and stable::

    {
      "schema": 1,
      "suite": "bench_kernels",
      "benchmarks": {"<name>": {"seconds": 1.23e-3, "rounds": 5}, ...}
    }
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional

SCHEMA_VERSION = 1

#: Relative change below which a difference is reported as noise.
DEFAULT_NOISE_THRESHOLD = 0.05


@dataclass(frozen=True)
class BenchmarkResult:
    """One benchmark's measurement: median seconds over ``rounds`` runs."""

    name: str
    seconds: float
    rounds: int

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError(f"benchmark {self.name!r} has negative time {self.seconds}")
        if self.rounds < 1:
            raise ValueError(f"benchmark {self.name!r} needs at least one round")


@dataclass(frozen=True)
class Comparison:
    """Before/after verdict for one benchmark name."""

    name: str
    before: Optional[float]  # None: benchmark is new
    after: Optional[float]  # None: benchmark was removed
    status: str  # "faster" | "slower" | "same" | "new" | "removed"

    @property
    def speedup(self) -> Optional[float]:
        """``before / after`` (>1 means faster now); None when undefined."""
        if self.before is None or self.after is None or self.after == 0.0:
            return None
        return self.before / self.after


def time_callable(fn: Callable[[], object], rounds: int = 5, warmup: int = 1) -> BenchmarkResult:
    """Median wall time of ``fn()`` over ``rounds`` timed runs."""
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    for _ in range(warmup):
        fn()
    times: List[float] = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    times.sort()
    mid = len(times) // 2
    median = times[mid] if len(times) % 2 else 0.5 * (times[mid - 1] + times[mid])
    return BenchmarkResult(name=getattr(fn, "__name__", "<callable>"), seconds=median, rounds=rounds)


def make_snapshot(
    results: Mapping[str, BenchmarkResult], suite: str = "bench_kernels"
) -> Dict[str, object]:
    """Assemble the snapshot document from named results."""
    return {
        "schema": SCHEMA_VERSION,
        "suite": suite,
        "benchmarks": {
            name: {"seconds": result.seconds, "rounds": result.rounds}
            for name, result in sorted(results.items())
        },
    }


def save_snapshot(path: str, snapshot: Mapping[str, object]) -> None:
    """Write a snapshot document as stable, diff-friendly JSON."""
    with open(path, "w") as f:
        json.dump(snapshot, f, indent=2, sort_keys=True)
        f.write("\n")


def load_snapshot(path: str) -> Dict[str, object]:
    """Load and validate a snapshot document."""
    with open(path) as f:
        snapshot = json.load(f)
    if not isinstance(snapshot, dict) or not isinstance(snapshot.get("benchmarks"), dict):
        raise ValueError(f"{path} is not a benchmark snapshot")
    if snapshot.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"{path} has snapshot schema {snapshot.get('schema')!r}; expected {SCHEMA_VERSION}"
        )
    return snapshot


def snapshot_seconds(snapshot: Mapping[str, object]) -> Dict[str, float]:
    """Flatten a snapshot to ``{benchmark name: seconds}``."""
    benchmarks = snapshot.get("benchmarks", {})
    assert isinstance(benchmarks, dict)
    return {name: float(entry["seconds"]) for name, entry in benchmarks.items()}


def compare_snapshots(
    before: Mapping[str, object],
    after: Mapping[str, object],
    noise_threshold: float = DEFAULT_NOISE_THRESHOLD,
) -> List[Comparison]:
    """Per-benchmark comparison of two snapshot documents.

    ``noise_threshold`` is the relative change below which a benchmark is
    labelled ``"same"``; differences beyond it become ``"faster"`` /
    ``"slower"``.  Benchmarks present on only one side are labelled
    ``"new"`` / ``"removed"`` instead of being silently dropped.
    """
    if noise_threshold < 0:
        raise ValueError("noise_threshold must be >= 0")
    old = snapshot_seconds(before)
    new = snapshot_seconds(after)
    rows: List[Comparison] = []
    for name in sorted(set(old) | set(new)):
        b, a = old.get(name), new.get(name)
        if b is None:
            status = "new"
        elif a is None:
            status = "removed"
        elif b == 0.0 and a == 0.0:
            status = "same"
        elif a <= b / (1.0 + noise_threshold):
            status = "faster"
        elif a >= b * (1.0 + noise_threshold):
            status = "slower"
        else:
            status = "same"
        rows.append(Comparison(name=name, before=b, after=a, status=status))
    return rows


def _fmt_seconds(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f} ms"
    return f"{seconds * 1e6:.1f} us"


def format_comparison(rows: List[Comparison]) -> str:
    """Human-readable before/after table (one line per benchmark)."""
    if not rows:
        return "no benchmarks to compare"
    name_width = max(len(row.name) for row in rows)
    lines = [
        f"{'benchmark':<{name_width}}  {'before':>12}  {'after':>12}  {'speedup':>8}  status",
        "-" * (name_width + 48),
    ]
    for row in rows:
        speedup = f"{row.speedup:.2f}x" if row.speedup is not None else "-"
        lines.append(
            f"{row.name:<{name_width}}  {_fmt_seconds(row.before):>12}  "
            f"{_fmt_seconds(row.after):>12}  {speedup:>8}  {row.status}"
        )
    regressions = sum(1 for row in rows if row.status == "slower")
    improvements = sum(1 for row in rows if row.status == "faster")
    lines.append(
        f"{improvements} faster, {regressions} slower, "
        f"{sum(1 for r in rows if r.status == 'same')} unchanged, "
        f"{sum(1 for r in rows if r.status in ('new', 'removed'))} added/removed"
    )
    return "\n".join(lines)


def has_regressions(rows: List[Comparison]) -> bool:
    """True when any benchmark got slower beyond the noise threshold."""
    return any(row.status == "slower" for row in rows)
