"""Analytic cost-model families used by the paper (Eqs. 14, 26, 27).

All times are seconds; message sizes are element counts (the paper's
measurements communicate fp32, so bytes = 4 * elements); matrix sizes are
the height/width ``d`` of a symmetric ``d x d`` factor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.utils.validation import check_non_negative, check_positive

#: The paper's wire format: every collective communicates fp32.
WIRE_ELEMENT_BYTES = 4


@runtime_checkable
class CompModelLike(Protocol):
    """Anything that prices a ``d x d`` compute kernel."""

    def time(self, d: float) -> float: ...


@runtime_checkable
class CommModelLike(Protocol):
    """Anything that prices communicating a symmetric ``d x d`` matrix."""

    def time_symmetric(self, d: int) -> float: ...


def symmetric_elements(d: int) -> int:
    """Number of elements communicated for a symmetric ``d x d`` matrix.

    The paper sends only the upper triangle including the diagonal
    (Section V-B), i.e. ``d (d + 1) / 2`` elements.
    """
    if d < 0:
        raise ValueError(f"matrix dimension must be >= 0, got {d}")
    return d * (d + 1) // 2


@dataclass(frozen=True)
class LinearCommModel:
    """Latency/bandwidth (alpha-beta) communication model: ``t = alpha + beta * m``.

    ``alpha`` is the startup time of the collective and ``beta`` the
    per-element transfer time (Eq. 14 for all-reduce; Eq. 27 for broadcast
    once the symmetric packing is applied by the caller).
    """

    alpha: float
    beta: float

    def __post_init__(self) -> None:
        check_non_negative("alpha", self.alpha)
        check_non_negative("beta", self.beta)

    def time(self, num_elements: float) -> float:
        """Predicted time to communicate ``num_elements`` elements."""
        check_non_negative("num_elements", num_elements)
        return self.alpha + self.beta * num_elements

    def time_symmetric(self, d: int) -> float:
        """Predicted time to communicate a packed symmetric ``d x d`` matrix."""
        return self.time(symmetric_elements(d))

    def time_bytes(self, num_bytes: float) -> float:
        """Predicted time to communicate ``num_bytes`` bytes on the wire.

        The fitted ``beta`` is per *fp32 element* (the paper's wire
        format); reduced-precision or compressed transfers are priced by
        their byte volume expressed in equivalent fp32 elements, so an
        fp16 all-reduce of ``m`` elements costs
        ``alpha + beta * m / 2``.
        """
        return self.time(num_bytes / WIRE_ELEMENT_BYTES)

    def saturating_size(self) -> float:
        """Message size at which transfer time equals startup time.

        Messages much smaller than this waste bandwidth on latency — the
        motivation for tensor fusion (Section IV-A).
        """
        if self.beta == 0:
            return math.inf
        return self.alpha / self.beta


@dataclass(frozen=True)
class ExpComputeModel:
    """Exponential compute model ``t(d) = alpha * exp(beta * d)`` (Eq. 26).

    The paper fits this family to measured cuSolver Cholesky-inverse times
    on an RTX2080Ti (Fig. 8) and uses it inside Algorithm 1 (LBP) to
    estimate inverse costs.
    """

    alpha: float
    beta: float

    def __post_init__(self) -> None:
        check_positive("alpha", self.alpha)
        check_non_negative("beta", self.beta)

    def time(self, d: float) -> float:
        """Predicted compute time for a ``d x d`` input."""
        check_non_negative("d", d)
        return self.alpha * math.exp(self.beta * d)


@dataclass(frozen=True)
class CubicComputeModel:
    """Cubic compute model ``t(d) = overhead + coeff * d**3``.

    Cholesky inversion is Theta(d^3); over the paper's measured range
    (d in [2048, 8192]) this is numerically indistinguishable from the
    exponential fit, but unlike Eq. 26 it does not put a multi-millisecond
    floor under tiny matrices, matching the raw measurements in Fig. 8 at
    small ``d``.  The simulator uses this family for *actual* task
    durations, while LBP keeps the paper's exponential *estimator* —
    exactly the planner-vs-reality split the real system has.
    """

    overhead: float
    coeff: float

    def __post_init__(self) -> None:
        check_non_negative("overhead", self.overhead)
        check_non_negative("coeff", self.coeff)

    def time(self, d: float) -> float:
        """Actual compute time for a ``d x d`` input."""
        check_non_negative("d", d)
        return self.overhead + self.coeff * float(d) ** 3


@dataclass(frozen=True)
class FlopsComputeModel:
    """Throughput model for dense kernels: ``t = overhead + flops / throughput``.

    ``throughput`` is the *effective* (not peak) FLOP/s of the device for
    training-style kernels; ``overhead`` is per-kernel launch cost.
    """

    overhead: float
    throughput: float

    def __post_init__(self) -> None:
        check_non_negative("overhead", self.overhead)
        check_positive("throughput", self.throughput)

    def time(self, flops: float) -> float:
        """Predicted time for a kernel performing ``flops`` flop."""
        check_non_negative("flops", flops)
        return self.overhead + flops / self.throughput
