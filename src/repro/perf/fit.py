"""Least-squares fitters for the paper's performance-model families.

The paper estimates each model's constants from a one-time benchmark sweep
(Section V-B: "we only need to estimate [the constants] ... through
one-time benchmarking").  These fitters reproduce that calibration step
from (size, time) samples.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.perf.models import ExpComputeModel, LinearCommModel


def _as_arrays(sizes: Sequence[float], times: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    x = np.asarray(sizes, dtype=float)
    y = np.asarray(times, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError(f"sizes and times must be equal-length 1-D sequences, got {x.shape} and {y.shape}")
    if x.size < 2:
        raise ValueError("need at least two samples to fit a two-parameter model")
    return x, y


def fit_linear_comm(sizes: Sequence[float], times: Sequence[float]) -> LinearCommModel:
    """Fit ``t = alpha + beta * m`` by ordinary least squares (Eq. 14/27).

    ``sizes`` are message element counts, ``times`` measured seconds.
    Negative intercepts (possible with noisy small-message data) are
    clamped to zero since a collective cannot have negative startup cost.
    """
    x, y = _as_arrays(sizes, times)
    beta, alpha = np.polyfit(x, y, deg=1)
    return LinearCommModel(alpha=max(float(alpha), 0.0), beta=max(float(beta), 0.0))


def fit_exp_compute(dims: Sequence[float], times: Sequence[float]) -> ExpComputeModel:
    """Fit ``t = alpha * exp(beta * d)`` (Eq. 26) by log-linear least squares.

    Taking logs gives ``log t = log alpha + beta * d``, linear in ``d``.
    All times must be positive.
    """
    x, y = _as_arrays(dims, times)
    if np.any(y <= 0):
        raise ValueError("all times must be > 0 to fit an exponential model")
    beta, log_alpha = np.polyfit(x, np.log(y), deg=1)
    return ExpComputeModel(alpha=float(np.exp(log_alpha)), beta=max(float(beta), 0.0))
