"""Performance models for computation and communication.

The paper drives both its tensor-fusion planner (Eq. 14/15) and its
load-balancing placement (Eq. 26/27) from small analytic cost models whose
constants are measured once per cluster:

* all-reduce:  ``t(m) = alpha_ar + beta_ar * m``          (Fig. 7a)
* broadcast:   ``t(d) = alpha_bcast + beta_bcast * d(d+1)/2``  (Fig. 7b)
* inverse:     ``t(d) = alpha_inv * exp(beta_inv * d)``   (Fig. 8)

This package implements those model families, least-squares fitters for
them, and the calibrated constants the paper reports for its 64-GPU
RTX2080Ti / 100Gb InfiniBand testbed, which our simulator uses so that
reproduced results match the paper's shape.

Beyond the paper's single testbed, :func:`topology_profile` derives a
full :class:`ClusterPerfProfile` from a modeled cluster topology and a
collective-algorithm choice (see :mod:`repro.topo`), calibrated so the
flat 64-GPU ring reproduces the published constants.
"""

from repro.perf.models import (
    CommModelLike,
    CompModelLike,
    CubicComputeModel,
    ExpComputeModel,
    FlopsComputeModel,
    LinearCommModel,
    symmetric_elements,
)
from repro.perf.fit import fit_exp_compute, fit_linear_comm
from repro.perf.regression import (
    BenchmarkResult,
    Comparison,
    compare_snapshots,
    format_comparison,
    has_regressions,
    load_snapshot,
    make_snapshot,
    save_snapshot,
    time_callable,
)
from repro.perf.calibration import (
    PAPER_ALLREDUCE_64GPU,
    PAPER_BROADCAST_64GPU,
    PAPER_INVERSE_RTX2080TI,
    ClusterPerfProfile,
    paper_cluster_profile,
    scaled_cluster_profile,
)
from repro.perf.topology import (
    LAUNCH_CONSTANTS,
    paper_flat_topology,
    select_algorithms,
    topology_models,
    topology_profile,
)

__all__ = [
    "CommModelLike",
    "CompModelLike",
    "LinearCommModel",
    "ExpComputeModel",
    "CubicComputeModel",
    "FlopsComputeModel",
    "symmetric_elements",
    "fit_linear_comm",
    "fit_exp_compute",
    "BenchmarkResult",
    "Comparison",
    "compare_snapshots",
    "format_comparison",
    "has_regressions",
    "load_snapshot",
    "make_snapshot",
    "save_snapshot",
    "time_callable",
    "PAPER_ALLREDUCE_64GPU",
    "PAPER_BROADCAST_64GPU",
    "PAPER_INVERSE_RTX2080TI",
    "ClusterPerfProfile",
    "paper_cluster_profile",
    "scaled_cluster_profile",
    "LAUNCH_CONSTANTS",
    "paper_flat_topology",
    "select_algorithms",
    "topology_models",
    "topology_profile",
]
