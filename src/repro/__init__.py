"""repro — reproduction of SPD-KFAC (Shi, Zhang, Li; ICDCS 2021).

"Accelerating Distributed K-FAC with Smart Parallelism of Computing and
Communication Tasks" proposes two systems optimizations for distributed
K-FAC training: pipelining Kronecker-factor communication with
computation under an optimal tensor-fusion plan, and load-balancing the
matrix-inverse workloads across GPUs with a per-tensor
compute-everywhere-vs-broadcast decision.

This package provides:

* the full K-FAC numerical stack on a NumPy substrate
  (:mod:`repro.nn`, :mod:`repro.core.kfac`),
* numerically exact distributed K-FAC variants over an in-process
  collective runtime (:mod:`repro.comm`, :mod:`repro.core.distributed`),
* the paper's schedulers — optimal tensor fusion, LBP placement,
  pipelining strategies (:mod:`repro.core`),
* a discrete-event cluster simulator calibrated with the paper's
  published cost constants (:mod:`repro.sim`, :mod:`repro.perf`),
* topology-aware cluster modeling — hierarchical cluster graphs and
  collective-algorithm cost models (ring / tree / hierarchical) that
  turn any modeled cluster into a drop-in cost profile
  (:mod:`repro.topo`, :func:`repro.perf.topology_profile`),
* architecture specs for the four evaluated CNNs (:mod:`repro.models`),
* the composable Strategy / Plan / Session planning API — declarative
  :class:`TrainingStrategy` values (with the paper's schemes as named
  presets in :data:`strategy_registry`), serializable :class:`Plan`
  artifacts, and the :class:`Session` facade with a shared plan cache
  (:mod:`repro.plan`),
* a strategy autotuner that searches the full planner axis grid per
  (model, cluster) with lower-bound pruning and a time-x-traffic Pareto
  frontier (:mod:`repro.autotune`),
* and a reproduction harness for every table and figure
  (:mod:`repro.experiments`).

Quickstart — plan and simulate a training scheme in three lines::

    from repro import Session

    session = Session("ResNet-50", 64)          # model x cluster
    plan = session.plan("SPD-KFAC")             # or any TrainingStrategy
    print(session.simulate(plan).iteration_time)

Strategies compose axis-by-axis, including combinations the paper never
ran — launch modes and collectives, but also wire precision, top-k
gradient compression, and KAISA-style stale refresh intervals::

    from repro import strategy_registry

    eager_tree = strategy_registry["SPD-KFAC"].but(
        factor_pipelining=False, collective="tree"
    )
    cheap = strategy_registry["SPD-KFAC"].but(
        factor_dtype="fp16", inverse_update_interval=4
    )

Or skip the hand-picking entirely and search the whole axis grid::

    from repro import autotune

    report = autotune("ResNet-50", 64)
    print(report.best_strategy.describe())

And the numeric K-FAC stack trains real (NumPy) models::

    from repro import KFACOptimizer, make_mlp
    from repro.nn import CrossEntropyLoss

    net = make_mlp(in_features=10, hidden=32, num_classes=3, rng=0)
    opt = KFACOptimizer(net, lr=0.05, damping=1e-2)
    loss_fn = CrossEntropyLoss()
    loss = loss_fn(net(x), y)
    net.run_backward(loss_fn.backward())
    opt.step()
"""

from repro.autotune import AutotuneReport, autotune
from repro.core import (
    DistKFACOptimizer,
    InverseStrategy,
    KFACOptimizer,
    KFACPreconditioner,
    lbp_placement,
    plan_optimal_fusion,
)
from repro.plan import (
    Plan,
    Session,
    StrategyRegistry,
    TrainingStrategy,
    strategy_registry,
)
from repro.utils.deprecation import ReproDeprecationWarning
from repro.models import (
    densenet201_spec,
    get_model_spec,
    inceptionv4_spec,
    make_mlp,
    make_residual_mlp,
    make_small_cnn,
    resnet50_spec,
    resnet152_spec,
)
from repro.perf import paper_cluster_profile, scaled_cluster_profile, topology_profile

__version__ = "1.0.0"

__all__ = [
    "TrainingStrategy",
    "StrategyRegistry",
    "strategy_registry",
    "Plan",
    "Session",
    "autotune",
    "AutotuneReport",
    "ReproDeprecationWarning",
    "KFACOptimizer",
    "KFACPreconditioner",
    "DistKFACOptimizer",
    "InverseStrategy",
    "plan_optimal_fusion",
    "lbp_placement",
    "make_mlp",
    "make_small_cnn",
    "make_residual_mlp",
    "get_model_spec",
    "resnet50_spec",
    "resnet152_spec",
    "densenet201_spec",
    "inceptionv4_spec",
    "paper_cluster_profile",
    "scaled_cluster_profile",
    "topology_profile",
    "__version__",
]
