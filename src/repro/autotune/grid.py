"""Enumeration of the valid planner axis grid.

The autotuner's search space is the cross product of every axis a
:class:`~repro.plan.TrainingStrategy` exposes, restricted to the
combinations the strategy validator accepts.  :func:`strategy_grid`
enumerates exactly that set — by *construction*, so the enumeration and
the validator can be property-tested against each other (every emitted
strategy must validate; every valid combination must be emitted).

The grid covers distributed second-order training — the design space the
paper's D/MPD/SPD-KFAC schemes live in.  Single-device strategies and
first-order S-SGD have no planner axes worth searching (their schedules
are fully determined), so the tuner prices them only as named reference
presets, never as grid points.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.core.pipeline import FACTOR_FUSION_POLICIES
from repro.core.schedule import PLACEMENT_STRATEGIES
from repro.plan.strategy import COLLECTIVE_ALGORITHMS, TrainingStrategy

#: Gradient-reduction modes available to a *distributed* strategy.
DISTRIBUTED_GRADIENT_REDUCTIONS: Tuple[str, ...] = ("wfbp", "bulk")

#: Valid (factor_fusion, factor_pipelining, combine_factor_passes)
#: combinations: every (fusion, launch) pair, plus D-KFAC's merged
#: post-backward all-reduce (which the validator restricts to
#: non-pipelined bulk fusion).
FACTOR_AXES: Tuple[Tuple[str, bool, bool], ...] = tuple(
    (fusion, pipelined, False)
    for fusion in FACTOR_FUSION_POLICIES
    for pipelined in (True, False)
) + (("bulk", False, True),)

#: The paper's wire-precision point: fp32 everywhere (gradients,
#: factors, inverse broadcasts).
PAPER_WIRE_DTYPES: Tuple[Tuple[str, str, str], ...] = (("fp32", "fp32", "fp32"),)

#: The paper's compression point: dense gradients.
PAPER_COMPRESSIONS: Tuple[float, ...] = (1.0,)

#: The paper's staleness point: factors and inverses refreshed every
#: iteration.
PAPER_INTERVALS: Tuple[Tuple[int, int], ...] = ((1, 1),)

#: The paper's communication scheme: packed inverse broadcasts with
#: preconditioning everywhere.
PAPER_COMM_SCHEMES: Tuple[str, ...] = ("paper",)


def strategy_label(strategy: TrainingStrategy) -> str:
    """Compact axis summary, e.g. ``"wfbp|optimal+pipe|lbp|auto"``.

    Non-default wire axes append compact suffixes so grid points from an
    extended search stay distinguishable, e.g.
    ``"wfbp|optimal+pipe|lbp|auto|f:fp16|K1/4"``.

    Examples
    --------
    >>> from repro.plan import strategy_registry
    >>> strategy_label(strategy_registry["SPD-KFAC"])
    'wfbp|optimal+pipe|lbp|auto'
    >>> strategy_label(strategy_registry["SPD-KFAC"].but(factor_dtype="fp16"))
    'wfbp|optimal+pipe|lbp|auto|f:fp16'
    """
    launch = "+pipe" if strategy.factor_pipelining else "+post"
    merged = "+merged" if strategy.combine_factor_passes else ""
    label = (
        f"{strategy.gradient_reduction}|{strategy.factor_fusion}{launch}{merged}"
        f"|{strategy.placement}|{strategy.collective}"
    )
    if strategy.comm_scheme != "paper":
        label += f"|{strategy.comm_scheme}"
    if strategy.grad_dtype != "fp32":
        label += f"|g:{strategy.grad_dtype}"
    if strategy.grad_compression != 1.0:
        label += f"|top{strategy.grad_compression:g}"
    if strategy.factor_dtype != "fp32":
        label += f"|f:{strategy.factor_dtype}"
    if strategy.inverse_dtype != "fp32":
        label += f"|i:{strategy.inverse_dtype}"
    if strategy.stale_updates:
        label += (
            f"|K{strategy.factor_update_interval}/{strategy.inverse_update_interval}"
        )
    return label


def strategy_grid(
    collectives: Optional[Sequence[str]] = None,
    gradient_reductions: Sequence[str] = DISTRIBUTED_GRADIENT_REDUCTIONS,
    placements: Sequence[str] = PLACEMENT_STRATEGIES,
    factor_axes: Sequence[Tuple[str, bool, bool]] = FACTOR_AXES,
    wire_dtypes: Sequence[Tuple[str, str, str]] = PAPER_WIRE_DTYPES,
    compressions: Sequence[float] = PAPER_COMPRESSIONS,
    intervals: Sequence[Tuple[int, int]] = PAPER_INTERVALS,
    comm_schemes: Sequence[str] = PAPER_COMM_SCHEMES,
) -> List[TrainingStrategy]:
    """Every valid distributed second-order strategy over the axis grid.

    Parameters
    ----------
    collectives : sequence of str, optional
        Defaults to ``("auto",)`` — the right grid for a profile-backed
        session, whose cost profile already encodes its collectives.
        Topology-backed sessions should pass
        :data:`~repro.plan.COLLECTIVE_ALGORITHMS` (or a subset) so the
        collective-algorithm axis is searched too.
    gradient_reductions, placements, factor_axes : sequences
        The classic planner axes; defaults cover the full valid space.
    wire_dtypes : sequence of (grad, factor, inverse) dtype triples
        Wire-precision points to search; defaults to the paper's
        all-fp32 point, so the default grid is unchanged.
    compressions : sequence of float
        Top-k gradient kept-fractions to search (default: dense only).
    intervals : sequence of (factor, inverse) int pairs
        Stale-refresh intervals to search (default: every iteration).
    comm_schemes : sequence of str
        Communication schemes to search (default: the paper's
        inverse-broadcast scheme only).  ``"mem_opt"`` is skipped for
        ``placement="non_dist"`` — the validator rejects that pair.

    Returns
    -------
    list of TrainingStrategy
        Each named by :func:`strategy_label`, so grid points stay
        distinguishable in reports and ``Session.compare``.

    Examples
    --------
    >>> len(strategy_grid())                    # the classic 72-point grid
    72
    >>> extended = strategy_grid(
    ...     wire_dtypes=[("fp32", "fp32", "fp32"), ("fp32", "fp16", "fp16")],
    ...     intervals=[(1, 1), (1, 4)],
    ... )
    >>> len(extended)
    288
    """
    collectives = tuple(collectives) if collectives is not None else ("auto",)
    for name in collectives:
        if name not in COLLECTIVE_ALGORITHMS:
            raise ValueError(
                f"unknown collective {name!r}; options: {COLLECTIVE_ALGORITHMS}"
            )
    return list(
        _iter_grid(
            tuple(gradient_reductions),
            tuple(placements),
            tuple(factor_axes),
            collectives,
            tuple(tuple(triple) for triple in wire_dtypes),
            tuple(compressions),
            tuple(tuple(pair) for pair in intervals),
            tuple(comm_schemes),
        )
    )


def _iter_grid(
    gradient_reductions: Tuple[str, ...],
    placements: Tuple[str, ...],
    factor_axes: Tuple[Tuple[str, bool, bool], ...],
    collectives: Tuple[str, ...],
    wire_dtypes: Tuple[Tuple[str, str, str], ...],
    compressions: Tuple[float, ...],
    intervals: Tuple[Tuple[int, int], ...],
    comm_schemes: Tuple[str, ...] = PAPER_COMM_SCHEMES,
) -> Iterator[TrainingStrategy]:
    for grad in gradient_reductions:
        for fusion, pipelined, combined in factor_axes:
            for placement in placements:
                for collective in collectives:
                    for comm_scheme in comm_schemes:
                        if comm_scheme == "mem_opt" and placement == "non_dist":
                            continue  # the validator rejects this pair
                        for grad_dtype, factor_dtype, inverse_dtype in wire_dtypes:
                            for compression in compressions:
                                for factor_interval, inverse_interval in intervals:
                                    strategy = TrainingStrategy(
                                        second_order=True,
                                        distributed=True,
                                        gradient_reduction=grad,
                                        factor_fusion=fusion,
                                        factor_pipelining=pipelined,
                                        combine_factor_passes=combined,
                                        placement=placement,
                                        include_solve=True,
                                        collective=collective,
                                        grad_dtype=grad_dtype,
                                        factor_dtype=factor_dtype,
                                        inverse_dtype=inverse_dtype,
                                        grad_compression=compression,
                                        factor_update_interval=factor_interval,
                                        inverse_update_interval=inverse_interval,
                                        comm_scheme=comm_scheme,
                                    )
                                    yield strategy.but(name=strategy_label(strategy))
