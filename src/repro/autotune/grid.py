"""Enumeration of the valid planner axis grid.

The autotuner's search space is the cross product of every axis a
:class:`~repro.plan.TrainingStrategy` exposes, restricted to the
combinations the strategy validator accepts.  :func:`strategy_grid`
enumerates exactly that set — by *construction*, so the enumeration and
the validator can be property-tested against each other (every emitted
strategy must validate; every valid combination must be emitted).

The grid covers distributed second-order training — the design space the
paper's D/MPD/SPD-KFAC schemes live in.  Single-device strategies and
first-order S-SGD have no planner axes worth searching (their schedules
are fully determined), so the tuner prices them only as named reference
presets, never as grid points.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.core.pipeline import FACTOR_FUSION_POLICIES
from repro.core.schedule import PLACEMENT_STRATEGIES
from repro.plan.strategy import COLLECTIVE_ALGORITHMS, TrainingStrategy

#: Gradient-reduction modes available to a *distributed* strategy.
DISTRIBUTED_GRADIENT_REDUCTIONS: Tuple[str, ...] = ("wfbp", "bulk")

#: Valid (factor_fusion, factor_pipelining, combine_factor_passes)
#: combinations: every (fusion, launch) pair, plus D-KFAC's merged
#: post-backward all-reduce (which the validator restricts to
#: non-pipelined bulk fusion).
FACTOR_AXES: Tuple[Tuple[str, bool, bool], ...] = tuple(
    (fusion, pipelined, False)
    for fusion in FACTOR_FUSION_POLICIES
    for pipelined in (True, False)
) + (("bulk", False, True),)


def strategy_label(strategy: TrainingStrategy) -> str:
    """Compact axis summary, e.g. ``"wfbp|optimal+pipe|lbp|auto"``."""
    launch = "+pipe" if strategy.factor_pipelining else "+post"
    merged = "+merged" if strategy.combine_factor_passes else ""
    return (
        f"{strategy.gradient_reduction}|{strategy.factor_fusion}{launch}{merged}"
        f"|{strategy.placement}|{strategy.collective}"
    )


def strategy_grid(
    collectives: Optional[Sequence[str]] = None,
    gradient_reductions: Sequence[str] = DISTRIBUTED_GRADIENT_REDUCTIONS,
    placements: Sequence[str] = PLACEMENT_STRATEGIES,
    factor_axes: Sequence[Tuple[str, bool, bool]] = FACTOR_AXES,
) -> List[TrainingStrategy]:
    """Every valid distributed second-order strategy over the axis grid.

    ``collectives`` defaults to ``("auto",)`` — the right grid for a
    profile-backed session, whose cost profile already encodes its
    collectives.  Topology-backed sessions should pass
    :data:`~repro.plan.COLLECTIVE_ALGORITHMS` (or a subset) so the
    collective-algorithm axis is searched too.

    Each strategy is named by :func:`strategy_label`, so grid points stay
    distinguishable in reports and ``Session.compare``.
    """
    collectives = tuple(collectives) if collectives is not None else ("auto",)
    for name in collectives:
        if name not in COLLECTIVE_ALGORITHMS:
            raise ValueError(
                f"unknown collective {name!r}; options: {COLLECTIVE_ALGORITHMS}"
            )
    return list(
        _iter_grid(tuple(gradient_reductions), tuple(placements),
                   tuple(factor_axes), collectives)
    )


def _iter_grid(
    gradient_reductions: Tuple[str, ...],
    placements: Tuple[str, ...],
    factor_axes: Tuple[Tuple[str, bool, bool], ...],
    collectives: Tuple[str, ...],
) -> Iterator[TrainingStrategy]:
    for grad in gradient_reductions:
        for fusion, pipelined, combined in factor_axes:
            for placement in placements:
                for collective in collectives:
                    strategy = TrainingStrategy(
                        second_order=True,
                        distributed=True,
                        gradient_reduction=grad,
                        factor_fusion=fusion,
                        factor_pipelining=pipelined,
                        combine_factor_passes=combined,
                        placement=placement,
                        include_solve=True,
                        collective=collective,
                    )
                    yield strategy.but(name=strategy_label(strategy))
