"""Robust autotune objectives: rank candidates by tail makespan.

The nominal tuner trusts the noise-free simulated iteration time.  On a
straggling, preemptible cluster that is the wrong objective: a strategy
whose critical path runs through one rank's compute stream degrades
badly when that rank slows down, while a more balanced strategy gives
up a little nominal time for a much better tail.  This module prices
every candidate across N seeded samples of a
:class:`~repro.faults.FaultScenario` (batched through
:func:`repro.sim.simulate_batch` — one scheduling pass per phase graph,
not per sample) and summarizes the distribution into
:class:`RobustStats`, ranked by one of :data:`ROBUST_OBJECTIVES`.

Pruning stays sound under perturbation because straggler factors are
clamped at >= 1 (durations only grow, and makespans are monotone in
durations) and the preemption overhead is a candidate-independent
multiplicative rate ``1 + r`` with ``r >= 0``.  Hence for every sample
``s``: ``bound.total * (1 + r) <= nominal * (1 + r) <= time_s * (1 + r)``
— the jitter-adjusted bound of :func:`scenario_adjusted_bound` lower-
bounds every sampled time, and therefore every objective computed from
them (mean, p95, CVaR, worst are all >= the sample minimum).  This is
property-tested in ``tests/test_robust_autotune.py``.

All samples use *common random numbers*: every candidate is priced
against the same per-sample seeds, so candidate comparisons difference
away the sampling noise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.autotune.bounds import CandidateBound
from repro.faults.checkpoint import scenario_overhead_rate
from repro.faults.perturb import sample_iteration_times
from repro.faults.scenario import FaultScenario
from repro.models.spec import ModelSpec
from repro.perf.calibration import ClusterPerfProfile
from repro.plan.session import build_phase_graphs
from repro.plan.strategy import TrainingStrategy

#: Valid values of ``autotune(objective=...)``; ``"nominal"`` is the
#: scenario-free default, the rest summarize the sampled distribution.
ROBUST_OBJECTIVES: Tuple[str, ...] = ("nominal", "mean", "p95", "cvar95", "worst")


def robust_value(times: Sequence[float], objective: str) -> float:
    """Summarize sampled iteration times under one robust objective.

    ``p95`` is the linearly-interpolated 95th percentile; ``cvar95`` is
    the mean of the worst ``ceil(5%)`` samples (the tail the percentile
    cuts at); ``worst`` and ``mean`` are literal.
    """
    arr = np.asarray(times, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("times must be non-empty")
    if objective == "mean":
        return float(arr.mean())
    if objective == "p95":
        return float(np.percentile(arr, 95.0))
    if objective == "cvar95":
        k = max(1, math.ceil(0.05 * arr.size))
        return float(np.sort(arr)[-k:].mean())
    if objective == "worst":
        return float(arr.max())
    raise ValueError(
        f"unknown robust objective {objective!r}; choose from {ROBUST_OBJECTIVES[1:]}"
    )


@dataclass(frozen=True)
class RobustStats:
    """Distribution summary of one candidate's sampled iteration times."""

    samples: int  #: number of seeded scenario samples priced
    mean: float
    p95: float
    cvar95: float
    worst: float
    best: float  #: fastest sample (the distribution's lower edge)

    @classmethod
    def from_times(cls, times: Sequence[float]) -> "RobustStats":
        """Summarize a sampled time vector."""
        arr = np.asarray(times, dtype=np.float64)
        return cls(
            samples=int(arr.size),
            mean=robust_value(arr, "mean"),
            p95=robust_value(arr, "p95"),
            cvar95=robust_value(arr, "cvar95"),
            worst=robust_value(arr, "worst"),
            best=float(arr.min()),
        )

    def value(self, objective: str) -> float:
        """The summary statistic ``objective`` ranks by."""
        if objective == "mean":
            return self.mean
        if objective == "p95":
            return self.p95
        if objective == "cvar95":
            return self.cvar95
        if objective == "worst":
            return self.worst
        raise ValueError(
            f"unknown robust objective {objective!r}; "
            f"choose from {ROBUST_OBJECTIVES[1:]}"
        )

    def to_dict(self) -> Dict[str, float]:
        """JSON-serializable view (used by report JSON)."""
        return {
            "samples": self.samples,
            "mean": self.mean,
            "p95": self.p95,
            "cvar95": self.cvar95,
            "worst": self.worst,
            "best": self.best,
        }


def scenario_adjusted_bound(
    bound: CandidateBound,
    scenario: FaultScenario,
    overhead_rate: float = 0.0,
) -> CandidateBound:
    """A candidate's lower bound, valid on *every* perturbed sample.

    Straggler factors are >= ``scenario.min_compute_factor()`` (itself
    >= 1), so the nominal compute bound scaled by it still lower-bounds
    each sample's compute time; comm durations are never perturbed; and
    the preemption overhead multiplies every sampled time by exactly
    ``1 + overhead_rate``.  The returned bound's ``total`` therefore
    never exceeds any sampled objective value.
    """
    if overhead_rate < 0:
        raise ValueError(f"overhead_rate must be >= 0, got {overhead_rate}")
    scale = 1.0 + overhead_rate
    return CandidateBound(
        compute=bound.compute * scenario.min_compute_factor() * scale,
        comm=bound.comm * scale,
        chain=bound.chain * scale,
    )


def candidate_sample_times(
    spec: ModelSpec,
    profile: ClusterPerfProfile,
    strategy: TrainingStrategy,
    scenario: FaultScenario,
    seeds: Sequence[int],
    *,
    num_ranks: int,
    grad_plan,
    fplan,
    placement,
    overhead_rate: float = 0.0,
) -> np.ndarray:
    """Per-sample amortized iteration times of one candidate (batched).

    Builds the candidate's phase graphs once, prices all seeds in one
    batched pass per phase, and folds in the amortized preemption
    overhead (``* (1 + overhead_rate)``).
    """
    graphs = build_phase_graphs(
        spec,
        profile,
        strategy,
        num_ranks=num_ranks,
        grad_plan=grad_plan,
        fplan=fplan,
        placement=placement,
    )
    times = sample_iteration_times(
        graphs,
        scenario,
        seeds,
        strategy.factor_update_interval,
        strategy.inverse_update_interval,
    )
    return times * (1.0 + overhead_rate)


class OverheadRates:
    """Per-profile amortized preemption overhead rates, memoized.

    The rate depends only on the scenario's preemption spec, the model
    size, and the cluster the checkpoint is written over — for
    topology-backed searches the topology itself, otherwise each
    candidate's cost profile.
    """

    def __init__(self, scenario: FaultScenario, spec: ModelSpec, topology=None):
        self._scenario = scenario
        self._spec = spec
        self._topology = topology
        self._by_profile: Dict[int, float] = {}
        self._topology_rate: Optional[float] = None

    def for_profile(self, profile: ClusterPerfProfile) -> float:
        """The overhead rate a candidate priced on ``profile`` pays."""
        if self._scenario.preemption is None:
            return 0.0
        if self._topology is not None:
            if self._topology_rate is None:
                self._topology_rate = scenario_overhead_rate(
                    self._scenario, self._topology, self._spec.num_params
                )
            return self._topology_rate
        key = id(profile)
        rate = self._by_profile.get(key)
        if rate is None:
            rate = scenario_overhead_rate(
                self._scenario, profile, self._spec.num_params
            )
            self._by_profile[key] = rate
        return rate
