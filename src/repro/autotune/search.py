"""Best-first branch-and-bound over partial strategy assignments.

The flat grid search (:func:`repro.autotune.autotune` with
``search="grid"``) resolves parts, bounds, and traffic for *every* grid
point before evaluating any — linear in the grid size even when pruning
skips most simulations.  Every extended axis (wire dtypes, compression,
stale intervals) multiplies that constant.  This module replaces the
enumeration with a best-first search over **partial assignments**: axes
are fixed one at a time (ordered by pruning power) and each subtree is
priced by a *relaxed* :class:`~repro.autotune.bounds.CandidateBound` in
which every unassigned axis takes its component-wise best value — so a
subtree whose optimistic bound already meets the incumbent is discarded
without ever resolving its members.

Admissibility of the partial bound
----------------------------------
Each bound component (compute / comm / chain) is a sum (or max) of
terms, and every term that depends on an unassigned axis is replaced by
the **minimum of that term over the axis's remaining options** (for the
placement/fusion structure axes this is an explicit minimum over the
resolved options; for wire axes it is the cheapest dtype/compression
pricing of each collective).  A sum of per-term minima never exceeds the
sum for any completion, so for every leaf ``c`` under a node ``P``::

    partial_bound(P).component <= candidate_bound(c).component   (each)
    => partial_bound(P).total  <= candidate_bound(c).total <= time(c)

— exactly the admissibility property subtree pruning needs, inherited
from the proven per-leaf bound (property-tested in
``tests/test_autotune_bnb.py``).  In robust mode the partial bound goes
through :func:`~repro.autotune.robust.scenario_adjusted_bound` (per
candidate profile), so pruning happens in objective space, valid on
every perturbed sample.

Axis ordering (pruning power)
-----------------------------
Structural axes are expanded in the order that moves the bound most:
``collective`` first (it rescales every collective on the wire and fixes
the cost profile of the whole subtree), then ``placement`` (the busiest
rank's inverse load and the broadcast volume), then the factor
fusion/launch triple (factor comm + the post-pass chain), then
``gradient_reduction``.  The duration-only wire axes (dtype triples,
compression, stale intervals) are never branched on: once the structure
is fixed, the remaining **leaf family** shares one set of task-graph
shapes, so its surviving members are priced in a single vectorized
scheduling pass per shape (:meth:`repro.plan.Session.simulate_many` →
:func:`repro.sim.simulate_plans`).  That pairing is what makes a 10×
grid affordable: subtree pruning skips most of the tree, and the
survivors are batched instead of simulated one by one.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.autotune.bounds import CandidateBound, candidate_bound
from repro.autotune.grid import strategy_label
from repro.autotune.robust import scenario_adjusted_bound
from repro.autotune.traffic import parts_traffic
from repro.core.fusion import plan_bulk
from repro.core.pipeline import (
    factor_comm_plan_for,
    gradient_fusion_plan,
    layer_compute_times,
    precondition_times,
)
from repro.core.schedule import collective_time, mem_opt_placement, resolve_placement
from repro.comm import packed_size
from repro.models.spec import ModelSpec
from repro.perf.calibration import ClusterPerfProfile
from repro.plan import TrainingStrategy, resolve_plan_parts
from repro.sim.analysis import FACTOR_REFRESH, REFRESH, interval_weights

#: Structural axes, in expansion order (see module docstring).  The
#: placement expands before the communication scheme so scheme children
#: can filter the (mem_opt, non_dist) pair the validator rejects.
STRUCT_AXES: Tuple[str, ...] = (
    "collective",
    "placement",
    "comm_scheme",
    "factor_axes",
    "gradient_reduction",
)


def _scheme_allows(placement: str, comm_scheme: str) -> bool:
    """Whether the validator accepts this (placement, comm_scheme) pair."""
    return not (comm_scheme == "mem_opt" and placement == "non_dist")


@dataclass(frozen=True)
class AxisDomains:
    """The option lists of one search: structural axes + leaf-family axes."""

    collectives: Tuple[str, ...]
    placements: Tuple[str, ...]
    factor_axes: Tuple[Tuple[str, bool, bool], ...]
    gradient_reductions: Tuple[str, ...]
    wire_dtypes: Tuple[Tuple[str, str, str], ...]
    compressions: Tuple[float, ...]
    intervals: Tuple[Tuple[int, int], ...]
    comm_schemes: Tuple[str, ...] = ("paper",)

    def structural(self, axis: str) -> Tuple:
        """The option tuple of one structural axis (a ``STRUCT_AXES`` name)."""
        return {
            "collective": self.collectives,
            "placement": self.placements,
            "comm_scheme": self.comm_schemes,
            "factor_axes": self.factor_axes,
            "gradient_reduction": self.gradient_reductions,
        }[axis]

    @property
    def family_size(self) -> int:
        return len(self.wire_dtypes) * len(self.compressions) * len(self.intervals)

    @property
    def total_leaves(self) -> int:
        return count_completions(self, {})


def count_completions(domains: AxisDomains, assign: Dict[str, object]) -> int:
    """How many grid leaves complete a partial assignment.

    Mirrors :func:`repro.autotune.grid.strategy_grid`'s enumeration
    exactly: the placement × comm-scheme cross product is restricted to
    validator-legal pairs, so subtree candidate accounting matches the
    grid's candidate count leaf for leaf.
    """
    n = domains.family_size
    for axis in ("collective", "factor_axes", "gradient_reduction"):
        if axis not in assign:
            n *= len(domains.structural(axis))
    placements = (
        (assign["placement"],) if "placement" in assign else domains.placements
    )
    schemes = (
        (assign["comm_scheme"],) if "comm_scheme" in assign else domains.comm_schemes
    )
    pairs = sum(1 for p in placements for s in schemes if _scheme_allows(p, s))
    return n * pairs


class _ProfileCtx:
    """Per-profile precomputation shared by every partial bound under it.

    Everything here is duration-axis independent: per-layer kernel
    times, resolved gradient/factor plans per structural option, and
    per-placement inverse loads / broadcast sizes.  Partial bounds then
    reduce to sums and minima over these cached pieces.
    """

    def __init__(self, spec: ModelSpec, profile: ClusterPerfProfile):
        self.spec = spec
        self.profile = profile
        self.num_ranks = profile.num_workers
        t_fwd, t_bwd, t_fa, t_fg = layer_compute_times(spec, profile)
        self.base_compute = sum(t_fwd) + sum(t_bwd)
        self.factor_compute = sum(t_fa) + sum(t_fg)
        self.t_fg0 = t_fg[0]
        self.precond = precondition_times(spec, profile.factor_compute)
        self.precond_sum = sum(self.precond)
        self.update = profile.train_compute.time(2.0 * spec.num_params)
        self.grad_sizes = [layer.num_params for layer in reversed(spec.layers)]
        self.a_sizes = [layer.a_elements for layer in spec.layers]
        self.g_sizes = [layer.g_elements for layer in reversed(spec.layers)]
        #: MEM_OPT's per-layer preconditioned-gradient sizes (layer order).
        self.precond_grad_sizes = [layer.num_params for layer in spec.layers]
        self._grad_plans: Dict[str, object] = {}
        self._fplans: Dict[Tuple[Tuple[str, bool, bool], str], object] = {}
        self._placements: Dict[str, object] = {}
        self._placement_load: Dict[str, float] = {}
        self._placement_bcast: Dict[str, List[int]] = {}
        self._memopt_placements: Dict[str, object] = {}
        self._memopt_load: Dict[Tuple[str, bool], float] = {}

    def grad_plan(self, reduction: str):
        plan = self._grad_plans.get(reduction)
        if plan is None:
            if reduction == "wfbp":
                plan = gradient_fusion_plan(self.spec, self.profile)
            else:  # "bulk"
                plan = plan_bulk(len(self.spec.layers))
            self._grad_plans[reduction] = plan
        return plan

    def fplan(self, axes: Tuple[str, bool, bool], reduction: str):
        key = (axes, reduction)
        plan = self._fplans.get(key)
        if plan is None:
            fusion, pipelined, combined = axes
            plan = factor_comm_plan_for(
                self.spec,
                self.profile,
                fusion=fusion,
                pipelined=pipelined,
                combine_passes=combined,
                grad_plan=None if reduction == "wfbp" else self.grad_plan(reduction),
            )
            self._fplans[key] = plan
        return plan

    def placement(self, name: str):
        pl = self._placements.get(name)
        if pl is None:
            pl = resolve_placement(name, self.spec, self.profile, self.num_ranks)
            self._placements[name] = pl
        return pl

    def placement_load(self, name: str) -> float:
        """Busiest rank's inverse-compute load under this placement."""
        load = self._placement_load.get(name)
        if load is None:
            pl = self.placement(name)
            loads = [0.0] * self.num_ranks
            for i, dim in enumerate(pl.dims):
                t_inv = self.profile.inverse_actual.time(dim)
                for rank in pl.assignments[i]:
                    loads[rank] += t_inv
            load = max(loads, default=0.0)
            self._placement_load[name] = load
        return load

    def placement_bcast(self, name: str) -> List[int]:
        """Packed element counts of this placement's CT broadcasts."""
        sizes = self._placement_bcast.get(name)
        if sizes is None:
            pl = self.placement(name)
            sizes = [
                packed_size(dim)
                for i, dim in enumerate(pl.dims)
                if not pl.is_nct(i)
            ]
            self._placement_bcast[name] = sizes
        return sizes

    def memopt_placement(self, name: str):
        pl = self._memopt_placements.get(name)
        if pl is None:
            pl = mem_opt_placement(name, self.spec, self.profile, self.num_ranks)
            self._memopt_placements[name] = pl
        return pl

    def memopt_load(self, name: str, with_inverses: bool) -> float:
        """Busiest owner's MEM_OPT solve load: its preconditioning GEMMs
        plus (in refresh shapes) its pair of inversions per owned layer."""
        key = (name, with_inverses)
        load = self._memopt_load.get(key)
        if load is None:
            pl = self.memopt_placement(name)
            loads = [0.0] * self.num_ranks
            for l in range(len(self.spec.layers)):
                owner = pl.assignments[2 * l][0]
                loads[owner] += self.precond[l]
                if with_inverses:
                    loads[owner] += self.profile.inverse_actual.time(pl.dims[2 * l])
                    loads[owner] += self.profile.inverse_actual.time(
                        pl.dims[2 * l + 1]
                    )
            load = max(loads, default=0.0)
            self._memopt_load[key] = load
        return load


def _relaxed_phase_bound(
    ctx: _ProfileCtx,
    *,
    with_factors: bool,
    with_inverses: bool,
    grad_options: Sequence[str],
    factor_options: Sequence[Tuple[str, bool, bool]],
    placement_options: Sequence[str],
    grad_price: Callable[[int], float],
    factor_price: Callable[[int], float],
    inverse_price: Callable[[int], float],
    comm_scheme: str = "paper",
) -> CandidateBound:
    """One phase's relaxed bound: every free axis at its per-term minimum.

    ``grad_price``/``factor_price``/``inverse_price`` price one
    collective of that class at the cheapest remaining wire
    dtype/compression — singleton-option callers get the exact pricing.
    Mirrors :func:`repro.autotune.bounds._phase_bound` term by term (all
    grid candidates are distributed second-order with the solve stage,
    which is what makes the relaxations below valid for every member).
    ``comm_scheme`` is always fixed by the caller (``partial_bound``
    enumerates schemes exactly, like the interval axis), with
    ``placement_options`` already filtered to the scheme-legal set.
    """
    mem_opt = comm_scheme == "mem_opt"

    # -- compute stream ----------------------------------------------------
    compute = ctx.base_compute + ctx.update
    if not mem_opt:
        compute += ctx.precond_sum
    if with_factors:
        compute += ctx.factor_compute
    if mem_opt:
        # The busiest owner owes its preconds every shape and its
        # inversions in refresh shapes.
        compute += min(
            ctx.memopt_load(p, with_inverses) for p in placement_options
        )
    elif with_inverses:
        compute += min(ctx.placement_load(p) for p in placement_options)

    # -- communication channel --------------------------------------------
    def grad_comm(reduction: str) -> float:
        plan = ctx.grad_plan(reduction)
        return sum(
            grad_price(sum(ctx.grad_sizes[i] for i in bucket))
            for bucket in plan.buckets
        )

    def factor_comm(axes: Tuple[str, bool, bool], reduction: str) -> float:
        fp = ctx.fplan(axes, reduction)
        if fp.combine_passes:
            return factor_price(sum(ctx.a_sizes) + sum(ctx.g_sizes))
        return sum(
            factor_price(sum(ctx.a_sizes[i] for i in bucket))
            for bucket in fp.a_plan.buckets
        ) + sum(
            factor_price(sum(ctx.g_sizes[i] for i in bucket))
            for bucket in fp.g_plan.buckets
        )

    comm = min(grad_comm(g) for g in grad_options)
    if with_factors:
        comm += min(
            factor_comm(axes, g)
            for axes in factor_options
            for g in grad_options
        )
    if ctx.num_ranks > 1:
        # Single-rank candidates broadcast nothing (the exact bound's
        # collective iterator skips placements when num_ranks == 1).
        if mem_opt:
            # Preconditioned-gradient broadcasts ship every shape and
            # their sizes are placement-independent.
            comm += sum(inverse_price(e) for e in ctx.precond_grad_sizes)
        elif with_inverses:
            comm += min(
                sum(inverse_price(e) for e in ctx.placement_bcast(p))
                for p in placement_options
            )

    # -- dependency chains -------------------------------------------------
    backward_end = ctx.base_compute
    if with_factors:
        backward_end += ctx.factor_compute - ctx.t_fg0
    last_bucket = min(
        grad_price(
            sum(ctx.grad_sizes[i] for i in ctx.grad_plan(g).buckets[-1])
        )
        for g in grad_options
    )
    if mem_opt:
        # P_0 on layer 0's owner waits for the last gradient bucket; its
        # preconditioned-gradient broadcast then gates the update.
        tail = ctx.precond[0]
        if ctx.num_ranks > 1:
            tail += inverse_price(ctx.precond_grad_sizes[0])
        chain = backward_end + last_bucket + tail + ctx.update
    else:
        chain = backward_end + last_bucket + ctx.precond_sum + ctx.update

    if with_factors and with_inverses:

        def post_chain(axes: Tuple[str, bool, bool], g: str, p: str) -> float:
            fp = ctx.fplan(axes, g)
            if not fp.launch_after_pass:
                # Pipelined launches carry no post-pass chain; a free
                # factor axis takes 0 here (sound: chains only add).
                return 0.0
            base = backward_end + ctx.t_fg0
            if fp.combine_passes:
                comm_post = factor_price(sum(ctx.a_sizes) + sum(ctx.g_sizes))
                if mem_opt:
                    tail = ctx.memopt_load(p, True) + ctx.update
                elif comm_scheme == "comm_opt":
                    # The decoupled refresh runs after the update: only
                    # the inverse work serializes behind the all-reduce.
                    tail = ctx.placement_load(p)
                else:
                    tail = ctx.placement_load(p) + ctx.precond_sum + ctx.update
            else:
                comm_post = sum(
                    factor_price(sum(ctx.g_sizes[i] for i in bucket))
                    for bucket in fp.g_plan.buckets
                )
                last_layer = (
                    len(ctx.spec.layers) - 1 - fp.g_plan.buckets[-1][-1]
                )
                pl = ctx.memopt_placement(p) if mem_opt else ctx.placement(p)
                t_inv_last = ctx.profile.inverse_actual.time(
                    pl.dims[2 * last_layer + 1]
                )
                if comm_scheme == "comm_opt":
                    tail = t_inv_last
                else:
                    tail = t_inv_last + ctx.precond[last_layer] + ctx.update
            return base + comm_post + tail

        chain = max(
            chain,
            min(
                post_chain(axes, g, p)
                for axes in factor_options
                for g in grad_options
                for p in placement_options
            ),
        )

    return CandidateBound(compute=compute, comm=comm, chain=chain)


def partial_bound(
    spec: ModelSpec,
    ctx: _ProfileCtx,
    domains: AxisDomains,
    assign: Dict[str, object],
) -> CandidateBound:
    """Relaxed lower bound of every completion of a partial assignment.

    ``assign`` fixes a prefix of :data:`STRUCT_AXES` (``collective``
    must already be fixed — the caller enumerates profiles); every
    unassigned axis is relaxed to its component-wise best value.  The
    small interval and comm-scheme axes are enumerated exactly (each
    option induces its own phase weighting / graph shape) and the
    component-wise minimum across options is returned, which is
    admissible for the same reason as the per-term minima (each
    completion uses one of the options).
    """
    grad_options = (
        (assign["gradient_reduction"],)
        if "gradient_reduction" in assign
        else domains.gradient_reductions
    )
    factor_options = (
        (assign["factor_axes"],)
        if "factor_axes" in assign
        else domains.factor_axes
    )
    placement_options = (
        (assign["placement"],) if "placement" in assign else domains.placements
    )
    scheme_options = (
        (assign["comm_scheme"],)
        if "comm_scheme" in assign
        else domains.comm_schemes
    )
    grad_dtypes = sorted({t[0] for t in domains.wire_dtypes})
    factor_dtypes = sorted({t[1] for t in domains.wire_dtypes})
    inverse_dtypes = sorted({t[2] for t in domains.wire_dtypes})
    allreduce = ctx.profile.allreduce_streamed
    broadcast = ctx.profile.broadcast_streamed

    def grad_price(elements: int) -> float:
        return min(
            collective_time(allreduce, elements, dt, comp)
            for dt in grad_dtypes
            for comp in domains.compressions
        )

    def factor_price(elements: int) -> float:
        return min(collective_time(allreduce, elements, dt) for dt in factor_dtypes)

    def inverse_price(elements: int) -> float:
        return min(collective_time(broadcast, elements, dt) for dt in inverse_dtypes)

    best: Optional[CandidateBound] = None
    for comm_scheme in scheme_options:
        scheme_placements = tuple(
            p for p in placement_options if _scheme_allows(p, comm_scheme)
        )
        if not scheme_placements:
            continue  # no valid completion under this scheme
        for factor_interval, inverse_interval in domains.intervals:
            weights = interval_weights(factor_interval, inverse_interval)
            cycle = inverse_interval
            compute = comm = chain = 0.0
            for phase, count in weights:
                bound = _relaxed_phase_bound(
                    ctx,
                    with_factors=phase in (REFRESH, FACTOR_REFRESH),
                    with_inverses=phase == REFRESH,
                    grad_options=grad_options,
                    factor_options=factor_options,
                    placement_options=scheme_placements,
                    grad_price=grad_price,
                    factor_price=factor_price,
                    inverse_price=inverse_price,
                    comm_scheme=comm_scheme,
                )
                compute += bound.compute * count / cycle
                comm += bound.comm * count / cycle
                chain += bound.chain * count / cycle
            candidate = CandidateBound(compute=compute, comm=comm, chain=chain)
            if best is None:
                best = candidate
            else:
                best = CandidateBound(
                    compute=min(best.compute, candidate.compute),
                    comm=min(best.comm, candidate.comm),
                    chain=min(best.chain, candidate.chain),
                )
    if best is None:
        # Every (placement, scheme) pair was invalid: zero completions.
        inf = float("inf")
        return CandidateBound(compute=inf, comm=inf, chain=inf)
    return best


def family_strategies(
    domains: AxisDomains, assign: Dict[str, object]
) -> List[TrainingStrategy]:
    """The leaf family of a fully structural assignment, in grid order."""
    fusion, pipelined, combined = assign["factor_axes"]
    out = []
    for (gd, fd, ivd), comp, (fi, ii) in itertools.product(
        domains.wire_dtypes, domains.compressions, domains.intervals
    ):
        strategy = TrainingStrategy(
            second_order=True,
            distributed=True,
            gradient_reduction=assign["gradient_reduction"],
            factor_fusion=fusion,
            factor_pipelining=pipelined,
            combine_factor_passes=combined,
            placement=assign["placement"],
            include_solve=True,
            collective=assign["collective"],
            grad_dtype=gd,
            factor_dtype=fd,
            inverse_dtype=ivd,
            grad_compression=comp,
            factor_update_interval=fi,
            inverse_update_interval=ii,
            comm_scheme=assign.get("comm_scheme", "paper"),
        )
        out.append(strategy.but(name=strategy_label(strategy)))
    return out


@dataclass
class _Node:
    assign: Dict[str, object]
    depth: int
    leaves: int
    bound: float  #: prune-space scalar (scenario-adjusted in robust mode)


class BnbSearch:
    """One best-first branch-and-bound run (driven by ``autotune``).

    The driver supplies the session, domains, preset-seeded incumbent
    and reuse map, and the evaluation/robust closures; this class owns
    the queue, the partial bounds, subtree accounting, and the batched
    leaf-family evaluation.  Results come back as the same outcome
    tuples the grid path produces, so ranking and reporting are shared.
    """

    def __init__(
        self,
        *,
        session,
        spec: ModelSpec,
        domains: AxisDomains,
        prune: bool,
        robust_mode: bool,
        objective: str,
        scenario,
        rates,
        robust_stats: Optional[Callable],
        seen: Dict[object, Tuple],
        best_value: float,
        preset_twins: Sequence[TrainingStrategy] = (),
    ):
        self.session = session
        self.spec = spec
        self.domains = domains
        self.prune = prune
        self.robust_mode = robust_mode
        self.objective = objective
        self.scenario = scenario
        self.rates = rates
        self.robust_stats = robust_stats
        self.seen = seen
        self.best_value = best_value
        self.preset_twins = list(preset_twins)
        self._ctx: Dict[str, _ProfileCtx] = {}
        self.outcomes: List[Tuple] = []
        self.nodes_expanded = 0
        self.subtrees_pruned = 0
        self.leaves_pruned = 0
        self.families_evaluated = 0
        self.batch_sizes: List[int] = []
        self.counts = {"simulated": 0, "reused": 0, "pruned": 0}

    # -- bound machinery ---------------------------------------------------

    def ctx_for(self, collective: str) -> _ProfileCtx:
        """The (cached) per-profile bound context of one collective choice."""
        ctx = self._ctx.get(collective)
        if ctx is None:
            profile = self.session.profile_for(
                TrainingStrategy(name="probe", collective=collective)
            )
            ctx = _ProfileCtx(self.spec, profile)
            self._ctx[collective] = ctx
        return ctx

    def _prune_value(self, bound: CandidateBound, profile) -> float:
        if not self.robust_mode:
            return bound.total
        return scenario_adjusted_bound(
            bound, self.scenario, self.rates.for_profile(profile)
        ).total

    def node_bound(self, assign: Dict[str, object]) -> float:
        """The prune-space lower bound of a partial assignment."""
        if "collective" in assign:
            ctx = self.ctx_for(assign["collective"])
            bound = partial_bound(self.spec, ctx, self.domains, assign)
            return self._prune_value(bound, ctx.profile)
        # Collective free (the root on a topology session): the best
        # completion is under one of the per-collective bounds.
        return min(
            self.node_bound({**assign, "collective": c})
            for c in self.domains.collectives
        )

    # -- the search --------------------------------------------------------

    def run(self) -> None:
        """Best-first expansion until every subtree is pruned or evaluated."""
        counter = itertools.count()
        root = _Node(assign={}, depth=0, leaves=self.domains.total_leaves, bound=0.0)
        root.bound = self.node_bound(root.assign)
        heap: List[Tuple[float, int, _Node]] = [(root.bound, next(counter), root)]
        while heap:
            value, _, node = heapq.heappop(heap)
            if self.prune and value >= self.best_value:
                self._prune_subtree(node)
                continue
            if node.depth == len(STRUCT_AXES):
                self._evaluate_family(node)
                continue
            axis = STRUCT_AXES[node.depth]
            self.nodes_expanded += 1
            for option in self.domains.structural(axis):
                child_assign = dict(node.assign)
                child_assign[axis] = option
                leaves = count_completions(self.domains, child_assign)
                if leaves == 0:
                    # e.g. comm_scheme="mem_opt" under placement="non_dist":
                    # the validator rejects every completion, so there is
                    # no subtree to search (and nothing to count as pruned).
                    continue
                child = _Node(
                    assign=child_assign,
                    depth=node.depth + 1,
                    leaves=leaves,
                    bound=0.0,
                )
                child.bound = max(node.bound, self.node_bound(child_assign))
                heapq.heappush(heap, (child.bound, next(counter), child))

    def _twins_in(self, assign: Dict[str, object]) -> List[TrainingStrategy]:
        """Preset grid-twins living inside this (pruned) subtree."""
        out = []
        for twin in self.preset_twins:
            axes = {
                "collective": twin.collective,
                "placement": twin.placement,
                "comm_scheme": twin.comm_scheme,
                "factor_axes": (
                    twin.factor_fusion,
                    twin.factor_pipelining,
                    twin.combine_factor_passes,
                ),
                "gradient_reduction": twin.gradient_reduction,
            }
            if all(axes[k] == v for k, v in assign.items()):
                out.append(twin)
        return out

    def _prune_subtree(self, node: _Node) -> None:
        """Discard a subtree, but surface the preset twins it contains.

        The grid path always lists a preset's grid twin as a REUSED
        outcome (twins carry the preset's simulated result); mirroring
        that here keeps ``report.best`` total even when pruning discards
        everything else, so branch-and-bound can never report worse than
        the best preset.
        """
        self.subtrees_pruned += 1
        pruned = node.leaves
        for twin in self._twins_in(node.assign):
            key = self._seen_key(twin)
            if key in self.seen:
                time, breakdown, robust = self.seen[key]
                self._emit(twin, time, breakdown, robust, "reused")
                self.counts["reused"] += 1
                pruned -= 1
        self.leaves_pruned += pruned
        self.counts["pruned"] += pruned

    def _seen_key(self, strategy: TrainingStrategy):
        profile = self.session.profile_for(strategy)
        return (strategy.but(name="grid", collective="auto"), profile)

    def _emit(self, strategy, time, breakdown, robust, status) -> None:
        profile = self.session.profile_for(strategy)
        parts = resolve_plan_parts(self.spec, profile, strategy)
        num_ranks, grad_plan, fplan, placement = parts
        bound = candidate_bound(
            self.spec,
            profile,
            num_ranks=num_ranks,
            grad_plan=grad_plan,
            fplan=fplan,
            placement=placement,
            include_solve=strategy.include_solve,
            strategy=strategy,
        )
        traffic = parts_traffic(
            self.spec,
            num_ranks=num_ranks,
            grad_plan=grad_plan,
            fplan=fplan,
            placement=placement,
            strategy=strategy,
        )
        self.outcomes.append((strategy, bound, time, breakdown, robust, traffic, status))

    def _evaluate_family(self, node: _Node) -> None:
        """Price one leaf family: exact bounds, then one batched pass.

        All members share resolved parts (the duration axes never change
        the fusion/placement structure), so the survivors' phase graphs
        have identical shapes and collapse into a few vectorized
        scheduling passes.
        """
        self.families_evaluated += 1
        members = family_strategies(self.domains, node.assign)
        ctx = self.ctx_for(node.assign["collective"])
        profile = ctx.profile
        parts = resolve_plan_parts(self.spec, profile, members[0])
        num_ranks, grad_plan, fplan, placement = parts

        survivors: List[Tuple[TrainingStrategy, CandidateBound, object]] = []
        for member in members:
            bound = candidate_bound(
                self.spec,
                profile,
                num_ranks=num_ranks,
                grad_plan=grad_plan,
                fplan=fplan,
                placement=placement,
                include_solve=member.include_solve,
                strategy=member,
            )
            traffic = parts_traffic(
                self.spec,
                num_ranks=num_ranks,
                grad_plan=grad_plan,
                fplan=fplan,
                placement=placement,
                strategy=member,
            )
            key = self._seen_key(member)
            if key in self.seen:
                time, breakdown, robust = self.seen[key]
                self.outcomes.append(
                    (member, bound, time, breakdown, robust, traffic, "reused")
                )
                self.counts["reused"] += 1
                continue
            if self.prune and self._prune_value(bound, profile) >= self.best_value:
                self.outcomes.append(
                    (member, bound, None, None, None, traffic, "pruned")
                )
                self.counts["pruned"] += 1
                continue
            survivors.append((member, bound, traffic))

        if not survivors:
            return
        results = self.session.simulate_many(
            [member for member, _, _ in survivors], batch_sizes=self.batch_sizes
        )
        for (member, bound, traffic), result in zip(survivors, results):
            time = result.iteration_time
            breakdown = tuple(result.categories().items())
            robust = None
            if self.robust_mode:
                robust = self.robust_stats(member, profile, parts)
                self.best_value = min(self.best_value, robust.value(self.objective))
            else:
                self.best_value = min(self.best_value, time)
            self.seen[self._seen_key(member)] = (time, breakdown, robust)
            self.outcomes.append(
                (member, bound, time, breakdown, robust, traffic, "simulated")
            )
            self.counts["simulated"] += 1
