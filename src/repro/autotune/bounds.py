"""Per-component makespan lower bounds for candidate strategies.

A full candidate evaluation builds and simulates a ~25k-task graph; the
bounds here cost microseconds because they never touch the graph — they
are computed directly from the resolved planning parts, using the two
structural facts the simulator enforces:

* every rank executes its compute kernels serially on one compute
  stream, so the makespan is at least the busiest rank's total compute
  time (forward + backward + factor + precondition + update kernels plus
  that rank's assigned inverse workloads);
* every collective occupies *all* ranks' communication streams, so the
  collectives serialize globally and the makespan is at least the sum of
  all collective durations;
* dependency chains the schedule cannot overlap: preconditioning
  serializes behind the *last* gradient bucket (which closes with the
  backward pass), and post-pass factor launches serialize the inverse
  stage behind the post-backward factor all-reduces.

``max`` over these components is a true lower bound on the simulated
iteration time (property-tested in ``tests/test_autotune.py``), which
lets the tuner discard a candidate the moment its bound meets the best
simulated time — dominated candidates are never simulated at all.

Candidates with non-default wire axes are priced consistently with the
schedule builder: reduced-precision / compressed collectives by their
wire bytes (:func:`repro.core.schedule.collective_time`), and
stale-refresh candidates (update intervals > 1) as the *weighted
average* of per-phase bounds over the refresh cycle — a valid lower
bound on the cycle-averaged iteration time because the average of
per-phase lower bounds never exceeds the average of per-phase
makespans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.autotune.traffic import (
    GRAD_ALLREDUCE,
    INVERSE_BROADCAST,
    PRECOND_BROADCAST,
    iter_collective_elements,
    resolve_wire_axes,
)
from repro.core.fusion import FusionPlan
from repro.core.pipeline import (
    FactorCommPlan,
    layer_compute_times,
    precondition_times,
)
from repro.core.placement import Placement
from repro.core.schedule import collective_time
from repro.models.spec import ModelSpec
from repro.perf.calibration import ClusterPerfProfile
from repro.sim.analysis import FACTOR_REFRESH, REFRESH, interval_weights


@dataclass(frozen=True)
class CandidateBound:
    """Component-wise lower bounds on one candidate's iteration time.

    For stale-refresh candidates each component is the cycle-weighted
    average of the per-phase components, so :attr:`total` lower-bounds
    the amortized iteration time.
    """

    compute: float  #: busiest rank's serial compute-stream time
    comm: float  #: total collective time on the shared channel
    chain: float = 0.0  #: longest non-overlappable dependency chain

    @property
    def total(self) -> float:
        """The candidate's makespan lower bound."""
        return max(self.compute, self.comm, self.chain)


def _phase_bound(
    spec: ModelSpec,
    profile: ClusterPerfProfile,
    *,
    num_ranks: int,
    grad_plan: Optional[FusionPlan],
    fplan: Optional[FactorCommPlan],
    placement: Optional[Placement],
    include_solve: bool,
    kfac: bool,
    grad_dtype: str,
    factor_dtype: str,
    inverse_dtype: str,
    grad_compression: float,
    with_factors: bool,
    with_inverses: bool,
    comm_scheme: str = "paper",
) -> CandidateBound:
    """Bound one iteration *shape* (refresh / factor-only / steady)."""
    t_fwd, t_bwd, t_fa, t_fg = layer_compute_times(spec, profile)
    mem_opt = comm_scheme == "mem_opt"
    phase_fplan = fplan if with_factors else None
    # MEM_OPT owners precondition (and broadcast) in every shape, so the
    # placement stays live in the stale phases too.
    phase_placement = placement if (with_inverses or mem_opt) else None
    factors = kfac and with_factors
    has_precond = kfac and include_solve
    t_precond = precondition_times(spec, profile.factor_compute)
    num_layers = len(spec.layers)

    # -- compute stream: every rank runs all per-layer kernels ------------
    compute = sum(t_fwd) + sum(t_bwd)
    if factors:
        compute += sum(t_fa) + sum(t_fg)
    if has_precond and not mem_opt:
        compute += sum(t_precond)
    compute += profile.train_compute.time(2.0 * spec.num_params)
    if include_solve and phase_placement is not None:
        loads = [0.0] * num_ranks
        if mem_opt:
            # Only the owner runs a layer's preconditioning (always) and
            # its pair of inversions (refresh shapes only).
            for l in range(num_layers):
                owner = phase_placement.assignments[2 * l][0]
                loads[owner] += t_precond[l]
                if with_inverses:
                    loads[owner] += profile.inverse_actual.time(
                        phase_placement.dims[2 * l]
                    )
                    loads[owner] += profile.inverse_actual.time(
                        phase_placement.dims[2 * l + 1]
                    )
        else:
            for i, dim in enumerate(phase_placement.dims):
                t_inv = profile.inverse_actual.time(dim)
                for rank in phase_placement.assignments[i]:
                    loads[rank] += t_inv
        compute += max(loads, default=0.0)

    # -- communication channel: all collectives serialize globally --------
    # Sizes come from the same iterator the traffic counter uses, so the
    # bound prices exactly the collectives the Pareto axis counts
    # (a packed broadcast of dimension d costs time(d(d+1)/2), which is
    # what ``time_symmetric`` computes in the schedule builder), at the
    # same wire dtype / compression the schedule builder charges.
    comm = 0.0
    for op, elements in iter_collective_elements(
        spec,
        num_ranks=num_ranks,
        grad_plan=grad_plan,
        fplan=phase_fplan,
        placement=phase_placement if include_solve else None,
        comm_scheme=comm_scheme,
    ):
        if op in (INVERSE_BROADCAST, PRECOND_BROADCAST):
            comm += collective_time(profile.broadcast_streamed, elements, inverse_dtype)
        elif op == GRAD_ALLREDUCE:
            comm += collective_time(
                profile.allreduce_streamed, elements, grad_dtype, grad_compression
            )
        else:
            comm += collective_time(profile.allreduce_streamed, elements, factor_dtype)

    # -- dependency chains the schedule cannot overlap --------------------
    # B_0 (the last backward kernel) runs after every other F/B kernel and
    # every A/G factor kernel except G_0 on its rank's compute stream.
    chain = 0.0
    update = profile.train_compute.time(2.0 * spec.num_params)
    solve = include_solve and phase_placement is not None and with_inverses
    backward_end = sum(t_fwd) + sum(t_bwd)
    if factors:
        # G_0 (layer 0's factor) is computed *after* B_0, last of all.
        backward_end += sum(t_fa) + sum(t_fg) - t_fg[0]
    if grad_plan is not None:
        # The last gradient bucket closes with B_0; P_0 (first in the
        # precondition FIFO) waits for it, so every precondition — and
        # then the update — serializes behind it.  Without K-FAC the
        # update itself waits for every gradient bucket.  MEM_OPT's P_0
        # runs only on layer 0's owner, but its preconditioned-gradient
        # broadcast still gates the update.
        grad_sizes = [layer.num_params for layer in reversed(spec.layers)]
        last_bucket = collective_time(
            profile.allreduce_streamed,
            sum(grad_sizes[i] for i in grad_plan.buckets[-1]),
            grad_dtype,
            grad_compression,
        )
        if has_precond and mem_opt:
            tail = t_precond[0]
            if num_ranks > 1:
                tail += collective_time(
                    profile.broadcast_streamed,
                    spec.layers[0].num_params,
                    inverse_dtype,
                )
        elif has_precond:
            tail = sum(t_precond)
        else:
            tail = 0.0
        chain = max(chain, backward_end + last_bucket + tail + update)
    if phase_fplan is not None and phase_fplan.launch_after_pass and solve:
        # Post-pass factor launch: the G-side all-reduces wait for G_0
        # (after B_0) and serialize on the channel; the inverse stage —
        # and whatever the scheme serializes behind it — follow them.
        base = backward_end + t_fg[0]
        a_sizes = [layer.a_elements for layer in spec.layers]
        g_sizes = [layer.g_elements for layer in reversed(spec.layers)]
        if phase_fplan.combine_passes:
            # One merged all-reduce gates *every* inverse, so the busiest
            # rank still owes its whole inverse load plus all preconds.
            comm_post = collective_time(
                profile.allreduce_streamed,
                sum(a_sizes) + sum(g_sizes),
                factor_dtype,
            )
            loads = [0.0] * num_ranks
            if mem_opt:
                # Each owner's FIFO: its inversions then its preconds,
                # whose broadcasts gate the update.
                for l in range(num_layers):
                    owner = phase_placement.assignments[2 * l][0]
                    loads[owner] += (
                        profile.inverse_actual.time(phase_placement.dims[2 * l])
                        + profile.inverse_actual.time(phase_placement.dims[2 * l + 1])
                        + t_precond[l]
                    )
                chain = max(chain, base + comm_post + max(loads, default=0.0) + update)
            else:
                for i, dim in enumerate(phase_placement.dims):
                    t_inv = profile.inverse_actual.time(dim)
                    for rank in phase_placement.assignments[i]:
                        loads[rank] += t_inv
                tail = max(loads, default=0.0)
                if comm_scheme == "comm_opt":
                    # The decoupled refresh runs after the update: only
                    # the inverse work itself serializes behind the
                    # factor all-reduce.
                    chain = max(chain, base + comm_post + tail)
                else:
                    tail += sum(t_precond)
                    chain = max(chain, base + comm_post + tail + update)
        else:
            # The FIFO-last G bucket gates the inverse + precondition of
            # (at least) its own last layer, and the update follows.
            comm_post = sum(
                collective_time(
                    profile.allreduce_streamed,
                    sum(g_sizes[i] for i in bucket),
                    factor_dtype,
                )
                for bucket in phase_fplan.g_plan.buckets
            )
            last_layer = len(spec.layers) - 1 - phase_fplan.g_plan.buckets[-1][-1]
            t_inv_last = profile.inverse_actual.time(
                phase_placement.dims[2 * last_layer + 1]
            )
            if comm_scheme == "comm_opt":
                chain = max(chain, base + comm_post + t_inv_last)
            else:
                tail = t_inv_last + t_precond[last_layer]
                chain = max(chain, base + comm_post + tail + update)

    return CandidateBound(compute=compute, comm=comm, chain=chain)


def candidate_bound(
    spec: ModelSpec,
    profile: ClusterPerfProfile,
    *,
    num_ranks: int,
    grad_plan: Optional[FusionPlan],
    fplan: Optional[FactorCommPlan],
    placement: Optional[Placement],
    include_solve: bool = True,
    strategy=None,
) -> CandidateBound:
    """Lower-bound a candidate from its resolved planning parts.

    Parameters
    ----------
    spec, profile : ModelSpec, ClusterPerfProfile
        The (model, cluster) cell being searched.
    num_ranks, grad_plan, fplan, placement : resolved parts
        Exactly what :func:`repro.plan.resolve_plan_parts` returns, so
        the bound prices the same buckets and placement the simulator
        would execute.
    include_solve : bool
        Whether the inverse/precondition stage is scheduled.  Always
        honored as passed — callers handing in a ``strategy`` should
        pass ``include_solve=strategy.include_solve`` (as the tuner
        does) unless they are deliberately bounding a reduced shape.
    strategy : TrainingStrategy, optional
        When given, its wire-precision / compression / update-interval
        axes reprice the collectives and amortize the bound over the
        refresh cycle; ``None`` (or a strategy with default axes) keeps
        the paper's fp32 every-iteration pricing.

    Returns
    -------
    CandidateBound
        Component-wise lower bounds whose ``total`` never exceeds the
        candidate's simulated (amortized) iteration time.
    """
    (
        grad_dtype,
        factor_dtype,
        inverse_dtype,
        grad_compression,
        factor_interval,
        inverse_interval,
    ) = resolve_wire_axes(strategy)
    if strategy is not None:
        kfac = strategy.second_order
        comm_scheme = strategy.comm_scheme
    else:
        kfac = fplan is not None or placement is not None
        comm_scheme = "paper"

    weights = interval_weights(factor_interval, inverse_interval)
    compute = comm = chain = 0.0
    cycle = inverse_interval
    for phase, count in weights:
        bound = _phase_bound(
            spec,
            profile,
            num_ranks=num_ranks,
            grad_plan=grad_plan,
            fplan=fplan,
            placement=placement,
            include_solve=include_solve,
            kfac=kfac,
            grad_dtype=grad_dtype,
            factor_dtype=factor_dtype,
            inverse_dtype=inverse_dtype,
            grad_compression=grad_compression,
            with_factors=phase in (REFRESH, FACTOR_REFRESH),
            with_inverses=phase == REFRESH,
            comm_scheme=comm_scheme,
        )
        if len(weights) == 1:
            return bound
        compute += bound.compute * count / cycle
        comm += bound.comm * count / cycle
        chain += bound.chain * count / cycle
    return CandidateBound(compute=compute, comm=comm, chain=chain)
