"""Traffic accounting for resolved plans: what a candidate puts on the wire.

Uses the same per-collective accounting as the runtime's
:class:`repro.comm.TrafficCounter` (an ``m``-element collective counts
``m`` — the models' ``m`` in Eqs. 14 and 27 — and bytes default to the
fp32 wire format), so simulated plans and the in-process SPMD runtime
report commensurable numbers.  Iteration time and traffic bytes are the
two axes of the tuner's Pareto frontier: e.g. ``placement="non_dist"``
broadcasts nothing but inverts everything everywhere, while LBP trades
inverse-broadcast bytes for balanced compute.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from repro.comm import TrafficCounter, packed_size
from repro.core.fusion import FusionPlan
from repro.core.pipeline import FactorCommPlan
from repro.core.placement import Placement
from repro.models import get_model_spec
from repro.models.spec import ModelSpec
from repro.plan.plan import Plan

#: Operation labels used by the per-plan counters.
GRAD_ALLREDUCE = "allreduce.grad"
FACTOR_ALLREDUCE = "allreduce.factor"
INVERSE_BROADCAST = "broadcast.inverse"


def iter_collective_elements(
    spec: ModelSpec,
    *,
    num_ranks: int,
    grad_plan: Optional[FusionPlan],
    fplan: Optional[FactorCommPlan],
    placement: Optional[Placement],
) -> Iterator[Tuple[str, int]]:
    """``(op, element count)`` per collective the schedule would launch.

    One entry per gradient bucket, per factor bucket (or the single
    merged all-reduce), and per CT-placed inverse (its packed symmetric
    broadcast).  This is the single source of per-collective sizes:
    :func:`parts_traffic` counts them and
    :func:`repro.autotune.bounds.candidate_bound` prices them, so the
    pruning bound and the Pareto traffic axis can never drift apart.
    """
    if grad_plan is not None:
        grad_sizes = [layer.num_params for layer in reversed(spec.layers)]
        for bucket in grad_plan.buckets:
            yield GRAD_ALLREDUCE, sum(grad_sizes[i] for i in bucket)
    if fplan is not None:
        a_sizes = [layer.a_elements for layer in spec.layers]
        g_sizes = [layer.g_elements for layer in reversed(spec.layers)]
        if fplan.combine_passes:
            yield FACTOR_ALLREDUCE, sum(a_sizes) + sum(g_sizes)
        else:
            for bucket in fplan.a_plan.buckets:
                yield FACTOR_ALLREDUCE, sum(a_sizes[i] for i in bucket)
            for bucket in fplan.g_plan.buckets:
                yield FACTOR_ALLREDUCE, sum(g_sizes[i] for i in bucket)
    if placement is not None and num_ranks > 1:
        for i, dim in enumerate(placement.dims):
            if not placement.is_nct(i):
                yield INVERSE_BROADCAST, packed_size(dim)


def parts_traffic(
    spec: ModelSpec,
    *,
    num_ranks: int,
    grad_plan: Optional[FusionPlan],
    fplan: Optional[FactorCommPlan],
    placement: Optional[Placement],
) -> TrafficCounter:
    """Per-iteration traffic of resolved planning parts."""
    counter = TrafficCounter()
    for op, elements in iter_collective_elements(
        spec, num_ranks=num_ranks, grad_plan=grad_plan, fplan=fplan,
        placement=placement,
    ):
        counter.record(op, elements)
    return counter


def plan_traffic(plan: Plan, spec: Optional[ModelSpec] = None) -> TrafficCounter:
    """Traffic of a resolved :class:`~repro.plan.Plan`.

    ``spec`` is only needed for models outside the paper catalog; it must
    match ``plan.model``.
    """
    if spec is None:
        spec = get_model_spec(plan.model)
    elif spec.name != plan.model:
        raise ValueError(
            f"spec {spec.name!r} does not match the plan's model {plan.model!r}"
        )
    return parts_traffic(
        spec,
        num_ranks=plan.num_ranks,
        grad_plan=plan.grad_plan,
        fplan=plan.factor_plan,
        placement=plan.placement,
    )
