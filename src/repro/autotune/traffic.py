"""Traffic accounting for resolved plans: what a candidate puts on the wire.

Uses the same per-collective accounting as the runtime's
:class:`repro.comm.TrafficCounter` (an ``m``-element collective counts
``m`` — the models' ``m`` in Eqs. 14 and 27 — and bytes default to the
fp32 wire format), so simulated plans and the in-process SPMD runtime
report commensurable numbers.  Iteration time and traffic bytes are the
two axes of the tuner's Pareto frontier: e.g. ``placement="non_dist"``
broadcasts nothing but inverts everything everywhere, while LBP trades
inverse-broadcast bytes for balanced compute.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from repro.comm import TrafficCounter, packed_size
from repro.comm.wire import compressed_elements, wire_bytes
from repro.core.fusion import FusionPlan
from repro.core.pipeline import FactorCommPlan
from repro.core.placement import Placement
from repro.models import get_model_spec
from repro.models.spec import ModelSpec
from repro.plan.plan import Plan

#: Operation labels used by the per-plan counters.
GRAD_ALLREDUCE = "allreduce.grad"
FACTOR_ALLREDUCE = "allreduce.factor"
INVERSE_BROADCAST = "broadcast.inverse"
PRECOND_BROADCAST = "broadcast.precond_grad"


def iter_collective_elements(
    spec: ModelSpec,
    *,
    num_ranks: int,
    grad_plan: Optional[FusionPlan],
    fplan: Optional[FactorCommPlan],
    placement: Optional[Placement],
    comm_scheme: str = "paper",
) -> Iterator[Tuple[str, int]]:
    """``(op, element count)`` per collective the schedule would launch.

    One entry per gradient bucket, per factor bucket (or the single
    merged all-reduce), and per CT-placed inverse (its packed symmetric
    broadcast).  Under ``comm_scheme="mem_opt"`` the inverse broadcasts
    are replaced by one ``num_params``-sized preconditioned-gradient
    broadcast per layer.  This is the single source of per-collective
    sizes: :func:`parts_traffic` counts them and
    :func:`repro.autotune.bounds.candidate_bound` prices them, so the
    pruning bound and the Pareto traffic axis can never drift apart.
    """
    if grad_plan is not None:
        grad_sizes = [layer.num_params for layer in reversed(spec.layers)]
        for bucket in grad_plan.buckets:
            yield GRAD_ALLREDUCE, sum(grad_sizes[i] for i in bucket)
    if fplan is not None:
        a_sizes = [layer.a_elements for layer in spec.layers]
        g_sizes = [layer.g_elements for layer in reversed(spec.layers)]
        if fplan.combine_passes:
            yield FACTOR_ALLREDUCE, sum(a_sizes) + sum(g_sizes)
        else:
            for bucket in fplan.a_plan.buckets:
                yield FACTOR_ALLREDUCE, sum(a_sizes[i] for i in bucket)
            for bucket in fplan.g_plan.buckets:
                yield FACTOR_ALLREDUCE, sum(g_sizes[i] for i in bucket)
    if placement is not None and num_ranks > 1:
        if comm_scheme == "mem_opt":
            for layer in spec.layers:
                yield PRECOND_BROADCAST, layer.num_params
        else:
            for i, dim in enumerate(placement.dims):
                if not placement.is_nct(i):
                    yield INVERSE_BROADCAST, packed_size(dim)


def resolve_wire_axes(strategy) -> Tuple[str, str, str, float, int, int]:
    """A strategy's wire axes as a flat tuple, with paper defaults for ``None``.

    Returns ``(grad_dtype, factor_dtype, inverse_dtype, grad_compression,
    factor_update_interval, inverse_update_interval)`` — the single
    unpacking shared by the traffic counter and the pruning bound
    (:func:`repro.autotune.bounds.candidate_bound`), so the two can
    never disagree about a candidate's wire format.
    """
    if strategy is None:
        return "fp32", "fp32", "fp32", 1.0, 1, 1
    return (
        strategy.grad_dtype,
        strategy.factor_dtype,
        strategy.inverse_dtype,
        strategy.grad_compression,
        strategy.factor_update_interval,
        strategy.inverse_update_interval,
    )


def iter_collective_wire(
    spec: ModelSpec,
    *,
    num_ranks: int,
    grad_plan: Optional[FusionPlan],
    fplan: Optional[FactorCommPlan],
    placement: Optional[Placement],
    strategy=None,
) -> Iterator[Tuple[str, object, object]]:
    """``(op, transmitted elements, wire bytes)`` per amortized collective.

    Applies a strategy's wire axes on top of the base geometry of
    :func:`iter_collective_elements`: gradient all-reduces are top-k
    compressed and cast to ``grad_dtype``, factor all-reduces to
    ``factor_dtype`` weighted by ``1 / factor_update_interval`` (a
    factor refreshed every ``K`` iterations ships ``1/K`` of its bytes
    per iteration on average), and inverse broadcasts to
    ``inverse_dtype`` weighted by ``1 / inverse_update_interval``.
    Weighted entries are fractional; with ``strategy=None`` (or default
    axes) every entry is the exact integer accounting the runtime's
    :class:`~repro.comm.TrafficCounter` uses.  MEM_OPT's
    preconditioned-gradient broadcasts ship *every* iteration (they
    carry the gradients, not the amortizable inverses), so they take the
    ``inverse_dtype`` cast but never the interval weighting.
    """
    (
        grad_dtype,
        factor_dtype,
        inverse_dtype,
        compression,
        factor_interval,
        inverse_interval,
    ) = resolve_wire_axes(strategy)
    comm_scheme = "paper" if strategy is None else strategy.comm_scheme
    for op, elements in iter_collective_elements(
        spec, num_ranks=num_ranks, grad_plan=grad_plan, fplan=fplan,
        placement=placement, comm_scheme=comm_scheme,
    ):
        if op == GRAD_ALLREDUCE:
            yield op, compressed_elements(elements, compression), wire_bytes(
                elements, grad_dtype, compression
            )
        elif op == FACTOR_ALLREDUCE:
            nbytes = wire_bytes(elements, factor_dtype)
            if factor_interval > 1:
                yield op, elements / factor_interval, nbytes / factor_interval
            else:
                yield op, elements, nbytes
        elif op == PRECOND_BROADCAST:
            yield op, elements, wire_bytes(elements, inverse_dtype)
        else:
            nbytes = wire_bytes(elements, inverse_dtype)
            if inverse_interval > 1:
                yield op, elements / inverse_interval, nbytes / inverse_interval
            else:
                yield op, elements, nbytes


def parts_traffic(
    spec: ModelSpec,
    *,
    num_ranks: int,
    grad_plan: Optional[FusionPlan],
    fplan: Optional[FactorCommPlan],
    placement: Optional[Placement],
    strategy=None,
) -> TrafficCounter:
    """Per-iteration traffic of resolved planning parts.

    ``strategy`` (optional) applies wire dtypes, top-k compression, and
    amortized refresh intervals; without it the counter reports the
    paper's exact fp32 every-iteration accounting.
    """
    counter = TrafficCounter()
    for op, elements, nbytes in iter_collective_wire(
        spec, num_ranks=num_ranks, grad_plan=grad_plan, fplan=fplan,
        placement=placement, strategy=strategy,
    ):
        counter.record(op, elements, nbytes)
    return counter


def plan_traffic(plan: Plan, spec: Optional[ModelSpec] = None) -> TrafficCounter:
    """Traffic of a resolved :class:`~repro.plan.Plan`.

    Applies the plan's own strategy axes (wire dtypes, compression,
    amortized refresh intervals).  ``spec`` is only needed for models
    outside the paper catalog; it must match ``plan.model``.
    """
    if spec is None:
        spec = get_model_spec(plan.model)
    elif spec.name != plan.model:
        raise ValueError(
            f"spec {spec.name!r} does not match the plan's model {plan.model!r}"
        )
    return parts_traffic(
        spec,
        num_ranks=plan.num_ranks,
        grad_plan=plan.grad_plan,
        fplan=plan.factor_plan,
        placement=plan.placement,
        strategy=plan.strategy,
    )
