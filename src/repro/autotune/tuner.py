"""The strategy autotuner: search the full planner axis space per cluster.

The paper hand-picks SPD-KFAC's scheme (pipelined factor communication,
optimal tensor fusion, LBP inverse placement) for one flat 64-GPU
testbed.  With every planner axis declarative data
(:class:`~repro.plan.TrainingStrategy`) and every cluster a cost profile
(:class:`~repro.perf.ClusterPerfProfile` or
:class:`~repro.topo.ClusterTopology`), "which scheme is best *here*?"
becomes a search problem::

    from repro.autotune import autotune

    report = autotune("ResNet-50", 64)          # full grid, paper fabric
    print(report.to_text(top_k=5))
    report.best.strategy                        # the winning axes

The search prices every valid axis combination through the shared
:class:`~repro.plan.Session` plan/result cache, pruning candidates whose
:mod:`per-component lower bound <repro.autotune.bounds>` already meets
the best simulated time — dominated schemes are never simulated.  The
report ranks all candidates and carries the (iteration time x traffic
bytes) Pareto frontier, so "fastest" and "cheapest on the wire" are both
one lookup away.
"""

from __future__ import annotations

import dataclasses
import json
import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.autotune.bounds import CandidateBound, candidate_bound
from repro.obs import Histogram, RATIO_BUCKETS, recorder
from repro.autotune.grid import (
    DISTRIBUTED_GRADIENT_REDUCTIONS,
    FACTOR_AXES,
    PAPER_COMM_SCHEMES,
    PAPER_COMPRESSIONS,
    PAPER_INTERVALS,
    PAPER_WIRE_DTYPES,
    strategy_grid,
    strategy_label,
)
from repro.autotune.search import AxisDomains, BnbSearch
from repro.autotune.robust import (
    ROBUST_OBJECTIVES,
    OverheadRates,
    RobustStats,
    candidate_sample_times,
    scenario_adjusted_bound,
)
from repro.autotune.traffic import parts_traffic
from repro.core.schedule import PLACEMENT_STRATEGIES
from repro.faults.scenario import FaultScenario, named_scenario
from repro.plan import (
    COLLECTIVE_ALGORITHMS,
    Session,
    TrainingStrategy,
    resolve_plan_parts,
    strategy_registry,
)
from repro.plan.session import ClusterLike

#: The named presets the tuner's winner is measured against — the
#: distributed second-order schemes the grid generalizes (first-order
#: S-SGD does strictly less work per iteration, so comparing against it
#: would be apples to oranges).
SECOND_ORDER_PRESETS: Tuple[str, ...] = ("D-KFAC", "MPD-KFAC", "SPD-KFAC")

#: Candidate evaluation statuses.
SIMULATED = "simulated"
REUSED = "reused"  # identical axes + profile as an already-simulated candidate
PRUNED = "pruned"  # lower bound met the best simulated time

_REC = recorder()


def matching_preset(strategy: TrainingStrategy) -> Optional[str]:
    """The registry preset with these exact axes, or ``None``.

    Names are ignored — a grid point labelled ``"wfbp|optimal+pipe|lbp|auto"``
    still *is* SPD-KFAC.
    """
    for name, preset in strategy_registry.items():
        if dataclasses.replace(strategy, name=preset.name) == preset:
            return name
    return None


@dataclass(frozen=True)
class CandidateOutcome:
    """One grid point's evaluation: bound, price, traffic, status."""

    strategy: TrainingStrategy
    preset: Optional[str]  #: registry preset these axes coincide with
    bound: CandidateBound
    iteration_time: Optional[float]  #: ``None`` when pruned
    breakdown: Optional[Tuple[Tuple[str, float], ...]]
    traffic_elements: float  #: int unless amortized by a stale interval
    traffic_bytes: float  #: int unless amortized by a stale interval
    traffic_by_op: Tuple[Tuple[str, float], ...]  #: bytes per collective kind
    status: str
    robust: Optional[RobustStats] = None  #: sampled stats under a fault scenario

    @property
    def label(self) -> str:
        return self.strategy.name

    @property
    def simulated(self) -> bool:
        return self.iteration_time is not None

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable view of this outcome (used by report JSON)."""
        return {
            "strategy": self.strategy.to_dict(),
            "preset": self.preset,
            "lower_bound": {
                "compute": self.bound.compute,
                "comm": self.bound.comm,
                "total": self.bound.total,
            },
            "iteration_time": self.iteration_time,
            "breakdown": None if self.breakdown is None else dict(self.breakdown),
            "traffic_elements": self.traffic_elements,
            "traffic_bytes": self.traffic_bytes,
            "traffic_by_op": dict(self.traffic_by_op),
            "status": self.status,
            "robust": None if self.robust is None else self.robust.to_dict(),
        }


def pareto_frontier(outcomes: Sequence[CandidateOutcome]) -> List[CandidateOutcome]:
    """Non-dominated simulated candidates under (iteration time, traffic bytes).

    Sorted by iteration time; each kept point strictly reduces traffic
    relative to every faster point (minimize both axes).  Candidates
    with identical (time, traffic) tie-break on their label, so the
    frontier — and therefore robust-vs-nominal comparisons built on it
    — is fully deterministic across runs.
    """
    priced = sorted(
        (o for o in outcomes if o.iteration_time is not None),
        key=lambda o: (o.iteration_time, o.traffic_bytes, o.label),
    )
    frontier: List[CandidateOutcome] = []
    best_bytes: Optional[int] = None
    for outcome in priced:
        if best_bytes is None or outcome.traffic_bytes < best_bytes:
            frontier.append(outcome)
            best_bytes = outcome.traffic_bytes
    return frontier


@dataclass
class AutotuneReport:
    """Ranked outcome of one (model, cluster) search."""

    model: str
    cluster: str
    world_size: int
    outcomes: List[CandidateOutcome]  #: ranked: simulated by objective, then pruned
    preset_times: Dict[str, float]  #: nominal iteration time per preset
    stats: Dict[str, int] = field(default_factory=dict)
    objective: str = "nominal"  #: what the ranking minimizes
    scenario: Optional[FaultScenario] = None  #: fault scenario (robust runs)
    preset_values: Dict[str, float] = field(default_factory=dict)
    #: objective value per preset; empty in nominal runs (= preset_times)
    telemetry: Dict[str, object] = field(default_factory=dict)
    #: search telemetry: wall-clock per stage, prune rate, bound-tightness
    #: histogram, plan-cache hit/miss deltas (``autotune --stats``)

    # -- views -------------------------------------------------------------

    def outcome_value(self, outcome: CandidateOutcome) -> Optional[float]:
        """The value ``outcome`` is ranked by under this report's objective."""
        if self.objective == "nominal":
            return outcome.iteration_time
        return None if outcome.robust is None else outcome.robust.value(self.objective)

    def _best_or_none(self) -> Optional[CandidateOutcome]:
        best = self.outcomes[0] if self.outcomes else None
        return best if best is not None and best.simulated else None

    @property
    def best(self) -> CandidateOutcome:
        """The best simulated candidate under the search objective.

        With the default grid at least the preset twins are always
        priced; a custom ``candidates`` shortlist can be pruned in its
        entirety, in which case no candidate beat the presets and this
        raises.
        """
        best = self._best_or_none()
        if best is None:
            raise ValueError(
                "every candidate was pruned by its lower bound; none can beat "
                f"the best preset ({self.best_preset[0]})"
                if self.preset_times
                else "no candidate was simulated"
            )
        return best

    @property
    def best_strategy(self) -> TrainingStrategy:
        return self.best.strategy

    @property
    def best_preset(self) -> Tuple[str, float]:
        """(name, objective value) of the best compared preset."""
        values = self.preset_values or self.preset_times
        if not values:
            raise ValueError("no presets were priced (autotune ran with presets=())")
        name = min(values, key=values.get)
        return name, values[name]

    @property
    def speedup_over_presets(self) -> float:
        """Best preset value / best found value (>= 1.0 by construction)."""
        return self.best_preset[1] / self.outcome_value(self.best)

    def pareto(self) -> List[CandidateOutcome]:
        """The (iteration time x traffic bytes) frontier of this search."""
        return pareto_frontier(self.outcomes)

    # -- rendering ---------------------------------------------------------

    def to_text(self, top_k: int = 10) -> str:
        """Human-readable ranked table (what the ``autotune`` CLI prints)."""
        robust_mode = self.objective != "nominal"
        lines = [
            f"autotune: {self.model} on {self.cluster} ({self.world_size} GPUs)",
            f"  searched {self.stats.get('candidates', 0)} candidates: "
            f"{self.stats.get('simulated', 0)} simulated, "
            f"{self.stats.get('reused', 0)} reused, "
            f"{self.stats.get('pruned', 0)} pruned by lower bound",
        ]
        if robust_mode and self.scenario is not None:
            lines.append(
                f"  objective: {self.objective} over "
                f"{self.stats.get('samples', 0)} samples of "
                f"{self.scenario.describe()}"
            )
        value_col = f"{self.objective}(s)"
        extra = f" {value_col:>10}" if robust_mode else ""
        header = (
            f"  {'rank':<4} {'strategy':<38} {'time(s)':>9}{extra} "
            f"{'traffic(MB)':>12}  note"
        )
        lines += [header, "  " + "-" * (len(header) - 2)]
        for rank, outcome in enumerate(self.outcomes[:top_k], start=1):
            time_s = (
                f"{outcome.iteration_time:.4f}"
                if outcome.iteration_time is not None
                else f">{outcome.bound.total:.4f}"
            )
            if robust_mode:
                value = self.outcome_value(outcome)
                extra = f" {value:>10.4f}" if value is not None else f" {'-':>10}"
            else:
                extra = ""
            note = outcome.preset or ""
            if outcome.status == PRUNED:
                note = (note + " " if note else "") + "pruned"
            lines.append(
                f"  {rank:<4} {outcome.label:<38} {time_s:>9}{extra} "
                f"{outcome.traffic_bytes / 1e6:>12.2f}  {note}"
            )
        best = self._best_or_none()
        unit = f"s {self.objective}" if robust_mode else "s"
        if self.preset_times and best is not None:
            best_name, best_time = self.best_preset
            lines.append(
                f"  best preset: {best_name} at {best_time:.4f}{unit}; "
                f"best found: {best.label} at "
                f"{self.outcome_value(best):.4f}{unit} "
                f"({self.speedup_over_presets:.3f}x)"
            )
        elif self.preset_times:
            best_name, best_time = self.best_preset
            lines.append(
                f"  best preset: {best_name} at {best_time:.4f}{unit}; every "
                "candidate was pruned (none can beat it)"
            )
        elif best is not None:
            lines.append(
                f"  best found: {best.label} at "
                f"{self.outcome_value(best):.4f}{unit}"
            )
        frontier = self.pareto()
        lines.append(
            "  pareto (time x traffic): "
            + (
                "; ".join(
                    f"{o.label} ({o.iteration_time:.4f}s, {o.traffic_bytes / 1e6:.1f}MB)"
                    for o in frontier
                )
                or "(no candidate simulated)"
            )
        )
        return "\n".join(lines)

    def telemetry_text(self) -> str:
        """Human-readable search telemetry (``autotune --stats``).

        Reports wall-clock per search stage, the prune rate, the
        bound-tightness histogram over simulated candidates (how close
        each candidate's per-component lower bound came to its simulated
        time — tight bounds are what make pruning sound *and* sharp),
        and the shared plan-cache traffic this search generated.
        """
        if not self.telemetry:
            return "  (no telemetry recorded)"
        lines = ["search telemetry:"]
        wall = self.telemetry.get("wall_clock_s", {})
        for stage in ("presets", "prepare", "evaluate", "total"):
            if stage in wall:
                lines.append(f"  {stage:<10} {wall[stage]:>9.4f}s")
        rate = self.telemetry.get("prune_rate")
        if rate is not None:
            lines.append(
                f"  prune rate: {rate:.1%} "
                f"({self.stats.get('pruned', 0)}/{self.stats.get('candidates', 0)} "
                "candidates never simulated)"
            )
        nodes = self.telemetry.get("nodes")
        if nodes:
            lines.append(
                f"  bnb nodes: {nodes.get('expanded', 0)} expanded, "
                f"{nodes.get('subtrees_pruned', 0)} subtrees pruned "
                f"({nodes.get('leaves_pruned', 0)} leaves), "
                f"{nodes.get('families_evaluated', 0)} leaf families evaluated"
            )
        batches = self.telemetry.get("batches")
        if batches:
            lines.append(
                f"  batched pricing: {batches.get('graphs', 0)} phase graphs in "
                f"{batches.get('count', 0)} scheduling passes "
                f"(largest batch {batches.get('max_size', 0)})"
            )
        cache = self.telemetry.get("cache", {})
        if cache:
            lines.append(
                f"  plan cache: {cache.get('hits', 0)} hits, "
                f"{cache.get('misses', 0)} misses during this search"
            )
        hist = self.telemetry.get("bound_tightness")
        if hist:
            lines.append(
                "  bound tightness (bound/simulated, 1.0 = exact) over "
                f"{hist['count']} simulated candidates, mean "
                f"{(hist['sum'] / hist['count']) if hist['count'] else 0.0:.3f}:"
            )
            for label, count in hist["buckets"].items():
                if count:
                    lines.append(f"    {label:>8}  {count}")
        return "\n".join(lines)

    # -- serialization -----------------------------------------------------

    def to_dict(self, *, telemetry: bool = False) -> Dict[str, object]:
        """The whole report (outcomes, presets, Pareto, stats) as a dict.

        ``telemetry=True`` additionally includes the search telemetry.
        It is excluded by default because wall-clock timings and cache
        hit/miss deltas vary run to run, and ``to_json`` guarantees the
        same search yields byte-identical JSON.
        """
        best = self._best_or_none()
        payload = {
            "model": self.model,
            "cluster": self.cluster,
            "world_size": self.world_size,
            "objective": self.objective,
            "scenario": None if self.scenario is None else self.scenario.to_dict(),
            "outcomes": [o.to_dict() for o in self.outcomes],
            "preset_times": dict(self.preset_times),
            "preset_values": dict(self.preset_values),
            "best": None if best is None else best.to_dict(),
            "best_preset": list(self.best_preset) if self.preset_times else None,
            "speedup_over_presets": (
                self.speedup_over_presets
                if best is not None and self.preset_times
                else None
            ),
            "pareto": [o.to_dict() for o in self.pareto()],
            "stats": dict(self.stats),
        }
        if telemetry:
            payload["telemetry"] = dict(self.telemetry)
        return payload

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The report as stable (sorted-keys) JSON."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def save(self, path: str, indent: Optional[int] = 2) -> None:
        """Write the JSON report (plus trailing newline) to ``path``."""
        with open(path, "w") as f:
            f.write(self.to_json(indent=indent))
            f.write("\n")


def autotune(
    model: Union[str, Session, object],
    cluster: ClusterLike = None,
    *,
    collectives: Optional[Sequence[str]] = None,
    presets: Sequence[str] = SECOND_ORDER_PRESETS,
    prune: bool = True,
    candidates: Optional[Sequence[TrainingStrategy]] = None,
    wire_dtypes: Optional[Sequence[Tuple[str, str, str]]] = None,
    compressions: Optional[Sequence[float]] = None,
    intervals: Optional[Sequence[Tuple[int, int]]] = None,
    comm_schemes: Optional[Sequence[str]] = None,
    objective: Optional[str] = None,
    scenario: Union[None, str, FaultScenario] = None,
    samples: int = 32,
    seed: Optional[int] = None,
    search: str = "grid",
) -> AutotuneReport:
    """Search the full planner axis grid for ``model`` on ``cluster``.

    ``model`` is a model name / :class:`~repro.models.spec.ModelSpec`
    (with ``cluster`` as in :class:`~repro.plan.Session`) or an existing
    ``Session``.  ``collectives`` restricts the collective-algorithm axis
    (default: all algorithms on a topology-backed session, ``"auto"``
    alone on a profile-backed one, whose profile already encodes its
    collectives).  ``presets`` are simulated first: they seed the
    pruning incumbent, so the result can never be worse than the best
    named scheme.  ``prune=False`` simulates every candidate — the full
    Pareto surface at full cost.  ``candidates`` overrides the searched
    grid entirely (e.g. a hand-written shortlist).

    ``wire_dtypes`` / ``compressions`` / ``intervals`` /
    ``comm_schemes`` extend the grid along the precision, top-k
    compression, stale-refresh, and communication-scheme axes (see
    :func:`repro.autotune.strategy_grid`); by default only the paper's
    point (fp32, dense, every-iteration refresh, inverse broadcasts) is
    searched.  Bounds, traffic, and the Pareto frontier all account for
    the extended axes — a stale candidate's traffic is its amortized
    per-iteration byte volume, and a MEM_OPT candidate's is its
    per-layer preconditioned-gradient broadcasts.

    ``scenario`` (a :class:`~repro.faults.FaultScenario` or preset name)
    switches the search to a **robust objective**: every surviving
    candidate is additionally priced across ``samples`` seeded scenario
    perturbations (batched — one scheduling pass per phase graph) and
    ranked by ``objective`` (``"p95"`` by default with a scenario;
    also ``"mean"``, ``"cvar95"``, ``"worst"``).  All candidates share
    the same sample seeds (common random numbers), derived from ``seed``
    (default: the scenario's own seed).  Pruning stays sound: the
    incumbent is tracked in objective space and candidates are pruned
    with the jitter-adjusted bound of
    :func:`~repro.autotune.robust.scenario_adjusted_bound`, which
    lower-bounds every perturbed sample.

    ``search`` selects the enumeration engine: ``"grid"`` (the default)
    prices every grid point's bound up front and evaluates cheapest
    first; ``"bnb"`` runs the best-first branch-and-bound of
    :mod:`repro.autotune.search`, which prunes whole subtrees against
    the incumbent via relaxed partial bounds and prices surviving leaf
    families in vectorized batches — the same winner, much cheaper on
    extended grids.  ``candidates=`` shortlists only work with
    ``search="grid"`` (a shortlist has no axis structure to branch on).
    """
    if search not in ("grid", "bnb"):
        raise ValueError(f"unknown search={search!r}; choose 'grid' or 'bnb'")
    if search == "bnb" and candidates is not None:
        raise ValueError(
            "search='bnb' branches on the axis structure of the full grid and "
            "cannot price a hand-written candidates= shortlist; use "
            "search='grid' for shortlists"
        )
    if isinstance(model, Session):
        if cluster is not None:
            raise ValueError("pass a cluster via Session(...), not both")
        session = model
        if session.scenario is not None:
            raise ValueError(
                "autotune manages fault scenarios itself; pass scenario= to "
                "autotune() instead of a scenario-bound Session (which would "
                "perturb the nominal times too)"
            )
    else:
        session = Session(model, cluster)
    spec = session.spec

    if isinstance(scenario, str):
        scenario = named_scenario(scenario)
    if scenario is None:
        if objective not in (None, "nominal"):
            raise ValueError(
                f"objective={objective!r} needs a fault scenario; pass "
                "scenario= (a FaultScenario or a preset name)"
            )
        objective = "nominal"
    else:
        if not isinstance(scenario, FaultScenario):
            raise TypeError(
                f"scenario must be a FaultScenario or preset name, got "
                f"{type(scenario).__name__}"
            )
        objective = objective or "p95"
        if objective not in ROBUST_OBJECTIVES or objective == "nominal":
            raise ValueError(
                f"objective={objective!r} is not a robust objective; choose "
                f"from {ROBUST_OBJECTIVES[1:]}"
            )
        if samples < 1:
            raise ValueError(f"samples must be >= 1, got {samples}")
        if seed is not None:
            scenario = dataclasses.replace(scenario, seed=seed)
    robust_mode = objective != "nominal"
    seeds = scenario.sample_seeds(samples) if robust_mode else []
    rates = (
        OverheadRates(scenario, spec, session.topology) if robust_mode else None
    )

    grid_kwargs = {}
    if wire_dtypes is not None:
        grid_kwargs["wire_dtypes"] = wire_dtypes
    if compressions is not None:
        grid_kwargs["compressions"] = compressions
    if intervals is not None:
        grid_kwargs["intervals"] = intervals
    if comm_schemes is not None:
        grid_kwargs["comm_schemes"] = comm_schemes
    if candidates is None:
        if collectives is None:
            collectives = (
                COLLECTIVE_ALGORITHMS if session.topology is not None else ("auto",)
            )
        candidates = strategy_grid(collectives=collectives, **grid_kwargs)
    elif grid_kwargs:
        raise ValueError(
            "candidates= overrides the searched grid entirely; the grid axes "
            f"{sorted(grid_kwargs)} would be silently ignored — bake them "
            "into the candidate list instead"
        )
    else:
        candidates = [
            c.but(name=strategy_label(c)) if c.name == "custom" else c
            for c in candidates
        ]

    domains: Optional[AxisDomains] = None
    if search == "bnb":
        domains = AxisDomains(
            collectives=tuple(collectives),
            placements=tuple(PLACEMENT_STRATEGIES),
            factor_axes=tuple(FACTOR_AXES),
            gradient_reductions=tuple(DISTRIBUTED_GRADIENT_REDUCTIONS),
            wire_dtypes=tuple(
                tuple(t)
                for t in (wire_dtypes if wire_dtypes is not None else PAPER_WIRE_DTYPES)
            ),
            compressions=tuple(
                compressions if compressions is not None else PAPER_COMPRESSIONS
            ),
            intervals=tuple(
                tuple(p)
                for p in (intervals if intervals is not None else PAPER_INTERVALS)
            ),
            comm_schemes=tuple(
                comm_schemes if comm_schemes is not None else PAPER_COMM_SCHEMES
            ),
        )

    def resolve_parts(strategy: TrainingStrategy, profile):
        return resolve_plan_parts(spec, profile, strategy)

    def robust_stats(strategy: TrainingStrategy, profile, parts) -> RobustStats:
        num_ranks, grad_plan, fplan, placement = parts
        times = candidate_sample_times(
            spec,
            profile,
            strategy,
            scenario,
            seeds,
            num_ranks=num_ranks,
            grad_plan=grad_plan,
            fplan=fplan,
            placement=placement,
            overhead_rate=rates.for_profile(profile),
        )
        return RobustStats.from_times(times)

    # Telemetry is always collected (a handful of perf_counter calls and
    # one histogram per search — negligible next to a single simulation);
    # spans are only recorded when the process recorder is enabled.
    from repro.plan.session import cache_info

    t_start = _time.perf_counter()
    cache_before = cache_info()
    # Bound/simulated-time ratio per simulated candidate: 1.0 = exact.
    tightness = Histogram("autotune.bound_tightness", bounds=RATIO_BUCKETS)

    # Price the presets first: they seed the pruning incumbent *and* the
    # reuse map, so the grid twin of e.g. SPD-KFAC always carries the
    # preset's simulated result — pruning can never leave the report's
    # best worse than the best named scheme.  In robust mode the
    # incumbent lives in objective space (p95/CVaR seconds, not nominal
    # seconds): pruning against a nominal incumbent would be unsound,
    # since a nominally-slower candidate can still win on the tail.
    preset_times: Dict[str, float] = {}
    preset_values: Dict[str, float] = {}
    seen: Dict[object, Tuple[float, Tuple, Optional[RobustStats]]] = {}
    with _REC.span("autotune.presets", model=spec.name, presets=len(presets)):
        for name in presets:
            preset = strategy_registry[name]
            profile = session.profile_for(preset)
            result = session.simulate(preset)
            preset_times[name] = result.iteration_time
            robust = None
            if robust_mode:
                robust = robust_stats(preset, profile, resolve_parts(preset, profile))
                preset_values[name] = robust.value(objective)
            key = (preset.but(name="grid", collective="auto"), profile)
            seen[key] = (
                result.iteration_time,
                tuple(result.categories().items()),
                robust,
            )
    t_presets = _time.perf_counter()
    incumbent_values = preset_values if robust_mode else preset_times
    best_value = min(incumbent_values.values()) if incumbent_values else float("inf")

    bnb: Optional[BnbSearch] = None
    if search == "bnb":
        # Presets whose axes are a leaf of this grid: the search surfaces
        # them as REUSED outcomes even when pruning discards the subtree
        # around them, mirroring the grid path's guarantee that the
        # report's best can never be worse than the best named scheme.
        preset_twins = []
        for name in presets:
            preset = strategy_registry[name]
            factor_triple = (
                preset.factor_fusion,
                preset.factor_pipelining,
                preset.combine_factor_passes,
            )
            wire_triple = (
                preset.grad_dtype,
                preset.factor_dtype,
                preset.inverse_dtype,
            )
            interval_pair = (
                preset.factor_update_interval,
                preset.inverse_update_interval,
            )
            if (
                preset.second_order
                and preset.distributed
                and preset.include_solve
                and preset.collective in domains.collectives
                and preset.placement in domains.placements
                and preset.comm_scheme in domains.comm_schemes
                and factor_triple in domains.factor_axes
                and preset.gradient_reduction in domains.gradient_reductions
                and wire_triple in domains.wire_dtypes
                and preset.grad_compression in domains.compressions
                and interval_pair in domains.intervals
            ):
                preset_twins.append(preset.but(name=strategy_label(preset)))

        t_prepare = t_presets  # BnB resolves parts lazily; no prepare stage
        with _REC.span(
            "autotune.bnb", model=spec.name, leaves=domains.total_leaves
        ):
            bnb = BnbSearch(
                session=session,
                spec=spec,
                domains=domains,
                prune=prune,
                robust_mode=robust_mode,
                objective=objective,
                scenario=scenario,
                rates=rates,
                robust_stats=robust_stats if robust_mode else None,
                seen=seen,
                best_value=best_value,
                preset_twins=preset_twins,
            )
            bnb.run()
        stats = {"candidates": domains.total_leaves, **bnb.counts}
        if robust_mode:
            stats["samples"] = len(seeds)
        outcomes = []
        for strategy, bound, time, breakdown, robust, traffic, status in bnb.outcomes:
            if status == SIMULATED and time:
                tightness.observe(bound.total / time)
            outcomes.append(
                CandidateOutcome(
                    strategy=strategy,
                    preset=matching_preset(strategy),
                    bound=bound,
                    iteration_time=time,
                    breakdown=breakdown,
                    traffic_elements=traffic.total_elements(),
                    traffic_bytes=traffic.total_bytes(),
                    traffic_by_op=tuple(sorted(traffic.bytes.items())),
                    status=status,
                    robust=robust,
                )
            )
        t_evaluate = _time.perf_counter()
    else:
        # Resolve parts + bounds for the whole grid first (microseconds
        # per candidate next to a simulation), then evaluate
        # cheapest-bound-first so the incumbent drops fast and pruning
        # bites early.  The pruning bound is the scenario-adjusted one in
        # robust mode — valid on every perturbed sample, hence on every
        # objective value.
        prepared = []
        with _REC.span(
            "autotune.prepare", model=spec.name, candidates=len(candidates)
        ):
            for strategy in candidates:
                profile = session.profile_for(strategy)
                parts = resolve_parts(strategy, profile)
                num_ranks, grad_plan, fplan, placement = parts
                bound = candidate_bound(
                    spec,
                    profile,
                    num_ranks=num_ranks,
                    grad_plan=grad_plan,
                    fplan=fplan,
                    placement=placement,
                    include_solve=strategy.include_solve,
                    strategy=strategy,
                )
                prune_bound = bound
                if robust_mode:
                    prune_bound = scenario_adjusted_bound(
                        bound, scenario, rates.for_profile(profile)
                    )
                traffic = parts_traffic(
                    spec,
                    num_ranks=num_ranks,
                    grad_plan=grad_plan,
                    fplan=fplan,
                    placement=placement,
                    strategy=strategy,
                )
                prepared.append(
                    (strategy, profile, parts, bound, prune_bound, traffic)
                )
        prepared.sort(key=lambda item: item[4].total)
        t_prepare = _time.perf_counter()

        outcomes = []
        stats = {"candidates": len(prepared), "simulated": 0, "reused": 0, "pruned": 0}
        if robust_mode:
            stats["samples"] = len(seeds)
        # ``seen`` also dedupes within the grid: two collective choices that
        # derive the *same* cost profile (e.g. "auto" resolving to "ring" on
        # a flat fabric) yield identical schedules; simulate one and reuse
        # its result for the twins.

        def evaluate_one(strategy, profile, parts, prune_bound):
            nonlocal best_value
            key = (strategy.but(name="grid", collective="auto"), profile)
            if key in seen:
                time, breakdown, robust = seen[key]
                stats["reused"] += 1
                return time, breakdown, robust, REUSED
            if prune and prune_bound.total >= best_value:
                stats["pruned"] += 1
                return None, None, None, PRUNED
            result = session.simulate(strategy)
            time = result.iteration_time
            breakdown = tuple(result.categories().items())
            robust = None
            if robust_mode:
                robust = robust_stats(strategy, profile, parts)
                best_value = min(best_value, robust.value(objective))
            else:
                best_value = min(best_value, time)
            seen[key] = (time, breakdown, robust)
            stats["simulated"] += 1
            return time, breakdown, robust, SIMULATED

        with _REC.span("autotune.evaluate", model=spec.name, candidates=len(prepared)):
            for strategy, profile, parts, bound, prune_bound, traffic in prepared:
                preset = matching_preset(strategy)
                if _REC.enabled:
                    with _REC.span("autotune.candidate", label=strategy.name) as sp:
                        time, breakdown, robust, status = evaluate_one(
                            strategy, profile, parts, prune_bound
                        )
                        sp.set(status=status)
                else:
                    time, breakdown, robust, status = evaluate_one(
                        strategy, profile, parts, prune_bound
                    )
                if status == SIMULATED and time:
                    tightness.observe(bound.total / time)
                outcomes.append(
                    CandidateOutcome(
                        strategy=strategy,
                        preset=preset,
                        bound=bound,
                        iteration_time=time,
                        breakdown=breakdown,
                        traffic_elements=traffic.total_elements(),
                        traffic_bytes=traffic.total_bytes(),
                        traffic_by_op=tuple(sorted(traffic.bytes.items())),
                        status=status,
                        robust=robust,
                    )
                )
        t_evaluate = _time.perf_counter()

    # Ranked: simulated/reused by the objective value (named presets
    # first on exact ties, then label for determinism), pruned by bound.
    def rank_key(o: CandidateOutcome):
        if o.iteration_time is not None:
            value = (
                o.robust.value(objective)
                if robust_mode and o.robust is not None
                else o.iteration_time
            )
            return (0, value, o.preset is None, o.label)
        return (1, o.bound.total, True, o.label)

    outcomes.sort(key=rank_key)
    cache_after = cache_info()
    telemetry: Dict[str, object] = {
        "wall_clock_s": {
            "presets": t_presets - t_start,
            "prepare": t_prepare - t_presets,
            "evaluate": t_evaluate - t_prepare,
            "total": t_evaluate - t_start,
        },
        "prune_rate": (
            stats["pruned"] / stats["candidates"] if stats["candidates"] else 0.0
        ),
        "bound_tightness": tightness.to_dict(),
        "cache": {
            "hits": cache_after["hits"] - cache_before["hits"],
            "misses": cache_after["misses"] - cache_before["misses"],
        },
        "search": search,
    }
    if bnb is not None:
        telemetry["nodes"] = {
            "expanded": bnb.nodes_expanded,
            "subtrees_pruned": bnb.subtrees_pruned,
            "leaves_pruned": bnb.leaves_pruned,
            "families_evaluated": bnb.families_evaluated,
        }
        sizes = bnb.batch_sizes
        telemetry["batches"] = {
            "count": len(sizes),
            "graphs": sum(sizes),
            "max_size": max(sizes) if sizes else 0,
        }
    world_size = session.num_workers
    if session.topology is not None:
        cluster_desc = session.topology.name
    else:
        cluster_desc = f"{world_size}-GPU profile"
    return AutotuneReport(
        model=spec.name,
        cluster=cluster_desc,
        world_size=world_size,
        outcomes=outcomes,
        preset_times=preset_times,
        stats=stats,
        objective=objective,
        scenario=scenario,
        preset_values=preset_values,
        telemetry=telemetry,
    )
