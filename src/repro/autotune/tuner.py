"""The strategy autotuner: search the full planner axis space per cluster.

The paper hand-picks SPD-KFAC's scheme (pipelined factor communication,
optimal tensor fusion, LBP inverse placement) for one flat 64-GPU
testbed.  With every planner axis declarative data
(:class:`~repro.plan.TrainingStrategy`) and every cluster a cost profile
(:class:`~repro.perf.ClusterPerfProfile` or
:class:`~repro.topo.ClusterTopology`), "which scheme is best *here*?"
becomes a search problem::

    from repro.autotune import autotune

    report = autotune("ResNet-50", 64)          # full grid, paper fabric
    print(report.to_text(top_k=5))
    report.best.strategy                        # the winning axes

The search prices every valid axis combination through the shared
:class:`~repro.plan.Session` plan/result cache, pruning candidates whose
:mod:`per-component lower bound <repro.autotune.bounds>` already meets
the best simulated time — dominated schemes are never simulated.  The
report ranks all candidates and carries the (iteration time x traffic
bytes) Pareto frontier, so "fastest" and "cheapest on the wire" are both
one lookup away.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.autotune.bounds import CandidateBound, candidate_bound
from repro.autotune.grid import strategy_grid, strategy_label
from repro.autotune.traffic import parts_traffic
from repro.plan import (
    COLLECTIVE_ALGORITHMS,
    Session,
    TrainingStrategy,
    resolve_plan_parts,
    strategy_registry,
)
from repro.plan.session import ClusterLike

#: The named presets the tuner's winner is measured against — the
#: distributed second-order schemes the grid generalizes (first-order
#: S-SGD does strictly less work per iteration, so comparing against it
#: would be apples to oranges).
SECOND_ORDER_PRESETS: Tuple[str, ...] = ("D-KFAC", "MPD-KFAC", "SPD-KFAC")

#: Candidate evaluation statuses.
SIMULATED = "simulated"
REUSED = "reused"  # identical axes + profile as an already-simulated candidate
PRUNED = "pruned"  # lower bound met the best simulated time


def matching_preset(strategy: TrainingStrategy) -> Optional[str]:
    """The registry preset with these exact axes, or ``None``.

    Names are ignored — a grid point labelled ``"wfbp|optimal+pipe|lbp|auto"``
    still *is* SPD-KFAC.
    """
    for name, preset in strategy_registry.items():
        if dataclasses.replace(strategy, name=preset.name) == preset:
            return name
    return None


@dataclass(frozen=True)
class CandidateOutcome:
    """One grid point's evaluation: bound, price, traffic, status."""

    strategy: TrainingStrategy
    preset: Optional[str]  #: registry preset these axes coincide with
    bound: CandidateBound
    iteration_time: Optional[float]  #: ``None`` when pruned
    breakdown: Optional[Tuple[Tuple[str, float], ...]]
    traffic_elements: float  #: int unless amortized by a stale interval
    traffic_bytes: float  #: int unless amortized by a stale interval
    traffic_by_op: Tuple[Tuple[str, float], ...]  #: bytes per collective kind
    status: str

    @property
    def label(self) -> str:
        return self.strategy.name

    @property
    def simulated(self) -> bool:
        return self.iteration_time is not None

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable view of this outcome (used by report JSON)."""
        return {
            "strategy": self.strategy.to_dict(),
            "preset": self.preset,
            "lower_bound": {
                "compute": self.bound.compute,
                "comm": self.bound.comm,
                "total": self.bound.total,
            },
            "iteration_time": self.iteration_time,
            "breakdown": None if self.breakdown is None else dict(self.breakdown),
            "traffic_elements": self.traffic_elements,
            "traffic_bytes": self.traffic_bytes,
            "traffic_by_op": dict(self.traffic_by_op),
            "status": self.status,
        }


def pareto_frontier(outcomes: Sequence[CandidateOutcome]) -> List[CandidateOutcome]:
    """Non-dominated simulated candidates under (iteration time, traffic bytes).

    Sorted by iteration time; each kept point strictly reduces traffic
    relative to every faster point (minimize both axes).
    """
    priced = sorted(
        (o for o in outcomes if o.iteration_time is not None),
        key=lambda o: (o.iteration_time, o.traffic_bytes),
    )
    frontier: List[CandidateOutcome] = []
    best_bytes: Optional[int] = None
    for outcome in priced:
        if best_bytes is None or outcome.traffic_bytes < best_bytes:
            frontier.append(outcome)
            best_bytes = outcome.traffic_bytes
    return frontier


@dataclass
class AutotuneReport:
    """Ranked outcome of one (model, cluster) search."""

    model: str
    cluster: str
    world_size: int
    outcomes: List[CandidateOutcome]  #: ranked: simulated by time, then pruned by bound
    preset_times: Dict[str, float]
    stats: Dict[str, int] = field(default_factory=dict)

    # -- views -------------------------------------------------------------

    def _best_or_none(self) -> Optional[CandidateOutcome]:
        best = self.outcomes[0] if self.outcomes else None
        return best if best is not None and best.simulated else None

    @property
    def best(self) -> CandidateOutcome:
        """The fastest simulated candidate.

        With the default grid at least the preset twins are always
        priced; a custom ``candidates`` shortlist can be pruned in its
        entirety, in which case no candidate beat the presets and this
        raises.
        """
        best = self._best_or_none()
        if best is None:
            raise ValueError(
                "every candidate was pruned by its lower bound; none can beat "
                f"the best preset ({self.best_preset[0]})"
                if self.preset_times
                else "no candidate was simulated"
            )
        return best

    @property
    def best_strategy(self) -> TrainingStrategy:
        return self.best.strategy

    @property
    def best_preset(self) -> Tuple[str, float]:
        """(name, iteration time) of the fastest compared preset."""
        if not self.preset_times:
            raise ValueError("no presets were priced (autotune ran with presets=())")
        name = min(self.preset_times, key=self.preset_times.get)
        return name, self.preset_times[name]

    @property
    def speedup_over_presets(self) -> float:
        """Best preset time / best found time (>= 1.0 by construction)."""
        return self.best_preset[1] / self.best.iteration_time

    def pareto(self) -> List[CandidateOutcome]:
        """The (iteration time x traffic bytes) frontier of this search."""
        return pareto_frontier(self.outcomes)

    # -- rendering ---------------------------------------------------------

    def to_text(self, top_k: int = 10) -> str:
        """Human-readable ranked table (what the ``autotune`` CLI prints)."""
        lines = [
            f"autotune: {self.model} on {self.cluster} ({self.world_size} GPUs)",
            f"  searched {self.stats.get('candidates', 0)} candidates: "
            f"{self.stats.get('simulated', 0)} simulated, "
            f"{self.stats.get('reused', 0)} reused, "
            f"{self.stats.get('pruned', 0)} pruned by lower bound",
        ]
        header = f"  {'rank':<4} {'strategy':<38} {'time(s)':>9} {'traffic(MB)':>12}  note"
        lines += [header, "  " + "-" * (len(header) - 2)]
        for rank, outcome in enumerate(self.outcomes[:top_k], start=1):
            time_s = (
                f"{outcome.iteration_time:.4f}"
                if outcome.iteration_time is not None
                else f">{outcome.bound.total:.4f}"
            )
            note = outcome.preset or ""
            if outcome.status == PRUNED:
                note = (note + " " if note else "") + "pruned"
            lines.append(
                f"  {rank:<4} {outcome.label:<38} {time_s:>9} "
                f"{outcome.traffic_bytes / 1e6:>12.2f}  {note}"
            )
        best = self._best_or_none()
        if self.preset_times and best is not None:
            best_name, best_time = self.best_preset
            lines.append(
                f"  best preset: {best_name} at {best_time:.4f}s; "
                f"best found: {best.label} at {best.iteration_time:.4f}s "
                f"({self.speedup_over_presets:.3f}x)"
            )
        elif self.preset_times:
            best_name, best_time = self.best_preset
            lines.append(
                f"  best preset: {best_name} at {best_time:.4f}s; every "
                "candidate was pruned (none can beat it)"
            )
        elif best is not None:
            lines.append(
                f"  best found: {best.label} at {best.iteration_time:.4f}s"
            )
        frontier = self.pareto()
        lines.append(
            "  pareto (time x traffic): "
            + (
                "; ".join(
                    f"{o.label} ({o.iteration_time:.4f}s, {o.traffic_bytes / 1e6:.1f}MB)"
                    for o in frontier
                )
                or "(no candidate simulated)"
            )
        )
        return "\n".join(lines)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """The whole report (outcomes, presets, Pareto, stats) as a dict."""
        best = self._best_or_none()
        return {
            "model": self.model,
            "cluster": self.cluster,
            "world_size": self.world_size,
            "outcomes": [o.to_dict() for o in self.outcomes],
            "preset_times": dict(self.preset_times),
            "best": None if best is None else best.to_dict(),
            "best_preset": list(self.best_preset) if self.preset_times else None,
            "speedup_over_presets": (
                self.speedup_over_presets
                if best is not None and self.preset_times
                else None
            ),
            "pareto": [o.to_dict() for o in self.pareto()],
            "stats": dict(self.stats),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The report as stable (sorted-keys) JSON."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def save(self, path: str, indent: Optional[int] = 2) -> None:
        """Write the JSON report (plus trailing newline) to ``path``."""
        with open(path, "w") as f:
            f.write(self.to_json(indent=indent))
            f.write("\n")


def autotune(
    model: Union[str, Session, object],
    cluster: ClusterLike = None,
    *,
    collectives: Optional[Sequence[str]] = None,
    presets: Sequence[str] = SECOND_ORDER_PRESETS,
    prune: bool = True,
    candidates: Optional[Sequence[TrainingStrategy]] = None,
    wire_dtypes: Optional[Sequence[Tuple[str, str, str]]] = None,
    compressions: Optional[Sequence[float]] = None,
    intervals: Optional[Sequence[Tuple[int, int]]] = None,
) -> AutotuneReport:
    """Search the full planner axis grid for ``model`` on ``cluster``.

    ``model`` is a model name / :class:`~repro.models.spec.ModelSpec`
    (with ``cluster`` as in :class:`~repro.plan.Session`) or an existing
    ``Session``.  ``collectives`` restricts the collective-algorithm axis
    (default: all algorithms on a topology-backed session, ``"auto"``
    alone on a profile-backed one, whose profile already encodes its
    collectives).  ``presets`` are simulated first: they seed the
    pruning incumbent, so the result can never be worse than the best
    named scheme.  ``prune=False`` simulates every candidate — the full
    Pareto surface at full cost.  ``candidates`` overrides the searched
    grid entirely (e.g. a hand-written shortlist).

    ``wire_dtypes`` / ``compressions`` / ``intervals`` extend the grid
    along the precision, top-k compression, and stale-refresh axes (see
    :func:`repro.autotune.strategy_grid`); by default only the paper's
    point (fp32, dense, every-iteration refresh) is searched.  Bounds,
    traffic, and the Pareto frontier all account for the extended axes
    — a stale candidate's traffic is its amortized per-iteration byte
    volume.
    """
    if isinstance(model, Session):
        if cluster is not None:
            raise ValueError("pass a cluster via Session(...), not both")
        session = model
    else:
        session = Session(model, cluster)
    spec = session.spec

    grid_kwargs = {}
    if wire_dtypes is not None:
        grid_kwargs["wire_dtypes"] = wire_dtypes
    if compressions is not None:
        grid_kwargs["compressions"] = compressions
    if intervals is not None:
        grid_kwargs["intervals"] = intervals
    if candidates is None:
        if collectives is None:
            collectives = (
                COLLECTIVE_ALGORITHMS if session.topology is not None else ("auto",)
            )
        candidates = strategy_grid(collectives=collectives, **grid_kwargs)
    elif grid_kwargs:
        raise ValueError(
            "candidates= overrides the searched grid entirely; the grid axes "
            f"{sorted(grid_kwargs)} would be silently ignored — bake them "
            "into the candidate list instead"
        )
    else:
        candidates = [
            c.but(name=strategy_label(c)) if c.name == "custom" else c
            for c in candidates
        ]

    # Price the presets first: they seed the pruning incumbent *and* the
    # reuse map, so the grid twin of e.g. SPD-KFAC always carries the
    # preset's simulated result — pruning can never leave the report's
    # best worse than the best named scheme.
    preset_times: Dict[str, float] = {}
    seen: Dict[object, Tuple[float, Tuple[Tuple[str, float], ...]]] = {}
    for name in presets:
        preset = strategy_registry[name]
        result = session.simulate(preset)
        preset_times[name] = result.iteration_time
        key = (preset.but(name="grid", collective="auto"), session.profile_for(preset))
        seen[key] = (result.iteration_time, tuple(result.categories().items()))
    best_time = min(preset_times.values()) if preset_times else float("inf")

    # Resolve parts + bounds for the whole grid first (microseconds per
    # candidate next to a simulation), then evaluate cheapest-bound-first
    # so the incumbent drops fast and pruning bites early.
    prepared = []
    for strategy in candidates:
        profile = session.profile_for(strategy)
        num_ranks, grad_plan, fplan, placement = resolve_plan_parts(
            spec, profile, strategy
        )
        bound = candidate_bound(
            spec,
            profile,
            num_ranks=num_ranks,
            grad_plan=grad_plan,
            fplan=fplan,
            placement=placement,
            include_solve=strategy.include_solve,
            strategy=strategy,
        )
        traffic = parts_traffic(
            spec,
            num_ranks=num_ranks,
            grad_plan=grad_plan,
            fplan=fplan,
            placement=placement,
            strategy=strategy,
        )
        prepared.append((strategy, profile, bound, traffic))
    prepared.sort(key=lambda item: item[2].total)

    outcomes: List[CandidateOutcome] = []
    stats = {"candidates": len(prepared), "simulated": 0, "reused": 0, "pruned": 0}
    # ``seen`` also dedupes within the grid: two collective choices that
    # derive the *same* cost profile (e.g. "auto" resolving to "ring" on
    # a flat fabric) yield identical schedules; simulate one and reuse
    # its result for the twins.
    for strategy, profile, bound, traffic in prepared:
        preset = matching_preset(strategy)
        key = (strategy.but(name="grid", collective="auto"), profile)
        if key in seen:
            time, breakdown = seen[key]
            status = REUSED
            stats["reused"] += 1
        elif prune and bound.total >= best_time:
            time, breakdown, status = None, None, PRUNED
            stats["pruned"] += 1
        else:
            result = session.simulate(strategy)
            time = result.iteration_time
            breakdown = tuple(result.categories().items())
            seen[key] = (time, breakdown)
            status = SIMULATED
            stats["simulated"] += 1
            best_time = min(best_time, time)
        outcomes.append(
            CandidateOutcome(
                strategy=strategy,
                preset=preset,
                bound=bound,
                iteration_time=time,
                breakdown=breakdown,
                traffic_elements=traffic.total_elements(),
                traffic_bytes=traffic.total_bytes(),
                traffic_by_op=tuple(sorted(traffic.bytes.items())),
                status=status,
            )
        )

    # Ranked: simulated/reused by time (named presets first on exact
    # ties, then label for determinism), pruned by bound.
    outcomes.sort(
        key=lambda o: (
            (0, o.iteration_time, o.preset is None, o.label)
            if o.iteration_time is not None
            else (1, o.bound.total, True, o.label)
        )
    )
    world_size = session.num_workers
    if session.topology is not None:
        cluster_desc = session.topology.name
    else:
        cluster_desc = f"{world_size}-GPU profile"
    return AutotuneReport(
        model=spec.name,
        cluster=cluster_desc,
        world_size=world_size,
        outcomes=outcomes,
        preset_times=preset_times,
        stats=stats,
    )
