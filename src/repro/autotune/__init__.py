"""Strategy autotuning: search the planner axis space per cluster.

The paper answers "which distributed K-FAC scheme is best?" with one
hand-picked design for one 64-GPU testbed.  This package answers it by
*search*: enumerate every valid :class:`~repro.plan.TrainingStrategy`
axis combination (:func:`strategy_grid`), lower-bound each candidate
from its resolved planning parts (:func:`candidate_bound`) so dominated
schemes are pruned before simulation, price the survivors through the
shared :class:`~repro.plan.Session` cache, and rank everything into an
:class:`AutotuneReport` with a (time x traffic) Pareto frontier::

    from repro.autotune import autotune
    from repro.topo import multi_rack

    report = autotune("ResNet-50", multi_rack(4, 4, 4, spine="ethernet"))
    print(report.to_text(top_k=5))

Command-line equivalent: ``python -m repro.experiments autotune``.
"""

from repro.autotune.bounds import CandidateBound, candidate_bound
from repro.autotune.grid import (
    DISTRIBUTED_GRADIENT_REDUCTIONS,
    FACTOR_AXES,
    strategy_grid,
    strategy_label,
)
from repro.autotune.traffic import (
    FACTOR_ALLREDUCE,
    GRAD_ALLREDUCE,
    INVERSE_BROADCAST,
    iter_collective_elements,
    parts_traffic,
    plan_traffic,
)
from repro.autotune.search import (
    STRUCT_AXES,
    AxisDomains,
    BnbSearch,
    family_strategies,
    partial_bound,
)
from repro.autotune.robust import (
    ROBUST_OBJECTIVES,
    RobustStats,
    candidate_sample_times,
    robust_value,
    scenario_adjusted_bound,
)
from repro.autotune.tuner import (
    PRUNED,
    REUSED,
    SECOND_ORDER_PRESETS,
    SIMULATED,
    AutotuneReport,
    CandidateOutcome,
    autotune,
    matching_preset,
    pareto_frontier,
)

__all__ = [
    "autotune",
    "AutotuneReport",
    "CandidateOutcome",
    "CandidateBound",
    "candidate_bound",
    "strategy_grid",
    "strategy_label",
    "matching_preset",
    "pareto_frontier",
    "RobustStats",
    "ROBUST_OBJECTIVES",
    "robust_value",
    "candidate_sample_times",
    "scenario_adjusted_bound",
    "iter_collective_elements",
    "parts_traffic",
    "plan_traffic",
    "SECOND_ORDER_PRESETS",
    "DISTRIBUTED_GRADIENT_REDUCTIONS",
    "FACTOR_AXES",
    "GRAD_ALLREDUCE",
    "FACTOR_ALLREDUCE",
    "INVERSE_BROADCAST",
    "SIMULATED",
    "REUSED",
    "PRUNED",
    "STRUCT_AXES",
    "AxisDomains",
    "BnbSearch",
    "family_strategies",
    "partial_bound",
]
